// Domain scenario 4: the full DBA workflow of the paper's prototype (§6) —
// connect to a database (here: load a catalog from disk), inspect declared
// FDs, validate them with the very SQL the paper issues, evolve the
// violated ones, and persist the updated catalog.
//
//   $ ./catalog_workflow [dir]   (default /tmp/fdevolve_catalog)
#include <iostream>

#include "datagen/places.h"
#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "sql/engine.h"
#include "sql/sql_measures.h"

int main(int argc, char** argv) {
  using namespace fdevolve;
  std::string dir = argc > 1 ? argv[1] : "/tmp/fdevolve_catalog";

  // Bootstrap a catalog on disk (first run), then work from disk only —
  // the way a DBA would point the tool at an existing database.
  {
    sql::Database bootstrap;
    bootstrap.AddRelation(datagen::MakePlaces());
    bootstrap.DeclareFd("Places", "District, Region -> AreaCode", "F1");
    bootstrap.DeclareFd("Places", "Zip -> City, State", "F2");
    bootstrap.DeclareFd("Places", "PhNo, Zip -> Street", "F3");
    std::string error;
    if (!sql::SaveCatalog(bootstrap, dir, &error)) {
      std::cerr << "cannot bootstrap catalog: " << error << "\n";
      return 1;
    }
  }

  sql::Database db;
  std::string error;
  if (!sql::LoadCatalog(dir, &db, &error)) {
    std::cerr << "cannot load catalog: " << error << "\n";
    return 1;
  }
  std::cout << "Loaded catalog from " << dir << ":\n";
  for (const auto& name : db.TableNames()) {
    std::cout << "  " << name << " (" << db.Get(name).tuple_count()
              << " tuples)\n";
  }

  std::cout << "\nValidating declared FDs via SQL (the paper's Q1/Q2):\n";
  for (const auto& declared : db.Fds()) {
    const auto& rel = db.Get(declared.table);
    auto queries =
        sql::BuildMeasureQueries(rel.schema(), declared.fd, declared.table);
    auto m = sql::ComputeMeasuresViaSql(db, declared.table, declared.fd);
    std::cout << "  " << declared.fd.ToString(rel.schema()) << "\n"
              << "    " << queries.count_x << "  => " << m.distinct_x << "\n"
              << "    " << queries.count_xy << " => " << m.distinct_xy << "\n"
              << "    confidence " << m.confidence << " -> "
              << (m.exact ? "OK" : "VIOLATED") << "\n";
  }

  std::cout << "\nEvolving violated FDs:\n";
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  for (const auto& declared : db.Fds()) {
    const auto& rel = db.Get(declared.table);
    auto res = fd::Extend(rel, declared.fd, opts);
    if (res.already_exact) continue;
    std::cout << fd::DescribeResult(res, rel.schema());
    if (res.found()) {
      db.ReplaceFd(declared.table, declared.fd, res.repairs[0].repaired);
      std::cout << "  -> accepted into the catalog\n";
    }
  }

  if (!sql::SaveCatalog(db, dir, &error)) {
    std::cerr << "cannot persist catalog: " << error << "\n";
    return 1;
  }
  std::cout << "\nPersisted evolved catalog to " << dir << "; declared FDs now:\n";
  for (const auto& declared : db.Fds()) {
    std::cout << "  " << declared.table << ": "
              << declared.fd.ToString(db.Get(declared.table).schema()) << "\n";
  }
  return 0;
}
