// Standalone FD-monitoring server. Speaks the newline-framed protocol in
// src/server/protocol.h on 127.0.0.1 — try it with nc (see the README
// quickstart):
//
//   fdevolve_serverd --port 7433 --checkpoint state.fdev
//   fdevolve_serverd --port 7433 --checkpoint state.fdev --resume
//
// SIGINT/SIGTERM trigger a clean shutdown: live sessions are drained and,
// when --checkpoint is set, the final state is persisted before exit
// (checkpoint-on-shutdown — the file is always loadable via --resume).
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "query/kernels.h"
#include "server/server.h"
#include "util/cpu_features.h"

namespace {

// Signal handlers can only touch the async-signal-safe surface;
// Server::RequestShutdown (an atomic store + one pipe write) qualifies.
fdevolve::server::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--checkpoint FILE] [--resume]"
               " [--cpu-features T]\n"
            << "  --port N          listen port (default: kernel-assigned)\n"
            << "  --checkpoint FILE persist state here on CHECKPOINT and "
               "shutdown\n"
            << "  --resume          load FILE before serving\n"
            << "  --cpu-features T  pin the SIMD kernel tier (baseline, "
               "sse42, avx2, avx512;\n"
               "                    clamped to host support; env: "
               "FDEVOLVE_CPU_FEATURES)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fdevolve::server::Server::Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      opts.port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      opts.service.checkpoint_path = argv[++i];
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--cpu-features" && i + 1 < argc) {
      try {
        fdevolve::query::kernels::ForceTierByName(argv[++i]);
      } catch (const std::invalid_argument& e) {
        std::cerr << "--cpu-features: " << e.what() << "\n";
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (opts.resume && opts.service.checkpoint_path.empty()) {
    std::cerr << "--resume requires --checkpoint\n";
    return 2;
  }

  fdevolve::server::Server server(opts);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "start failed: " << error << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::cout << "cpu: detected "
            << fdevolve::util::CpuTierName(
                   fdevolve::query::kernels::DetectedTier())
            << ", kernels "
            << fdevolve::util::CpuTierName(
                   fdevolve::query::kernels::SelectedTier())
            << "\n";
  std::cout << "listening on port " << server.port() << std::endl;
  if (!server.Wait(&error)) {
    std::cerr << "shutdown checkpoint failed: " << error << "\n";
    return 1;
  }
  std::cout << "shut down cleanly\n";
  return 0;
}
