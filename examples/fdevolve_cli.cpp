// Command-line front end: evolve FDs on any CSV file.
//
// Repair mode (default):
//   $ ./fdevolve_cli <data.csv|snapshot.fdsnap> "<A, B -> C>" [options]
//       --mode=first|all|topk     (default first)
//       --k=N                     (top-k size, default 3)
//       --max-attrs=N             (antecedent additions cap, default 0=all)
//       --target=0.95             (AFD confidence target, default 1.0)
//       --goodness-threshold=N    (prefer repairs with |g| <= N)
//       --exclude-unique          (drop UNIQUE columns from the pool)
//       --threads=N               (execution width; 0 = all cores, 1 =
//                                  sequential; results are identical for
//                                  every value, only wall time changes)
//       --explain                 (print the repair-search plan — candidate
//                                  order, cost estimates, cardinality
//                                  bounds — without running the search)
//       --budget-ms=X             (wall-clock search budget; best-effort,
//                                  spent cheap/high-signal-first)
//       --budget-cost=X           (modeled-cost budget in ms; deterministic
//                                  truncation point)
//       --no-planner              (disable cardinality-bound pruning; the
//                                  repair set is identical either way when
//                                  no budget is set — only work changes)
//       --cpu-features=T          (pin the SIMD kernel tier: baseline,
//                                  sse42, avx2, or avx512; clamped to what
//                                  the host supports. Results are
//                                  bit-identical across tiers, only speed
//                                  changes. Env: FDEVOLVE_CPU_FEATURES)
//
// Snapshot mode — convert between CSV and the FDEV1 binary snapshot
// format (persists the encoded columns, so loading skips the parse and
// re-dictionary-encode cost entirely):
//   $ ./fdevolve_cli save <data.csv> <out.fdsnap>
//   $ ./fdevolve_cli load <snapshot.fdsnap> [--csv=<out.csv>]
//
// Monitor mode — stream a CSV through the incremental SchemaMonitor (the
// paper's §1 drift scenario): seed it with the first rows, ingest the rest
// in batches, and report every FD that drifts from exact to violated:
//   $ ./fdevolve_cli monitor <data.csv> "A -> B" ["C -> D" ...] [options]
//       --check-interval=N        (validate every N inserts, default 1000)
//       --initial=N               (seed rows, default max(1, rows/10);
//                                  0 streams everything from an empty seed)
//       --batch=N                 (insert batch size, default and maximum:
//                                  check-interval — larger batches would
//                                  under-check)
//       --threads=N               (as above)
//       --suggest                 (print repair suggestions for drifted FDs)
//       --snapshot=FILE           (write a monitor checkpoint when done)
//       --stop-after=N            (stop after ~N streamed tuples — rounded
//                                  down to a batch boundary so a later
//                                  --resume continues the exact check
//                                  cadence — and skip the final check)
//       --sample=K                (monitor a K-slot reservoir sample
//                                  instead of the full relation; measures
//                                  become estimates with error intervals)
//       --seed=S                  (reservoir seed, default 1; the estimate
//                                  sequence is a pure function of it)
//   $ ./fdevolve_cli monitor <data.csv> --resume=FILE [options]
//       (continues a checkpointed run — exact or sampled, detected from
//        the file: FDs, check interval, and for sampled runs the reservoir
//        capacity/seed/state come from the checkpoint; streams the CSV
//        rows past the checkpoint watermark)
//
// Example (the paper's running example, exported to CSV):
//   $ ./catalog_workflow /tmp/cat
//   $ ./fdevolve_cli /tmp/cat/Places.csv "District, Region -> AreaCode"
#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fd/planner.h"
#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "fd/sampled_monitor.h"
#include "fd/schema_monitor.h"
#include "query/kernels.h"
#include "relation/csv.h"
#include "storage/snapshot.h"
#include "util/cpu_features.h"
#include "util/parse.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace fdevolve;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <data.csv|snap.fdsnap> \"A, B -> C\" [--mode=first|all|topk]\n"
               "       [--k=N] [--max-attrs=N] [--target=X]\n"
               "       [--goodness-threshold=N] [--exclude-unique] [--threads=N]\n"
               "       [--explain] [--budget-ms=X] [--budget-cost=X] [--no-planner]\n"
               "       [--cpu-features=baseline|sse42|avx2|avx512]\n"
               "   or: " << argv0 << " save <data.csv> <out.fdsnap>\n"
               "   or: " << argv0 << " load <snap.fdsnap> [--csv=<out.csv>]\n"
               "   or: " << argv0
            << " monitor <data.csv> \"A -> B\" [\"C -> D\" ...]\n"
               "       [--check-interval=N] [--initial=N] [--batch=N]\n"
               "       [--threads=N] [--suggest] [--snapshot=FILE]\n"
               "       [--stop-after=N] [--sample=K] [--seed=S]\n"
               "       [--cpu-features=baseline|sse42|avx2|avx512]\n"
               "   or: " << argv0
            << " monitor <data.csv> --resume=FILE\n"
               "       [--batch=N] [--threads=N] [--suggest]\n"
               "       [--snapshot=FILE] [--stop-after=N]\n";
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!util::StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

// --cpu-features=baseline|sse42|avx2|avx512: pin the SIMD kernel tier for
// this process. Names above what the host supports are clamped down (so a
// script can say avx512 everywhere); unknown names fail loudly. The
// FDEVOLVE_CPU_FEATURES environment variable is the equivalent knob for
// binaries without flag plumbing.
bool ApplyCpuFeatures(const std::string& value) {
  try {
    query::kernels::ForceTierByName(value);
  } catch (const std::invalid_argument& e) {
    std::cerr << "--cpu-features: " << e.what() << "\n";
    return false;
  }
  return true;
}

// One startup line so every run records which kernels produced it —
// detected host tier and the (possibly clamped or forced) selected tier.
void LogKernelTier() {
  std::cout << "cpu: detected " << util::CpuTierName(query::kernels::DetectedTier())
            << ", kernels " << util::CpuTierName(query::kernels::SelectedTier())
            << "\n";
}

// Checked numeric flag parsing: every numeric flag goes through one of
// these. Unlike the atoi/strtoul they replaced, a malformed or
// out-of-range value ("abc", "12x", "-1" for an unsigned knob) prints the
// offending flag and fails instead of silently becoming 0 — which for
// --threads meant "all cores" and for --check-interval meant "unset".

bool CheckedSize(const std::string& flag, const std::string& value,
                 size_t* out) {
  auto v = util::ParseUint64(value);
  if (!v) {
    std::cerr << "--" << flag << ": expected a non-negative integer, got '"
              << value << "'\n";
    return false;
  }
  *out = static_cast<size_t>(*v);
  return true;
}

bool CheckedInt(const std::string& flag, const std::string& value, int min,
                int* out) {
  auto v = util::ParseInt(value);
  if (!v || *v < min) {
    std::cerr << "--" << flag << ": expected an integer >= " << min
              << ", got '" << value << "'\n";
    return false;
  }
  *out = *v;
  return true;
}

bool CheckedInt64(const std::string& flag, const std::string& value,
                  int64_t min, int64_t* out) {
  auto v = util::ParseInt64(value);
  if (!v || *v < min) {
    std::cerr << "--" << flag << ": expected an integer >= " << min
              << ", got '" << value << "'\n";
    return false;
  }
  *out = *v;
  return true;
}

bool CheckedDouble(const std::string& flag, const std::string& value,
                   double min, double max, double* out) {
  auto v = util::ParseDouble(value);
  if (!v || *v < min || *v > max) {
    std::cerr << "--" << flag << ": expected a number in [" << min << ", "
              << max << "], got '" << value << "'\n";
    return false;
  }
  *out = *v;
  return true;
}

/// Loads a relation from either format: FDEV1 snapshots are recognized by
/// their magic, everything else parses as CSV.
std::optional<relation::Relation> LoadRelationInput(const std::string& path) {
  auto snap = storage::LoadRelationSnapshot(path);
  if (snap.ok()) return std::move(snap.relation);
  if (!snap.not_a_snapshot) {
    // It *was* a snapshot (corrupt, wrong kind, or unreadable) — report
    // that error, not a CSV parse failure on binary bytes.
    std::cerr << "cannot read " << path << ": " << snap.error << "\n";
    return std::nullopt;
  }
  auto csv = relation::ReadCsvFile(path, "input");
  if (!csv.ok()) {
    std::cerr << "cannot read " << path << ": " << csv.error << "\n";
    return std::nullopt;
  }
  return std::move(csv.relation);
}

/// One tuple of `rel` as a Value row (decoded through the dictionaries).
std::vector<relation::Value> RowOf(const relation::Relation& rel, size_t t) {
  std::vector<relation::Value> row;
  row.reserve(static_cast<size_t>(rel.attr_count()));
  for (int a = 0; a < rel.attr_count(); ++a) row.push_back(rel.Get(t, a));
  return row;
}

/// True if the two schemas are identical (names and types, in order) —
/// required between a checkpoint and the stream it resumes against.
bool SameSchema(const relation::Schema& a, const relation::Schema& b) {
  if (a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (a.attr(i).name != b.attr(i).name || a.attr(i).type != b.attr(i).type) {
      return false;
    }
  }
  return true;
}

/// Value equality with doubles compared bitwise (NaN cells must not make
/// identical prefixes look different).
bool SameCell(const relation::Value& a, const relation::Value& b) {
  if (a.is_double() && b.is_double()) {
    const double da = a.as_double();
    const double db = b.as_double();
    return std::memcmp(&da, &db, sizeof(da)) == 0;
  }
  return a == b;
}

/// True if rows [0, prefix.tuple_count()) of `stream` equal `prefix`
/// cell for cell. Compares dictionary codes plus the dictionary prefix:
/// both relations encode values as dense first-appearance codes, so the
/// decoded prefixes are equal iff the code sequences match and the
/// stream's first |prefix dict| dictionary entries match per column —
/// O(prefix cells) integer compares, no decoding.
bool SamePrefix(const relation::Relation& prefix,
                const relation::Relation& stream) {
  for (int i = 0; i < prefix.attr_count(); ++i) {
    const relation::Column& cp = prefix.column(i);
    const relation::Column& cs = stream.column(i);
    if (cp.dict_size() > cs.dict_size()) return false;
    for (size_t c = 0; c < cp.dict_size(); ++c) {
      if (!SameCell(cp.DictValue(static_cast<uint32_t>(c)),
                    cs.DictValue(static_cast<uint32_t>(c)))) {
        return false;
      }
    }
    if (!std::equal(cp.codes().begin(), cp.codes().end(),
                    cs.codes().begin())) {
      return false;
    }
  }
  return true;
}

/// Sampled variant of the monitor loop: same batch grid and check cadence
/// as the exact path, but measures come from a seeded reservoir and every
/// report carries an error interval. Kept separate rather than templated —
/// the summary and checkpoint shapes differ enough that sharing the loop
/// would obscure both.
int RunMonitorSampled(const std::string& csv_path,
                      const relation::Relation& full,
                      std::optional<fd::SampledMonitorCheckpoint> ckpt_opt,
                      const std::vector<std::string>& fd_texts,
                      size_t check_interval, size_t initial, size_t batch,
                      size_t stop_after, size_t sample, uint64_t sample_seed,
                      bool suggest, const std::string& snapshot_path,
                      const std::string& resume_path) {
  constexpr size_t kUnset = static_cast<size_t>(-1);
  if (suggest) {
    // Repair search ranks candidates by exact measures; estimates would
    // rank by noise.
    std::cerr << "monitor --sample: --suggest needs exact measures\n";
    return 2;
  }
  const bool resuming = ckpt_opt.has_value();
  const size_t n = full.tuple_count();

  std::optional<fd::SampledSchemaMonitor> monitor;
  size_t start = 0;
  size_t batch_hint = 0;
  if (resuming) {
    fd::SampledMonitorCheckpoint ckpt = std::move(*ckpt_opt);
    if (!SameSchema(ckpt.base.rel.schema(), full.schema())) {
      std::cerr << "cannot resume: checkpoint schema does not match "
                << csv_path << "\n";
      return 1;
    }
    start = ckpt.base.rel.tuple_count();
    if (start > n) {
      std::cerr << "cannot resume: checkpoint holds " << start
                << " tuples but " << csv_path << " has only " << n << "\n";
      return 1;
    }
    if (!SamePrefix(ckpt.base.rel, full)) {
      std::cerr << "cannot resume: the first " << start << " rows of "
                << csv_path << " differ from the checkpointed stream\n";
      return 1;
    }
    check_interval = ckpt.base.check_interval;
    if (check_interval == 0) check_interval = 1;
    batch_hint = ckpt.base.stream_batch_hint;
    try {
      monitor.emplace(std::move(ckpt));
    } catch (const std::invalid_argument& e) {
      std::cerr << "cannot resume from " << resume_path << ": " << e.what()
                << "\n";
      return 1;
    }
  } else {
    if (initial == kUnset) initial = std::max<size_t>(1, n / 10);
    initial = std::min(initial, n);
    start = initial;

    std::vector<fd::Fd> fds;
    for (const auto& text : fd_texts) {
      try {
        fds.push_back(fd::Fd::Parse(text, full.schema()));
      } catch (const std::invalid_argument& e) {
        std::cerr << "bad FD '" << text << "': " << e.what() << "\n";
        return 1;
      }
    }
    relation::Relation seed_rel(full.name(), full.schema());
    for (size_t t = 0; t < initial; ++t) seed_rel.AppendRow(RowOf(full, t));
    monitor.emplace(std::move(seed_rel), std::move(fds), check_interval,
                    sample, sample_seed);
  }

  // Batch/stop arithmetic identical to the exact path (see RunMonitor):
  // the batch grid IS the check cadence, so resume must reproduce it.
  if (batch == 0) batch = batch_hint != 0 ? batch_hint : check_interval;
  batch = std::min(batch, check_interval);
  size_t stop = n;
  if (stop_after != kUnset) {
    stop = std::min(n, start + (stop_after / batch) * batch);
  }
  const bool truncated = stop < n;

  monitor->OnDrift([&](const fd::DriftEvent& ev) {
    std::cout << "drift @ " << ev.tuple_count << " tuples: "
              << monitor->fds()[ev.fd_index].fd.ToString(full.schema())
              << "  confidence=" << ev.measures.confidence;
    if (ev.approx) {
      std::cout << " in [" << ev.confidence_lo << ", " << ev.confidence_hi
                << "]";
    }
    std::cout << (ev.kind == fd::DriftKind::kRecovered ? "  [recovered]"
                                                       : "  [violated]")
              << "\n";
  });

  std::cout << "Monitoring " << csv_path << " (reservoir "
            << monitor->sample_capacity() << ", seed "
            << monitor->sample_seed() << "): " << n << " rows (" << start
            << (resuming ? " from checkpoint" : " seed") << " + "
            << (stop - start) << " streamed), check every " << check_interval
            << " inserts, batch " << batch << "\n";
  for (size_t i = 0; i < monitor->fds().size(); ++i) {
    const auto& m = monitor->fds()[i];
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << (m.was_exact_at_registration ? "  [no sampled witness]"
                                              : "  [ALREADY VIOLATED]")
              << "\n";
  }

  util::Timer timer;
  std::vector<std::vector<relation::Value>> rows;
  rows.reserve(batch);
  for (size_t t = start; t < stop;) {
    rows.clear();
    const size_t batch_end = std::min(stop, t + batch);
    for (; t < batch_end; ++t) rows.push_back(RowOf(full, t));
    monitor->InsertBatch(rows);
  }
  if (!truncated) monitor->CheckNow();
  const double ms = timer.ElapsedMs();

  std::cout << "\nIngested " << (stop - start) << " tuples in " << ms
            << " ms (" << monitor->checks_run() << " checks";
  if (ms > 0) {
    std::cout << ", " << static_cast<size_t>((stop - start) * 1000.0 / ms)
              << " tuples/sec";
  }
  std::cout << ")\n";
  if (truncated) {
    std::cout << "Stopped at tuple " << stop << " (" << (n - stop)
              << " remaining; resume with --resume)\n";
  }
  std::cout << "Drift events: " << monitor->drift_log().size() << "\n";
  for (size_t i = 0; i < monitor->fds().size(); ++i) {
    const auto& m = monitor->fds()[i];
    const fd::SampledMeasures& est = monitor->estimates()[i];
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << "  c~" << est.measures.confidence;
    if (est.approx) {
      std::cout << " in [" << est.confidence_lo << ", " << est.confidence_hi
                << "]";
    }
    std::cout << "  g~" << est.measures.goodness;
    if (est.approx) {
      std::cout << " in [" << est.goodness_lo << ", " << est.goodness_hi
                << "]";
    }
    std::cout << "  (sample " << est.sample_rows << "/" << est.live_rows
              << " live rows)"
              << (m.violated ? "  VIOLATED (since tuple " +
                                   std::to_string(m.first_violation_at) + ")"
                             : "  no sampled witness")
              << "\n";
  }

  if (!snapshot_path.empty()) {
    fd::SampledMonitorCheckpoint out_ckpt = monitor->Checkpoint();
    out_ckpt.base.stream_batch_hint = batch;
    std::string err;
    if (!storage::SaveSampledCheckpoint(out_ckpt, snapshot_path, &err)) {
      std::cerr << "cannot write checkpoint: " << err << "\n";
      return 1;
    }
    std::cout << "Checkpoint written to " << snapshot_path << " ("
              << monitor->rel().tuple_count() << " tuples)\n";
  }
  return 0;
}

int RunMonitor(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string csv_path = argv[2];

  constexpr size_t kUnset = static_cast<size_t>(-1);
  size_t check_interval = kUnset;  // unset = 1000, or the checkpoint's
  size_t initial = kUnset;  // unset = derive from the input size below;
                            // an explicit --initial=0 (empty seed) is valid
  size_t batch = 0;         // 0 = check_interval
  size_t stop_after = kUnset;  // unset = stream to the end
  size_t sample = 0;           // 0 = exact monitoring
  uint64_t sample_seed = 1;
  bool seed_set = false;
  int threads = 0;
  bool suggest = false;
  std::string snapshot_path;
  std::string resume_path;
  std::vector<std::string> fd_texts;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "check-interval", &value)) {
      if (!CheckedSize("check-interval", value, &check_interval)) return 2;
    } else if (ParseFlag(arg, "initial", &value)) {
      if (!CheckedSize("initial", value, &initial)) return 2;
    } else if (ParseFlag(arg, "batch", &value)) {
      if (!CheckedSize("batch", value, &batch)) return 2;
    } else if (ParseFlag(arg, "stop-after", &value)) {
      if (!CheckedSize("stop-after", value, &stop_after)) return 2;
    } else if (ParseFlag(arg, "sample", &value)) {
      if (!CheckedSize("sample", value, &sample)) return 2;
      if (sample == 0) {
        std::cerr << "--sample: expected a positive reservoir capacity\n";
        return 2;
      }
    } else if (ParseFlag(arg, "seed", &value)) {
      auto v = util::ParseUint64(value);
      if (!v) {
        std::cerr << "--seed: expected an unsigned integer, got '" << value
                  << "'\n";
        return 2;
      }
      sample_seed = *v;
      seed_set = true;
    } else if (ParseFlag(arg, "threads", &value)) {
      if (!CheckedInt("threads", value, 0, &threads)) return 2;
    } else if (ParseFlag(arg, "cpu-features", &value)) {
      if (!ApplyCpuFeatures(value)) return 2;
    } else if (ParseFlag(arg, "snapshot", &value)) {
      snapshot_path = value;
    } else if (ParseFlag(arg, "resume", &value)) {
      resume_path = value;
    } else if (arg == "--suggest") {
      suggest = true;
    } else if (util::StartsWith(arg, "--")) {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      fd_texts.push_back(arg);
    }
  }
  const bool resuming = !resume_path.empty();
  if (resuming) {
    // A checkpoint fixes the FDs, interval, and stream position; flags
    // that would change the check cadence (and so diverge from the
    // uninterrupted run) are rejected rather than silently ignored.
    if (!fd_texts.empty()) {
      std::cerr << "monitor --resume: FDs come from the checkpoint, drop '"
                << fd_texts[0] << "'\n";
      return 2;
    }
    if (check_interval != kUnset) {
      std::cerr << "monitor --resume: --check-interval comes from the "
                   "checkpoint\n";
      return 2;
    }
    if (initial != kUnset) {
      std::cerr << "monitor --resume: --initial conflicts with the "
                   "checkpoint's stream position\n";
      return 2;
    }
    if (sample != 0 || seed_set) {
      std::cerr << "monitor --resume: --sample/--seed come from the "
                   "checkpoint\n";
      return 2;
    }
  } else if (fd_texts.empty()) {
    std::cerr << "monitor: at least one FD is required\n";
    return Usage(argv[0]);
  }
  if (seed_set && sample == 0) {
    std::cerr << "monitor: --seed needs --sample\n";
    return 2;
  }
  if (check_interval == kUnset) check_interval = 1000;
  if (check_interval == 0) check_interval = 1;

  auto loaded = LoadRelationInput(csv_path);  // CSV or relation snapshot
  if (!loaded) return 1;
  const relation::Relation& full = *loaded;
  const size_t n = full.tuple_count();

  // Sampled monitoring takes its own path below: a fresh run with
  // --sample, or a resume whose file holds a sampled (kind 5) checkpoint.
  std::optional<fd::SampledMonitorCheckpoint> sampled_ckpt;
  if (resuming) {
    auto sc = storage::LoadSampledCheckpoint(resume_path);
    if (sc.ok()) sampled_ckpt = std::move(sc.checkpoint);
  }
  if (sample != 0 || sampled_ckpt.has_value()) {
    return RunMonitorSampled(csv_path, full, std::move(sampled_ckpt),
                             fd_texts, check_interval, initial, batch,
                             stop_after, sample, sample_seed, suggest,
                             snapshot_path, resume_path);
  }

  // Construct the monitor: fresh (seeded from the stream prefix) or
  // resumed from a checkpoint.
  std::optional<fd::SchemaMonitor> monitor;
  size_t start = 0;
  size_t batch_hint = 0;
  if (resuming) {
    auto ckpt = storage::LoadMonitorCheckpoint(resume_path);
    if (!ckpt.ok()) {
      std::cerr << "cannot resume from " << resume_path << ": " << ckpt.error
                << "\n";
      return 1;
    }
    if (!SameSchema(ckpt.checkpoint->rel.schema(), full.schema())) {
      std::cerr << "cannot resume: checkpoint schema does not match "
                << csv_path << "\n";
      return 1;
    }
    start = ckpt.checkpoint->rel.tuple_count();
    if (start > n) {
      std::cerr << "cannot resume: checkpoint holds " << start
                << " tuples but " << csv_path << " has only " << n << "\n";
      return 1;
    }
    // The checkpoint embeds the rows it was built from; the input must
    // actually be the same stream, not merely schema-compatible —
    // resuming onto different data would monitor a hybrid stream that
    // never existed.
    if (!SamePrefix(ckpt.checkpoint->rel, full)) {
      std::cerr << "cannot resume: the first " << start << " rows of "
                << csv_path << " differ from the checkpointed stream\n";
      return 1;
    }
    check_interval = ckpt.checkpoint->check_interval;
    if (check_interval == 0) check_interval = 1;  // never divide below
    batch_hint = ckpt.checkpoint->stream_batch_hint;
    try {
      monitor.emplace(std::move(*ckpt.checkpoint), threads);
    } catch (const std::invalid_argument& e) {
      std::cerr << "cannot resume from " << resume_path << ": " << e.what()
                << "\n";
      return 1;
    }
  } else {
    if (initial == kUnset) initial = std::max<size_t>(1, n / 10);
    initial = std::min(initial, n);
    start = initial;

    std::vector<fd::Fd> fds;
    for (const auto& text : fd_texts) {
      try {
        fds.push_back(fd::Fd::Parse(text, full.schema()));
      } catch (const std::invalid_argument& e) {
        std::cerr << "bad FD '" << text << "': " << e.what() << "\n";
        return 1;
      }
    }
    relation::Relation seed(full.name(), full.schema());
    for (size_t t = 0; t < initial; ++t) seed.AppendRow(RowOf(full, t));
    monitor.emplace(std::move(seed), std::move(fds), check_interval,
                    threads);
  }

  // Batch default: the checkpoint's recorded streaming batch when
  // resuming (so the check cadence continues on the original grid even
  // if the first run used a non-default --batch), else the interval.
  if (batch == 0) batch = batch_hint != 0 ? batch_hint : check_interval;
  // SchemaMonitor::InsertBatch runs at most one check per batch, so a
  // batch larger than the interval would silently under-check; cap it to
  // honor "validate every N inserts" (the header line prints the
  // effective value).
  batch = std::min(batch, check_interval);

  // Where to stop: --stop-after is rounded down to a whole number of
  // batches so a later --resume (with the same --batch) replays the exact
  // batch grid — and therefore the exact check sequence — of an
  // uninterrupted run.
  size_t stop = n;
  if (stop_after != kUnset) {
    stop = std::min(n, start + (stop_after / batch) * batch);
  }
  const bool truncated = stop < n;

  monitor->OnDrift([&](const fd::DriftEvent& ev) {
    std::cout << "drift @ " << ev.tuple_count << " tuples: "
              << monitor->fds()[ev.fd_index].fd.ToString(full.schema())
              << "  confidence=" << ev.measures.confidence
              << "  goodness=" << ev.measures.goodness << "\n";
  });

  LogKernelTier();
  std::cout << "Monitoring " << csv_path << ": " << n << " rows ("
            << start << (resuming ? " from checkpoint" : " seed") << " + "
            << (stop - start) << " streamed), check every " << check_interval
            << " inserts, batch " << batch << ", threads "
            << monitor->threads() << "\n";
  for (size_t i = 0; i < monitor->fds().size(); ++i) {
    const auto& m = monitor->fds()[i];
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << (m.was_exact_at_registration ? "  [exact at registration]"
                                              : "  [ALREADY VIOLATED]")
              << "\n";
  }

  util::Timer timer;
  std::vector<std::vector<relation::Value>> rows;
  rows.reserve(batch);
  for (size_t t = start; t < stop;) {
    rows.clear();
    const size_t batch_end = std::min(stop, t + batch);
    for (; t < batch_end; ++t) rows.push_back(RowOf(full, t));
    monitor->InsertBatch(rows);
  }
  if (!truncated) {
    // Final validation for a trailing partial interval. Skipped when
    // --stop-after cut the stream: an extra mid-stream check would make
    // the resumed run diverge from an uninterrupted one.
    monitor->CheckNow();
  }
  const double ms = timer.ElapsedMs();

  std::cout << "\nIngested " << (stop - start) << " tuples in " << ms
            << " ms (" << monitor->checks_run() << " checks";
  if (ms > 0) {
    std::cout << ", " << static_cast<size_t>((stop - start) * 1000.0 / ms)
              << " tuples/sec";
  }
  std::cout << ")\n";
  if (truncated) {
    std::cout << "Stopped at tuple " << stop << " (" << (n - stop)
              << " remaining; resume with --resume)\n";
  }
  std::cout << "Drift events: " << monitor->drift_log().size() << "\n";
  size_t violated_count = 0;
  for (size_t i = 0; i < monitor->fds().size(); ++i) {
    const auto& m = monitor->fds()[i];
    if (m.violated) ++violated_count;
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << "  c=" << m.measures.confidence
              << "  g=" << m.measures.goodness
              << (m.violated ? "  VIOLATED (since tuple " +
                                   std::to_string(m.first_violation_at) + ")"
                             : "  exact")
              << "\n";
  }

  if (!snapshot_path.empty()) {
    fd::MonitorCheckpoint out_ckpt = monitor->Checkpoint();
    out_ckpt.stream_batch_hint = batch;  // lets --resume keep the cadence
    std::string err;
    if (!storage::SaveMonitorCheckpoint(out_ckpt, snapshot_path, &err)) {
      std::cerr << "cannot write checkpoint: " << err << "\n";
      return 1;
    }
    std::cout << "Checkpoint written to " << snapshot_path << " ("
              << monitor->rel().tuple_count() << " tuples)\n";
  }

  if (suggest && violated_count > 0) {
    std::cout << "\nRepair suggestions:\n";
    fd::RepairOptions opts;
    opts.mode = fd::SearchMode::kTopK;
    opts.top_k = 3;
    opts.threads = threads;
    for (const auto& res : monitor->SuggestRepairs(opts)) {
      std::cout << fd::DescribeResult(res, full.schema());
    }
  }
  return 0;
}

int RunSave(int argc, char** argv) {
  if (argc != 4) return Usage(argv[0]);
  const std::string csv_path = argv[2];
  const std::string out_path = argv[3];
  auto loaded = relation::ReadCsvFile(csv_path, "input");
  if (!loaded.ok()) {
    std::cerr << "cannot read " << csv_path << ": " << loaded.error << "\n";
    return 1;
  }
  util::Timer timer;
  std::string err;
  if (!storage::SaveRelationSnapshot(*loaded.relation, out_path, &err)) {
    std::cerr << "cannot write " << out_path << ": " << err << "\n";
    return 1;
  }
  std::cout << "Saved " << loaded.relation->tuple_count() << " tuples x "
            << loaded.relation->attr_count() << " attributes to " << out_path
            << " in " << timer.ElapsedMs() << " ms\n";
  return 0;
}

int RunLoad(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string snap_path = argv[2];
  std::string csv_out;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "csv", &value)) {
      csv_out = value;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }
  util::Timer timer;
  auto loaded = storage::LoadRelationSnapshot(snap_path);
  if (!loaded.ok()) {
    std::cerr << "cannot load " << snap_path << ": " << loaded.error << "\n";
    return 1;
  }
  const relation::Relation& rel = *loaded.relation;
  std::cout << "Loaded '" << rel.name() << "' from " << snap_path << " in "
            << timer.ElapsedMs() << " ms: " << rel.tuple_count()
            << " tuples";
  if (rel.dead_count() > 0) {
    // FDEV2 snapshots carry the deletion log, so a mutated relation
    // round-trips with its tombstones intact.
    std::cout << " (" << rel.live_count() << " live, " << rel.dead_count()
              << " deleted)";
  }
  std::cout << ", ~" << rel.EstimatedBytes() << " bytes\n";
  for (int i = 0; i < rel.attr_count(); ++i) {
    const auto& a = rel.schema().attr(i);
    std::cout << "  " << a.name << ":" << relation::DataTypeName(a.type)
              << "  |dict|=" << rel.column(i).dict_size()
              << (rel.column(i).has_nulls()
                      ? " (+" + std::to_string(rel.column(i).null_count()) +
                            " NULLs)"
                      : "")
              << "\n";
  }
  if (!csv_out.empty()) {
    std::string err;
    if (!relation::WriteCsvFile(rel, csv_out, &err)) {
      // E.g. a string cell this dialect cannot represent — the snapshot
      // format is a superset of CSV.
      std::cerr << "cannot export to " << csv_out << ": " << err << "\n";
      return 1;
    }
    std::cout << "Exported to " << csv_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string subcommand = argv[1];
    if (subcommand == "monitor") return RunMonitor(argc, argv);
    if (subcommand == "save") return RunSave(argc, argv);
    if (subcommand == "load") return RunLoad(argc, argv);
  }
  if (argc < 3) return Usage(argv[0]);
  const std::string csv_path = argv[1];
  const std::string fd_text = argv[2];

  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  bool explain_only = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "mode", &value)) {
      if (value == "first") {
        opts.mode = fd::SearchMode::kFirstRepair;
      } else if (value == "all") {
        opts.mode = fd::SearchMode::kAllRepairs;
      } else if (value == "topk") {
        opts.mode = fd::SearchMode::kTopK;
      } else {
        std::cerr << "unknown mode '" << value << "'\n";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "k", &value)) {
      if (!CheckedSize("k", value, &opts.top_k)) return 2;
    } else if (ParseFlag(arg, "max-attrs", &value)) {
      if (!CheckedInt("max-attrs", value, 0, &opts.max_added_attrs)) return 2;
    } else if (ParseFlag(arg, "target", &value)) {
      if (!CheckedDouble("target", value, 0.0, 1.0,
                         &opts.target_confidence)) {
        return 2;
      }
    } else if (ParseFlag(arg, "goodness-threshold", &value)) {
      // -1 is the documented "unset" sentinel; anything smaller is junk.
      if (!CheckedInt64("goodness-threshold", value, -1,
                        &opts.goodness_threshold)) {
        return 2;
      }
    } else if (ParseFlag(arg, "threads", &value)) {
      if (!CheckedInt("threads", value, 0, &opts.threads)) return 2;
    } else if (ParseFlag(arg, "cpu-features", &value)) {
      if (!ApplyCpuFeatures(value)) return 2;
    } else if (ParseFlag(arg, "budget-ms", &value)) {
      if (!CheckedDouble("budget-ms", value, 0.0, 1e12, &opts.budget_ms)) {
        return 2;
      }
    } else if (ParseFlag(arg, "budget-cost", &value)) {
      if (!CheckedDouble("budget-cost", value, 0.0, 1e12,
                         &opts.budget_cost)) {
        return 2;
      }
    } else if (arg == "--no-planner") {
      opts.use_planner = false;
    } else if (arg == "--explain") {
      explain_only = true;
    } else if (arg == "--exclude-unique") {
      opts.pool.exclude_unique = true;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  auto input = LoadRelationInput(csv_path);
  if (!input) return 1;
  const relation::Relation& rel = *input;

  fd::Fd fd;
  try {
    fd = fd::Fd::Parse(fd_text, rel.schema());
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad FD: " << e.what() << "\n";
    return 1;
  }

  LogKernelTier();
  std::cout << "Relation: " << csv_path << " (" << rel.tuple_count()
            << " tuples, " << rel.attr_count() << " attributes)\n";
  if (explain_only) {
    // Estimates only: render the plan (candidate order, cost estimates,
    // cardinality bounds, budget) without evaluating anything.
    std::cout << fd::DescribePlan(fd::PlanRepair(rel, fd, opts),
                                  rel.schema());
    return 0;
  }
  auto res = fd::Extend(rel, fd, opts);
  std::cout << fd::DescribeResult(res, rel.schema());
  std::cout << "search: " << res.stats.candidates_evaluated
            << " candidates evaluated, " << res.stats.pruned_by_bound
            << " pruned by bound, in " << res.stats.elapsed_ms
            << " ms (stop: " << fd::ToString(res.stats.stop_reason) << ")\n";
  return res.already_exact || res.found() ? 0 : 3;
}
