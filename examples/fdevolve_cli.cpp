// Command-line front end: evolve FDs on any CSV file.
//
//   $ ./fdevolve_cli <data.csv> "<A, B -> C>" [options]
//       --mode=first|all|topk     (default first)
//       --k=N                     (top-k size, default 3)
//       --max-attrs=N             (antecedent additions cap, default 0=all)
//       --target=0.95             (AFD confidence target, default 1.0)
//       --goodness-threshold=N    (prefer repairs with |g| <= N)
//       --exclude-unique          (drop UNIQUE columns from the pool)
//       --threads=N               (execution width; 0 = all cores, 1 =
//                                  sequential; results are identical for
//                                  every value, only wall time changes)
//
// Example (the paper's running example, exported to CSV):
//   $ ./catalog_workflow /tmp/cat
//   $ ./fdevolve_cli /tmp/cat/Places.csv "District, Region -> AreaCode"
#include <cstdlib>
#include <iostream>
#include <string>

#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "relation/csv.h"
#include "util/strings.h"

namespace {

using namespace fdevolve;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <data.csv> \"A, B -> C\" [--mode=first|all|topk] [--k=N]\n"
               "       [--max-attrs=N] [--target=X] [--goodness-threshold=N]\n"
               "       [--exclude-unique] [--threads=N]\n";
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!util::StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string csv_path = argv[1];
  const std::string fd_text = argv[2];

  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "mode", &value)) {
      if (value == "first") {
        opts.mode = fd::SearchMode::kFirstRepair;
      } else if (value == "all") {
        opts.mode = fd::SearchMode::kAllRepairs;
      } else if (value == "topk") {
        opts.mode = fd::SearchMode::kTopK;
      } else {
        std::cerr << "unknown mode '" << value << "'\n";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "k", &value)) {
      opts.top_k = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "max-attrs", &value)) {
      opts.max_added_attrs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "target", &value)) {
      opts.target_confidence = std::atof(value.c_str());
    } else if (ParseFlag(arg, "goodness-threshold", &value)) {
      opts.goodness_threshold = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      opts.threads = std::atoi(value.c_str());
    } else if (arg == "--exclude-unique") {
      opts.pool.exclude_unique = true;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  auto loaded = relation::ReadCsvFile(csv_path, "input");
  if (!loaded.ok()) {
    std::cerr << "cannot read " << csv_path << ": " << loaded.error << "\n";
    return 1;
  }
  const relation::Relation& rel = *loaded.relation;

  fd::Fd fd;
  try {
    fd = fd::Fd::Parse(fd_text, rel.schema());
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad FD: " << e.what() << "\n";
    return 1;
  }

  std::cout << "Relation: " << csv_path << " (" << rel.tuple_count()
            << " tuples, " << rel.attr_count() << " attributes)\n";
  auto res = fd::Extend(rel, fd, opts);
  std::cout << fd::DescribeResult(res, rel.schema());
  std::cout << "search: " << res.stats.candidates_evaluated
            << " candidates evaluated in " << res.stats.elapsed_ms << " ms"
            << (res.stats.exhausted ? "" : " (budget hit)") << "\n";
  return res.already_exact || res.found() ? 0 : 3;
}
