// Command-line front end: evolve FDs on any CSV file.
//
// Repair mode (default):
//   $ ./fdevolve_cli <data.csv> "<A, B -> C>" [options]
//       --mode=first|all|topk     (default first)
//       --k=N                     (top-k size, default 3)
//       --max-attrs=N             (antecedent additions cap, default 0=all)
//       --target=0.95             (AFD confidence target, default 1.0)
//       --goodness-threshold=N    (prefer repairs with |g| <= N)
//       --exclude-unique          (drop UNIQUE columns from the pool)
//       --threads=N               (execution width; 0 = all cores, 1 =
//                                  sequential; results are identical for
//                                  every value, only wall time changes)
//
// Monitor mode — stream a CSV through the incremental SchemaMonitor (the
// paper's §1 drift scenario): seed it with the first rows, ingest the rest
// in batches, and report every FD that drifts from exact to violated:
//   $ ./fdevolve_cli monitor <data.csv> "A -> B" ["C -> D" ...] [options]
//       --check-interval=N        (validate every N inserts, default 1000)
//       --initial=N               (seed rows, default max(1, rows/10);
//                                  0 streams everything from an empty seed)
//       --batch=N                 (insert batch size, default and maximum:
//                                  check-interval — larger batches would
//                                  under-check)
//       --threads=N               (as above)
//       --suggest                 (print repair suggestions for drifted FDs)
//
// Example (the paper's running example, exported to CSV):
//   $ ./catalog_workflow /tmp/cat
//   $ ./fdevolve_cli /tmp/cat/Places.csv "District, Region -> AreaCode"
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "fd/schema_monitor.h"
#include "relation/csv.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace fdevolve;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <data.csv> \"A, B -> C\" [--mode=first|all|topk] [--k=N]\n"
               "       [--max-attrs=N] [--target=X] [--goodness-threshold=N]\n"
               "       [--exclude-unique] [--threads=N]\n"
               "   or: " << argv0
            << " monitor <data.csv> \"A -> B\" [\"C -> D\" ...]\n"
               "       [--check-interval=N] [--initial=N] [--batch=N]\n"
               "       [--threads=N] [--suggest]\n";
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!util::StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// One tuple of `rel` as a Value row (decoded through the dictionaries).
std::vector<relation::Value> RowOf(const relation::Relation& rel, size_t t) {
  std::vector<relation::Value> row;
  row.reserve(static_cast<size_t>(rel.attr_count()));
  for (int a = 0; a < rel.attr_count(); ++a) row.push_back(rel.Get(t, a));
  return row;
}

int RunMonitor(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string csv_path = argv[2];

  constexpr size_t kUnset = static_cast<size_t>(-1);
  size_t check_interval = 1000;
  size_t initial = kUnset;  // unset = derive from the input size below;
                            // an explicit --initial=0 (empty seed) is valid
  size_t batch = 0;         // 0 = check_interval
  int threads = 0;
  bool suggest = false;
  std::vector<std::string> fd_texts;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "check-interval", &value)) {
      check_interval = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "initial", &value)) {
      initial = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "batch", &value)) {
      batch = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "threads", &value)) {
      threads = std::atoi(value.c_str());
    } else if (arg == "--suggest") {
      suggest = true;
    } else if (util::StartsWith(arg, "--")) {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      fd_texts.push_back(arg);
    }
  }
  if (fd_texts.empty()) {
    std::cerr << "monitor: at least one FD is required\n";
    return Usage(argv[0]);
  }
  if (check_interval == 0) check_interval = 1;
  if (batch == 0) batch = check_interval;
  // SchemaMonitor::InsertBatch runs at most one check per batch, so a
  // batch larger than the interval would silently under-check; cap it to
  // honor "validate every N inserts" (the header line prints the
  // effective value).
  batch = std::min(batch, check_interval);

  auto loaded = relation::ReadCsvFile(csv_path, "input");
  if (!loaded.ok()) {
    std::cerr << "cannot read " << csv_path << ": " << loaded.error << "\n";
    return 1;
  }
  const relation::Relation& full = *loaded.relation;
  const size_t n = full.tuple_count();
  if (initial == kUnset) initial = std::max<size_t>(1, n / 10);
  initial = std::min(initial, n);

  std::vector<fd::Fd> fds;
  for (const auto& text : fd_texts) {
    try {
      fds.push_back(fd::Fd::Parse(text, full.schema()));
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad FD '" << text << "': " << e.what() << "\n";
      return 1;
    }
  }

  relation::Relation seed(full.name(), full.schema());
  for (size_t t = 0; t < initial; ++t) seed.AppendRow(RowOf(full, t));

  fd::SchemaMonitor monitor(std::move(seed), fds, check_interval, threads);
  monitor.OnDrift([&](const fd::DriftEvent& ev) {
    std::cout << "drift @ " << ev.tuple_count << " tuples: "
              << monitor.fds()[ev.fd_index].fd.ToString(full.schema())
              << "  confidence=" << ev.measures.confidence
              << "  goodness=" << ev.measures.goodness << "\n";
  });

  std::cout << "Monitoring " << csv_path << ": " << n << " rows ("
            << initial << " seed + " << (n - initial)
            << " streamed), check every " << check_interval
            << " inserts, batch " << batch << ", threads "
            << monitor.threads() << "\n";
  for (size_t i = 0; i < monitor.fds().size(); ++i) {
    const auto& m = monitor.fds()[i];
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << (m.was_exact_at_registration ? "  [exact at registration]"
                                              : "  [ALREADY VIOLATED]")
              << "\n";
  }

  util::Timer timer;
  std::vector<std::vector<relation::Value>> rows;
  rows.reserve(batch);
  for (size_t t = initial; t < n;) {
    rows.clear();
    const size_t stop = std::min(n, t + batch);
    for (; t < stop; ++t) rows.push_back(RowOf(full, t));
    monitor.InsertBatch(rows);
  }
  monitor.CheckNow();  // final validation for a trailing partial interval
  const double ms = timer.ElapsedMs();

  std::cout << "\nIngested " << (n - initial) << " tuples in " << ms
            << " ms (" << monitor.checks_run() << " checks";
  if (ms > 0) {
    std::cout << ", " << static_cast<size_t>((n - initial) * 1000.0 / ms)
              << " tuples/sec";
  }
  std::cout << ")\n";
  std::cout << "Drift events: " << monitor.drift_log().size() << "\n";
  size_t violated_count = 0;
  for (size_t i = 0; i < monitor.fds().size(); ++i) {
    const auto& m = monitor.fds()[i];
    if (m.violated) ++violated_count;
    std::cout << "  FD#" << i << " " << m.fd.ToString(full.schema())
              << "  c=" << m.measures.confidence
              << "  g=" << m.measures.goodness
              << (m.violated ? "  VIOLATED (since tuple " +
                                   std::to_string(m.first_violation_at) + ")"
                             : "  exact")
              << "\n";
  }

  if (suggest && violated_count > 0) {
    std::cout << "\nRepair suggestions:\n";
    fd::RepairOptions opts;
    opts.mode = fd::SearchMode::kTopK;
    opts.top_k = 3;
    opts.threads = threads;
    for (const auto& res : monitor.SuggestRepairs(opts)) {
      std::cout << fd::DescribeResult(res, full.schema());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "monitor") {
    return RunMonitor(argc, argv);
  }
  if (argc < 3) return Usage(argv[0]);
  const std::string csv_path = argv[1];
  const std::string fd_text = argv[2];

  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "mode", &value)) {
      if (value == "first") {
        opts.mode = fd::SearchMode::kFirstRepair;
      } else if (value == "all") {
        opts.mode = fd::SearchMode::kAllRepairs;
      } else if (value == "topk") {
        opts.mode = fd::SearchMode::kTopK;
      } else {
        std::cerr << "unknown mode '" << value << "'\n";
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "k", &value)) {
      opts.top_k = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "max-attrs", &value)) {
      opts.max_added_attrs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "target", &value)) {
      opts.target_confidence = std::atof(value.c_str());
    } else if (ParseFlag(arg, "goodness-threshold", &value)) {
      opts.goodness_threshold = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      opts.threads = std::atoi(value.c_str());
    } else if (arg == "--exclude-unique") {
      opts.pool.exclude_unique = true;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  auto loaded = relation::ReadCsvFile(csv_path, "input");
  if (!loaded.ok()) {
    std::cerr << "cannot read " << csv_path << ": " << loaded.error << "\n";
    return 1;
  }
  const relation::Relation& rel = *loaded.relation;

  fd::Fd fd;
  try {
    fd = fd::Fd::Parse(fd_text, rel.schema());
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad FD: " << e.what() << "\n";
    return 1;
  }

  std::cout << "Relation: " << csv_path << " (" << rel.tuple_count()
            << " tuples, " << rel.attr_count() << " attributes)\n";
  auto res = fd::Extend(rel, fd, opts);
  std::cout << fd::DescribeResult(res, rel.schema());
  std::cout << "search: " << res.stats.candidates_evaluated
            << " candidates evaluated in " << res.stats.elapsed_ms << " ms"
            << (res.stats.exhausted ? "" : " (budget hit)") << "\n";
  return res.already_exact || res.found() ? 0 : 3;
}
