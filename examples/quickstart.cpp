// Quickstart: the paper's running example end-to-end.
//
// Builds the Places relation (Figure 1), declares F1-F3, orders them by
// repair priority (§4.1), and prints ranked repair suggestions for each —
// the exact numbers of Tables 1-3.
//
//   $ ./quickstart
#include <iostream>

#include "datagen/places.h"
#include "fd/candidate_ranking.h"
#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "util/table_printer.h"

int main() {
  using namespace fdevolve;

  // 1. The instance and its declared FDs.
  relation::Relation places = datagen::MakePlaces();
  const relation::Schema& schema = places.schema();
  std::vector<fd::Fd> fds = {datagen::PlacesF1(schema),
                             datagen::PlacesF2(schema),
                             datagen::PlacesF3(schema)};

  std::cout << "Relation " << places.name() << ": " << places.tuple_count()
            << " tuples, " << places.attr_count() << " attributes\n\n";

  // 2. Measure every FD (Definition 3).
  util::TablePrinter measures("FD measures (confidence / goodness)");
  measures.SetHeader({"FD", "confidence", "goodness", "exact?"});
  for (const auto& f : fds) {
    fd::FdMeasures m = fd::ComputeMeasures(places, f);
    measures.AddRow({f.ToString(schema), std::to_string(m.confidence),
                     std::to_string(m.goodness), m.exact ? "yes" : "NO"});
  }
  measures.Print(std::cout);
  std::cout << "\n";

  // 3. Candidate ranking for F1 (Table 1).
  query::DistinctEvaluator eval(places);
  util::TablePrinter table1("Table 1: evolving F1 = [District, Region] -> [AreaCode]");
  table1.SetHeader({"candidate A", "confidence", "goodness"});
  for (const auto& c : fd::ExtendByOne(eval, fds[0])) {
    table1.AddRow({schema.attr(c.attr).name,
                   std::to_string(c.measures.confidence),
                   std::to_string(c.measures.goodness)});
  }
  table1.Print(std::cout);
  std::cout << "\n";

  // 4. Full Algorithm 1: order the FDs, repair each violated one.
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kAllRepairs;
  opts.max_added_attrs = 2;
  auto outcome = fd::FindFdRepairs(places, fds, opts);
  std::cout << fd::DescribeOutcome(outcome, schema);

  // 5. The multi-attribute case (§4.3): F4 = [District] -> [PhNo].
  fd::Fd f4 = datagen::PlacesF4(schema);
  auto res = fd::Extend(places, f4, opts);
  std::cout << "\n" << fd::DescribeResult(res, schema);
  return 0;
}
