// Domain scenario 5: conditional-FD discovery (the §7 extension).
//
// A multi-country address table breaks the classic [zip] -> [city] FD
// because postal codes collide across countries. Instead of widening the
// antecedent globally, condition refinement recovers the set of CFDs under
// which the dependency still holds — then both repair styles are compared.
//
//   $ ./cfd_discovery
#include <iostream>

#include "fd/conditional.h"
#include "fd/repair_report.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace fdevolve;
  using relation::DataType;
  using relation::Value;

  // Synthetic multi-country address book: within a country, zip -> city;
  // across countries zip ranges collide.
  relation::Schema schema({{"country", DataType::kString},
                           {"zip", DataType::kInt64},
                           {"city", DataType::kString},
                           {"carrier", DataType::kString},
                           {"street", DataType::kString}});
  relation::Relation rel("addresses", schema);
  util::Rng rng(7);
  const char* countries[] = {"US", "DE", "NG", "JP"};
  for (int i = 0; i < 2000; ++i) {
    int c = static_cast<int>(rng.Below(4));
    auto zip = static_cast<int64_t>(rng.Below(50));  // collides across countries
    // city is a function of (country, zip).
    std::string city = "city_" + std::to_string(c) + "_" + std::to_string(zip / 5);
    rel.AppendRow({countries[c], zip, city,
                   "carrier_" + std::to_string(rng.Below(6)),
                   "street_" + std::to_string(rng.Below(400))});
  }

  fd::Fd zip_city = fd::Fd::Parse("zip -> city", schema);
  fd::ConditionalFd broken(zip_city, {});
  auto base = fd::ComputeCfdMeasures(rel, broken);
  std::cout << "Global FD " << zip_city.ToString(schema) << ": confidence "
            << base.fd_measures.confidence << " (violated)\n\n";

  // Style 1: the paper's antecedent extension.
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  auto extension = fd::Extend(rel, zip_city, opts);
  std::cout << "Repair style 1 — antecedent extension:\n"
            << fd::DescribeResult(extension, schema) << "\n";

  // Style 2: condition refinement into CFDs.
  std::cout << "Repair style 2 — condition refinement into CFDs:\n";
  fd::ConditionRepairOptions copts;
  copts.min_selected = 50;
  auto refinements = fd::RefineByCondition(rel, broken, copts);
  util::TablePrinter t("Valid CFDs discovered");
  t.SetHeader({"CFD", "tuples", "support"});
  for (const auto& r : refinements) {
    t.AddRow({r.refined.ToString(schema), std::to_string(r.selected_tuples),
              std::to_string(r.support)});
  }
  t.Print(std::cout);

  std::cout << "\nInterpretation: the four country conditions jointly cover "
               "the whole instance — the designer can either evolve the FD "
               "to [country, zip] -> [city] or adopt the four CFDs.\n";
  return 0;
}
