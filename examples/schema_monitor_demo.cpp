// Domain scenario 2: the evolving-reality loop of §1.
//
// A live address table starts consistent with its FDs. A stream of inserts
// simulates a policy change (area-code splits, like the running example's
// motivation): the monitor detects the drift, proposes constraint
// evolutions, and the "designer" (here: an auto-accept policy preferring
// goodness ~ 0) accepts one. Consistency is restored without touching data.
//
//   $ ./schema_monitor_demo
#include <iostream>

#include "fd/repair_report.h"
#include "fd/schema_monitor.h"
#include "util/rng.h"

int main() {
  using namespace fdevolve;
  using relation::DataType;
  using relation::Value;

  relation::Schema schema({{"district", DataType::kString},
                           {"region", DataType::kString},
                           {"municipal", DataType::kString},
                           {"areacode", DataType::kInt64},
                           {"zip", DataType::kString}});

  // Seed data: one area code per (district, region).
  relation::Relation initial("addresses", schema);
  const char* districts[] = {"Brookside", "Alexandria", "Riverdale"};
  const char* regions[] = {"Granville", "Moore Park", "Lakeview"};
  util::Rng rng(2024);
  for (int i = 0; i < 60; ++i) {
    int d = static_cast<int>(rng.Below(3));
    initial.AppendRow({districts[d], regions[d],
                       "M" + std::to_string(rng.Below(4) + 4ull * d),
                       static_cast<int64_t>(613 + d),
                       "Z" + std::to_string(rng.Below(30))});
  }

  fd::SchemaMonitor monitor(
      std::move(initial),
      {fd::Fd::Parse("district, region -> areacode", schema, "F1")},
      /*check_interval=*/10);

  monitor.OnDrift([&](const fd::DriftEvent& ev) {
    std::cout << ">> drift detected at " << ev.tuple_count
              << " tuples: FD #" << ev.fd_index << " confidence fell to "
              << ev.measures.confidence << "\n";
  });

  std::cout << "Monitoring " << monitor.rel().tuple_count()
            << " tuples; FD holds: "
            << (monitor.fds()[0].violated ? "NO" : "yes") << "\n\n";

  // Reality changes: Brookside/Granville is split across two area codes
  // (number-plan exhaustion). Stream the new reality in.
  std::cout << "Streaming inserts with the new numbering plan...\n";
  for (int i = 0; i < 40; ++i) {
    // New municipal areas within Brookside get area code 343.
    bool new_plan = rng.Chance(0.5);
    monitor.Insert({"Brookside", "Granville",
                    new_plan ? Value("M_new") : Value("M0"),
                    static_cast<int64_t>(new_plan ? 343 : 613),
                    "Z" + std::to_string(rng.Below(30))});
  }

  auto violated = monitor.CheckNow();
  if (violated.empty()) {
    std::cout << "No drift detected (unexpected for this script).\n";
    return 1;
  }

  std::cout << "\nProposing constraint evolutions (the designer loop):\n";
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kTopK;
  opts.top_k = 3;
  auto suggestions = monitor.SuggestRepairs(opts);
  for (const auto& s : suggestions) {
    std::cout << fd::DescribeResult(s, schema);
  }

  // Auto-accept policy: the top suggestion (best goodness balance).
  for (size_t i = 0; i < suggestions.size(); ++i) {
    if (suggestions[i].found()) {
      monitor.AcceptRepair(violated[i], suggestions[i].repairs[0]);
      std::cout << "\nAccepted evolution: "
                << suggestions[i].repairs[0].repaired.ToString(schema) << "\n";
    }
  }

  std::cout << "FD holds after evolution: "
            << (monitor.CheckNow().empty() ? "yes" : "NO") << "\n";
  std::cout << "Drift events logged: " << monitor.drift_log().size() << "\n";
  return 0;
}
