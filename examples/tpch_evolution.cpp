// Domain scenario 1: constraint maintenance on a warehouse-style database.
//
// Generates the TPC-H-like database (§6.1), declares the Table 5 FDs, and
// runs FindFDRepairs across all eight tables, printing per-table status,
// the first repair found, and timing — a small-scale rehearsal of the
// paper's Table 5 experiment.
//
//   $ ./tpch_evolution [scale_divisor]   (default 400)
#include <cstdlib>
#include <iostream>

#include "datagen/tpch.h"
#include "fd/repair_report.h"
#include "fd/repair_search.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fdevolve;

  datagen::TpchOptions gen;
  gen.scale = datagen::TpchScale::kSmall;
  gen.scale_divisor = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  if (gen.scale_divisor == 0) gen.scale_divisor = 400;

  std::cout << "Generating TPC-H-like database (paper cardinalities / "
            << gen.scale_divisor << ") ...\n";
  auto db = datagen::MakeTpch(gen);

  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  opts.max_added_attrs = 3;

  util::TablePrinter out("FD evolution across the warehouse");
  out.SetHeader({"table", "tuples", "FD", "status", "first repair", "time"});
  for (const auto& table : db.tables) {
    fd::Fd f = datagen::TpchTable5Fd(table);
    util::Timer timer;
    auto res = fd::Extend(table, f, opts);
    double ms = timer.ElapsedMs();

    std::string status;
    std::string repair = "-";
    if (res.already_exact) {
      status = "exact";
    } else if (res.found()) {
      status = "violated";
      repair = table.schema().Describe(res.repairs[0].added);
    } else {
      status = "violated (no repair found)";
    }
    out.AddRow({table.name(), std::to_string(table.tuple_count()),
                f.ToString(table.schema()), status, repair,
                util::FormatDurationMs(ms)});
  }
  out.Print(std::cout);

  std::cout << "\nDetail for the dominant table (lineitem):\n";
  const auto& lineitem = db.Get("lineitem");
  auto res = fd::Extend(lineitem, datagen::TpchTable5Fd(lineitem), opts);
  std::cout << fd::DescribeResult(res, lineitem.schema());
  return 0;
}
