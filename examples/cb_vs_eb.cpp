// Domain scenario 3: comparing the paper's confidence-based (CB) ranking
// with the entropy-based (EB) baseline of Chiang & Miller (§5) — the
// experiment the paper could not run because the EB tool was unavailable.
//
//   $ ./cb_vs_eb
#include <iostream>

#include "clustering/eb_repair.h"
#include "clustering/equivalence.h"
#include "datagen/places.h"
#include "fd/candidate_ranking.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace fdevolve;

  auto rel = datagen::MakePlaces();
  const auto& schema = rel.schema();
  fd::Fd f1 = datagen::PlacesF1(schema);

  std::cout << "Candidate rankings for " << f1.ToString(schema) << "\n\n";

  query::DistinctEvaluator eval(rel);
  util::Timer cb_timer;
  auto cb = fd::ExtendByOne(eval, f1);
  double cb_ms = cb_timer.ElapsedMs();

  util::Timer eb_timer;
  auto eb = clustering::RankEb(rel, f1);
  double eb_ms = eb_timer.ElapsedMs();

  util::TablePrinter table("CB (confidence/goodness) vs EB (entropies)");
  table.SetHeader({"rank", "CB pick", "c", "g", "EB pick", "H(XY|XA)",
                   "H(A|XY)", "eps_CB", "eps_VI"});
  for (size_t i = 0; i < cb.size(); ++i) {
    relation::AttrSet cb_added = relation::AttrSet::Of({cb[i].attr});
    auto point = clustering::CompareMeasures(rel, f1, cb_added);
    table.AddRow({std::to_string(i + 1), schema.attr(cb[i].attr).name,
                  std::to_string(cb[i].measures.confidence),
                  std::to_string(cb[i].measures.goodness),
                  schema.attr(eb[i].attr).name,
                  std::to_string(eb[i].h_xy_given_xa),
                  std::to_string(eb[i].h_a_given_xy),
                  std::to_string(point.epsilon_cb),
                  std::to_string(point.epsilon_vi)});
  }
  table.Print(std::cout);

  std::cout << "\nBoth methods pick '" << schema.attr(cb[0].attr).name
            << "' first"
            << (cb[0].attr == eb[0].attr ? " (full agreement)." : " vs '" +
               schema.attr(eb[0].attr).name + "' (disagreement).")
            << "\n";
  std::cout << "CB ranking time: " << cb_ms << " ms; EB ranking time: "
            << eb_ms << " ms (EB inspects cluster structure; CB only counts)."
            << "\n\n";

  std::cout << "Theorem 1 null-set check on every candidate:\n";
  for (const auto& c : cb) {
    auto p = clustering::CompareMeasures(rel, f1,
                                         relation::AttrSet::Of({c.attr}));
    std::cout << "  " << schema.attr(c.attr).name << ": eps_CB="
              << p.epsilon_cb << " eps_VI=" << p.epsilon_vi
              << (p.cb_null && p.vi_null
                      ? "  <- common null point (bijective repair)"
                      : "")
              << "\n";
  }
  return 0;
}
