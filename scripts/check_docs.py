#!/usr/bin/env python3
"""Docs consistency gate, run by the CI docs job.

Checks, over README.md and docs/*.md:
  1. every relative markdown link ([text](path), images included) resolves
     to an existing file or directory, anchors stripped;
  2. every bench binary named in docs/PAPER_MAPPING.md exists as a CMake
     target in bench/CMakeLists.txt (fdevolve_add_bench(<name> ...)).

Exits non-zero with one line per problem, so a stale rename fails CI
instead of rotting in the docs.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — skips images' leading '!' implicitly, captures target.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_RE = re.compile(r"\b(bench_[a-z0-9_]+)\b")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def check_links(md_path: Path) -> list[str]:
    problems = []
    text = md_path.read_text(encoding="utf-8")
    # Fenced code blocks may show illustrative links; skip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        resolved = (md_path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{md_path.relative_to(REPO)}: broken link -> {target}")
    return problems


def check_bench_targets(mapping_path: Path, cmake_path: Path) -> list[str]:
    problems = []
    named = set(BENCH_RE.findall(mapping_path.read_text(encoding="utf-8")))
    cmake = cmake_path.read_text(encoding="utf-8")
    declared = set(re.findall(r"fdevolve_add_bench\((bench_[a-z0-9_]+)", cmake))
    for bench in sorted(named - declared):
        problems.append(
            f"{mapping_path.relative_to(REPO)}: names '{bench}' but "
            f"{cmake_path.relative_to(REPO)} declares no such target"
        )
    return problems


def main() -> int:
    problems = []
    doc_files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    for md in doc_files:
        if md.exists():
            problems.extend(check_links(md))
        else:
            problems.append(f"missing expected doc: {md.relative_to(REPO)}")

    mapping = REPO / "docs" / "PAPER_MAPPING.md"
    cmake = REPO / "bench" / "CMakeLists.txt"
    if mapping.exists() and cmake.exists():
        problems.extend(check_bench_targets(mapping, cmake))

    for p in problems:
        print(f"check_docs: {p}", file=sys.stderr)
    if not problems:
        checked = ", ".join(str(d.relative_to(REPO)) for d in doc_files)
        print(f"check_docs: OK ({checked})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
