#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by the bench binaries.

Every bench that writes a JSON artifact gets a schema here: the set of
required keys (dotted paths for nested objects) plus a per-key predicate.
On top of the schemas, every number anywhere in every file is rejected if
it is NaN or infinite — a NaN latency or speedup means the bench divided
by a zero timer and the artifact is garbage.

Usage:
    python3 scripts/check_bench_json.py [FILE_OR_DIR ...]

With no arguments, scans the current directory for BENCH_*.json. A
directory argument is scanned the same way; a file argument is validated
directly (and must have a schema). Exits non-zero on the first category
of failure: missing file schema, missing key, predicate violation, or
non-finite number.
"""

import json
import math
import sys
from pathlib import Path


def positive(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0


def non_negative(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and v >= 0


def zero(v):
    return v == 0 and not isinstance(v, bool)


def boolean(v):
    return isinstance(v, bool)


def non_empty_string(v):
    return isinstance(v, str) and len(v) > 0


# filename -> {dotted key path -> predicate}. Every listed key must be
# present and satisfy its predicate.
SCHEMAS = {
    "BENCH_server.json": {
        "clients": positive,
        "inserts": positive,
        "inserts_per_sec": positive,
        "insert_latency_us.p50": positive,
        "insert_latency_us.p90": positive,
        "insert_latency_us.p99": positive,
        "drift_check_latency_us.p50": positive,
        "drift_check_latency_us.p90": positive,
        "drift_check_latency_us.p99": positive,
    },
    "BENCH_mutation.json": {
        "rows_small": positive,
        "rows_large": positive,
        "per_delete_us_small": positive,
        "per_delete_us_large": positive,
        "per_delete_cost_ratio_4x": positive,
        "sql_deletes_per_sec": positive,
        "sql_updates_per_sec": positive,
        "compaction_ms": non_negative,
        "identity_gate_failures": zero,
    },
    "BENCH_kernels.json": {
        "tuples": positive,
        "tiers_tested": positive,
        "baseline.dense_ns_per_tuple": positive,
        "baseline.flat_ns_per_tuple": positive,
        "baseline.remap_ns_per_tuple": positive,
        "best_tier.name": non_empty_string,
        "best_tier.dense_ns_per_tuple": positive,
        "best_tier.flat_ns_per_tuple": positive,
        "best_tier.remap_ns_per_tuple": positive,
        "best_tier.dense_speedup": positive,
        "best_tier.flat_speedup": positive,
        "fused_chain_ms": positive,
        "per_level_chain_ms": positive,
        "fused_speedup": positive,
        "identity_gate_failures": zero,
        "fast": boolean,
    },
    "BENCH_parallel.json": {
        "cores": positive,
        "repair_search.ms_t1": positive,
        "repair_search.ms_t4": positive,
        "repair_search.speedup_t4": positive,
        "eb_ranking.ms_t1": positive,
        "eb_ranking.ms_t4": positive,
        "eb_ranking.speedup_t4": positive,
        "distinct_count.ms_t1": positive,
        "distinct_count.ms_t4": positive,
        "distinct_count.speedup_t4": positive,
        "determinism_failures": zero,
        "fast": boolean,
    },
    "BENCH_planner.json": {
        "rows_small": positive,
        "rows_mid": positive,
        "rows_large": positive,
        "small.candidates_fixed": positive,
        "small.candidates_planned": positive,
        "small.pruned_by_bound": positive,
        "small.first_repair_ms_fixed": positive,
        "small.first_repair_ms_planned": positive,
        "mid.candidates_fixed": positive,
        "mid.candidates_planned": positive,
        "mid.pruned_by_bound": positive,
        "large.candidates_fixed": positive,
        "large.candidates_planned": positive,
        "large.pruned_by_bound": positive,
        "large.first_repair_ms_fixed": positive,
        "large.first_repair_ms_planned": positive,
        "candidate_reduction": positive,
        "budget_cost_ms": positive,
        "budget_spent_ms": non_negative,
        "identity_gate_failures": zero,
        "fast": boolean,
    },
    "BENCH_sampled.json": {
        "rows_small": positive,
        "rows_large": positive,
        "sample_capacity": positive,
        "exact_check_ms_small": positive,
        "sampled_check_ms_small": positive,
        "exact_check_ms_large": positive,
        "sampled_check_ms_large": positive,
        "large_check_speedup": positive,
        "interval_width_k64": non_negative,
        "interval_width_k256": non_negative,
        "interval_width_k1024": non_negative,
        "interval_width_k4096": non_negative,
        "identity_gate_failures": zero,
        "fast": boolean,
    },
}


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None, False
        node = node[part]
    return node, True


def find_non_finite(node, path=""):
    """Yield dotted paths of every NaN/inf number anywhere in the doc."""
    if isinstance(node, float) and not math.isfinite(node):
        yield path or "<root>"
    elif isinstance(node, dict):
        for k, v in node.items():
            yield from find_non_finite(v, f"{path}.{k}" if path else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from find_non_finite(v, f"{path}[{i}]")


def check_file(path):
    errors = []
    schema = SCHEMAS.get(path.name)
    if schema is None:
        return [f"{path}: no schema registered in check_bench_json.py — "
                f"add one for every new bench artifact"]
    try:
        # Python's json module parses bare NaN/Infinity by default; keep
        # that so find_non_finite can report them instead of a parse error.
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]
    for dotted in sorted(find_non_finite(doc)):
        errors.append(f"{path}: {dotted} is NaN or infinite")
    for dotted, pred in schema.items():
        value, present = lookup(doc, dotted)
        if not present:
            errors.append(f"{path}: missing required key {dotted}")
        elif not pred(value):
            errors.append(
                f"{path}: {dotted}={value!r} fails {pred.__name__}")
    return errors


def collect(args):
    if not args:
        args = ["."]
    files = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    return files


def main(argv):
    files = collect(argv[1:])
    if not files:
        print("check_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"ok   {path}")
    if failures:
        print(f"check_bench_json: {failures}/{len(files)} artifacts invalid",
              file=sys.stderr)
        return 1
    print(f"check_bench_json: {len(files)} artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
