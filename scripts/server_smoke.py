#!/usr/bin/env python3
"""End-to-end smoke test for the FD-monitoring server binary.

Drives build/examples/fdevolve_serverd over a real TCP socket exactly the
way a human with nc would, and checks the full durability story:

  1. scripted session: CREATE / DECLARE FD / INSERT / SELECT, a
     kind=violated DRIFT push, an EXPLAIN REPAIR plan reply, then the
     mutation round-trip — DELETE the violating row (kind=recovered
     push), UPDATE a survivor, an ERR reply, then SHUTDOWN
  2. checkpoint-on-shutdown: the .fdev file exists after a clean exit
  3. restart with --resume: tombstoned rows stay deleted, the UPDATE
     survives, and a fresh insert lands
  4. SIGTERM path: the signal handler shuts down cleanly and the exit
     checkpoint is loadable again

Usage: python3 scripts/server_smoke.py [path-to-fdevolve_serverd]
Exits non-zero on the first failed expectation (CI runs it as a job step).
"""

import os
import re
import signal
import socket
import subprocess
import sys
import tempfile


class Session:
    """Newline-framed protocol client (see src/server/protocol.h)."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.buf = b""

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise EOFError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.rstrip(b"\r").decode()

    def request(self, statement):
        """Sends one statement; returns (reply, drift_lines)."""
        self.sock.sendall(statement.encode() + b"\n")
        drift = []
        while True:
            line = self.read_line()
            if line.startswith("DRIFT "):
                drift.append(line)
                continue
            return line, drift

    def close(self):
        self.sock.close()


def expect(cond, message):
    if not cond:
        print("FAIL:", message, file=sys.stderr)
        sys.exit(1)
    print("ok:", message)


def start_server(binary, checkpoint, resume=False):
    cmd = [binary, "--checkpoint", checkpoint]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    # Startup prints a couple of informational lines (e.g. the detected
    # SIMD tier) before the listen line; scan past them.
    for _ in range(5):
        line = proc.stdout.readline()
        match = re.match(r"listening on port (\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    print("FAIL: no listen line, got:", repr(line), file=sys.stderr)
    sys.exit(1)


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "build/examples/fdevolve_serverd"
    if not os.path.exists(binary):
        print("FAIL: server binary not found:", binary, file=sys.stderr)
        sys.exit(1)
    checkpoint = os.path.join(tempfile.mkdtemp(prefix="fdevolve_smoke_"),
                              "state.fdev")

    # 1. Scripted session.
    proc, port = start_server(binary, checkpoint)
    s = Session(port)
    reply, _ = s.request("CREATE TABLE city (name STRING, zip INT64, state STRING)")
    expect(reply == "OK 0", "CREATE TABLE -> " + reply)
    reply, _ = s.request("DECLARE FD zip -> state ON city")
    expect(reply == "OK 0", "DECLARE FD -> " + reply)
    reply, _ = s.request("INSERT INTO city VALUES ('NY', 10001, 'NY'), ('LA', 90001, 'CA')")
    expect(reply == "OK 2", "INSERT 2 rows -> " + reply)
    reply, _ = s.request("SELECT COUNT(*) FROM city")
    expect(reply == "OK 2", "COUNT(*) -> " + reply)
    # Violating insert: zip 10001 now maps to two states -> DRIFT push.
    reply, drift = s.request("SUBSCRIBE DRIFT ON city")
    expect(reply == "OK 0", "SUBSCRIBE -> " + reply)
    reply, drift = s.request("INSERT INTO city VALUES ('Hoboken', 10001, 'NJ')")
    expect(reply == "OK 1", "violating INSERT -> " + reply)
    expect(len(drift) == 1 and "table=city" in drift[0]
           and " kind=violated " in drift[0],
           "violated DRIFT push received: " + (drift[0] if drift else "<none>"))
    # EXPLAIN over TCP: while the FD is violated, the plan reply is a
    # single PLAN line (newlines folded to " | ") and is not journaled.
    reply, _ = s.request("EXPLAIN REPAIR zip -> state ON city")
    expect(reply.startswith("PLAN "), "EXPLAIN REPAIR -> " + reply[:40])
    expect("repair plan for [zip] -> [state]" in reply and " | " in reply,
           "plan text renders candidates: " + reply[:72])
    # Mutation round-trip: deleting the violating row restores the FD, so
    # the subscriber gets a kind=recovered push in the same critical
    # section as the OK reply.
    reply, drift = s.request("DELETE FROM city WHERE name = 'Hoboken'")
    expect(reply == "OK 1", "DELETE violator -> " + reply)
    expect(len(drift) == 1 and " kind=recovered " in drift[0],
           "recovered DRIFT push received: " + (drift[0] if drift else "<none>"))
    reply, _ = s.request("UPDATE city SET name = 'NYC' WHERE zip = 10001")
    expect(reply == "OK 1", "UPDATE survivor -> " + reply)
    reply, _ = s.request("SELECT COUNT(*) FROM city")
    expect(reply == "OK 2", "COUNT(*) counts live rows -> " + reply)
    reply, _ = s.request("SELECT COUNT(DISTINCT name) FROM city")
    expect(reply == "OK 2", "rewritten name visible -> " + reply)
    reply, _ = s.request("SELECT COUNT(*) FROM ghost")
    expect(reply.startswith("ERR "), "unknown table -> " + reply)
    reply, _ = s.request("SHUTDOWN")
    expect(reply == "OK 0", "SHUTDOWN -> " + reply)
    s.close()
    expect(proc.wait(timeout=30) == 0, "clean exit after SHUTDOWN")

    # 2. Checkpoint-on-shutdown invariant.
    expect(os.path.exists(checkpoint), "checkpoint written on shutdown")

    # 3. Resume: state survives the restart — including the tombstone
    #    (the deleted violator stays deleted) and the rewritten name.
    proc, port = start_server(binary, checkpoint, resume=True)
    s = Session(port)
    reply, _ = s.request("SELECT COUNT(*) FROM city")
    expect(reply == "OK 2", "tombstones survive --resume -> " + reply)
    reply, _ = s.request("SELECT COUNT(DISTINCT name) FROM city")
    expect(reply == "OK 2", "UPDATE survives --resume -> " + reply)
    reply, _ = s.request("INSERT INTO city VALUES ('SF', 94101, 'CA')")
    expect(reply == "OK 1", "insert after --resume -> " + reply)

    # 4. SIGTERM: the handler drains sessions and checkpoints on the way
    #    out; the new row must be in the final snapshot.
    proc.send_signal(signal.SIGTERM)
    expect(proc.wait(timeout=30) == 0, "clean exit after SIGTERM")
    proc, port = start_server(binary, checkpoint, resume=True)
    s = Session(port)
    reply, _ = s.request("SELECT COUNT(*) FROM city")
    expect(reply == "OK 3", "count after SIGTERM checkpoint -> " + reply)
    s.request("SHUTDOWN")
    expect(proc.wait(timeout=30) == 0, "final clean exit")

    print("server smoke: all checks passed")


if __name__ == "__main__":
    main()
