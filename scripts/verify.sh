#!/usr/bin/env bash
# Tier-1 verify in one command: configure, build everything (tests, benches,
# examples) with warnings-as-errors, and run the full CTest suite.
#
# Usage:
#   scripts/verify.sh                 # full build + full test suite
#   scripts/verify.sh --tier1         # run only the tier1-labeled suites
#   scripts/verify.sh --sanitize      # ASan+UBSan build (own build dir)
#   scripts/verify.sh --tsan          # ThreadSanitizer build (build-tsan/)
#   scripts/verify.sh --seed 42       # base seed for the fuzz suites
#   scripts/verify.sh --stats         # statistical suites at high trial
#                                     # counts (nightly-CI depth; respects
#                                     # a pre-set FDEVOLVE_STATS_TRIALS)
#
# Extra args after `--` are passed straight to ctest, e.g.:
#   scripts/verify.sh -- -L fuzz --output-on-failure
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=(-DFDEVOLVE_WERROR=ON)
CTEST_ARGS=()
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --tier1)
      CTEST_ARGS+=(-L tier1)
      shift
      ;;
    --sanitize)
      BUILD_DIR=build-asan
      CMAKE_ARGS+=(-DFDEVOLVE_SANITIZE=address,undefined)
      shift
      ;;
    --tsan)
      BUILD_DIR=build-tsan
      CMAKE_ARGS+=(-DFDEVOLVE_SANITIZE=thread)
      shift
      ;;
    --stats)
      # Run only the statistical-verification suites, at nightly depth:
      # 2000 trials per scenario instead of the in-tree default of 200.
      # Tier-1 wall clock is untouched — this is a separate opt-in run.
      export FDEVOLVE_STATS_TRIALS="${FDEVOLVE_STATS_TRIALS:-2000}"
      CTEST_ARGS+=(-R "SampledStats")
      shift
      ;;
    --seed)
      if [[ $# -lt 2 ]]; then
        echo "--seed requires a value" >&2
        exit 2
      fi
      export FDEVOLVE_SEED="$2"
      shift 2
      ;;
    --)
      shift
      CTEST_ARGS+=("$@")
      break
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

# ${arr[@]+...} guards: plain "${arr[@]}" on an empty array trips `set -u`
# on bash < 4.4 (e.g. the stock macOS /bin/bash 3.2).
cmake -B "$BUILD_DIR" -S . \
  ${GENERATOR_ARGS[@]+"${GENERATOR_ARGS[@]}"} \
  ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS" ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
