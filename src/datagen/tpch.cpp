#include "datagen/tpch.h"

#include <array>
#include <stdexcept>
#include <unordered_map>

#include "util/hash.h"
#include "util/rng.h"

namespace fdevolve::datagen {

using relation::Attribute;
using relation::DataType;
using relation::Relation;
using relation::Schema;
using relation::Value;

namespace {

constexpr const char* kNames[] = {"customer", "lineitem", "nation", "orders",
                                  "part",     "partsupp", "region", "supplier"};

/// Table 4 cardinalities, columns S/M/L.
const std::unordered_map<std::string, std::array<size_t, 3>>& PaperCards() {
  static const std::unordered_map<std::string, std::array<size_t, 3>> cards = {
      {"customer", {15000, 30043, 150249}},
      {"lineitem", {601045, 1196929, 6005428}},
      {"nation", {25, 25, 25}},
      {"orders", {149622, 301174, 1493724}},
      {"part", {20000, 40098, 199756}},
      {"partsupp", {80533, 160611, 779546}},
      {"region", {5, 5, 5}},
      {"supplier", {1000, 2000, 10000}},
  };
  return cards;
}

size_t ScaleIndex(TpchScale s) {
  switch (s) {
    case TpchScale::kSmall:
      return 0;
    case TpchScale::kMedium:
      return 1;
    case TpchScale::kLarge:
      return 2;
  }
  return 0;
}

size_t Scaled(size_t paper_card, size_t divisor) {
  size_t n = paper_card / (divisor == 0 ? 1 : divisor);
  return n < 5 ? std::min<size_t>(paper_card, 5) : n;
}

int64_t HashOf(std::initializer_list<uint64_t> parts, uint64_t salt,
               uint64_t mod) {
  uint64_t h = util::Mix64(salt);
  for (uint64_t p : parts) h = util::HashCombine(h, p);
  return static_cast<int64_t>(h % mod);
}

Relation MakeRegion(size_t n, util::Rng& rng) {
  Schema schema({{"r_regionkey", DataType::kInt64},
                 {"r_name", DataType::kString},
                 {"r_comment", DataType::kString}});
  Relation rel("region", schema);
  for (size_t i = 0; i < n; ++i) {
    rel.AppendRow({static_cast<int64_t>(i), "REGION_" + std::to_string(i),
                   "comment " + rng.Ident(8)});
  }
  return rel;
}

Relation MakeNation(size_t n, util::Rng& rng) {
  Schema schema({{"n_nationkey", DataType::kInt64},
                 {"n_name", DataType::kString},
                 {"n_regionkey", DataType::kInt64},
                 {"n_comment", DataType::kString}});
  Relation rel("nation", schema);
  for (size_t i = 0; i < n; ++i) {
    rel.AppendRow({static_cast<int64_t>(i), "NATION_" + std::to_string(i),
                   static_cast<int64_t>(i % 5), "comment " + rng.Ident(8)});
  }
  return rel;
}

Relation MakeCustomer(size_t n, util::Rng& rng) {
  Schema schema({{"c_custkey", DataType::kInt64},
                 {"c_name", DataType::kString},
                 {"c_address", DataType::kString},
                 {"c_nationkey", DataType::kInt64},
                 {"c_phone", DataType::kString},
                 {"c_acctbal", DataType::kDouble},
                 {"c_mktsegment", DataType::kString},
                 {"c_comment", DataType::kString}});
  Relation rel("customer", schema);
  // c_name collides (one name per ~3 customers) so name -> address is
  // violated; address is a function of (name, phone), planting a 1-attr
  // repair. c_custkey is UNIQUE, planting the degenerate repair the
  // goodness criterion should demote.
  size_t name_card = std::max<size_t>(1, n / 3);
  size_t phone_card = std::max<size_t>(1, n / 2);
  for (size_t i = 0; i < n; ++i) {
    uint64_t name_id = rng.Below(name_card);
    uint64_t phone_id = rng.Below(phone_card);
    rel.AppendRow(
        {static_cast<int64_t>(i), "Customer#" + std::to_string(name_id),
         "addr_" + std::to_string(HashOf({name_id, phone_id}, 0xc5, 1 << 20)),
         static_cast<int64_t>(rng.Below(25)),
         "phone_" + std::to_string(phone_id),
         static_cast<double>(rng.Below(100000)) / 100.0,
         "SEG_" + std::to_string(rng.Below(5)), "comment " + rng.Ident(6)});
  }
  return rel;
}

Relation MakeSupplier(size_t n, util::Rng& rng) {
  Schema schema({{"s_suppkey", DataType::kInt64},
                 {"s_name", DataType::kString},
                 {"s_address", DataType::kString},
                 {"s_nationkey", DataType::kInt64},
                 {"s_phone", DataType::kString},
                 {"s_acctbal", DataType::kDouble},
                 {"s_comment", DataType::kString}});
  Relation rel("supplier", schema);
  size_t name_card = std::max<size_t>(1, n / 3);
  size_t phone_card = std::max<size_t>(1, n / 2);
  for (size_t i = 0; i < n; ++i) {
    uint64_t name_id = rng.Below(name_card);
    uint64_t phone_id = rng.Below(phone_card);
    rel.AppendRow(
        {static_cast<int64_t>(i), "Supplier#" + std::to_string(name_id),
         "addr_" + std::to_string(HashOf({name_id, phone_id}, 0x55, 1 << 20)),
         static_cast<int64_t>(rng.Below(25)),
         "phone_" + std::to_string(phone_id),
         static_cast<double>(rng.Below(100000)) / 100.0,
         "comment " + rng.Ident(6)});
  }
  return rel;
}

Relation MakePart(size_t n, util::Rng& rng) {
  Schema schema({{"p_partkey", DataType::kInt64},
                 {"p_name", DataType::kString},
                 {"p_mfgr", DataType::kString},
                 {"p_brand", DataType::kString},
                 {"p_type", DataType::kString},
                 {"p_size", DataType::kInt64},
                 {"p_container", DataType::kString},
                 {"p_retailprice", DataType::kDouble},
                 {"p_comment", DataType::kString}});
  Relation rel("part", schema);
  size_t name_card = std::max<size_t>(1, n / 4);
  for (size_t i = 0; i < n; ++i) {
    uint64_t name_id = rng.Below(name_card);
    uint64_t brand_id = rng.Below(25);
    // mfgr = f(name, brand): name -> mfgr violated, repairable by p_brand.
    rel.AppendRow(
        {static_cast<int64_t>(i), "part_" + std::to_string(name_id),
         "Manufacturer#" + std::to_string(HashOf({name_id, brand_id}, 0x9a, 5)),
         "Brand#" + std::to_string(brand_id),
         "TYPE_" + std::to_string(rng.Below(150)),
         static_cast<int64_t>(rng.Below(50) + 1),
         "CONT_" + std::to_string(rng.Below(40)),
         static_cast<double>(900 + rng.Below(1200)) / 10.0,
         "comment " + rng.Ident(5)});
  }
  return rel;
}

Relation MakePartsupp(size_t n, util::Rng& rng) {
  Schema schema({{"ps_partkey", DataType::kInt64},
                 {"ps_suppkey", DataType::kInt64},
                 {"ps_availqty", DataType::kInt64},
                 {"ps_supplycost", DataType::kDouble},
                 {"ps_comment", DataType::kString}});
  Relation rel("partsupp", schema);
  size_t part_card = std::max<size_t>(1, n / 4);
  size_t supp_card = std::max<size_t>(1, n / 80);
  for (size_t i = 0; i < n; ++i) {
    uint64_t part_id = rng.Below(part_card);
    uint64_t supp_id = rng.Below(supp_card);
    // availqty = f(suppkey, partkey): suppkey -> availqty violated,
    // repairable by ps_partkey.
    rel.AppendRow({static_cast<int64_t>(part_id),
                   static_cast<int64_t>(supp_id),
                   HashOf({supp_id, part_id}, 0x75, 9999) + 1,
                   static_cast<double>(rng.Below(100000)) / 100.0,
                   "comment " + rng.Ident(5)});
  }
  return rel;
}

Relation MakeOrders(size_t n, util::Rng& rng) {
  Schema schema({{"o_orderkey", DataType::kInt64},
                 {"o_custkey", DataType::kInt64},
                 {"o_orderstatus", DataType::kString},
                 {"o_totalprice", DataType::kDouble},
                 {"o_orderdate", DataType::kInt64},
                 {"o_orderpriority", DataType::kString},
                 {"o_clerk", DataType::kString},
                 {"o_shippriority", DataType::kInt64},
                 {"o_comment", DataType::kString}});
  Relation rel("orders", schema);
  size_t cust_card = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < n; ++i) {
    uint64_t cust = rng.Below(cust_card);
    uint64_t priority = rng.Below(5);
    uint64_t clerk = rng.Below(std::max<size_t>(1, n / 100));
    // status = f(custkey, priority, clerk): custkey -> orderstatus is
    // violated and needs a 2-attribute repair {o_orderpriority, o_clerk}.
    rel.AppendRow(
        {static_cast<int64_t>(i), static_cast<int64_t>(cust),
         "S" + std::to_string(HashOf({cust, priority, clerk}, 0x0f, 3)),
         static_cast<double>(rng.Below(500000)) / 100.0,
         static_cast<int64_t>(19920101 + rng.Below(2500)),
         "PRIO_" + std::to_string(priority), "Clerk#" + std::to_string(clerk),
         static_cast<int64_t>(rng.Below(2)), "comment " + rng.Ident(6)});
  }
  return rel;
}

Relation MakeLineitem(size_t n, util::Rng& rng) {
  Schema schema({{"l_orderkey", DataType::kInt64},
                 {"l_partkey", DataType::kInt64},
                 {"l_suppkey", DataType::kInt64},
                 {"l_linenumber", DataType::kInt64},
                 {"l_quantity", DataType::kInt64},
                 {"l_extendedprice", DataType::kDouble},
                 {"l_discount", DataType::kDouble},
                 {"l_tax", DataType::kDouble},
                 {"l_returnflag", DataType::kString},
                 {"l_linestatus", DataType::kString},
                 {"l_shipdate", DataType::kInt64},
                 {"l_commitdate", DataType::kInt64},
                 {"l_receiptdate", DataType::kInt64},
                 {"l_shipinstruct", DataType::kString},
                 {"l_shipmode", DataType::kString},
                 {"l_comment", DataType::kString}});
  Relation rel("lineitem", schema);
  size_t part_card = std::max<size_t>(1, n / 30);
  for (size_t i = 0; i < n; ++i) {
    uint64_t part = rng.Below(part_card);
    uint64_t mode = rng.Below(7);
    uint64_t instr = rng.Below(4);
    int64_t ship = static_cast<int64_t>(19920101 + rng.Below(2500));
    // suppkey = f(partkey, shipmode, shipinstruct): the paper's violated
    // lineitem FD (each part has several suppliers); 2-attribute repair.
    rel.AppendRow(
        {static_cast<int64_t>(rng.Below(std::max<size_t>(1, n / 4))),
         static_cast<int64_t>(part),
         HashOf({part, mode, instr}, 0x11, std::max<size_t>(1, n / 60) + 4),
         static_cast<int64_t>(rng.Below(7) + 1),
         static_cast<int64_t>(rng.Below(50) + 1),
         static_cast<double>(rng.Below(100000)) / 100.0,
         static_cast<double>(rng.Below(11)) / 100.0,
         static_cast<double>(rng.Below(9)) / 100.0,
         std::string(1, static_cast<char>('A' + rng.Below(3))),
         std::string(1, static_cast<char>('F' + rng.Below(2))), ship,
         ship + static_cast<int64_t>(rng.Below(60)),
         ship + static_cast<int64_t>(rng.Below(90)),
         "INSTR_" + std::to_string(instr), "MODE_" + std::to_string(mode),
         "comment " + rng.Ident(4)});
  }
  return rel;
}

}  // namespace

std::string TpchScaleName(TpchScale s) {
  switch (s) {
    case TpchScale::kSmall:
      return "100MB";
    case TpchScale::kMedium:
      return "250MB";
    case TpchScale::kLarge:
      return "1GB";
  }
  return "?";
}

size_t TpchPaperCardinality(const std::string& table, TpchScale scale) {
  auto it = PaperCards().find(table);
  if (it == PaperCards().end()) {
    throw std::invalid_argument("unknown TPC-H table '" + table + "'");
  }
  return it->second[ScaleIndex(scale)];
}

const relation::Relation& TpchDatabase::Get(const std::string& name) const {
  for (const auto& t : tables) {
    if (t.name() == name) return t;
  }
  throw std::invalid_argument("TpchDatabase: no table '" + name + "'");
}

TpchDatabase MakeTpch(const TpchOptions& opts) {
  TpchDatabase db;
  util::Rng rng(opts.seed);
  auto card = [&](const char* t) {
    return Scaled(TpchPaperCardinality(t, opts.scale), opts.scale_divisor);
  };
  db.tables.push_back(MakeCustomer(card("customer"), rng));
  db.tables.push_back(MakeLineitem(card("lineitem"), rng));
  db.tables.push_back(MakeNation(card("nation"), rng));
  db.tables.push_back(MakeOrders(card("orders"), rng));
  db.tables.push_back(MakePart(card("part"), rng));
  db.tables.push_back(MakePartsupp(card("partsupp"), rng));
  db.tables.push_back(MakeRegion(card("region"), rng));
  db.tables.push_back(MakeSupplier(card("supplier"), rng));
  return db;
}

fd::Fd TpchTable5Fd(const relation::Relation& table) {
  const auto& s = table.schema();
  const std::string& n = table.name();
  if (n == "customer") return fd::Fd::Parse("c_name -> c_address", s, n);
  if (n == "lineitem") return fd::Fd::Parse("l_partkey -> l_suppkey", s, n);
  if (n == "nation") return fd::Fd::Parse("n_name -> n_regionkey", s, n);
  if (n == "orders") return fd::Fd::Parse("o_custkey -> o_orderstatus", s, n);
  if (n == "part") return fd::Fd::Parse("p_name -> p_mfgr", s, n);
  if (n == "partsupp") return fd::Fd::Parse("ps_suppkey -> ps_availqty", s, n);
  if (n == "region") return fd::Fd::Parse("r_name -> r_comment", s, n);
  if (n == "supplier") return fd::Fd::Parse("s_name -> s_address", s, n);
  throw std::invalid_argument("TpchTable5Fd: unknown table '" + n + "'");
}

const std::vector<std::string>& TpchTableNames() {
  static const std::vector<std::string> names(std::begin(kNames),
                                              std::end(kNames));
  return names;
}

}  // namespace fdevolve::datagen
