#include "datagen/realistic.h"

#include <algorithm>

#include "datagen/places.h"
#include "datagen/synthetic.h"
#include "util/hash.h"
#include "util/rng.h"

namespace fdevolve::datagen {

using relation::Attribute;
using relation::DataType;
using relation::Relation;
using relation::Schema;
using relation::Value;

namespace {

size_t ScaledCard(size_t paper, size_t divisor) {
  return std::max<size_t>(20, paper / std::max<size_t>(1, divisor));
}

}  // namespace

RealWorkload MakePlacesWorkload() {
  RealWorkload w{MakePlaces(), fd::Fd(), 2, 10};
  // The paper repairs [District] -> [PhNo] on Places and reports a
  // 2-attribute repair (§6.2: "for table Places, the algorithm added 2
  // attributes to repair the given FD").
  w.fd = PlacesF4(w.rel.schema());
  return w;
}

RealWorkload MakeCountryWorkload(const RealOptions& opts) {
  // MySQL `world`.`Country` shape: 15 attributes, 239 rows. The violated FD
  // is [Continent] -> [GovernmentForm]; it becomes exact after adding
  // [Region] (1-attribute repair).
  Schema schema({{"Code", DataType::kString},
                 {"Name", DataType::kString},
                 {"Continent", DataType::kString},
                 {"Region", DataType::kString},
                 {"SurfaceArea", DataType::kDouble},
                 {"IndepYear", DataType::kInt64},
                 {"Population", DataType::kInt64},
                 {"LifeExpectancy", DataType::kDouble},
                 {"GNP", DataType::kDouble},
                 {"GNPOld", DataType::kDouble},
                 {"LocalName", DataType::kString},
                 {"GovernmentForm", DataType::kString},
                 {"HeadOfState", DataType::kString},
                 {"Capital", DataType::kInt64},
                 {"Code2", DataType::kString}});
  Relation rel("Country", schema);
  util::Rng rng(opts.seed);
  constexpr size_t kRows = 239;
  for (size_t i = 0; i < kRows; ++i) {
    uint64_t continent = i % 7;
    uint64_t region = continent * 4 + rng.Below(4);  // region refines continent
    uint64_t gov = util::HashCombine(util::Mix64(continent), region) % 9;
    rel.AppendRow({"C" + std::to_string(i), "Country_" + std::to_string(i),
                   "Continent_" + std::to_string(continent),
                   "Region_" + std::to_string(region),
                   static_cast<double>(rng.Below(1000000)),
                   static_cast<int64_t>(1400 + rng.Below(600)),
                   static_cast<int64_t>(rng.Below(100000000)),
                   40.0 + static_cast<double>(rng.Below(45)),
                   static_cast<double>(rng.Below(100000)),
                   static_cast<double>(rng.Below(100000)),
                   "Local_" + std::to_string(i),
                   "Gov_" + std::to_string(gov),
                   "Head_" + std::to_string(rng.Below(200)),
                   static_cast<int64_t>(i), "c" + std::to_string(i % 99)});
  }
  RealWorkload w{std::move(rel), fd::Fd(), 1, 239};
  w.fd = fd::Fd::Parse("Continent -> GovernmentForm", w.rel.schema(), "Country");
  return w;
}

RealWorkload MakeRentalWorkload(const RealOptions& opts) {
  // MySQL `sakila`.`rental` shape: 7 attributes, 16044 rows. Violated FD
  // [customer_id] -> [staff_id]; exact after adding [store_id].
  Schema schema({{"rental_id", DataType::kInt64},
                 {"rental_date", DataType::kInt64},
                 {"inventory_id", DataType::kInt64},
                 {"customer_id", DataType::kInt64},
                 {"return_date", DataType::kInt64},
                 {"staff_id", DataType::kInt64},
                 {"store_id", DataType::kInt64}});
  Relation rel("Rental", schema);
  util::Rng rng(opts.seed + 1);
  constexpr size_t kRows = 16044;
  for (size_t i = 0; i < kRows; ++i) {
    uint64_t customer = rng.Below(599);
    uint64_t store = rng.Below(8);
    int64_t date = static_cast<int64_t>(20050524 + rng.Below(120));
    rel.AppendRow(
        {static_cast<int64_t>(i), date,
         static_cast<int64_t>(rng.Below(4581)), static_cast<int64_t>(customer),
         date + static_cast<int64_t>(rng.Below(10)),
         static_cast<int64_t>(util::HashCombine(util::Mix64(customer), store) %
                              12),
         static_cast<int64_t>(store)});
  }
  RealWorkload w{std::move(rel), fd::Fd(), 1, 16044};
  w.fd = fd::Fd::Parse("customer_id -> staff_id", w.rel.schema(), "Rental");
  return w;
}

RealWorkload MakeImageWorkload(const RealOptions& opts) {
  // Wikipedia `image` metadata shape: 14 attributes. Violated FD
  // [img_user] -> [img_minor_mime]; needs a 2-attribute repair
  // {img_media_type, img_major_mime}.
  Schema schema({{"img_name", DataType::kString},
                 {"img_size", DataType::kInt64},
                 {"img_width", DataType::kInt64},
                 {"img_height", DataType::kInt64},
                 {"img_metadata", DataType::kString},
                 {"img_bits", DataType::kInt64},
                 {"img_media_type", DataType::kString},
                 {"img_major_mime", DataType::kString},
                 {"img_minor_mime", DataType::kString},
                 {"img_description", DataType::kString},
                 {"img_user", DataType::kInt64},
                 {"img_user_text", DataType::kString},
                 {"img_timestamp", DataType::kInt64},
                 {"img_sha1", DataType::kString}});
  Relation rel("Image", schema);
  util::Rng rng(opts.seed + 2);
  const size_t rows = ScaledCard(124768, opts.large_divisor);
  // No column may be UNIQUE (a unique column would give an accidental
  // 1-attribute repair, contradicting Table 6's 2-attribute repair for
  // Image). Cardinalities are kept low enough that every single-attribute
  // extension still collides.
  const size_t name_card = std::max<size_t>(4, rows / 4);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t user = rng.Below(std::max<size_t>(2, rows / 40));
    uint64_t media = rng.Below(5);
    uint64_t major = rng.Below(6);
    uint64_t minor =
        util::HashCombine(util::HashCombine(util::Mix64(user), media), major) %
        10;
    uint64_t name = rng.Below(name_card);
    rel.AppendRow({"File_" + std::to_string(name),
                   static_cast<int64_t>(rng.Below(500)),
                   static_cast<int64_t>(rng.Below(200) + 16),
                   static_cast<int64_t>(rng.Below(150) + 16),
                   "meta_" + std::to_string(rng.Below(200)),
                   static_cast<int64_t>(8 << rng.Below(3)),
                   "MEDIA_" + std::to_string(media),
                   "major/" + std::to_string(major),
                   "minor/" + std::to_string(minor),
                   "desc_" + std::to_string(rng.Below(300)),
                   static_cast<int64_t>(user),
                   "user_" + std::to_string(user),
                   static_cast<int64_t>(20010115 + rng.Below(365)),
                   "sha_" + std::to_string(name)});
  }
  RealWorkload w{std::move(rel), fd::Fd(), 2, 124768};
  w.fd = fd::Fd::Parse("img_user -> img_minor_mime", w.rel.schema(), "Image");
  return w;
}

RealWorkload MakePageLinksWorkload(const RealOptions& opts) {
  // Wikipedia `pagelinks` shape: 3 attributes only. The FD uses two of
  // them, so a single candidate attribute exists.
  Schema schema({{"pl_from", DataType::kInt64},
                 {"pl_namespace", DataType::kInt64},
                 {"pl_title", DataType::kString}});
  Relation rel("PageLinks", schema);
  util::Rng rng(opts.seed + 3);
  const size_t rows = ScaledCard(842159, opts.large_divisor);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t from = rng.Below(std::max<size_t>(2, rows / 12));
    // namespace = f(from, title): [pl_from] -> [pl_namespace] is violated
    // and pl_title (the only other attribute) repairs it.
    uint64_t title = rng.Below(std::max<size_t>(2, rows / 6));
    rel.AppendRow({static_cast<int64_t>(from),
                   static_cast<int64_t>(
                       util::HashCombine(util::Mix64(from), title) % 4),
                   "Title_" + std::to_string(title)});
  }
  RealWorkload w{std::move(rel), fd::Fd(), 1, 842159};
  w.fd = fd::Fd::Parse("pl_from -> pl_namespace", w.rel.schema(), "PageLinks");
  return w;
}

RealWorkload MakeVeteransWorkload(const RealOptions& opts) {
  // KDD Cup 98 shape: 481 attributes of which 323 NULL-free, 95412 rows.
  // Attributes beyond the planted structure are noise; a slice of the
  // NULL-free pool is what the paper's case study actually searches.
  SyntheticSpec spec;
  spec.name = "Veterans";
  spec.n_attrs = 323;  // NULL-free core; NULL-able columns appended below
  spec.n_tuples = ScaledCard(95412, opts.large_divisor);
  spec.seed = opts.seed + 4;
  spec.repair_length = 2;
  spec.antecedent_domain = 100;
  spec.consequent_domain = 50;
  spec.determinant_domain = 12;
  spec.noise_domain = 40;
  Relation core = MakeSynthetic(spec);

  // Re-create with the full 481-attribute schema: 323 NULL-free + 158
  // NULL-able (which the candidate-pool filter must exclude).
  std::vector<Attribute> attrs = core.schema().attrs();
  for (int i = 0; i < 158; ++i) {
    attrs.push_back({"NULLY" + std::to_string(i + 1), DataType::kInt64});
  }
  Relation rel("Veterans", Schema(std::move(attrs)));
  util::Rng rng(opts.seed + 5);
  for (size_t t = 0; t < core.tuple_count(); ++t) {
    std::vector<Value> row;
    row.reserve(481);
    for (int a = 0; a < core.attr_count(); ++a) row.push_back(core.Get(t, a));
    for (int i = 0; i < 158; ++i) {
      row.push_back(rng.Chance(0.3)
                        ? Value::Null()
                        : Value(static_cast<int64_t>(rng.Below(30))));
    }
    rel.AppendRow(row);
  }
  RealWorkload w{std::move(rel), fd::Fd(), 2, 95412};
  w.fd = fd::Fd::Parse("X -> Y", w.rel.schema(), "Veterans");
  return w;
}

std::vector<RealWorkload> MakeAllRealWorkloads(const RealOptions& opts) {
  std::vector<RealWorkload> out;
  out.push_back(MakePlacesWorkload());
  out.push_back(MakeCountryWorkload(opts));
  out.push_back(MakeRentalWorkload(opts));
  out.push_back(MakeImageWorkload(opts));
  out.push_back(MakePageLinksWorkload(opts));
  out.push_back(MakeVeteransWorkload(opts));
  return out;
}

relation::Relation MakeVeteransSlice(int n_attrs, size_t n_tuples,
                                     bool repairable, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "veterans_slice";
  spec.n_attrs = n_attrs;
  spec.n_tuples = n_tuples;
  spec.seed = seed;
  spec.repair_length = 2;
  spec.antecedent_domain = 80;
  spec.consequent_domain = 60;
  spec.determinant_domain = 10;
  spec.noise_domain = 50;
  // An unrepairable slice: poison enough tuples that no attribute subset
  // determines Y (Table 8's 70K/10-attribute cell, where first-repair time
  // approaches find-all time because the whole space is searched).
  spec.unrepairable_rate = repairable ? 0.0 : 0.25;
  return MakeSynthetic(spec);
}

}  // namespace fdevolve::datagen
