// TPC-H-like synthetic database generator (DBGEN stand-in).
//
// The paper's §6.1 uses DBGEN at 100 MB / 250 MB / 1 GB. We regenerate the
// same eight tables with the arities of Table 4 and cardinalities scaled by
// `scale_divisor` (default 100) so the benches finish on a laptop while
// preserving the paper's relative structure:
//   * per-table arity and cardinality ratios match Table 4;
//   * the Table 5 FDs have the same satisfied/violated status they have in
//     real TPC-H data (nation/region name keys are exact; partkey ->
//     suppkey has 4 suppliers per part; custkey -> orderstatus collides;
//     etc.), so the same tables dominate the runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::datagen {

/// The paper's three database sizes.
enum class TpchScale {
  kSmall,   ///< paper's 100 MB column of Table 4
  kMedium,  ///< paper's 250 MB column
  kLarge,   ///< paper's   1 GB column
};

std::string TpchScaleName(TpchScale s);

/// Cardinality of `table` at `scale` as printed in Table 4 (unscaled).
size_t TpchPaperCardinality(const std::string& table, TpchScale scale);

/// One generated database.
struct TpchDatabase {
  std::vector<relation::Relation> tables;

  const relation::Relation& Get(const std::string& name) const;
};

struct TpchOptions {
  TpchScale scale = TpchScale::kSmall;
  /// Generated cardinality = paper cardinality / scale_divisor (min 5).
  size_t scale_divisor = 100;
  uint64_t seed = 7;
};

/// Generates all eight tables.
TpchDatabase MakeTpch(const TpchOptions& opts);

/// The FD of Table 5 for one table, resolved against its schema:
///   customer [name]->[address], lineitem [partkey]->[suppkey],
///   nation [name]->[regionkey], orders [custkey]->[orderstatus],
///   part [name]->[mfgr], partsupp [suppkey]->[availqty],
///   region [name]->[comment], supplier [name]->[address].
fd::Fd TpchTable5Fd(const relation::Relation& table);

/// Table names in Table 4/5 order.
const std::vector<std::string>& TpchTableNames();

}  // namespace fdevolve::datagen
