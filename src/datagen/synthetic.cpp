#include "datagen/synthetic.h"

#include <stdexcept>

#include "util/hash.h"
#include "util/rng.h"

namespace fdevolve::datagen {

using relation::Attribute;
using relation::DataType;
using relation::Relation;
using relation::Schema;
using relation::Value;

relation::Relation MakeSynthetic(const SyntheticSpec& spec) {
  if (spec.n_attrs < 2 + spec.repair_length) {
    throw std::invalid_argument(
        "SyntheticSpec: n_attrs must be >= 2 + repair_length");
  }
  if (spec.repair_length < 0) {
    throw std::invalid_argument("SyntheticSpec: negative repair_length");
  }
  if (spec.unrepairable_rate > 0.0 && spec.consequent_domain < 2) {
    throw std::invalid_argument(
        "SyntheticSpec: poison twins need consequent_domain >= 2");
  }

  std::vector<Attribute> attrs;
  attrs.push_back({"X", DataType::kInt64});
  attrs.push_back({"Y", DataType::kInt64});
  for (int d = 0; d < spec.repair_length; ++d) {
    attrs.push_back({"D" + std::to_string(d + 1), DataType::kInt64});
  }
  int n_noise = spec.n_attrs - 2 - spec.repair_length;
  for (int m = 0; m < n_noise; ++m) {
    attrs.push_back({"N" + std::to_string(m + 1), DataType::kInt64});
  }

  Relation rel(spec.name, Schema(std::move(attrs)));
  util::Rng rng(spec.seed);

  std::vector<Value> prev_row;
  for (size_t t = 0; t < spec.n_tuples; ++t) {
    if (!prev_row.empty() && spec.unrepairable_rate > 0.0 &&
        rng.Chance(spec.unrepairable_rate)) {
      // Poison twin: identical to the previous tuple everywhere except Y.
      std::vector<Value> twin = prev_row;
      int64_t old_y = twin[1].as_int();
      twin[1] = Value((old_y + 1 + static_cast<int64_t>(rng.Below(
                           spec.consequent_domain - 1))) %
                      static_cast<int64_t>(spec.consequent_domain));
      if (twin[1] == prev_row[1]) {
        twin[1] = Value((old_y + 1) % static_cast<int64_t>(spec.consequent_domain));
      }
      rel.AppendRow(twin);
      prev_row = std::move(twin);
      continue;
    }

    std::vector<Value> row;
    row.reserve(static_cast<size_t>(spec.n_attrs));

    auto x = static_cast<int64_t>(rng.Below(spec.antecedent_domain));
    row.emplace_back(x);

    // Determinants drawn first so Y can be computed from them.
    std::vector<int64_t> dets(static_cast<size_t>(spec.repair_length));
    for (auto& d : dets) {
      d = static_cast<int64_t>(rng.Below(spec.determinant_domain));
    }

    // Y = h(X, D1..Dk): exact dependency on the planted determinant set.
    uint64_t h = util::Mix64(static_cast<uint64_t>(x) + 0x51ULL);
    for (int64_t d : dets) {
      h = util::HashCombine(h, static_cast<uint64_t>(d));
    }
    row.emplace_back(static_cast<int64_t>(h % spec.consequent_domain));
    for (int64_t d : dets) row.emplace_back(d);

    for (int m = 0; m < n_noise; ++m) {
      if (spec.noise_null_rate > 0.0 && rng.Chance(spec.noise_null_rate)) {
        row.emplace_back(Value::Null());
      } else {
        row.emplace_back(static_cast<int64_t>(rng.Below(spec.noise_domain)));
      }
    }
    rel.AppendRow(row);
    prev_row = std::move(row);
  }
  return rel;
}

fd::Fd SyntheticFd(const relation::Schema& schema) {
  return fd::Fd::Parse("X -> Y", schema, "planted");
}

relation::AttrSet SyntheticPlantedRepair(const relation::Schema& schema,
                                         int repair_length) {
  relation::AttrSet s;
  for (int d = 0; d < repair_length; ++d) {
    s.Add(schema.Require("D" + std::to_string(d + 1)));
  }
  return s;
}

}  // namespace fdevolve::datagen
