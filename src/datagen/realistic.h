// Stand-ins for the real-life datasets of Table 6 (§6.2).
//
// The originals (MySQL sample DBs, Wikipedia dumps, KDD Cup 98 "Veterans")
// are external downloads; we synthesise relations with the same shape
// parameters the paper's analysis depends on — arity, cardinality (scaled
// where noted), NULL structure, and the repair length the paper reports
// (Places and Image need 2 added attributes, Country/Rental/PageLinks 1).
// DESIGN.md documents each substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::datagen {

/// One Table 6 workload: relation + the FD the paper repairs on it.
struct RealWorkload {
  relation::Relation rel;
  fd::Fd fd;
  int expected_repair_length = 1;  ///< attributes the repair should add
  size_t paper_cardinality = 0;    ///< cardinality printed in Table 6
};

struct RealOptions {
  /// Divisor applied to the two large tables (Image, PageLinks, Veterans);
  /// the small ones are generated at full paper cardinality.
  size_t large_divisor = 10;
  uint64_t seed = 11;
};

/// Places: arity 9, card 10 — the exact running example.
RealWorkload MakePlacesWorkload();

/// Country: arity 15, card 239 (MySQL `world` stand-in), 1-attr repair.
RealWorkload MakeCountryWorkload(const RealOptions& opts = {});

/// Rental: arity 7, card 16044 (MySQL `sakila` stand-in), 1-attr repair.
RealWorkload MakeRentalWorkload(const RealOptions& opts = {});

/// Image: arity 14, card 124768/divisor (Wikipedia image metadata), 2-attr
/// repair — the paper singles this out as slower than the bigger PageLinks.
RealWorkload MakeImageWorkload(const RealOptions& opts = {});

/// PageLinks: arity 3, card 842159/divisor — only one candidate attribute.
RealWorkload MakePageLinksWorkload(const RealOptions& opts = {});

/// Veterans: arity 481 (323 NULL-free), card 95412/divisor. The candidate
/// pool is windowed by the caller (see bench_table6_real).
RealWorkload MakeVeteransWorkload(const RealOptions& opts = {});

/// All six, in Table 6 order.
std::vector<RealWorkload> MakeAllRealWorkloads(const RealOptions& opts = {});

/// Veterans-style slice for the Table 7/8 sweeps: `n_attrs` NULL-free
/// attributes, `n_tuples` rows, planted 2-attribute repair when
/// `repairable`, no repair otherwise (reproduces Table 8's 10-attribute
/// anomaly where the search finds nothing and costs as much as find-all).
relation::Relation MakeVeteransSlice(int n_attrs, size_t n_tuples,
                                     bool repairable, uint64_t seed = 13);

}  // namespace fdevolve::datagen
