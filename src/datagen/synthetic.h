// Generic synthetic relation generator with planted FD/repair structure.
//
// The Veterans case study (§6.2.1, Tables 7-8) sweeps relations by number
// of attributes and tuples while the algorithm repairs one FD. This
// generator produces that workload with controllable ground truth:
//
//   * attribute 0 (X) is the FD antecedent, attribute 1 (Y) the consequent;
//   * attributes 2 .. 1+repair_length are "determinants": Y is a function
//     of (X, determinants), so  X ∪ determinants -> Y  holds exactly and a
//     repair of exactly `repair_length` attributes exists (w.h.p. no
//     shorter one does — asserted probabilistically in tests);
//   * remaining attributes are independent noise with configurable
//     cardinality;
//   * `unrepairable_rate` > 0 re-rolls Y on a fraction of tuples
//     independently of the determinants, destroying every repair (used to
//     reproduce Table 8's "no repair exists" anomaly and for failure
//     injection in tests).
#pragma once

#include <cstdint>
#include <string>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::datagen {

struct SyntheticSpec {
  std::string name = "synthetic";
  int n_attrs = 10;        ///< total attributes (>= 2 + repair_length)
  size_t n_tuples = 1000;  ///< generated rows
  uint64_t seed = 42;

  int repair_length = 1;  ///< planted minimal repair size (0 = FD holds)

  size_t antecedent_domain = 50;   ///< distinct values of attribute 0
  size_t consequent_domain = 200;  ///< codomain size of Y
  size_t determinant_domain = 20;  ///< distinct values per determinant
  size_t noise_domain = 100;       ///< distinct values per noise attribute

  /// Fraction of tuples emitted as "poison twins": a copy of the previous
  /// tuple on every attribute except Y, which is forced to differ. A single
  /// twin makes the instance unrepairable — no antecedent extension can
  /// separate two tuples that agree everywhere outside the consequent.
  double unrepairable_rate = 0.0;

  /// Fraction of NULLs injected into noise attributes (candidate-pool
  /// filtering exercise; determinants and FD attributes stay NULL-free).
  double noise_null_rate = 0.0;
};

/// Generates the relation. Attribute names are "X", "Y", "D1".."Dk",
/// "N1".."Nm" in schema order.
relation::Relation MakeSynthetic(const SyntheticSpec& spec);

/// The planted violated FD: [X] -> [Y].
fd::Fd SyntheticFd(const relation::Schema& schema);

/// The planted repair set {D1..Dk} as an AttrSet (empty if repair_length 0).
relation::AttrSet SyntheticPlantedRepair(const relation::Schema& schema,
                                         int repair_length);

}  // namespace fdevolve::datagen
