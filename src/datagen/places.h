// The paper's running example: relation Places (Figure 1) and FDs F1-F4.
//
// The published PDF's Figure 1 does not survive text extraction intact,
// so the instance here is reconstructed from the paper's own numbers, which
// fully determine it: every confidence/goodness value in §3, §4.1 and
// Tables 1-2 is reproduced exactly by this instance (asserted in
// tests/fd/paper_example_test.cpp). Note Table 6 lists Places with
// cardinality 10: tuples t1 and t2 are identical as 9-attribute tuples
// (they differ only in tid), and projections are sets.
#pragma once

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::datagen {

/// Attribute order: District, Region, Municipal, AreaCode, PhNo, Street,
/// Zip, City, State (arity 9, 11 stored rows).
relation::Relation MakePlaces();

/// F1 : [District, Region] -> [AreaCode]   (c = 0.5,  g = -2)
fd::Fd PlacesF1(const relation::Schema& schema);
/// F2 : [Zip] -> [City, State]             (c = 0.667, g = -1)
fd::Fd PlacesF2(const relation::Schema& schema);
/// F3 : [PhNo, Zip] -> [Street]            (c = 0.889, g = 1)
fd::Fd PlacesF3(const relation::Schema& schema);
/// F4 : [District] -> [PhNo]               (c = 0.29,  g = -4; §4.3)
fd::Fd PlacesF4(const relation::Schema& schema);

}  // namespace fdevolve::datagen
