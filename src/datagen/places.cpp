#include "datagen/places.h"

namespace fdevolve::datagen {

using relation::Attribute;
using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

Relation MakePlaces() {
  Schema schema({
      {"District", DataType::kString},
      {"Region", DataType::kString},
      {"Municipal", DataType::kString},
      {"AreaCode", DataType::kInt64},
      {"PhNo", DataType::kString},
      {"Street", DataType::kString},
      {"Zip", DataType::kString},
      {"City", DataType::kString},
      {"State", DataType::kString},
  });
  return RelationBuilder("Places", schema)
      //    District      Region        Municipal    Area  PhNo        Street      Zip      City       State
      .Row({"Brookside", "Granville", "Glendale", int64_t{613}, "974-2345", "Boxwood", "10211", "NY", "NY"})        // t1
      .Row({"Brookside", "Granville", "Glendale", int64_t{613}, "974-2345", "Boxwood", "10211", "NY", "NY"})        // t2
      .Row({"Brookside", "Granville", "Glendale", int64_t{613}, "299-1010", "Westlane", "10211", "NY", "MA"})       // t3
      .Row({"Brookside", "Granville", "Guildwood", int64_t{515}, "220-1200", "Squire", "02215", "Boston", "MA"})    // t4
      .Row({"Brookside", "Granville", "Guildwood", int64_t{515}, "220-1200", "Squire", "02215", "Boston", "MA"})    // t5
      .Row({"Alexandria", "Moore Park", "NapaHill", int64_t{415}, "220-1200", "Napa", "60415", "Chicago", "IL"})    // t6
      .Row({"Alexandria", "Moore Park", "NapaHill", int64_t{415}, "930-2525", "Main", "60415", "Chicago", "IL"})    // t7
      .Row({"Alexandria", "Moore Park", "NapaHill", int64_t{415}, "555-1234", "Tower", "60415", "Chester", "IL"})   // t8
      .Row({"Alexandria", "Moore Park", "QueenAnne", int64_t{517}, "888-5152", "Main", "60415", "Chicago", "IL"})   // t9
      .Row({"Alexandria", "Moore Park", "QueenAnne", int64_t{517}, "888-5152", "Main", "60601", "Chicago", "IL"})   // t10
      .Row({"Alexandria", "Moore Park", "QueenAnne", int64_t{517}, "888-5152", "Bay", "60601", "Chicago", "IL"})    // t11
      .Build();
}

fd::Fd PlacesF1(const relation::Schema& schema) {
  return fd::Fd::Parse("District, Region -> AreaCode", schema, "F1");
}

fd::Fd PlacesF2(const relation::Schema& schema) {
  return fd::Fd::Parse("Zip -> City, State", schema, "F2");
}

fd::Fd PlacesF3(const relation::Schema& schema) {
  return fd::Fd::Parse("PhNo, Zip -> Street", schema, "F3");
}

fd::Fd PlacesF4(const relation::Schema& schema) {
  return fd::Fd::Parse("District -> PhNo", schema, "F4");
}

}  // namespace fdevolve::datagen
