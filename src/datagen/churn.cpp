#include "datagen/churn.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/rng.h"

namespace fdevolve::datagen {

using relation::Attribute;
using relation::DataType;
using relation::Relation;
using relation::Schema;
using relation::Value;

const char* ChurnScenarioName(ChurnScenario scenario) {
  switch (scenario) {
    case ChurnScenario::kDeleteHeavy:
      return "delete-heavy";
    case ChurnScenario::kReinsertHeavy:
      return "reinsert-heavy";
    case ChurnScenario::kDomainGrowth:
      return "domain-growth";
  }
  return "unknown";
}

ChurnStream MakeChurn(const ChurnSpec& spec) {
  if (spec.x_domain == 0 || spec.y_domain == 0) {
    throw std::invalid_argument("ChurnSpec: empty X or Y domain");
  }
  if (spec.violation_rate > 0.0 && spec.y_domain < 2) {
    throw std::invalid_argument(
        "ChurnSpec: violation witnesses need y_domain >= 2");
  }

  util::Rng rng(spec.seed);
  // Canonical Y per X: non-violating inserts repeat the mapping so X -> Y
  // holds until a planted witness (or a growth-phase collision) breaks it.
  std::unordered_map<int64_t, int64_t> y_of_x;

  auto fresh_row = [&](size_t x_width) {
    auto x = static_cast<int64_t>(rng.Below(x_width));
    int64_t y;
    auto it = y_of_x.find(x);
    if (it == y_of_x.end()) {
      y = static_cast<int64_t>(rng.Below(spec.y_domain));
      y_of_x.emplace(x, y);
    } else if (spec.violation_rate > 0.0 && rng.Chance(spec.violation_rate)) {
      y = (it->second + 1 +
           static_cast<int64_t>(rng.Below(spec.y_domain - 1))) %
          static_cast<int64_t>(spec.y_domain);
    } else {
      y = it->second;
    }
    return std::vector<Value>{Value(x), Value(y)};
  };

  ChurnStream stream{
      Relation(spec.name, Schema({Attribute{"X", DataType::kInt64},
                                  Attribute{"Y", DataType::kInt64}})),
      {}};
  // Shadow of the live rows in physical order — what a delete's live
  // ordinal indexes into at application time (the same evolution the
  // applying relation goes through, compactions included).
  std::vector<std::vector<Value>> live;
  for (size_t t = 0; t < spec.seed_rows; ++t) {
    std::vector<Value> row = fresh_row(spec.x_domain);
    stream.initial.AppendRow(row);
    live.push_back(std::move(row));
  }

  std::vector<std::vector<Value>> pending;  // deleted rows awaiting reinsert
  stream.ops.reserve(spec.n_ops);
  for (size_t i = 0; i < spec.n_ops; ++i) {
    const uint64_t r = rng.Below(10);
    ChurnOp op;
    const bool want_delete =
        (spec.scenario == ChurnScenario::kDeleteHeavy && r < 5) ||
        (spec.scenario == ChurnScenario::kReinsertHeavy && r < 4) ||
        (spec.scenario == ChurnScenario::kDomainGrowth && r < 1);
    if (want_delete && !live.empty()) {
      op.kind = ChurnOp::Kind::kDelete;
      op.live_ordinal = static_cast<size_t>(rng.Below(live.size()));
      if (spec.scenario == ChurnScenario::kReinsertHeavy) {
        pending.push_back(live[op.live_ordinal]);
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(op.live_ordinal));
    } else {
      op.kind = ChurnOp::Kind::kInsert;
      if (spec.scenario == ChurnScenario::kReinsertHeavy &&
          !pending.empty() && r < 8) {
        // Replay the oldest deleted tuple verbatim.
        op.row = pending.front();
        pending.erase(pending.begin());
      } else if (spec.scenario == ChurnScenario::kDomainGrowth) {
        // Antecedent width ramps from x_domain to 5x over the stream:
        // late inserts are mostly first-appearance X values, keeping the
        // singleton count (and so the estimator's f1 term) high.
        const size_t width =
            spec.x_domain + 4 * spec.x_domain * i / std::max<size_t>(1, spec.n_ops);
        op.row = fresh_row(width);
      } else {
        op.row = fresh_row(spec.x_domain);
      }
      live.push_back(op.row);
    }
    stream.ops.push_back(std::move(op));
  }
  return stream;
}

fd::Fd ChurnFd(const relation::Schema& schema) {
  return fd::Fd(schema.Resolve({"X"}), schema.Resolve({"Y"}));
}

void ApplyChurnOp(relation::Relation* rel, const ChurnOp& op) {
  if (op.kind == ChurnOp::Kind::kInsert) {
    rel->AppendRow(op.row);
    return;
  }
  size_t seen = 0;
  for (size_t t = 0; t < rel->tuple_count(); ++t) {
    if (!rel->is_live(t)) continue;
    if (seen++ == op.live_ordinal) {
      rel->DeleteRow(t);
      return;
    }
  }
  throw std::invalid_argument("ChurnOp: delete ordinal " +
                              std::to_string(op.live_ordinal) +
                              " out of range (" + std::to_string(seen) +
                              " live rows)");
}

}  // namespace fdevolve::datagen
