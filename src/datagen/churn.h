// Adversarial mutation-stream generator for monitor stress tests.
//
// The statistical verification harness needs streams that are hard on a
// reservoir sampler in *specific* ways, not merely random: heavy deletion
// shrinks the live set out from under the sampled slots, delete-then-
// reinsert cycles create tuples whose identity the sample must not
// double-count, and a growing antecedent domain keeps the singleton count
// (the Good-Turing f1 term) high so estimate intervals stay wide. One
// generator per hazard, same op-stream shape.
//
// An op stream is replayable: deletes address the target by its *live
// ordinal* (index into the live rows in physical order) rather than by
// physical row id, so the same stream applies identically before and
// after any interleaved Compact() — compaction preserves live-row order
// (Relation::Compact's rebuilt-equivalence), so live ordinals are stable
// where physical ids are not. Tests can therefore apply one stream to
// several relations (exact monitor's, sampled monitor's, a server table)
// and compare the results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::datagen {

enum class ChurnScenario {
  /// ~Half the ops delete a uniformly random live row: the live set stays
  /// small and churns fast, so most reservoir slots point at dead rows by
  /// the time a check reads them.
  kDeleteHeavy,
  /// Deleted tuples come back: each delete enqueues its row and a later
  /// insert replays it verbatim. Exercises drift recovery on identical
  /// reinsertion and keeps |dict| fixed while physical rows grow.
  kReinsertHeavy,
  /// Insert-dominated with an antecedent domain that widens as the stream
  /// progresses — distinct counts keep rising and singletons never thin
  /// out, the adversarial regime for Good-Turing interval width.
  kDomainGrowth,
};

const char* ChurnScenarioName(ChurnScenario scenario);

struct ChurnSpec {
  std::string name = "churn";
  ChurnScenario scenario = ChurnScenario::kDeleteHeavy;
  size_t seed_rows = 100;  ///< rows in the initial relation
  size_t n_ops = 1000;     ///< mutation ops after the seed
  uint64_t seed = 42;

  size_t x_domain = 20;  ///< antecedent values (starting width for growth)
  size_t y_domain = 30;  ///< consequent values

  /// Chance an insert pairs an already-used X with a fresh Y — a planted
  /// violation witness of X -> Y. 0 keeps the FD exact for the whole run.
  double violation_rate = 0.05;
};

/// One mutation. kInsert appends `row`; kDelete tombstones the
/// `live_ordinal`-th live row in physical order at application time.
struct ChurnOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  std::vector<relation::Value> row;  ///< kInsert payload
  size_t live_ordinal = 0;           ///< kDelete target
};

/// A seed relation plus the op stream to churn it with. Schema is
/// (X:int64, Y:int64); the monitored FD is X -> Y (ChurnFd).
struct ChurnStream {
  relation::Relation initial;
  std::vector<ChurnOp> ops;
};

/// Generates the stream. Deterministic in `spec` (all randomness flows
/// from spec.seed).
ChurnStream MakeChurn(const ChurnSpec& spec);

/// The monitored FD: [X] -> [Y].
fd::Fd ChurnFd(const relation::Schema& schema);

/// Applies one op. Throws std::invalid_argument if a delete's live
/// ordinal is out of range (stream applied to the wrong relation).
void ApplyChurnOp(relation::Relation* rel, const ChurnOp& op);

}  // namespace fdevolve::datagen
