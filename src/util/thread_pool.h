// Shared thread pool and the `ParallelFor` range primitive — the execution
// layer under the parallel refinement passes, the repair search's candidate
// batches, and the ε_EB ranking loop.
//
// The design follows the morsel-driven shape of the DuckDB/Hyrise schedulers
// the related-work set documents, shrunk to what this codebase needs:
//
//   * one long-lived pool (`ThreadPool::Global()`), workers spawned lazily
//     and grown on demand, never per call;
//   * a parallel-for over a tuple range, statically partitioned into `width`
//     contiguous chunks; idle executors claim chunks through an atomic
//     cursor, so a stalled worker never strands work;
//   * the *chunk index* — not the OS thread — is the identity handed to the
//     callback. Per-chunk scratch state is indexed by it, which is what
//     makes the downstream merge deterministic no matter which physical
//     thread ran which chunk, or in what order;
//   * the caller participates as an executor, so a `width`-way call uses
//     exactly `width` executors (caller + `width - 1` pool workers) and a
//     pool with no spawned workers still completes every chunk.
//
// Determinism contract: ParallelFor guarantees each index in [0, n) is
// visited exactly once, by exactly one chunk, with chunk boundaries that are
// a pure function of (n, grain, width). It guarantees nothing about
// execution order — callers that need ordered results must write into
// chunk-indexed slots and merge after the call returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fdevolve::util {

/// \brief Resolves a user-facing `threads` knob to an execution width.
/// \param threads 0 = auto (`hardware_concurrency`), otherwise the value
///        itself; negative values are treated as auto.
/// \return at least 1.
int ResolveThreads(int threads);

/// \brief Fixed-purpose thread pool executing range-partitioned jobs.
///
/// Thread-safety: all public methods are safe to call from any thread.
/// Concurrent ParallelFor calls are serialized (one job runs at a time);
/// a ParallelFor issued from *inside* a pool task runs inline on the
/// calling worker instead of deadlocking, so nested parallelism degrades
/// gracefully to sequential execution.
class ThreadPool {
 public:
  /// \brief Range task: `fn(chunk, begin, end)` processes tuples
  /// [begin, end). `chunk` is the dense chunk index in [0, width) used to
  /// select per-chunk scratch/output slots.
  using RangeFn = std::function<void(int chunk, size_t begin, size_t end)>;

  /// \param prespawn number of worker threads to start immediately; the
  ///        pool grows past this lazily as wider jobs arrive.
  explicit ThreadPool(int prespawn = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Runs `fn` over [0, n) split into at most `threads` chunks.
  ///
  /// The partition width is `min(ResolveThreads(threads), ceil(n / grain))`:
  /// `grain` is the minimum chunk size, so small inputs are never
  /// oversubscribed. Width <= 1 (or a nested call) executes `fn(0, 0, n)`
  /// inline on the caller — the exact sequential code path, no pool
  /// machinery involved.
  ///
  /// Blocks until every chunk completed. If any chunk throws, the first
  /// exception (in completion order) is rethrown on the caller after all
  /// chunks finished.
  void ParallelFor(size_t n, size_t grain, int threads, const RangeFn& fn);

  /// Number of worker threads currently spawned (excludes callers).
  int worker_count() const;

  /// The process-wide pool shared by the query/fd/clustering layers.
  static ThreadPool& Global();

 private:
  /// One in-flight ParallelFor. Chunks are claimed via `next_chunk`;
  /// `finished` / `error` are guarded by the pool mutex.
  struct Job {
    const RangeFn* fn = nullptr;
    size_t n = 0;
    size_t chunk_size = 0;
    int width = 0;
    std::atomic<int> next_chunk{0};
    int finished = 0;
    std::exception_ptr error;
  };

  void WorkerLoop();
  /// Claims and runs chunks of `job` until none remain, then reports
  /// completion (and the first error) under the pool mutex.
  void RunChunks(const std::shared_ptr<Job>& job);
  /// Grows the pool to at least `target` workers.
  void EnsureWorkers(int target);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new job was posted
  std::condition_variable done_cv_;  ///< submitter: all chunks finished
  std::mutex submit_mu_;             ///< serializes whole ParallelFor calls
  std::shared_ptr<Job> job_;         ///< currently posted job (or null)
  uint64_t job_gen_ = 0;             ///< bumped per posted job
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fdevolve::util
