// Checked numeric parsing for user-supplied tokens (CLI flags, config).
//
// Unlike atoi/strtoul, these reject partial matches ("12x"), empty input,
// leading whitespace, and out-of-range values instead of silently returning
// 0 or wrapping — std::nullopt means "not a number of this type", full stop.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace fdevolve::util {

/// Signed 64-bit integer; the whole token must match.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Unsigned 64-bit integer; rejects a leading '-' (no modular wrap).
std::optional<uint64_t> ParseUint64(std::string_view s);

/// `int` with range check on top of ParseInt64.
std::optional<int> ParseInt(std::string_view s);

/// Finite double; the whole token must match ("1e-3" ok, "1.5x" not).
/// Infinities and NaN are rejected — no CLI knob wants them.
std::optional<double> ParseDouble(std::string_view s);

}  // namespace fdevolve::util
