#include "util/table_printer.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fdevolve::util {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  if (!rows_.empty()) {
    throw std::logic_error("TablePrinter: header must precede rows");
  }
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& r : rows_) print_row(r);
  print_rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace fdevolve::util
