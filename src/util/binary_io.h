// Checksummed little-endian binary encoding, the substrate of the FDEV1
// snapshot format (src/storage).
//
// BinaryWriter accumulates into an in-memory buffer; the caller appends
// Checksum() as a trailer and writes the whole thing in one pass.
// BinaryReader parses a byte range with bounds-checked reads: any read past
// the end throws BinaryIoError instead of reading garbage, so a truncated
// or corrupt file always surfaces as a clean error, never undefined
// behavior. The encoding is fixed little-endian regardless of host order.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fdevolve::util {

/// Thrown by BinaryReader on any out-of-bounds or malformed read.
class BinaryIoError : public std::runtime_error {
 public:
  explicit BinaryIoError(const std::string& what) : std::runtime_error(what) {}
};

/// 64-bit checksum over a byte range — the snapshot trailer checksum.
/// FNV-1a-style multiply/xor, but folding 8 bytes per step (with the
/// length mixed into the seed) so checksumming never dominates a snapshot
/// load. Every step is bijective in the state, so any single-bit flip in
/// the input changes the result. Not cryptographic; it exists to catch
/// truncation and bit rot, not tampering.
uint64_t Checksum64(const void* data, size_t size);

/// Append-only little-endian encoder over an owned byte buffer.
class BinaryWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// Exact bit pattern: NaN payloads and -0.0 survive the round trip.
  void F64(double v);
  /// u64 length prefix + raw bytes.
  void Str(std::string_view s);
  /// u64 count prefix + the elements as little-endian u32s (bulk memcpy on
  /// little-endian hosts — the column-codes hot path).
  void U32Array(const std::vector<uint32_t>& v);
  void Bytes(const void* data, size_t size);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Checksum of everything written so far.
  uint64_t Checksum() const { return Checksum64(buf_.data(), buf_.size()); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
///
/// The range must outlive the reader. Every accessor throws BinaryIoError
/// when fewer bytes remain than the read needs, naming the offset — the
/// storage layer converts that into a "truncated snapshot" error message.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  /// Reads a u64 length prefix, then that many bytes. The length is
  /// validated against the remaining range *before* allocating, so a
  /// corrupt multi-gigabyte length fails cleanly instead of attempting the
  /// allocation.
  std::string Str();
  /// Counterpart of BinaryWriter::U32Array.
  std::vector<uint32_t> U32Array();

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  /// Throws unless `n` more bytes are available; returns their start.
  const unsigned char* Take(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace fdevolve::util
