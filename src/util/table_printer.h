// Fixed-width ASCII table printer for the benchmark binaries.
//
// Every bench that reproduces a paper table prints through this class so the
// output in EXPERIMENTS.md has one consistent, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fdevolve::util {

/// Accumulates rows of strings and renders them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; its arity must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the full table.
  void Print(std::ostream& os) const;

  /// Convenience: renders to a string.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fdevolve::util
