// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace fdevolve::util {

/// Monotonic stopwatch. Started on construction; Restart() re-arms it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a millisecond duration the way the paper prints Table 5/6 cells,
/// e.g. "1s 276ms", "9m 42s 708ms", "1h 59m 19s 884ms", "5ms".
inline std::string FormatDurationMs(double ms) {
  auto total = static_cast<uint64_t>(ms + 0.5);
  uint64_t h = total / 3600000;
  total %= 3600000;
  uint64_t m = total / 60000;
  total %= 60000;
  uint64_t s = total / 1000;
  uint64_t rem = total % 1000;
  std::string out;
  if (h > 0) out += std::to_string(h) + "h ";
  if (m > 0 || h > 0) out += std::to_string(m) + "m ";
  if (s > 0 || m > 0 || h > 0) out += std::to_string(s) + "s ";
  out += std::to_string(rem) + "ms";
  return out;
}

}  // namespace fdevolve::util
