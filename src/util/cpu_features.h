// Runtime CPU-feature detection for the vectorized kernel layer.
//
// The query engine's refinement kernels exist in several ISA variants
// (baseline scalar, SSE4.2, AVX2, AVX-512); which one runs is decided once
// at startup from what the *host* supports — the binaries themselves stay
// portable to any x86-64 (or non-x86) machine. Detection follows the
// DuckDB cpu_feature shape: CPUID leaves for the instruction sets plus the
// XGETBV/XCR0 check that the OS actually saves the wider register state
// (a kernel that doesn't context-switch zmm registers makes AVX-512
// "present but unusable"; trusting CPUID alone corrupts state).
//
// On non-x86-64 builds every flag is false and the only tier is kBaseline.
#pragma once

#include <string>

namespace fdevolve::util {

/// Dispatch tiers, ordered: a tier implies every lower one. These are the
/// names accepted by FDEVOLVE_CPU_FEATURES / --cpu-features.
enum class CpuTier {
  kBaseline = 0,  ///< portable scalar code, no ISA assumptions
  kSse42 = 1,     ///< SSE4.2 (x86-64 with SSE4.1/4.2)
  kAvx2 = 2,      ///< AVX2 (+ OS ymm state)
  kAvx512 = 3,    ///< AVX-512 F/BW/DQ/VL (+ OS zmm/opmask state)
};

/// \brief What the host CPU + OS support, as probed once per process.
struct CpuFeatures {
  bool sse42 = false;   ///< SSE4.2 instructions
  bool avx2 = false;    ///< AVX2 instructions AND OS ymm state enabled
  bool avx512 = false;  ///< AVX-512 F+BW+DQ+VL AND OS zmm/opmask state

  /// Highest tier this host can run.
  CpuTier max_tier() const {
    if (avx512) return CpuTier::kAvx512;
    if (avx2) return CpuTier::kAvx2;
    if (sse42) return CpuTier::kSse42;
    return CpuTier::kBaseline;
  }
};

/// \brief Probes the host once (thread-safe, cached after the first call).
const CpuFeatures& DetectCpuFeatures();

/// The canonical lowercase name of a tier ("baseline", "sse42", "avx2",
/// "avx512").
const char* CpuTierName(CpuTier tier);

/// \brief Parses a tier name (as accepted by FDEVOLVE_CPU_FEATURES and
/// --cpu-features). Returns false on unknown names, leaving *tier alone.
bool ParseCpuTier(const std::string& name, CpuTier* tier);

}  // namespace fdevolve::util
