#include "util/strings.h"

#include <cctype>
#include <charconv>

namespace fdevolve::util {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : Split(s, sep)) {
    auto t = Trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string DoubleShortestRoundTrip(double v) {
  char buf[32];  // always fits a shortest-round-trip double
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

}  // namespace fdevolve::util
