#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(_M_X64)
#define FDEVOLVE_X86_64 1
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace fdevolve::util {
namespace {

#if defined(FDEVOLVE_X86_64) && (defined(__GNUC__) || defined(__clang__))

/// XGETBV(0): which register state the OS restores on context switch.
/// Emitted as raw bytes so the TU needs no -mxsave; only executed after
/// CPUID reported OSXSAVE, so the instruction is always valid when reached.
uint64_t ReadXcr0() {
  uint32_t eax, edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" /* xgetbv */
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures Probe() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;

  constexpr unsigned kSse42Bit = 1u << 20;    // CPUID.1:ECX.SSE4_2
  constexpr unsigned kOsxsaveBit = 1u << 27;  // CPUID.1:ECX.OSXSAVE
  constexpr unsigned kAvxBit = 1u << 28;      // CPUID.1:ECX.AVX
  f.sse42 = (ecx & kSse42Bit) != 0;

  const bool osxsave = (ecx & kOsxsaveBit) != 0;
  const bool avx = (ecx & kAvxBit) != 0;
  if (!osxsave || !avx) return f;

  const uint64_t xcr0 = ReadXcr0();
  constexpr uint64_t kYmmState = 0x6;    // XMM + YMM saved
  constexpr uint64_t kZmmState = 0xe6;   // + opmask, zmm_hi256, hi16_zmm
  const bool os_ymm = (xcr0 & kYmmState) == kYmmState;
  const bool os_zmm = (xcr0 & kZmmState) == kZmmState;
  if (!os_ymm) return f;

  unsigned int eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) return f;

  constexpr unsigned kAvx2Bit = 1u << 5;      // CPUID.7.0:EBX.AVX2
  constexpr unsigned kAvx512fBit = 1u << 16;  // CPUID.7.0:EBX.AVX512F
  constexpr unsigned kAvx512dqBit = 1u << 17; // CPUID.7.0:EBX.AVX512DQ
  constexpr unsigned kAvx512bwBit = 1u << 30; // CPUID.7.0:EBX.AVX512BW
  constexpr unsigned kAvx512vlBit = 1u << 31; // CPUID.7.0:EBX.AVX512VL
  f.avx2 = (ebx7 & kAvx2Bit) != 0;

  const unsigned kAvx512All =
      kAvx512fBit | kAvx512dqBit | kAvx512bwBit | kAvx512vlBit;
  f.avx512 = os_zmm && (ebx7 & kAvx512All) == kAvx512All;
  return f;
}

#else  // non-x86-64 (or an unsupported compiler): baseline only

CpuFeatures Probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

const char* CpuTierName(CpuTier tier) {
  switch (tier) {
    case CpuTier::kBaseline:
      return "baseline";
    case CpuTier::kSse42:
      return "sse42";
    case CpuTier::kAvx2:
      return "avx2";
    case CpuTier::kAvx512:
      return "avx512";
  }
  return "baseline";
}

bool ParseCpuTier(const std::string& name, CpuTier* tier) {
  if (name == "baseline") {
    *tier = CpuTier::kBaseline;
  } else if (name == "sse42") {
    *tier = CpuTier::kSse42;
  } else if (name == "avx2") {
    *tier = CpuTier::kAvx2;
  } else if (name == "avx512") {
    *tier = CpuTier::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace fdevolve::util
