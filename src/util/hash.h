// Hash utilities shared by the relation / query / fd layers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fdevolve::util {

/// 64-bit finalizer (splitmix64) — used to decorrelate small integer keys
/// before they enter open-addressing tables.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combiner in the boost::hash_combine family, widened
/// to 64 bits.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hashes a (group id, code) pair; the workhorse of partition refinement.
inline uint64_t HashPair(uint32_t a, uint32_t b) {
  return Mix64((static_cast<uint64_t>(a) << 32) | b);
}

}  // namespace fdevolve::util
