#include "util/binary_io.h"

#include <cstring>

namespace fdevolve::util {
namespace {

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kHostLittleEndian = true;
#else
constexpr bool kHostLittleEndian = false;
#endif

}  // namespace

namespace {

/// Little-endian load of up to 8 bytes (zero-padded), so the checksum of a
/// byte sequence is identical on every host.
inline uint64_t LoadWordLe(const unsigned char* p, size_t n) {
  if (kHostLittleEndian && n == 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
  }
  uint64_t w = 0;
  for (size_t i = 0; i < n; ++i) w |= static_cast<uint64_t>(p[i]) << (8 * i);
  return w;
}

}  // namespace

uint64_t Checksum64(const void* data, size_t size) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;  // odd => bijective multiply
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ (size * kPrime);
  size_t n = size;
  while (n >= 8) {
    h = (h ^ LoadWordLe(p, 8)) * kPrime;
    h ^= h >> 29;  // xorshift: invertible, spreads high bits down
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    h = (h ^ LoadWordLe(p, n)) * kPrime;
  }
  h ^= h >> 32;
  h *= kPrime;
  h ^= h >> 29;
  return h;
}

void BinaryWriter::U32(uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  buf_.append(b, 4);
}

void BinaryWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void BinaryWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void BinaryWriter::Str(std::string_view s) {
  U64(s.size());
  if (!s.empty()) buf_.append(s.data(), s.size());
}

void BinaryWriter::U32Array(const std::vector<uint32_t>& v) {
  U64(v.size());
  if (v.empty()) return;
  if (kHostLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(uint32_t));
  } else {
    for (uint32_t x : v) U32(x);
  }
}

void BinaryWriter::Bytes(const void* data, size_t size) {
  if (size > 0) buf_.append(static_cast<const char*>(data), size);
}

const unsigned char* BinaryReader::Take(size_t n) {
  if (n > remaining()) {
    throw BinaryIoError("truncated: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) +
                        ", have " + std::to_string(remaining()));
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

uint8_t BinaryReader::U8() { return *Take(1); }

uint32_t BinaryReader::U32() {
  const unsigned char* p = Take(4);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t BinaryReader::U64() {
  const unsigned char* p = Take(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double BinaryReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::Str() {
  uint64_t len = U64();
  if (len > remaining()) {
    throw BinaryIoError("truncated: string of length " + std::to_string(len) +
                        " at offset " + std::to_string(pos_) + ", have " +
                        std::to_string(remaining()));
  }
  const unsigned char* p = Take(static_cast<size_t>(len));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<size_t>(len));
}

std::vector<uint32_t> BinaryReader::U32Array() {
  uint64_t count = U64();
  if (count > remaining() / sizeof(uint32_t)) {
    throw BinaryIoError("truncated: u32 array of " + std::to_string(count) +
                        " elements at offset " + std::to_string(pos_) +
                        ", have " + std::to_string(remaining()) + " bytes");
  }
  std::vector<uint32_t> out(static_cast<size_t>(count));
  if (out.empty()) {
    return out;
  }
  if (kHostLittleEndian) {
    const unsigned char* p = Take(out.size() * sizeof(uint32_t));
    std::memcpy(out.data(), p, out.size() * sizeof(uint32_t));
  } else {
    for (auto& x : out) x = U32();
  }
  return out;
}

}  // namespace fdevolve::util
