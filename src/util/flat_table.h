// Open-addressing flat hash table for the partition-refinement hot path.
//
// std::unordered_map spends the refinement loop chasing node pointers and
// allocating; this table is a single contiguous slot array with power-of-two
// capacity and linear probing over HashCombine, so a (group id, code) lookup
// is one mix, one masked index, and a short cache-resident probe run. A
// long-lived instance is reset — not reallocated — between passes, which is
// what makes the refinement engine allocation-free in steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace fdevolve::util {

/// Flat map from a 64-bit key to a 32-bit dense id. Vacancy is tracked via
/// the value field, so every value must be < kVacant (the refinement engine
/// stores dense group ids, which are bounded by the tuple count).
class FlatIdTable {
 public:
  static constexpr uint32_t kVacant = 0xffffffffu;

  /// Seed of the probe hash (HashOf == HashCombine(kHashSeed, key)).
  /// Public so SIMD kernels can pre-fold the seed-dependent constants of
  /// HashCombine and compute batch hashes that match HashOf bit-for-bit.
  static constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

  /// Prepares the table for up to `expected` inserts: capacity becomes the
  /// smallest power of two keeping load factor <= 1/2, existing storage is
  /// reused when already big enough, and all slots are vacated.
  void Reset(size_t expected) {
    size_t cap = kMinCapacity;
    while (cap < expected * 2) cap <<= 1;
    if (slots_.size() < cap) {
      slots_.assign(cap, Slot{0, kVacant});
    } else {
      cap = slots_.size();  // keep the larger table; avoids shrink churn
      for (Slot& s : slots_) s.value = kVacant;
    }
    mask_ = cap - 1;
    size_ = 0;
  }

  /// The hash this table indexes by. Exposed so the vectorized kernel
  /// layer can compute a whole batch of hashes with SIMD and feed them to
  /// FindOrInsertHashed; must stay in sync with the probe sequence.
  static uint64_t HashOf(uint64_t key) { return HashCombine(kSeed, key); }

  /// Prefetches the first probe slot of a key whose hash is already known.
  /// The hint survives a Grow() harmlessly (at worst it warms a stale
  /// line), so batched probe loops may prefetch a fixed distance ahead.
  void PrefetchHash(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[static_cast<size_t>(hash) & mask_]);
#else
    (void)hash;
#endif
  }

  /// Returns the value stored under `key`, inserting `fresh` first if the
  /// key is absent. `*inserted` reports which happened.
  uint32_t FindOrInsert(uint64_t key, uint32_t fresh, bool* inserted) {
    return FindOrInsertHashed(key, HashOf(key), fresh, inserted);
  }

  /// FindOrInsert with the hash supplied by the caller (`hash` must equal
  /// HashOf(key) — the batched kernels compute it with SIMD).
  uint32_t FindOrInsertHashed(uint64_t key, uint64_t hash, uint32_t fresh,
                              bool* inserted) {
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    size_t i = static_cast<size_t>(hash) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.value == kVacant) {
        s.key = key;
        s.value = fresh;
        ++size_;
        *inserted = true;
        return fresh;
      }
      if (s.key == key) {
        *inserted = false;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key;
    uint32_t value;
  };

  static constexpr size_t kMinCapacity = 16;
  static constexpr uint64_t kSeed = kHashSeed;

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? kMinCapacity : old.size() * 2,
                  Slot{0, kVacant});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.value == kVacant) continue;
      size_t i = static_cast<size_t>(HashCombine(kSeed, s.key)) & mask_;
      while (slots_[i].value != kVacant) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace fdevolve::util
