#include "util/parse.h"

#include <charconv>
#include <cmath>
#include <limits>

namespace fdevolve::util {
namespace {

template <typename T>
std::optional<T> ParseIntegral(std::string_view s) {
  if (s.empty()) return std::nullopt;
  T v{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::optional<int64_t> ParseInt64(std::string_view s) {
  return ParseIntegral<int64_t>(s);
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  // from_chars<unsigned> accepts "-1" as modular wrap on some libraries;
  // reject the sign explicitly so "-1" is an error, not 2^64-1.
  if (!s.empty() && s.front() == '-') return std::nullopt;
  return ParseIntegral<uint64_t>(s);
}

std::optional<int> ParseInt(std::string_view s) {
  auto v = ParseInt64(s);
  if (!v || *v < std::numeric_limits<int>::min() ||
      *v > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(*v);
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace fdevolve::util
