#include "util/thread_pool.h"

#include <algorithm>

namespace fdevolve::util {
namespace {

/// True while the current thread is executing a pool chunk; a ParallelFor
/// issued from such a context runs inline instead of re-entering the pool.
thread_local bool t_in_pool_task = false;

}  // namespace

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int prespawn) {
  if (prespawn > 0) EnsureWorkers(prespawn);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkers(int target) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  t_in_pool_task = true;  // chunks run by this thread are pool tasks
  uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_) return;
    if (job_ != nullptr && job_gen_ != seen_gen) {
      seen_gen = job_gen_;
      std::shared_ptr<Job> job = job_;
      lock.unlock();
      RunChunks(job);
      lock.lock();
      continue;
    }
    work_cv_.wait(lock);
  }
}

void ThreadPool::RunChunks(const std::shared_ptr<Job>& job) {
  int ran = 0;
  std::exception_ptr first_error;
  while (true) {
    const int c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->width) break;
    const size_t begin = static_cast<size_t>(c) * job->chunk_size;
    const size_t end = std::min(job->n, begin + job->chunk_size);
    try {
      (*job->fn)(c, begin, end);
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
    ++ran;
  }
  if (ran == 0 && first_error == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error != nullptr && job->error == nullptr) {
    job->error = first_error;
  }
  job->finished += ran;
  if (job->finished == job->width) done_cv_.notify_all();
}

void ThreadPool::ParallelFor(size_t n, size_t grain, int threads,
                             const RangeFn& fn) {
  if (n == 0) return;
  const size_t g = std::max<size_t>(grain, 1);
  const size_t max_chunks = (n + g - 1) / g;
  int width = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(ResolveThreads(threads)), max_chunks));
  if (width <= 1 || t_in_pool_task) {
    fn(0, 0, n);
    return;
  }
  // ceil(n / width) rows per chunk can leave trailing chunks empty when
  // width does not divide n (e.g. n=5, width=4 -> chunk 3 starts past n);
  // shrink width to the number of non-empty chunks so every invocation
  // honors the documented non-empty [begin, end) contract.
  const size_t chunk_size =
      (n + static_cast<size_t>(width) - 1) / static_cast<size_t>(width);
  width = static_cast<int>((n + chunk_size - 1) / chunk_size);
  if (width <= 1) {
    fn(0, 0, n);
    return;
  }

  // One job at a time: a second submitter blocks here until the first
  // drains, keeping the worker protocol single-job simple.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  EnsureWorkers(width - 1);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->width = width;
  job->chunk_size = chunk_size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_gen_;
  }
  work_cv_.notify_all();

  // The caller is an executor too; with chunk claiming this also covers the
  // case where workers are busy waking up.
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  RunChunks(job);
  t_in_pool_task = was_in_task;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job->finished == job->width; });
    job_ = nullptr;
    error = job->error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace fdevolve::util
