// Deterministic, seedable pseudo-random generator for the data generators.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution in the
// generators: distribution results differ across standard libraries, and the
// benchmark tables in EXPERIMENTS.md must be byte-stable across platforms.
#pragma once

#include <cstdint>
#include <string>

namespace fdevolve::util {

/// xorshift64* generator. Small, fast, and fully specified, so generated
/// datasets are reproducible on any platform given the same seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL)
      : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Random lowercase identifier of the given length (e.g. synthetic names).
  std::string Ident(int len) {
    std::string s;
    s.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Below(26)));
    }
    return s;
  }

  /// Raw generator state — what a checkpoint persists so a resumed
  /// consumer (e.g. query::ReservoirSampler) continues the exact draw
  /// sequence. Never 0 for a generator constructed through this class.
  uint64_t state() const { return state_; }

  /// Rebuilds a generator mid-sequence from a persisted state() value.
  /// A zero state (impossible from a healthy generator, so only a corrupt
  /// checkpoint) is remapped the same way the seed constructor remaps it.
  static Rng FromState(uint64_t state) {
    Rng r(1);
    r.state_ = state == 0 ? 0x9e3779b97f4a7c15ULL : state;
    return r;
  }

 private:
  uint64_t state_;
};

}  // namespace fdevolve::util
