// Small string helpers used by the FD parser and CSV reader.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fdevolve::util {

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on a character and trims each piece; drops pieces that trim to "".
std::vector<std::string> SplitTrimmed(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lowercases ASCII in place and returns the result.
std::string ToLower(std::string_view s);

/// Shortest decimal form that parses back to exactly `v` (std::to_chars).
/// Unlike ostream's 6-significant-digit default this never loses precision,
/// so text round-trips of doubles are value-exact.
std::string DoubleShortestRoundTrip(double v);

}  // namespace fdevolve::util
