// Levelwise discovery of minimal exact FDs (TANE-style), the substrate of
// the paper's §2 comparison: updating constraints by (i) discovering all
// FDs from data and then (ii) relaxing the declared set — the pipeline the
// paper argues is impractical next to direct repair.
#pragma once

#include <cstddef>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::discovery {

struct DiscoveryOptions {
  /// Maximum antecedent size explored (lattice level cap). 0 means
  /// constants only ({} -> A); negatives are treated as 0.
  int max_lhs = 3;

  /// Restrict the attribute universe (both sides); empty = all NULL-free
  /// attributes (FD attributes may not contain NULLs, §6.2.1).
  relation::AttrSet restrict_to;

  /// Stop after this many minimal FDs (0 = unlimited).
  size_t max_fds = 0;

  /// Skip antecedents that are superkeys: every X -> A with X a key is
  /// trivially exact and rarely interesting for schema semantics.
  bool prune_superkeys = true;
};

struct DiscoveryStats {
  size_t candidates_checked = 0;  ///< (X, A) exactness tests performed
  size_t lattice_nodes = 0;       ///< antecedent sets visited
  size_t superkeys_pruned = 0;
  /// False whenever the max_fds cap was reached: the search stopped
  /// without proving exhaustion, so more FDs *may* exist (conservative —
  /// also false when the cap happens to equal the true count).
  bool complete = true;
  double elapsed_ms = 0.0;
};

struct DiscoveryResult {
  std::vector<fd::Fd> fds;  ///< minimal exact FDs, level order
  DiscoveryStats stats;
};

/// Discovers all minimal exact FDs X -> A with |X| <= max_lhs.
/// Minimality: no proper subset of X determines A on this instance.
DiscoveryResult DiscoverFds(const relation::Relation& rel,
                            const DiscoveryOptions& opts = {});

/// The "relax" step of the discover-then-relax pipeline: for a declared,
/// violated FD, the discovered set is searched for *extensions* — minimal
/// exact FDs with the same consequent whose antecedent contains the
/// declared one. Returns them; empty means the pipeline failed to produce
/// a repair for this FD (the failure mode the paper observed with [16]).
std::vector<fd::Fd> FindExtensions(const std::vector<fd::Fd>& discovered,
                                   const fd::Fd& declared);

}  // namespace fdevolve::discovery
