#include "discovery/data_repair.h"

#include <algorithm>
#include <unordered_map>

#include "query/group_ids.h"
#include "util/thread_pool.h"

namespace fdevolve::discovery {

DataRepairResult RepairByDeletion(const relation::Relation& rel,
                                  const fd::Fd& fd, int threads) {
  relation::RequireNoTombstones(rel, "discovery::RepairByDeletion");
  DataRepairResult result;
  const size_t n = rel.tuple_count();
  if (n == 0) return result;

  query::RefineScratch scratch;
  scratch.threads = util::ResolveThreads(threads);
  query::Grouping gx = query::GroupBy(rel, fd.lhs(), scratch);
  query::Grouping gxy = query::RefineBy(rel, gx, fd.rhs(), scratch);

  // Per X-cluster: size of each XY-class; keep the largest one.
  std::vector<size_t> xy_size(gxy.group_count, 0);
  for (size_t t = 0; t < n; ++t) ++xy_size[gxy.ids[t]];

  std::vector<uint32_t> best_xy_of_x(gx.group_count, 0);
  std::vector<size_t> best_size_of_x(gx.group_count, 0);
  for (size_t t = 0; t < n; ++t) {
    uint32_t x = gx.ids[t];
    uint32_t xy = gxy.ids[t];
    if (xy_size[xy] > best_size_of_x[x]) {
      best_size_of_x[x] = xy_size[xy];
      best_xy_of_x[x] = xy;
    }
  }

  for (size_t t = 0; t < n; ++t) {
    if (gxy.ids[t] != best_xy_of_x[gx.ids[t]]) {
      result.deleted.push_back(t);
    }
  }
  result.kept = n - result.deleted.size();
  result.loss_fraction =
      static_cast<double>(result.deleted.size()) / static_cast<double>(n);
  return result;
}

relation::Relation ApplyDeletion(const relation::Relation& rel,
                                 const std::vector<size_t>& deleted) {
  relation::Relation out(rel.name() + "_repaired", rel.schema());
  size_t d = 0;
  for (size_t t = 0; t < rel.tuple_count(); ++t) {
    if (d < deleted.size() && deleted[d] == t) {
      ++d;
      continue;
    }
    std::vector<relation::Value> row;
    row.reserve(static_cast<size_t>(rel.attr_count()));
    for (int a = 0; a < rel.attr_count(); ++a) row.push_back(rel.Get(t, a));
    out.AppendRow(row);
  }
  return out;
}

DataRepairResult RepairAllByDeletion(const relation::Relation& rel,
                                     const std::vector<fd::Fd>& fds,
                                     int max_rounds, int threads) {
  relation::RequireNoTombstones(rel, "discovery::RepairAllByDeletion");
  // Track surviving original indices so the reported deletion set refers
  // to the input relation.
  std::vector<size_t> original(rel.tuple_count());
  for (size_t t = 0; t < rel.tuple_count(); ++t) original[t] = t;

  relation::Relation current = ApplyDeletion(rel, {});
  DataRepairResult result;

  for (int round = 0; round < max_rounds; ++round) {
    bool any = false;
    for (const auto& f : fds) {
      DataRepairResult step = RepairByDeletion(current, f, threads);
      if (step.deleted.empty()) continue;
      any = true;
      for (size_t local : step.deleted) {
        result.deleted.push_back(original[local]);
      }
      // Rebuild the survivor map and instance.
      std::vector<size_t> surviving;
      surviving.reserve(original.size() - step.deleted.size());
      size_t d = 0;
      for (size_t t = 0; t < original.size(); ++t) {
        if (d < step.deleted.size() && step.deleted[d] == t) {
          ++d;
          continue;
        }
        surviving.push_back(original[t]);
      }
      original = std::move(surviving);
      current = ApplyDeletion(current, step.deleted);
    }
    if (!any) break;
  }

  std::sort(result.deleted.begin(), result.deleted.end());
  result.kept = rel.tuple_count() - result.deleted.size();
  result.loss_fraction =
      rel.tuple_count() == 0
          ? 0.0
          : static_cast<double>(result.deleted.size()) /
                static_cast<double>(rel.tuple_count());
  return result;
}

size_t CountViolatingPairs(const relation::Relation& rel, const fd::Fd& fd,
                           int threads) {
  relation::RequireNoTombstones(rel, "discovery::CountViolatingPairs");
  const size_t n = rel.tuple_count();
  if (n == 0) return 0;
  query::RefineScratch scratch;
  scratch.threads = util::ResolveThreads(threads);
  query::Grouping gx = query::GroupBy(rel, fd.lhs(), scratch);
  query::Grouping gxy = query::RefineBy(rel, gx, fd.rhs(), scratch);

  // Pairs sharing X minus pairs sharing XY.
  std::vector<size_t> x_size(gx.group_count, 0);
  std::vector<size_t> xy_size(gxy.group_count, 0);
  for (size_t t = 0; t < n; ++t) {
    ++x_size[gx.ids[t]];
    ++xy_size[gxy.ids[t]];
  }
  auto pairs = [](size_t k) { return k * (k - 1) / 2; };
  size_t same_x = 0;
  for (size_t k : x_size) same_x += pairs(k);
  size_t same_xy = 0;
  for (size_t k : xy_size) same_xy += pairs(k);
  return same_x - same_xy;
}

}  // namespace fdevolve::discovery
