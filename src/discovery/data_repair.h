// Data-repair baseline: restore consistency by deleting violating tuples
// (the minimal-change tuple-deletion semantics of the consistent query
// answering literature the paper cites in §2 [9-14]). Exists so the bench
// suite can quantify the paper's motivation: constraint evolution keeps
// all the data, tuple repair throws some of it away.
#pragma once

#include <cstddef>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::discovery {

/// Outcome of repairing one FD by deletion.
struct DataRepairResult {
  std::vector<size_t> deleted;  ///< tuple indices removed (ascending)
  size_t kept = 0;
  double loss_fraction = 0.0;   ///< deleted / original tuples
};

/// Minimum tuple deletions making X -> Y exact. For a single FD this is
/// solvable exactly: within each X-cluster keep one majority XY-class and
/// delete the rest (per-cluster optimum, independent across clusters).
///
/// `threads` is the execution width for the underlying grouping passes
/// (0 = hardware_concurrency, 1 = exact sequential path); the deletion set
/// is identical for every value.
DataRepairResult RepairByDeletion(const relation::Relation& rel,
                                  const fd::Fd& fd, int threads = 0);

/// Applies a deletion set, producing the surviving instance.
relation::Relation ApplyDeletion(const relation::Relation& rel,
                                 const std::vector<size_t>& deleted);

/// Repairs several FDs by iterating single-FD deletion to a fixpoint.
/// The multi-FD minimum-deletion problem is NP-hard; this converges (each
/// pass only removes tuples) but may over-delete. `max_rounds` bounds the
/// loop defensively. `threads` flows into each per-FD deletion pass.
DataRepairResult RepairAllByDeletion(const relation::Relation& rel,
                                     const std::vector<fd::Fd>& fds,
                                     int max_rounds = 16, int threads = 0);

/// Number of unordered tuple pairs violating Definition 2 — a direct
/// violation count used by tests and monitors. `threads` as above.
size_t CountViolatingPairs(const relation::Relation& rel, const fd::Fd& fd,
                           int threads = 0);

}  // namespace fdevolve::discovery
