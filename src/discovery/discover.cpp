#include "discovery/discover.h"

#include <unordered_map>
#include <unordered_set>

#include "query/distinct.h"
#include "util/timer.h"

namespace fdevolve::discovery {
namespace {

using relation::AttrSet;
using relation::AttrSetHash;

/// Per-consequent record of already-found minimal determinants, used to
/// prune non-minimal candidates: X -> A is non-minimal iff some recorded
/// determinant of A is a subset of X.
class MinimalDeterminants {
 public:
  bool CoveredBy(int attr, const AttrSet& x) const {
    auto it = by_attr_.find(attr);
    if (it == by_attr_.end()) return false;
    for (const auto& d : it->second) {
      if (d.SubsetOf(x)) return true;
    }
    return false;
  }

  void Record(int attr, const AttrSet& x) { by_attr_[attr].push_back(x); }

 private:
  std::unordered_map<int, std::vector<AttrSet>> by_attr_;
};

}  // namespace

DiscoveryResult DiscoverFds(const relation::Relation& rel,
                            const DiscoveryOptions& opts) {
  relation::RequireNoTombstones(rel, "discovery::DiscoverFds");
  util::Timer timer;
  DiscoveryResult result;

  // On the empty instance every FD holds vacuously, so "all minimal FDs"
  // would be exactly {} -> A for every attribute — noise, not schema
  // semantics. Report nothing, consistently across all lattice levels
  // (previously level 0 suppressed the vacuous constants but deeper
  // levels still reported [a] -> [b] as minimal, which contradicts the
  // unreported {} -> [b]).
  if (rel.tuple_count() == 0) {
    result.stats.elapsed_ms = timer.ElapsedMs();
    return result;
  }

  AttrSet universe = opts.restrict_to.Empty()
                         ? rel.NonNullAttrs()
                         : rel.NonNullAttrs().Intersect(opts.restrict_to);
  const std::vector<int> attrs = universe.ToVector();
  query::DistinctEvaluator eval(rel);
  const size_t full_distinct = eval.Count(universe);
  MinimalDeterminants found;

  auto fd_budget_left = [&]() {
    return opts.max_fds == 0 || result.fds.size() < opts.max_fds;
  };

  // Level 0: {} -> A for constant columns (the degenerate minimal FDs).
  for (int a : attrs) {
    if (!fd_budget_left()) break;
    ++result.stats.candidates_checked;
    if (rel.tuple_count() > 0 && rel.column(a).dict_size() <= 1 &&
        !rel.column(a).has_nulls()) {
      AttrSet empty;
      found.Record(a, empty);
      result.fds.emplace_back(empty, AttrSet::Of({a}));
    }
  }

  std::vector<AttrSet> level;
  for (int a : attrs) {
    AttrSet s;
    s.Add(a);
    level.push_back(s);
  }

  // max_lhs == 0 legitimately means "constants only" (level 0 ran above);
  // only negatives are clamped. The old `< 1 ? 1` clamp silently turned an
  // explicit 0 into 1.
  const int max_lhs = opts.max_lhs < 0 ? 0 : opts.max_lhs;
  for (int depth = 1; depth <= max_lhs && !level.empty() && fd_budget_left();
       ++depth) {
    std::vector<AttrSet> next;
    std::unordered_set<AttrSet, AttrSetHash> scheduled;
    for (const AttrSet& x : level) {
      if (!fd_budget_left()) break;
      ++result.stats.lattice_nodes;
      size_t distinct_x = eval.Count(x);

      if (opts.prune_superkeys && distinct_x == full_distinct &&
          rel.tuple_count() > 0) {
        // X already separates every (projected) tuple: all X -> A hold;
        // none below it can be *newly* minimal through this branch.
        ++result.stats.superkeys_pruned;
        continue;
      }

      for (int a : attrs) {
        if (x.Contains(a)) continue;
        if (found.CoveredBy(a, x)) continue;  // non-minimal
        ++result.stats.candidates_checked;
        size_t distinct_xa = eval.Count(x.With(a));
        if (distinct_x == distinct_xa) {
          found.Record(a, x);
          result.fds.emplace_back(x, AttrSet::Of({a}));
          if (!fd_budget_left()) break;
        }
      }

      if (depth < max_lhs) {
        // Expand by attributes above max(X) to enumerate each set once.
        int max_in_x = x.ToVector().back();
        for (int b : attrs) {
          if (b <= max_in_x || x.Contains(b)) continue;
          AttrSet grown = x.With(b);
          if (scheduled.insert(grown).second) next.push_back(grown);
        }
      }
    }
    level = std::move(next);
  }

  result.stats.complete = fd_budget_left();
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

std::vector<fd::Fd> FindExtensions(const std::vector<fd::Fd>& discovered,
                                   const fd::Fd& declared) {
  std::vector<fd::Fd> out;
  for (const auto& f : discovered) {
    if (f.rhs() == declared.rhs() && declared.lhs().SubsetOf(f.lhs()) &&
        !(f.lhs() == declared.lhs())) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace fdevolve::discovery
