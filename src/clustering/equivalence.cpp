#include "clustering/equivalence.h"

namespace fdevolve::clustering {

double EpsilonCb(const relation::Relation& rel, const fd::Fd& base,
                 const relation::AttrSet& added) {
  fd::Fd extended = base.WithAntecedent(added);
  fd::FdMeasures m = fd::ComputeMeasures(rel, extended);
  return m.epsilon_cb();
}

double EpsilonVi(const relation::Relation& rel, const fd::Fd& base,
                 const relation::AttrSet& added) {
  Clustering ground_truth(rel, base.AllAttrs());
  Clustering extended(rel, base.lhs().Union(added));
  return VariationOfInformation(ground_truth, extended);
}

EquivalencePoint CompareMeasures(const relation::Relation& rel,
                                 const fd::Fd& base,
                                 const relation::AttrSet& added) {
  EquivalencePoint p;
  p.epsilon_cb = EpsilonCb(rel, base, added);
  p.epsilon_vi = EpsilonVi(rel, base, added);
  p.cb_null = p.epsilon_cb == 0.0;
  p.vi_null = p.epsilon_vi <= 1e-12;
  return p;
}

}  // namespace fdevolve::clustering
