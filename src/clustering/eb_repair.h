// Entropy-based (EB) repair baseline — the Chiang & Miller (ICDE 2011)
// method as described in §5 of the paper.
//
// Given a violated F : X -> Y the EB method fixes the ground-truth
// clustering C_XY, and scores every candidate attribute A by:
//   * primary key:   H(C_XY | C_XA)  — non-homogeneity of C_XA w.r.t. C_XY
//   * tie-break key:  H(C_A  | C_XY) — non-completeness of C_A w.r.t. C_XY
// The paper's §5 also analyses the "VI variant" that ranks by
// VI(C_XY, C_XA) = H(C_XY|C_XA) + H(C_XA|C_XY); both are provided.
#pragma once

#include <vector>

#include "clustering/clustering.h"
#include "clustering/entropy.h"
#include "fd/candidate_ranking.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::clustering {

/// Which EB scoring rule to use.
enum class EbVariant {
  kOriginal,  ///< sort by H(C_XY|C_XA), tie-break H(C_A|C_XY)
  kVi,        ///< sort by VI(C_XY, C_XA)
};

/// One EB-scored candidate.
struct EbCandidate {
  int attr = -1;
  double h_xy_given_xa = 0.0;  ///< H(C_XY | C_XA)
  double h_a_given_xy = 0.0;   ///< H(C_A | C_XY)
  double vi = 0.0;             ///< VI(C_XY, C_XA)

  /// An EB candidate yields an exact extended FD iff C_XA is homogeneous
  /// w.r.t. C_XY, i.e. the primary entropy is (numerically) zero.
  bool homogeneous() const { return h_xy_given_xa <= 1e-12; }
  /// Perfect candidate: homogeneous and complete (VI == 0).
  bool perfect() const { return vi <= 1e-12; }
};

/// Scores and ranks all candidates in `pool` for repairing `fd`.
/// Ordering follows `variant`; ties broken by attribute index.
///
/// `threads` is the execution width: 0 (default) resolves to
/// `hardware_concurrency`, 1 forces the exact sequential code path, k > 1
/// scores candidate slices on the shared thread pool (each worker refines
/// C_X and runs its entropy passes against its own scratch; the ground
/// truth C_XY is shared read-only). Scores land in a slot per candidate
/// and the final sort's tie-break is total, so the ranking is identical
/// for every thread count.
std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const relation::AttrSet& pool,
                                EbVariant variant = EbVariant::kOriginal,
                                int threads = 0);

/// Convenience: pool built with the same rules as the CB method.
std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const fd::PoolOptions& opts = {},
                                EbVariant variant = EbVariant::kOriginal,
                                int threads = 0);

}  // namespace fdevolve::clustering
