#include "clustering/entropy.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace fdevolve::clustering {
namespace {

/// Joint counts n_{k,k'} over the two id vectors.
std::unordered_map<uint64_t, size_t> JointCounts(const Clustering& a,
                                                 const Clustering& b) {
  if (a.tuple_count() != b.tuple_count()) {
    throw std::invalid_argument("entropy: clusterings over different instances");
  }
  std::unordered_map<uint64_t, size_t> joint;
  joint.reserve(a.cluster_count() + b.cluster_count());
  for (size_t t = 0; t < a.tuple_count(); ++t) {
    uint64_t key =
        (static_cast<uint64_t>(a.cluster_of(t)) << 32) | b.cluster_of(t);
    ++joint[key];
  }
  return joint;
}

}  // namespace

double ConditionalEntropy(const Clustering& c, const Clustering& given) {
  const double n = static_cast<double>(c.tuple_count());
  if (n == 0) return 0.0;
  double h = 0.0;
  for (const auto& [key, cnt] : JointCounts(c, given)) {
    uint32_t given_id = static_cast<uint32_t>(key & 0xffffffffULL);
    double p_joint = static_cast<double>(cnt) / n;
    double p_given = static_cast<double>(given.sizes()[given_id]) / n;
    // P(k|k') = p_joint / p_given.
    h -= p_joint * std::log(p_joint / p_given);
  }
  // Clamp tiny negative round-off.
  return h < 0.0 ? 0.0 : h;
}

double Entropy(const Clustering& c) {
  const double n = static_cast<double>(c.tuple_count());
  if (n == 0) return 0.0;
  double h = 0.0;
  for (size_t sz : c.sizes()) {
    if (sz == 0) continue;
    double p = static_cast<double>(sz) / n;
    h -= p * std::log(p);
  }
  return h < 0.0 ? 0.0 : h;
}

double VariationOfInformation(const Clustering& a, const Clustering& b) {
  return ConditionalEntropy(a, b) + ConditionalEntropy(b, a);
}

double MutualInformation(const Clustering& a, const Clustering& b) {
  const double n = static_cast<double>(a.tuple_count());
  if (n == 0) return 0.0;
  double mi = 0.0;
  for (const auto& [key, cnt] : JointCounts(a, b)) {
    uint32_t ida = static_cast<uint32_t>(key >> 32);
    uint32_t idb = static_cast<uint32_t>(key & 0xffffffffULL);
    double p_joint = static_cast<double>(cnt) / n;
    double pa = static_cast<double>(a.sizes()[ida]) / n;
    double pb = static_cast<double>(b.sizes()[idb]) / n;
    mi += p_joint * std::log(p_joint / (pa * pb));
  }
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace fdevolve::clustering
