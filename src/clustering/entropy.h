// Conditional entropy and Variation of Information between clusterings
// (Meilă 2007; §5 of the paper).
//
// Logarithms are natural; the choice of base scales all entropies by a
// constant, so null sets, orderings and tie structure are unaffected.
#pragma once

#include "clustering/clustering.h"

namespace fdevolve::clustering {

/// H(C | C') = − Σ_{k,k'} P(k,k') · log P(k|k').
/// Zero iff C' refines C (each class of C' lies in one class of C).
double ConditionalEntropy(const Clustering& c, const Clustering& given);

/// H(C) = − Σ_k P(k) log P(k). Entropy of one clustering.
double Entropy(const Clustering& c);

/// VI(C, C') = H(C|C') + H(C'|C). Symmetric; zero iff the partitions are
/// identical.
double VariationOfInformation(const Clustering& a, const Clustering& b);

/// Mutual information I(C;C') = H(C) + H(C') − H(C,C') (for tests: VI can
/// also be written H(C,C')·2 − H(C) − H(C')).
double MutualInformation(const Clustering& a, const Clustering& b);

}  // namespace fdevolve::clustering
