#include "clustering/clustering.h"

namespace fdevolve::clustering {

Clustering::Clustering(const relation::Relation& rel,
                       const relation::AttrSet& attrs)
    : Clustering((relation::RequireNoTombstones(rel, "clustering::Clustering"),
                  query::GroupBy(rel, attrs))) {}

Clustering::Clustering(query::Grouping grouping)
    : grouping_(std::move(grouping)) {
  sizes_.assign(grouping_.group_count, 0);
  for (uint32_t id : grouping_.ids) ++sizes_[id];
}

std::vector<std::vector<uint32_t>> Clustering::Members() const {
  std::vector<std::vector<uint32_t>> out(cluster_count());
  for (size_t c = 0; c < cluster_count(); ++c) out[c].reserve(sizes_[c]);
  for (size_t t = 0; t < tuple_count(); ++t) {
    out[grouping_.ids[t]].push_back(static_cast<uint32_t>(t));
  }
  return out;
}

bool IsHomogeneous(const Clustering& a, const Clustering& b) {
  // a refines b  <=>  joining a with b creates no new blocks beyond a's.
  query::Grouping ga{a.ids(), a.cluster_count()};
  query::Grouping gb{b.ids(), b.cluster_count()};
  return query::JointGroupCount(ga, gb) == a.cluster_count();
}

bool IsComplete(const Clustering& a, const Clustering& b) {
  return IsHomogeneous(b, a);
}

bool SamePartition(const Clustering& a, const Clustering& b) {
  if (a.cluster_count() != b.cluster_count()) return false;
  return IsHomogeneous(a, b) && IsHomogeneous(b, a);
}

}  // namespace fdevolve::clustering
