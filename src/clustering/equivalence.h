// The ε_CB and ε_VI measures of §5 and empirical checks of Theorem 1.
//
// Theorem 1 claims ε_CB and ε_VI are equivalent measures (same null sets)
// over candidate extensions FZ : XZ -> Y with ground truth C_XY.
// The direction ε_CB = 0 ⇒ ε_VI = 0 holds and is property-tested. The
// converse as literally stated admits counterexamples (see
// equivalence_test.cpp: a Z with C_XZ = C_XY but |C_XZ| > |C_Y| gives
// ε_VI = 0 with goodness ≠ 0); we expose both measures so the bench can
// quantify where they agree in practice.
#pragma once

#include "clustering/clustering.h"
#include "clustering/entropy.h"
#include "fd/fd.h"
#include "fd/measures.h"
#include "relation/relation.h"

namespace fdevolve::clustering {

/// ε_CB(FZ) = ic(FZ) + |g(FZ)| computed on the extended FD XZ -> Y.
double EpsilonCb(const relation::Relation& rel, const fd::Fd& base,
                 const relation::AttrSet& added);

/// ε_VI(FZ) = VI(C_XY, C_XZ): X,Y from the base FD, XZ the extended
/// antecedent (the ground-truth form used in Theorem 1's proof).
double EpsilonVi(const relation::Relation& rel, const fd::Fd& base,
                 const relation::AttrSet& added);

/// Both measures plus the structural predicates, for reporting.
struct EquivalencePoint {
  double epsilon_cb = 0.0;
  double epsilon_vi = 0.0;
  bool cb_null = false;  ///< ε_CB == 0
  bool vi_null = false;  ///< ε_VI == 0 (within 1e-12)
};

EquivalencePoint CompareMeasures(const relation::Relation& rel,
                                 const fd::Fd& base,
                                 const relation::AttrSet& added);

}  // namespace fdevolve::clustering
