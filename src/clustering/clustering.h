// X-clusterings (Definition 5) and the structural predicates of §3/§5.
#pragma once

#include <cstdint>
#include <vector>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::clustering {

/// A partition of a relation's tuples by equality on an attribute set,
/// materialised as dense cluster ids plus per-cluster sizes.
class Clustering {
 public:
  /// Builds the X-clustering of `rel` for X = `attrs`.
  Clustering(const relation::Relation& rel, const relation::AttrSet& attrs);

  /// Wraps an existing grouping (shared with the query layer).
  explicit Clustering(query::Grouping grouping);

  size_t cluster_count() const { return grouping_.group_count; }
  size_t tuple_count() const { return grouping_.ids.size(); }
  uint32_t cluster_of(size_t tuple) const { return grouping_.ids[tuple]; }
  const std::vector<uint32_t>& ids() const { return grouping_.ids; }

  /// Size of each cluster (indexed by cluster id).
  const std::vector<size_t>& sizes() const { return sizes_; }

  /// Tuples of one cluster (materialised on demand, O(n) total).
  std::vector<std::vector<uint32_t>> Members() const;

 private:
  query::Grouping grouping_;
  std::vector<size_t> sizes_;
};

/// Definition 6 / §5: every class of `a` is contained in exactly one class
/// of `b` (i.e. `a` refines `b`; "a is homogeneous w.r.t. b").
bool IsHomogeneous(const Clustering& a, const Clustering& b);

/// §5 completeness: every class of `b` is contained in one class of `a`.
bool IsComplete(const Clustering& a, const Clustering& b);

/// True if the two partitions are identical (same blocks).
bool SamePartition(const Clustering& a, const Clustering& b);

}  // namespace fdevolve::clustering
