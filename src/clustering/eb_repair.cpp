#include "clustering/eb_repair.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace fdevolve::clustering {
namespace {

/// Scores one candidate attribute against the shared ground truth. Pure
/// function of (rel, ground_truth, base_x, attr) — workers call it
/// concurrently, each with its own scratch.
EbCandidate ScoreCandidate(const relation::Relation& rel,
                           const Clustering& ground_truth,
                           const query::Grouping& base_x, int attr,
                           query::RefineScratch& scratch) {
  EbCandidate c;
  c.attr = attr;
  Clustering c_xa(query::RefineBy(rel, base_x, attr, scratch));
  relation::AttrSet only_a;
  only_a.Add(attr);
  Clustering c_a(query::GroupBy(rel, only_a, scratch));
  c.h_xy_given_xa = ConditionalEntropy(ground_truth, c_xa);
  c.h_a_given_xy = ConditionalEntropy(c_a, ground_truth);
  c.vi = VariationOfInformation(ground_truth, c_xa);
  return c;
}

}  // namespace

std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const relation::AttrSet& pool,
                                EbVariant variant, int threads) {
  // Ground truth: C_XY (§5). Built once; each candidate costs one
  // refinement of C_X plus two entropy passes. The builds themselves
  // range-partition through the scratch's threads knob; candidate scoring
  // then fans out across the pool, one scratch arena per chunk.
  const int width = util::ResolveThreads(threads);
  query::RefineScratch scratch;
  scratch.threads = width;
  const Clustering ground_truth(query::GroupBy(rel, fd.AllAttrs(), scratch));
  const query::Grouping base_x = query::GroupBy(rel, fd.lhs(), scratch);

  const std::vector<int> attrs = pool.ToVector();
  std::vector<EbCandidate> out(attrs.size());
  if (width > 1 && attrs.size() > 1) {
    // Slot-per-candidate writes keep the result order independent of
    // scheduling; ground_truth/base_x are shared read-only. ParallelFor
    // caps the width at the candidate count, so size scratches to that.
    std::vector<query::RefineScratch> worker(
        std::min<size_t>(static_cast<size_t>(width), attrs.size()));
    util::ThreadPool::Global().ParallelFor(
        attrs.size(), 1, width, [&](int chunk, size_t lo, size_t hi) {
          query::RefineScratch& ws = worker[static_cast<size_t>(chunk)];
          for (size_t i = lo; i < hi; ++i) {
            out[i] = ScoreCandidate(rel, ground_truth, base_x, attrs[i], ws);
          }
        });
  } else {
    scratch.threads = 1;  // candidate passes are small; reuse one arena
    for (size_t i = 0; i < attrs.size(); ++i) {
      out[i] = ScoreCandidate(rel, ground_truth, base_x, attrs[i], scratch);
    }
  }

  auto original_less = [](const EbCandidate& a, const EbCandidate& b) {
    if (a.h_xy_given_xa != b.h_xy_given_xa) {
      return a.h_xy_given_xa < b.h_xy_given_xa;
    }
    if (a.h_a_given_xy != b.h_a_given_xy) {
      return a.h_a_given_xy < b.h_a_given_xy;
    }
    return a.attr < b.attr;
  };
  auto vi_less = [](const EbCandidate& a, const EbCandidate& b) {
    if (a.vi != b.vi) return a.vi < b.vi;
    return a.attr < b.attr;
  };
  if (variant == EbVariant::kOriginal) {
    std::sort(out.begin(), out.end(), original_less);
  } else {
    std::sort(out.begin(), out.end(), vi_less);
  }
  return out;
}

std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const fd::PoolOptions& opts,
                                EbVariant variant, int threads) {
  return RankEb(rel, fd, fd::CandidatePool(rel, fd, opts), variant, threads);
}

}  // namespace fdevolve::clustering
