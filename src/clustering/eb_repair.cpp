#include "clustering/eb_repair.h"

#include <algorithm>

namespace fdevolve::clustering {

std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const relation::AttrSet& pool,
                                EbVariant variant) {
  // Ground truth: C_XY (§5). Built once; each candidate costs one
  // refinement of C_X plus two entropy passes. One scratch arena serves
  // every refinement pass in the loop.
  query::RefineScratch scratch;
  const Clustering ground_truth(query::GroupBy(rel, fd.AllAttrs(), scratch));
  const query::Grouping base_x = query::GroupBy(rel, fd.lhs(), scratch);

  std::vector<EbCandidate> out;
  out.reserve(static_cast<size_t>(pool.Count()));
  for (int a : pool.ToVector()) {
    EbCandidate c;
    c.attr = a;
    Clustering c_xa(query::RefineBy(rel, base_x, a, scratch));
    relation::AttrSet only_a;
    only_a.Add(a);
    Clustering c_a(query::GroupBy(rel, only_a, scratch));
    c.h_xy_given_xa = ConditionalEntropy(ground_truth, c_xa);
    c.h_a_given_xy = ConditionalEntropy(c_a, ground_truth);
    c.vi = VariationOfInformation(ground_truth, c_xa);
    out.push_back(c);
  }

  auto original_less = [](const EbCandidate& a, const EbCandidate& b) {
    if (a.h_xy_given_xa != b.h_xy_given_xa) {
      return a.h_xy_given_xa < b.h_xy_given_xa;
    }
    if (a.h_a_given_xy != b.h_a_given_xy) {
      return a.h_a_given_xy < b.h_a_given_xy;
    }
    return a.attr < b.attr;
  };
  auto vi_less = [](const EbCandidate& a, const EbCandidate& b) {
    if (a.vi != b.vi) return a.vi < b.vi;
    return a.attr < b.attr;
  };
  if (variant == EbVariant::kOriginal) {
    std::sort(out.begin(), out.end(), original_less);
  } else {
    std::sort(out.begin(), out.end(), vi_less);
  }
  return out;
}

std::vector<EbCandidate> RankEb(const relation::Relation& rel,
                                const fd::Fd& fd,
                                const fd::PoolOptions& opts,
                                EbVariant variant) {
  return RankEb(rel, fd, fd::CandidatePool(rel, fd, opts), variant);
}

}  // namespace fdevolve::clustering
