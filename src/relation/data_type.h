// Attribute data types supported by the relation layer.
#pragma once

#include <string>

namespace fdevolve::relation {

/// Logical column type. The repair algorithms only care about value
/// *equality*, so a small closed set of types is sufficient.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

inline std::string DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

}  // namespace fdevolve::relation
