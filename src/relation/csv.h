// Minimal CSV import/export for relations.
//
// Format: first line is "name:type,..." header; empty field = NULL for
// typed columns, and the literal token "\N" = NULL for string columns.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "relation/relation.h"

namespace fdevolve::relation {

/// Result of a CSV read: either a relation or an error message.
struct CsvResult {
  std::optional<Relation> relation;
  std::string error;

  bool ok() const { return relation.has_value(); }
};

/// Reads a relation from a stream. `name` becomes the relation name.
CsvResult ReadCsv(std::istream& in, const std::string& name);

/// Reads a relation from a file path.
CsvResult ReadCsvFile(const std::string& path, const std::string& name);

/// Writes a relation (header + rows) to a stream.
void WriteCsv(const Relation& rel, std::ostream& out);

/// Writes to a file; returns false (and fills `error`) on I/O failure.
bool WriteCsvFile(const Relation& rel, const std::string& path,
                  std::string* error);

}  // namespace fdevolve::relation
