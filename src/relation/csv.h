// Minimal CSV import/export for relations.
//
// Format: first line is "name:type,..." header; empty field = NULL for
// typed columns, and the literal token "\N" = NULL for string columns.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "relation/relation.h"

namespace fdevolve::relation {

/// Result of a CSV read: either a relation or an error message.
struct CsvResult {
  std::optional<Relation> relation;
  std::string error;

  bool ok() const { return relation.has_value(); }
};

/// Reads a relation from a stream. `name` becomes the relation name.
CsvResult ReadCsv(std::istream& in, const std::string& name);

/// Reads a relation from a file path.
CsvResult ReadCsvFile(const std::string& path, const std::string& name);

/// Writes a relation (header + rows) to a stream.
///
/// This dialect has no quoting, so a string cell containing ',' '\n' or
/// '\r', or equal to the literal NULL marker "\N", cannot be written
/// faithfully — re-reading would shift columns, change arity, or resurrect
/// the string as NULL. The same applies to attribute names (plus ':', the
/// header's name/type separator). Such content is detected up front: the
/// function returns false with a locating message in `error` and writes
/// nothing, instead of silently corrupting the output.
bool WriteCsv(const Relation& rel, std::ostream& out,
              std::string* error = nullptr);

/// Writes to a file; returns false (and fills `error`) on unrepresentable
/// cells or I/O failure. The stream is flushed before success is reported,
/// so errors surfacing at flush time (e.g. disk full) are not swallowed.
bool WriteCsvFile(const Relation& rel, const std::string& path,
                  std::string* error);

}  // namespace fdevolve::relation
