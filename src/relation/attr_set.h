// Fixed-capacity attribute set, the unit of bookkeeping in the repair search.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/hash.h"

namespace fdevolve::relation {

/// Set of attribute indices in [0, kMaxAttrs). Implemented as a 512-bit
/// bitmask so that queue de-duplication and subset tests in the repair
/// search are a handful of word operations. 512 covers the widest relation
/// in the paper's evaluation (Veterans, 481 attributes).
class AttrSet {
 public:
  static constexpr int kMaxAttrs = 512;
  static constexpr int kWords = kMaxAttrs / 64;

  AttrSet() : words_{} {}

  /// Builds from explicit indices; throws on out-of-range.
  static AttrSet Of(std::initializer_list<int> idx) {
    AttrSet s;
    for (int i : idx) s.Add(i);
    return s;
  }
  static AttrSet FromVector(const std::vector<int>& idx) {
    AttrSet s;
    for (int i : idx) s.Add(i);
    return s;
  }

  void Add(int i) {
    CheckIndex(i);
    words_[static_cast<size_t>(i) >> 6] |= 1ULL << (i & 63);
  }
  void Remove(int i) {
    CheckIndex(i);
    words_[static_cast<size_t>(i) >> 6] &= ~(1ULL << (i & 63));
  }
  bool Contains(int i) const {
    CheckIndex(i);
    return (words_[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1;
  }

  bool Empty() const {
    for (uint64_t w : words_)
      if (w) return false;
    return true;
  }

  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  AttrSet Union(const AttrSet& o) const {
    AttrSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] | o.words_[w];
    return r;
  }
  AttrSet Intersect(const AttrSet& o) const {
    AttrSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] & o.words_[w];
    return r;
  }
  AttrSet Minus(const AttrSet& o) const {
    AttrSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] & ~o.words_[w];
    return r;
  }

  /// True if this set is a subset of `o`.
  bool SubsetOf(const AttrSet& o) const {
    for (int w = 0; w < kWords; ++w) {
      if (words_[w] & ~o.words_[w]) return false;
    }
    return true;
  }

  bool Intersects(const AttrSet& o) const {
    for (int w = 0; w < kWords; ++w) {
      if (words_[w] & o.words_[w]) return true;
    }
    return false;
  }

  /// With-element copy, convenient in the search loop.
  AttrSet With(int i) const {
    AttrSet r = *this;
    r.Add(i);
    return r;
  }

  /// Ascending list of member indices.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(Count()));
    for (int w = 0; w < kWords; ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        out.push_back(w * 64 + b);
        bits &= bits - 1;
      }
    }
    return out;
  }

  bool operator==(const AttrSet& o) const { return words_ == o.words_; }
  bool operator!=(const AttrSet& o) const { return !(*this == o); }

  uint64_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) h = util::HashCombine(h, w);
    return h;
  }

 private:
  static void CheckIndex(int i) {
    if (i < 0 || i >= kMaxAttrs) {
      throw std::out_of_range("AttrSet index out of range");
    }
  }

  std::array<uint64_t, kWords> words_;
};

struct AttrSetHash {
  size_t operator()(const AttrSet& s) const { return s.Hash(); }
};

}  // namespace fdevolve::relation
