// Relation schema: named, typed attributes.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "relation/attr_set.h"
#include "relation/data_type.h"

namespace fdevolve::relation {

/// One attribute declaration.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
};

/// Ordered list of attributes with unique names; attribute index is its
/// position in declaration order.
class Schema {
 public:
  Schema() = default;
  /// Throws std::invalid_argument on duplicate names or >AttrSet::kMaxAttrs
  /// attributes.
  explicit Schema(std::vector<Attribute> attrs);

  int size() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(int i) const { return attrs_.at(static_cast<size_t>(i)); }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Index of the attribute with the given name, or -1.
  int IndexOf(const std::string& name) const;

  /// Index of the attribute; throws std::invalid_argument if absent.
  int Require(const std::string& name) const;

  /// Set of all attribute indices.
  AttrSet AllAttrs() const;

  /// Resolves a list of names to an AttrSet; throws on unknown name.
  AttrSet Resolve(const std::vector<std::string>& names) const;

  /// Renders an AttrSet as "[A, B, C]" using this schema's names.
  std::string Describe(const AttrSet& set) const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace fdevolve::relation
