#include "relation/value.h"

#include <functional>
#include <sstream>

#include "util/hash.h"

namespace fdevolve::relation {

bool Value::MatchesType(DataType t) const {
  if (is_null()) return true;
  switch (t) {
    case DataType::kInt64:
      return is_int();
    case DataType::kDouble:
      return is_double();
    case DataType::kString:
      return is_string();
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  // variant's operator< orders first by index (monostate < int64 < double
  // < string), then by value, which is exactly the documented order.
  return data_ < other.data_;
}

uint64_t Value::Hash() const {
  switch (data_.index()) {
    case 0:
      return 0x9ae16a3b2f90404fULL;  // arbitrary fixed tag for NULL
    case 1:
      return util::Mix64(static_cast<uint64_t>(std::get<int64_t>(data_)));
    case 2: {
      double d = std::get<double>(data_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return util::Mix64(bits ^ 0x517cc1b727220a95ULL);
    }
    default: {
      const std::string& s = std::get<std::string>(data_);
      return std::hash<std::string>{}(s) ^ 0x2545f4914f6cdd1dULL;
    }
  }
}

std::string Value::ToString() const {
  switch (data_.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<int64_t>(data_));
    case 2: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    default:
      return std::get<std::string>(data_);
  }
}

}  // namespace fdevolve::relation
