#include "relation/relation.h"

#include <stdexcept>

namespace fdevolve::relation {

const Value Column::kNullValue = Value::Null();

const Value& Column::DictValue(uint32_t code) const {
  if (code == kNullCode) return kNullValue;
  return dict_.at(code);
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    codes_.push_back(kNullCode);
    ++null_count_;
    return;
  }
  if (!v.MatchesType(type_)) {
    throw std::invalid_argument("Column: value type mismatch, expected " +
                                DataTypeName(type_) + " got " + v.ToString());
  }
  auto it = dict_index_.find(v);
  if (it != dict_index_.end()) {
    codes_.push_back(it->second);
    return;
  }
  auto code = static_cast<uint32_t>(dict_.size());
  if (code == kNullCode) {
    throw std::length_error("Column: dictionary overflow");
  }
  dict_.push_back(v);
  dict_index_.emplace(v, code);
  codes_.push_back(code);
}

Value Column::Get(size_t t) const {
  uint32_t c = codes_.at(t);
  return c == kNullCode ? Value::Null() : dict_.at(c);
}

Relation::Relation(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.size()));
  for (const auto& a : schema_.attrs()) columns_.emplace_back(a.type);
}

void Relation::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != static_cast<size_t>(schema_.size())) {
    throw std::invalid_argument("Relation::AppendRow: arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (!v.is_null() && !v.MatchesType(columns_[i].type())) {
      throw std::invalid_argument(
          "Relation::AppendRow: value type mismatch in column '" +
          schema_.attr(static_cast<int>(i)).name + "', expected " +
          DataTypeName(columns_[i].type()) + " got " + v.ToString());
    }
  }
}

void Relation::AppendRow(const std::vector<Value>& row) {
  // Validate the whole row before touching any column: a mid-row type
  // mismatch must not leave columns with unequal lengths.
  ValidateRow(row);
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].Append(row[i]);
  }
  ++tuple_count_;
}

void Relation::AppendRows(const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) ValidateRow(row);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      columns_[i].Append(row[i]);
    }
    ++tuple_count_;
  }
}

AttrSet Relation::NonNullAttrs() const {
  AttrSet s;
  for (int i = 0; i < attr_count(); ++i) {
    if (!column(i).has_nulls()) s.Add(i);
  }
  return s;
}

bool Relation::AnyNulls(const AttrSet& attrs) const {
  for (int i : attrs.ToVector()) {
    if (column(i).has_nulls()) return true;
  }
  return false;
}

size_t Relation::EstimatedBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += col.size() * sizeof(uint32_t);
    for (size_t c = 0; c < col.dict_size(); ++c) {
      const Value& v = col.DictValue(static_cast<uint32_t>(c));
      bytes += v.is_string() ? v.as_string().size() + 16 : 8;
    }
  }
  return bytes;
}

}  // namespace fdevolve::relation
