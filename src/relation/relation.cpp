#include "relation/relation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fdevolve::relation {

const Value Column::kNullValue = Value::Null();

const Value& Column::DictValue(uint32_t code) const {
  if (code == kNullCode) return kNullValue;
  return dict_.at(code);
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    codes_.push_back(kNullCode);
    ++null_count_;
    return;
  }
  if (!v.MatchesType(type_)) {
    throw std::invalid_argument("Column: value type mismatch, expected " +
                                DataTypeName(type_) + " got " + v.ToString());
  }
  if (dict_index_.size() != dict_.size()) RebuildDictIndex();
  auto it = dict_index_.find(v);
  if (it != dict_index_.end()) {
    codes_.push_back(it->second);
    return;
  }
  auto code = static_cast<uint32_t>(dict_.size());
  if (code == kNullCode) {
    throw std::length_error("Column: dictionary overflow");
  }
  dict_.push_back(v);
  dict_index_.emplace(v, code);
  codes_.push_back(code);
}

Value Column::Get(size_t t) const {
  uint32_t c = codes_.at(t);
  return c == kNullCode ? Value::Null() : dict_.at(c);
}

void Column::Compact(const std::vector<uint8_t>& live) {
  if (live.size() != codes_.size()) {
    throw std::invalid_argument("Column::Compact: bitmap size mismatch");
  }
  // Remap surviving codes to first-appearance order over the kept rows —
  // exactly the codes Append would assign when fed the kept values in
  // order — and drop dictionary entries no survivor references.
  std::vector<uint32_t> remap(dict_.size(), kNullCode);
  std::vector<Value> dict;
  std::vector<uint32_t> codes;
  size_t nulls = 0;
  for (size_t t = 0; t < codes_.size(); ++t) {
    if (live[t] == 0) continue;
    const uint32_t c = codes_[t];
    if (c == kNullCode) {
      codes.push_back(kNullCode);
      ++nulls;
      continue;
    }
    uint32_t& m = remap[c];
    if (m == kNullCode) {
      m = static_cast<uint32_t>(dict.size());
      dict.push_back(dict_[c]);
    }
    codes.push_back(m);
  }
  dict_ = std::move(dict);
  codes_ = std::move(codes);
  null_count_ = nulls;
  // Lazily rebuilt on the next Append, like the FromEncoded path.
  dict_index_.clear();
}

void Column::RebuildDictIndex() {
  dict_index_.clear();
  dict_index_.reserve(dict_.size());
  for (size_t c = 0; c < dict_.size(); ++c) {
    dict_index_.emplace(dict_[c], static_cast<uint32_t>(c));
  }
}

Column Column::FromEncoded(DataType type, std::vector<Value> dict,
                           std::vector<uint32_t> codes, size_t null_count) {
  Column col(type);
  if (dict.size() >= kNullCode) {
    throw std::invalid_argument("Column::FromEncoded: dictionary too large");
  }
  for (const Value& v : dict) {
    if (v.is_null() || !v.MatchesType(type)) {
      throw std::invalid_argument(
          "Column::FromEncoded: dictionary value type mismatch, expected " +
          DataTypeName(type) + " got " + v.ToString());
    }
  }
  // Duplicate detection without building the value→code index (which is
  // deferred to the first Append): equal values have equal hashes, so sort
  // the bare hashes and look for equal neighbors — in the overwhelmingly
  // common collision-free case that one u64 sort is the whole check. Only
  // when a run of equal hashes exists are the actual values compared
  // (second pass with codes attached). Entries that are unequal to
  // themselves (NaN) are legal — an organic Append stream mints a fresh
  // code for every NaN too.
  {
    std::vector<uint64_t> hashes;
    hashes.reserve(dict.size());
    for (const Value& v : dict) hashes.push_back(v.Hash());
    std::sort(hashes.begin(), hashes.end());
    const bool collision =
        std::adjacent_find(hashes.begin(), hashes.end()) != hashes.end();
    if (collision) {
      std::vector<std::pair<uint64_t, uint32_t>> keyed;
      keyed.reserve(dict.size());
      for (size_t c = 0; c < dict.size(); ++c) {
        keyed.emplace_back(dict[c].Hash(), static_cast<uint32_t>(c));
      }
      std::sort(keyed.begin(), keyed.end());
      for (size_t i = 0; i + 1 < keyed.size(); ++i) {
        for (size_t j = i + 1;
             j < keyed.size() && keyed[j].first == keyed[i].first; ++j) {
          if (dict[keyed[i].second] == dict[keyed[j].second]) {
            throw std::invalid_argument(
                "Column::FromEncoded: duplicate dictionary value " +
                dict[keyed[i].second].ToString());
          }
        }
      }
    }
  }
  size_t nulls = 0;
  for (uint32_t c : codes) {
    if (c == kNullCode) {
      ++nulls;
    } else if (c >= dict.size()) {
      throw std::invalid_argument(
          "Column::FromEncoded: code " + std::to_string(c) +
          " out of dictionary range " + std::to_string(dict.size()));
    }
  }
  if (nulls != null_count) {
    throw std::invalid_argument(
        "Column::FromEncoded: null count mismatch (codes have " +
        std::to_string(nulls) + ", declared " + std::to_string(null_count) +
        ")");
  }
  col.dict_ = std::move(dict);
  col.codes_ = std::move(codes);
  col.null_count_ = null_count;
  return col;
}

Relation::Relation(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.size()));
  for (const auto& a : schema_.attrs()) columns_.emplace_back(a.type);
}

void Relation::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != static_cast<size_t>(schema_.size())) {
    throw std::invalid_argument("Relation::AppendRow: arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (!v.is_null() && !v.MatchesType(columns_[i].type())) {
      throw std::invalid_argument(
          "Relation::AppendRow: value type mismatch in column '" +
          schema_.attr(static_cast<int>(i)).name + "', expected " +
          DataTypeName(columns_[i].type()) + " got " + v.ToString());
    }
  }
}

void Relation::AppendRow(const std::vector<Value>& row) {
  // Validate the whole row before touching any column: a mid-row type
  // mismatch must not leave columns with unequal lengths.
  ValidateRow(row);
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].Append(row[i]);
  }
  ++tuple_count_;
  ++appends_ever_;
  if (!live_.empty()) live_.push_back(1);
}

void Relation::AppendRows(const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) ValidateRow(row);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      columns_[i].Append(row[i]);
    }
    ++tuple_count_;
    ++appends_ever_;
    if (!live_.empty()) live_.push_back(1);
  }
}

void Relation::DeleteRow(size_t t) {
  if (t >= tuple_count_) {
    throw std::out_of_range("Relation::DeleteRow: row " + std::to_string(t) +
                            " out of range " + std::to_string(tuple_count_));
  }
  if (live_.empty()) live_.assign(tuple_count_, 1);
  if (live_[t] == 0) {
    throw std::invalid_argument("Relation::DeleteRow: row " +
                                std::to_string(t) + " is already deleted");
  }
  live_[t] = 0;
  deletion_log_.push_back(static_cast<uint32_t>(t));
  ++dead_count_;
  ++deletes_ever_;
  ++mutation_epoch_;
}

size_t Relation::Compact() {
  const size_t removed = dead_count_;
  if (removed != 0) {
    for (auto& col : columns_) col.Compact(live_);
    tuple_count_ -= removed;
    live_.clear();
    deletion_log_.clear();
    dead_count_ = 0;
  }
  // Epoch and incarnation move even for a no-op compaction: callers that
  // trigger Compact() deterministically (the server's policy) must see
  // identical counters on replay regardless of whether rows were dead.
  ++mutation_epoch_;
  ++compactions_;
  return removed;
}

Relation Relation::CompactedCopy() const {
  Relation copy = *this;
  copy.Compact();
  // The copy is a fresh instance as far as consumers are concerned: its
  // lifetime counters restart at the compacted contents.
  copy.appends_ever_ = copy.tuple_count_;
  copy.deletes_ever_ = 0;
  copy.mutation_epoch_ = 0;
  copy.compactions_ = 0;
  return copy;
}

AttrSet Relation::NonNullAttrs() const {
  AttrSet s;
  for (int i = 0; i < attr_count(); ++i) {
    if (!column(i).has_nulls()) s.Add(i);
  }
  return s;
}

bool Relation::AnyNulls(const AttrSet& attrs) const {
  for (int i : attrs.ToVector()) {
    if (column(i).has_nulls()) return true;
  }
  return false;
}

Relation Relation::FromEncoded(std::string name, Schema schema,
                               std::vector<Column> columns) {
  if (columns.size() != static_cast<size_t>(schema.size())) {
    throw std::invalid_argument(
        "Relation::FromEncoded: column count does not match schema");
  }
  size_t rows = columns.empty() ? 0 : columns.front().size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.attr(static_cast<int>(i)).type) {
      throw std::invalid_argument(
          "Relation::FromEncoded: column type mismatch at attribute '" +
          schema.attr(static_cast<int>(i)).name + "'");
    }
    if (columns[i].size() != rows) {
      throw std::invalid_argument(
          "Relation::FromEncoded: columns have unequal lengths");
    }
  }
  Relation rel(std::move(name), std::move(schema));
  rel.columns_ = std::move(columns);
  rel.tuple_count_ = rows;
  rel.appends_ever_ = rows;
  return rel;
}

void Relation::RestoreLifetimeCounters(size_t appends_ever,
                                       size_t deletes_ever,
                                       size_t compactions) {
  // The watermark counts appends since the last compaction, so lifetime
  // appends can never be below it; same for deletes vs live tombstones.
  if (appends_ever < tuple_count_) {
    throw std::invalid_argument(
        "Relation::RestoreLifetimeCounters: appends_ever " +
        std::to_string(appends_ever) + " below the watermark " +
        std::to_string(tuple_count_));
  }
  if (deletes_ever < dead_count_) {
    throw std::invalid_argument(
        "Relation::RestoreLifetimeCounters: deletes_ever " +
        std::to_string(deletes_ever) + " below the tombstone count " +
        std::to_string(dead_count_));
  }
  appends_ever_ = appends_ever;
  deletes_ever_ = deletes_ever;
  compactions_ = compactions;
  mutation_epoch_ = deletes_ever + compactions;
}

void RequireNoTombstones(const Relation& rel, const char* where) {
  if (rel.has_tombstones()) {
    throw std::logic_error(
        std::string(where) + ": relation '" + rel.name() + "' carries " +
        std::to_string(rel.dead_count()) +
        " tombstoned rows; this consumer scans physical rows and would "
        "include deleted tuples — compact the relation (or pass "
        "CompactedCopy()) first");
  }
}

size_t Relation::EstimatedBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += col.size() * sizeof(uint32_t);
    for (size_t c = 0; c < col.dict_size(); ++c) {
      const Value& v = col.DictValue(static_cast<uint32_t>(c));
      bytes += v.is_string() ? v.as_string().size() + 16 : 8;
    }
  }
  return bytes;
}

}  // namespace fdevolve::relation
