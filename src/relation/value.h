// A single nullable, typed cell value.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "relation/data_type.h"

namespace fdevolve::relation {

/// Immutable cell value: NULL, int64, double, or string.
///
/// Values are used at the API boundary (building relations, reading cells,
/// dictionaries). Hot paths operate on dictionary codes, not Values.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}           // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}            // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Accessors; throw std::bad_variant_access on type mismatch.
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// The DataType this value would have in a column; NULL has no type and
  /// is accepted by any column.
  bool MatchesType(DataType t) const;

  /// Total order used by dictionaries: NULL < ints/doubles (numeric order)
  /// < strings (lexicographic). Equality is exact (no int/double coercion
  /// across types with different representations).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// Stable hash consistent with operator==.
  uint64_t Hash() const;

  /// Human-readable rendering ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace fdevolve::relation
