// In-memory, dictionary-encoded, column-oriented relation instance.
//
// The FD algorithms consume only two primitives from this layer:
//   * per-tuple dictionary codes for each column, and
//   * per-column NULL counts (FDs may not involve NULL-able attributes).
// Dictionary encoding at build time makes every downstream distinct-count a
// pure integer computation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace fdevolve::relation {

/// Sentinel dictionary code for NULL cells.
inline constexpr uint32_t kNullCode = std::numeric_limits<uint32_t>::max();

/// One dictionary-encoded column.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return codes_.size(); }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// Number of distinct non-NULL values.
  size_t dict_size() const { return dict_.size(); }

  /// Dictionary code of row `t` (kNullCode for NULL).
  uint32_t code(size_t t) const { return codes_[t]; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// Value behind a dictionary code; kNullCode maps back to NULL.
  const Value& DictValue(uint32_t code) const;

  /// Appends a value; throws std::invalid_argument on type mismatch.
  void Append(const Value& v);

  /// Cell accessor (decodes through the dictionary).
  Value Get(size_t t) const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  DataType type_;
  std::vector<uint32_t> codes_;
  std::vector<Value> dict_;
  std::unordered_map<Value, uint32_t, ValueHash> dict_index_;
  size_t null_count_ = 0;
  static const Value kNullValue;
};

/// A relation instance: schema + equally sized columns.
class Relation {
 public:
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t tuple_count() const { return tuple_count_; }
  int attr_count() const { return schema_.size(); }

  const Column& column(int i) const { return columns_.at(static_cast<size_t>(i)); }

  /// Appends one tuple; `row` arity must match the schema.
  void AppendRow(const std::vector<Value>& row);

  /// Cell accessor.
  Value Get(size_t tuple, int attr) const { return column(attr).Get(tuple); }

  /// Attributes whose columns contain no NULLs — the candidate pool the
  /// paper allows for antecedent extension (§6.2.1).
  AttrSet NonNullAttrs() const;

  /// True if any of the given attributes contains a NULL.
  bool AnyNulls(const AttrSet& attrs) const;

  /// Rough payload size in bytes (codes + dictionaries); used by the
  /// Figure 3c "table dimension" axis.
  size_t EstimatedBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t tuple_count_ = 0;
};

/// Fluent builder for tests and generators.
class RelationBuilder {
 public:
  RelationBuilder(std::string name, Schema schema)
      : rel_(std::move(name), std::move(schema)) {}

  RelationBuilder& Row(std::vector<Value> row) {
    rel_.AppendRow(row);
    return *this;
  }

  Relation Build() { return std::move(rel_); }

 private:
  Relation rel_;
};

}  // namespace fdevolve::relation
