// In-memory, dictionary-encoded, column-oriented relation instance.
//
// The FD algorithms consume only two primitives from this layer:
//   * per-tuple dictionary codes for each column, and
//   * per-column NULL counts (FDs may not involve NULL-able attributes).
// Dictionary encoding at build time makes every downstream distinct-count a
// pure integer computation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace fdevolve::relation {

/// Sentinel dictionary code for NULL cells.
inline constexpr uint32_t kNullCode = std::numeric_limits<uint32_t>::max();

/// One dictionary-encoded column.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return codes_.size(); }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// Number of distinct non-NULL values.
  size_t dict_size() const { return dict_.size(); }

  /// Dictionary code of row `t` (kNullCode for NULL).
  uint32_t code(size_t t) const { return codes_[t]; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// Value behind a dictionary code; kNullCode maps back to NULL.
  const Value& DictValue(uint32_t code) const;

  /// Dictionary values in code order (code `c` is `dict_values()[c]`).
  /// This plus codes() is the column's entire encoded state — what the
  /// snapshot layer persists.
  const std::vector<Value>& dict_values() const { return dict_; }

  /// Rebuilds a column directly at the encoded layer — the snapshot load
  /// path, which must not re-dictionary-encode per cell. Validates that
  /// every dictionary value matches `type` and is distinct (via a
  /// hash-sort pass, cheaper than rebuilding the dictionary index), that
  /// every code is either < dict.size() or kNullCode, and that the
  /// kNullCode count equals `null_count`; throws std::invalid_argument
  /// otherwise. The value→code index is rebuilt lazily on the first
  /// Append, so load-then-query workloads never pay for it.
  static Column FromEncoded(DataType type, std::vector<Value> dict,
                            std::vector<uint32_t> codes, size_t null_count);

  /// Appends a value; throws std::invalid_argument on type mismatch.
  void Append(const Value& v);

  /// Cell accessor (decodes through the dictionary).
  Value Get(size_t t) const;

  /// Drops every row whose `live` byte is 0 and re-encodes: surviving
  /// codes are remapped to dense first-appearance order over the kept
  /// rows and unreferenced dictionary values are dropped, so the result
  /// is bit-identical to a column built by appending the kept values in
  /// order (Relation::Compact's rebuilt-equivalence guarantee rests on
  /// this). `live.size()` must equal size().
  void Compact(const std::vector<uint8_t>& live);

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  /// Re-derives dict_index_ from dict_ (after FromEncoded left it empty).
  void RebuildDictIndex();

  DataType type_;
  std::vector<uint32_t> codes_;
  std::vector<Value> dict_;
  std::unordered_map<Value, uint32_t, ValueHash> dict_index_;
  size_t null_count_ = 0;
  static const Value kNullValue;
};

/// A relation instance: schema + equally sized columns, with deletion
/// support via tombstones.
///
/// The storage itself stays append-shaped: physical rows and dictionary
/// codes are never reassigned once handed out, so group ids derived from
/// row order remain append-stable. DeleteRow() only marks a row dead in a
/// tombstone bitmap and records it in an ordered deletion log; the bytes
/// of the row stay in place until Compact() rewrites the relation.
///
/// Downstream caches therefore need TWO counters, not one:
///
///   * `version()` — the physical row watermark (== tuple_count()). It
///     grows by one per append and only ever moves backwards at a
///     Compact(), which also bumps `compactions()`. Rows [0, version())
///     have immutable codes between compactions.
///   * `mutation_epoch()` — a monotone change counter bumped by every
///     DeleteRow() and every Compact(). A cache whose epoch snapshot is
///     stale must re-fold the deletion log (or rebuild, after a
///     compaction) before trusting any live-row-derived result.
///
/// A consumer that diffs only `version()` (the historical append-only
/// contract) would silently keep counting deleted rows. Tombstone-unaware
/// scans must call RequireNoTombstones() at entry so that misuse is a
/// hard error instead of silent corruption; incremental caches
/// (query::DistinctEvaluator) track both counters plus `compactions()`.
class Relation {
 public:
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t tuple_count() const { return tuple_count_; }
  int attr_count() const { return schema_.size(); }

  /// Physical row watermark: the number of physical rows currently
  /// stored, dead ones included. NOT the number of tuples ever appended
  /// once deletions exist — see `mutation_epoch()` and the class comment
  /// for the cache-invalidation contract. Shrinks only at Compact().
  size_t version() const { return tuple_count_; }

  const Column& column(int i) const { return columns_.at(static_cast<size_t>(i)); }

  // --- Tombstone surface -------------------------------------------------

  /// True iff physical row `t` has not been deleted. `t` must be
  /// < tuple_count() (unchecked; use Get for checked access).
  bool is_live(size_t t) const { return live_.empty() || live_[t] != 0; }

  /// Number of live (non-deleted) rows.
  size_t live_count() const { return tuple_count_ - dead_count_; }

  /// Number of tombstoned rows awaiting compaction.
  size_t dead_count() const { return dead_count_; }

  bool has_tombstones() const { return dead_count_ > 0; }

  /// Monotone mutation counter: bumped by every DeleteRow() and every
  /// Compact(). Appends do NOT bump it — the append fast path stays
  /// diffable via version() alone.
  size_t mutation_epoch() const { return mutation_epoch_; }

  /// Number of Compact() calls over the relation's lifetime — the
  /// incarnation counter caches compare to detect that physical row ids
  /// and codes were reassigned wholesale.
  size_t compactions() const { return compactions_; }

  /// Rows ever appended / deleted, monotone across compactions (unlike
  /// tuple_count()). The monitor's check cadence counts mutations through
  /// these so a compaction cannot make its interval arithmetic underflow.
  size_t appends_ever() const { return appends_ever_; }
  size_t deletes_ever() const { return deletes_ever_; }

  /// Physical ids of tombstoned rows in deletion order — the delta an
  /// incremental cache folds in (cleared by Compact()).
  const std::vector<uint32_t>& deletion_log() const { return deletion_log_; }

  /// Raw tombstone bitmap, one byte per physical row; empty means every
  /// row is live. Hot-loop access for the query layer's live-aware count
  /// passes (is_live() is the per-row form).
  const std::vector<uint8_t>& live_bitmap() const { return live_; }

  /// Tombstones physical row `t`. Throws std::out_of_range if `t` is not
  /// a physical row, std::invalid_argument if it is already dead. O(1)
  /// amortized (the bitmap materializes on the first delete).
  void DeleteRow(size_t t);

  /// Rewrites the relation to exactly its live rows: dead rows are
  /// dropped, surviving rows renumbered in order, and every column's
  /// dictionary re-encoded to first-appearance order over the survivors.
  ///
  /// Rebuilt-equivalence guarantee: the compacted relation is
  /// bit-identical at the encoded layer (dictionary order, codes, null
  /// counts, watermark) to a fresh relation built by AppendRow-ing the
  /// live rows in physical order. Clears the tombstone state, bumps
  /// mutation_epoch() and compactions(); appends_ever()/deletes_ever()
  /// keep their lifetime values. Returns the number of rows removed.
  size_t Compact();

  /// A fresh relation holding exactly this relation's live rows (the
  /// compacted form), leaving this relation untouched. What tombstone-
  /// unaware consumers (repair search, discovery) are handed.
  Relation CompactedCopy() const;

  /// Appends one tuple; `row` arity must match the schema.
  ///
  /// Strong exception guarantee: arity and every cell type are validated
  /// against the schema before any column is touched, so a throwing append
  /// leaves the relation exactly as it was (no short rows). (The only
  /// theoretical exception is dictionary-code exhaustion at 2^32 distinct
  /// values per column — unreachable in practice, since tuple ids are
  /// 32-bit throughout the query layer.)
  void AppendRow(const std::vector<Value>& row);

  /// Appends a batch of tuples with all-or-nothing semantics: every row is
  /// validated (arity + cell types) before the first one is appended, so a
  /// bad row anywhere in the batch leaves the relation unchanged.
  void AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Cell accessor.
  Value Get(size_t tuple, int attr) const { return column(attr).Get(tuple); }

  /// Attributes whose columns contain no NULLs — the candidate pool the
  /// paper allows for antecedent extension (§6.2.1).
  AttrSet NonNullAttrs() const;

  /// True if any of the given attributes contains a NULL.
  bool AnyNulls(const AttrSet& attrs) const;

  /// Rough payload size in bytes (codes + dictionaries); used by the
  /// Figure 3c "table dimension" axis.
  size_t EstimatedBytes() const;

  /// Rebuilds a relation from per-column encoded state (the snapshot load
  /// path). `columns` must match the schema positionally — one column per
  /// attribute, same type, equal lengths; throws std::invalid_argument
  /// otherwise. The watermark becomes the common column length.
  static Relation FromEncoded(std::string name, Schema schema,
                              std::vector<Column> columns);

  /// Restores the lifetime mutation counters after a snapshot load, so
  /// consumers keyed to mutation history (monitors via appends_ever() +
  /// deletes_ever(), reservoir samplers via compactions()) resume against
  /// the same watermarks they checkpointed. mutation_epoch() is derived
  /// (every DeleteRow and Compact bumps it exactly once, appends never
  /// do), not passed. Throws std::invalid_argument when the counters are
  /// impossible for this relation's current physical state.
  void RestoreLifetimeCounters(size_t appends_ever, size_t deletes_ever,
                               size_t compactions);

 private:
  /// Throws std::invalid_argument unless `row` matches the schema (arity
  /// and per-cell type); performs no mutation.
  void ValidateRow(const std::vector<Value>& row) const;

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t tuple_count_ = 0;

  /// Tombstone bitmap, one byte per physical row; empty means all live
  /// (the append-only fast path never materializes it).
  std::vector<uint8_t> live_;
  std::vector<uint32_t> deletion_log_;  ///< dead row ids, deletion order
  size_t dead_count_ = 0;
  size_t mutation_epoch_ = 0;
  size_t compactions_ = 0;
  size_t appends_ever_ = 0;
  size_t deletes_ever_ = 0;
};

/// Hard-error guard for tombstone-unaware consumers: throws
/// std::logic_error naming `where` if `rel` carries tombstones. Scans
/// that walk physical rows without consulting is_live() would silently
/// include deleted tuples — callers pass such relations through
/// Relation::CompactedCopy() (or Compact()) first.
void RequireNoTombstones(const Relation& rel, const char* where);

/// Fluent builder for tests and generators.
class RelationBuilder {
 public:
  RelationBuilder(std::string name, Schema schema)
      : rel_(std::move(name), std::move(schema)) {}

  RelationBuilder& Row(std::vector<Value> row) {
    rel_.AppendRow(row);
    return *this;
  }

  Relation Build() { return std::move(rel_); }

 private:
  Relation rel_;
};

}  // namespace fdevolve::relation
