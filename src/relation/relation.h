// In-memory, dictionary-encoded, column-oriented relation instance.
//
// The FD algorithms consume only two primitives from this layer:
//   * per-tuple dictionary codes for each column, and
//   * per-column NULL counts (FDs may not involve NULL-able attributes).
// Dictionary encoding at build time makes every downstream distinct-count a
// pure integer computation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace fdevolve::relation {

/// Sentinel dictionary code for NULL cells.
inline constexpr uint32_t kNullCode = std::numeric_limits<uint32_t>::max();

/// One dictionary-encoded column.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return codes_.size(); }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// Number of distinct non-NULL values.
  size_t dict_size() const { return dict_.size(); }

  /// Dictionary code of row `t` (kNullCode for NULL).
  uint32_t code(size_t t) const { return codes_[t]; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// Value behind a dictionary code; kNullCode maps back to NULL.
  const Value& DictValue(uint32_t code) const;

  /// Dictionary values in code order (code `c` is `dict_values()[c]`).
  /// This plus codes() is the column's entire encoded state — what the
  /// snapshot layer persists.
  const std::vector<Value>& dict_values() const { return dict_; }

  /// Rebuilds a column directly at the encoded layer — the snapshot load
  /// path, which must not re-dictionary-encode per cell. Validates that
  /// every dictionary value matches `type` and is distinct (via a
  /// hash-sort pass, cheaper than rebuilding the dictionary index), that
  /// every code is either < dict.size() or kNullCode, and that the
  /// kNullCode count equals `null_count`; throws std::invalid_argument
  /// otherwise. The value→code index is rebuilt lazily on the first
  /// Append, so load-then-query workloads never pay for it.
  static Column FromEncoded(DataType type, std::vector<Value> dict,
                            std::vector<uint32_t> codes, size_t null_count);

  /// Appends a value; throws std::invalid_argument on type mismatch.
  void Append(const Value& v);

  /// Cell accessor (decodes through the dictionary).
  Value Get(size_t t) const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  /// Re-derives dict_index_ from dict_ (after FromEncoded left it empty).
  void RebuildDictIndex();

  DataType type_;
  std::vector<uint32_t> codes_;
  std::vector<Value> dict_;
  std::unordered_map<Value, uint32_t, ValueHash> dict_index_;
  size_t null_count_ = 0;
  static const Value kNullValue;
};

/// A relation instance: schema + equally sized columns.
///
/// Relations are append-only: tuples are never updated or deleted, and
/// dictionary codes are never reassigned once handed out. Those two facts
/// make `version()` a monotone row watermark that downstream caches
/// (query::DistinctEvaluator) can diff against to maintain their state
/// over just the appended suffix instead of rebuilding.
class Relation {
 public:
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t tuple_count() const { return tuple_count_; }
  int attr_count() const { return schema_.size(); }

  /// Monotone row watermark: the number of tuples ever appended. Because
  /// the relation is append-only this equals tuple_count(), but callers
  /// that cache derived state should diff against version() — it names
  /// the contract (rows [0, version()) are immutable) rather than the
  /// current size.
  size_t version() const { return tuple_count_; }

  const Column& column(int i) const { return columns_.at(static_cast<size_t>(i)); }

  /// Appends one tuple; `row` arity must match the schema.
  ///
  /// Strong exception guarantee: arity and every cell type are validated
  /// against the schema before any column is touched, so a throwing append
  /// leaves the relation exactly as it was (no short rows). (The only
  /// theoretical exception is dictionary-code exhaustion at 2^32 distinct
  /// values per column — unreachable in practice, since tuple ids are
  /// 32-bit throughout the query layer.)
  void AppendRow(const std::vector<Value>& row);

  /// Appends a batch of tuples with all-or-nothing semantics: every row is
  /// validated (arity + cell types) before the first one is appended, so a
  /// bad row anywhere in the batch leaves the relation unchanged.
  void AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Cell accessor.
  Value Get(size_t tuple, int attr) const { return column(attr).Get(tuple); }

  /// Attributes whose columns contain no NULLs — the candidate pool the
  /// paper allows for antecedent extension (§6.2.1).
  AttrSet NonNullAttrs() const;

  /// True if any of the given attributes contains a NULL.
  bool AnyNulls(const AttrSet& attrs) const;

  /// Rough payload size in bytes (codes + dictionaries); used by the
  /// Figure 3c "table dimension" axis.
  size_t EstimatedBytes() const;

  /// Rebuilds a relation from per-column encoded state (the snapshot load
  /// path). `columns` must match the schema positionally — one column per
  /// attribute, same type, equal lengths; throws std::invalid_argument
  /// otherwise. The watermark becomes the common column length.
  static Relation FromEncoded(std::string name, Schema schema,
                              std::vector<Column> columns);

 private:
  /// Throws std::invalid_argument unless `row` matches the schema (arity
  /// and per-cell type); performs no mutation.
  void ValidateRow(const std::vector<Value>& row) const;

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t tuple_count_ = 0;
};

/// Fluent builder for tests and generators.
class RelationBuilder {
 public:
  RelationBuilder(std::string name, Schema schema)
      : rel_(std::move(name), std::move(schema)) {}

  RelationBuilder& Row(std::vector<Value> row) {
    rel_.AppendRow(row);
    return *this;
  }

  Relation Build() { return std::move(rel_); }

 private:
  Relation rel_;
};

}  // namespace fdevolve::relation
