#include "relation/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace fdevolve::relation {
namespace {

std::optional<DataType> ParseType(std::string_view s) {
  if (s == "int64" || s == "int") return DataType::kInt64;
  if (s == "double" || s == "float") return DataType::kDouble;
  if (s == "string" || s == "str") return DataType::kString;
  return std::nullopt;
}

std::optional<Value> ParseCell(const std::string& field, DataType type) {
  if (field.empty() && type != DataType::kString) return Value::Null();
  if (field == "\\N") return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return std::nullopt;
      }
      return Value(v);
    }
    case DataType::kDouble: {
      try {
        size_t pos = 0;
        double v = std::stod(field, &pos);
        if (pos != field.size()) return std::nullopt;
        return Value(v);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    case DataType::kString:
      return Value(field);
  }
  return std::nullopt;
}

std::string RenderCell(const Value& v) {
  if (v.is_null()) return "\\N";
  return v.ToString();
}

/// std::getline splits on '\n' only, so CRLF input leaves a '\r' glued to
/// the last field: string cells silently gain it (wrong dictionary codes),
/// "\N\r" stops reading as NULL, and numeric last columns fail to parse.
/// This dialect has no quoting, so a string value that itself ends in '\r'
/// is not representable (just as embedded commas/newlines are not) — the
/// strip is unconditional.
void StripTrailingCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

CsvResult ReadCsv(std::istream& in, const std::string& name) {
  CsvResult result;
  std::string line;
  if (!std::getline(in, line)) {
    result.error = "empty input";
    return result;
  }
  StripTrailingCr(line);

  std::vector<Attribute> attrs;
  for (const auto& field : util::Split(line, ',')) {
    auto parts = util::Split(field, ':');
    if (parts.size() != 2) {
      result.error = "bad header field '" + field + "' (want name:type)";
      return result;
    }
    auto type = ParseType(util::Trim(parts[1]));
    if (!type) {
      result.error = "unknown type '" + parts[1] + "'";
      return result;
    }
    attrs.push_back({std::string(util::Trim(parts[0])), *type});
  }

  Relation rel(name, Schema(std::move(attrs)));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(line);
    if (line.empty()) continue;
    auto fields = util::Split(line, ',');
    if (fields.size() != static_cast<size_t>(rel.attr_count())) {
      result.error = "line " + std::to_string(line_no) + ": arity mismatch";
      return result;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      auto cell = ParseCell(fields[i], rel.schema().attr(static_cast<int>(i)).type);
      if (!cell) {
        result.error = "line " + std::to_string(line_no) + ": bad value '" +
                       fields[i] + "'";
        return result;
      }
      row.push_back(std::move(*cell));
    }
    rel.AppendRow(row);
  }
  result.relation = std::move(rel);
  return result;
}

CsvResult ReadCsvFile(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    CsvResult r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  return ReadCsv(in, name);
}

void WriteCsv(const Relation& rel, std::ostream& out) {
  const Schema& s = rel.schema();
  for (int i = 0; i < s.size(); ++i) {
    if (i > 0) out << ",";
    out << s.attr(i).name << ":" << DataTypeName(s.attr(i).type);
  }
  out << "\n";
  for (size_t t = 0; t < rel.tuple_count(); ++t) {
    for (int i = 0; i < s.size(); ++i) {
      if (i > 0) out << ",";
      out << RenderCell(rel.Get(t, i));
    }
    out << "\n";
  }
}

bool WriteCsvFile(const Relation& rel, const std::string& path,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  WriteCsv(rel, out);
  return out.good();
}

}  // namespace fdevolve::relation
