#include "relation/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/parse.h"
#include "util/strings.h"

namespace fdevolve::relation {
namespace {

std::optional<DataType> ParseType(std::string_view s) {
  if (s == "int64" || s == "int") return DataType::kInt64;
  if (s == "double" || s == "float") return DataType::kDouble;
  if (s == "string" || s == "str") return DataType::kString;
  return std::nullopt;
}

std::optional<Value> ParseCell(const std::string& field, DataType type) {
  if (field.empty() && type != DataType::kString) return Value::Null();
  if (field == "\\N") return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return std::nullopt;
      }
      return Value(v);
    }
    case DataType::kDouble: {
      // from_chars-based and therefore locale-independent: std::stod honors
      // the process locale, so under a comma-decimal LC_NUMERIC (e.g.
      // de_DE) it would stop at the '.' and quietly ingest 3.14 as 3.
      // ParseDouble also rejects "inf"/"nan" spellings — non-finite cells
      // have no stable ordering or dictionary semantics in this dialect.
      auto v = util::ParseDouble(field);
      if (!v) return std::nullopt;
      return Value(*v);
    }
    case DataType::kString:
      return Value(field);
  }
  return std::nullopt;
}

std::string RenderCell(const Value& v) {
  if (v.is_null()) return "\\N";
  // Doubles render in shortest-round-trip form: Value::ToString's 6-digit
  // ostream default would silently change the value on re-read.
  if (v.is_double()) return util::DoubleShortestRoundTrip(v.as_double());
  return v.ToString();
}

/// Why a string cell cannot be written in this unquoted dialect, or
/// nullptr if it can.
const char* Unrepresentable(const std::string& s) {
  if (s == "\\N") return "is the literal \\N (would read back as NULL)";
  for (char c : s) {
    if (c == ',') return "contains ',' (would shift columns)";
    if (c == '\n') return "contains '\\n' (would split the row)";
    if (c == '\r') return "contains '\\r' (stripped as a CRLF artifact)";
  }
  return nullptr;
}

/// Scans the string-column dictionaries for unrepresentable values; on a
/// hit, locates the first affected cell in row-major order and fills
/// `error`. Dictionary-level scanning keeps the common case O(distinct
/// strings), not O(cells).
bool FindUnrepresentableCell(const Relation& rel, std::string* error) {
  const Schema& s = rel.schema();
  // bad_codes[i] is non-empty iff column i has unrepresentable values;
  // bad_codes[i][code] says whether that dictionary entry is bad.
  std::vector<std::vector<char>> bad_codes(static_cast<size_t>(s.size()));
  bool any_bad = false;
  for (int i = 0; i < s.size(); ++i) {
    if (s.attr(i).type != DataType::kString) continue;
    const Column& col = rel.column(i);
    for (size_t c = 0; c < col.dict_size(); ++c) {
      const Value& v = col.DictValue(static_cast<uint32_t>(c));
      if (Unrepresentable(v.as_string()) != nullptr) {
        auto& bad = bad_codes[static_cast<size_t>(i)];
        if (bad.empty()) bad.resize(col.dict_size(), 0);
        bad[c] = 1;
        any_bad = true;
      }
    }
  }
  if (!any_bad) return false;
  for (size_t t = 0; t < rel.tuple_count(); ++t) {
    if (!rel.is_live(t)) continue;  // dead rows are never exported
    for (int i = 0; i < s.size(); ++i) {
      const auto& bad = bad_codes[static_cast<size_t>(i)];
      if (bad.empty()) continue;
      uint32_t code = rel.column(i).code(t);
      if (code != kNullCode && bad[code]) {
        if (error) {
          const std::string& v = rel.column(i).DictValue(code).as_string();
          *error = "row " + std::to_string(t) + ", column '" +
                   s.attr(i).name + "': value \"" + v + "\" " +
                   Unrepresentable(v) +
                   "; not representable in this CSV dialect";
        }
        return true;
      }
    }
  }
  // A bad dictionary entry with no referencing cell (possible only through
  // Column::FromEncoded) affects no written output.
  return false;
}

/// std::getline splits on '\n' only, so CRLF input leaves a '\r' glued to
/// the last field: string cells silently gain it (wrong dictionary codes),
/// "\N\r" stops reading as NULL, and numeric last columns fail to parse.
/// This dialect has no quoting, so a string value that itself ends in '\r'
/// is not representable (just as embedded commas/newlines are not) — the
/// strip is unconditional.
void StripTrailingCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

CsvResult ReadCsv(std::istream& in, const std::string& name) {
  CsvResult result;
  std::string line;
  if (!std::getline(in, line)) {
    result.error = "empty input";
    return result;
  }
  StripTrailingCr(line);

  std::vector<Attribute> attrs;
  for (const auto& field : util::Split(line, ',')) {
    auto parts = util::Split(field, ':');
    if (parts.size() != 2) {
      result.error = "bad header field '" + field + "' (want name:type)";
      return result;
    }
    auto type = ParseType(util::Trim(parts[1]));
    if (!type) {
      result.error = "unknown type '" + parts[1] + "'";
      return result;
    }
    attrs.push_back({std::string(util::Trim(parts[0])), *type});
  }

  Relation rel(name, Schema(std::move(attrs)));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(line);
    if (line.empty()) continue;
    auto fields = util::Split(line, ',');
    if (fields.size() != static_cast<size_t>(rel.attr_count())) {
      result.error = "line " + std::to_string(line_no) + ": arity mismatch";
      return result;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      auto cell = ParseCell(fields[i], rel.schema().attr(static_cast<int>(i)).type);
      if (!cell) {
        result.error = "line " + std::to_string(line_no) + ": bad value '" +
                       fields[i] + "'";
        return result;
      }
      row.push_back(std::move(*cell));
    }
    rel.AppendRow(row);
  }
  result.relation = std::move(rel);
  return result;
}

CsvResult ReadCsvFile(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    CsvResult r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  return ReadCsv(in, name);
}

bool WriteCsv(const Relation& rel, std::ostream& out, std::string* error) {
  // Detect unrepresentable content before emitting any byte: a failed
  // write leaves the stream untouched rather than holding a corrupt
  // prefix. Attribute names face the same dialect limits as cells, plus
  // ':' (the header's name/type separator) — Schema accepts arbitrary
  // names, only CSV-read schemas are guaranteed clean.
  for (int i = 0; i < rel.schema().size(); ++i) {
    const std::string& name = rel.schema().attr(i).name;
    // Unlike cells, a name equal to the literal "\N" is fine — the NULL
    // marker only applies to data fields.
    const char* reason = nullptr;
    for (char c : name) {
      if (c == ',') reason = "contains ',' (would split the header field)";
      if (c == '\n') reason = "contains '\\n' (would split the header line)";
      if (c == '\r') reason = "contains '\\r' (stripped as a CRLF artifact)";
      if (c == ':') reason = "contains ':' (the header name:type separator)";
      if (reason != nullptr) break;
    }
    if (reason != nullptr) {
      if (error) {
        *error = "attribute name \"" + name + "\" " + reason +
                 "; not representable in this CSV dialect";
      }
      return false;
    }
  }
  if (FindUnrepresentableCell(rel, error)) return false;
  const Schema& s = rel.schema();
  for (int i = 0; i < s.size(); ++i) {
    if (i > 0) out << ",";
    out << s.attr(i).name << ":" << DataTypeName(s.attr(i).type);
  }
  out << "\n";
  // Live rows only: an exported CSV holds the logical instance, so a
  // read-back equals CompactedCopy(), not the physical tombstoned layout.
  for (size_t t = 0; t < rel.tuple_count(); ++t) {
    if (!rel.is_live(t)) continue;
    for (int i = 0; i < s.size(); ++i) {
      if (i > 0) out << ",";
      out << RenderCell(rel.Get(t, i));
    }
    out << "\n";
  }
  return true;
}

bool WriteCsvFile(const Relation& rel, const std::string& path,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  if (!WriteCsv(rel, out, error)) return false;
  // good() before a flush would miss IO errors the OS only reports when
  // buffered data hits the disk (e.g. ENOSPC) — flush first.
  out.flush();
  if (!out.good()) {
    if (error) *error = "I/O error writing '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace fdevolve::relation
