#include "relation/schema.h"

#include <stdexcept>

namespace fdevolve::relation {

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  if (attrs_.size() > static_cast<size_t>(AttrSet::kMaxAttrs)) {
    throw std::invalid_argument("Schema: too many attributes (max " +
                                std::to_string(AttrSet::kMaxAttrs) + ")");
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name.empty()) {
      throw std::invalid_argument("Schema: empty attribute name");
    }
    auto [it, inserted] = index_.emplace(attrs_[i].name, static_cast<int>(i));
    if (!inserted) {
      throw std::invalid_argument("Schema: duplicate attribute name '" +
                                  attrs_[i].name + "'");
    }
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

int Schema::Require(const std::string& name) const {
  int i = IndexOf(name);
  if (i < 0) {
    throw std::invalid_argument("Schema: unknown attribute '" + name + "'");
  }
  return i;
}

AttrSet Schema::AllAttrs() const {
  AttrSet s;
  for (int i = 0; i < size(); ++i) s.Add(i);
  return s;
}

AttrSet Schema::Resolve(const std::vector<std::string>& names) const {
  AttrSet s;
  for (const auto& n : names) s.Add(Require(n));
  return s;
}

std::string Schema::Describe(const AttrSet& set) const {
  std::string out = "[";
  bool first = true;
  for (int i : set.ToVector()) {
    if (!first) out += ", ";
    first = false;
    out += i < size() ? attr(i).name : ("#" + std::to_string(i));
  }
  out += "]";
  return out;
}

}  // namespace fdevolve::relation
