// AVX-512 kernel tier (F+DQ+BW+VL): 16-lane dense refinement with masked
// gathers and opmask liveness, 8-lane packed-u64 keys + vpmullq splitmix64
// hashing for the flat path, 16-lane gathered remap. Compiled with
// -mavx512{f,bw,dq,vl}; reached only after runtime detection confirms both
// the instruction sets and OS zmm state.
#include "query/kernels.h"

#if defined(FDEVOLVE_X86_KERNELS)

#include <immintrin.h>

#include <algorithm>

#include "query/kernels_detail.h"

namespace fdevolve::query::kernels {
namespace {

constexpr uint32_t kVacant = util::FlatIdTable::kVacant;

/// 16 packed u32 keys for tuples [t, t+16) with the bounds check masked to
/// live lanes. Dense segments keep the radix <= 2^31, so 32-bit lanes hold
/// every intermediate exactly.
inline __m512i PackedKeys16(const RefineArgs& a, size_t t, __mmask16 m) {
  __m512i key;
  if (a.base_ids != nullptr) {
    key = _mm512_loadu_si512(a.base_ids + t);
    if (a.base_groups <= 0xffffffffull) {
      const __m512i vgroups =
          _mm512_set1_epi32(static_cast<int>(a.base_groups));
      if (_mm512_mask_cmpge_epu32_mask(m, key, vgroups) != 0) {
        detail::ThrowBadId();
      }
    }
  } else {
    key = _mm512_setzero_si512();
  }
  for (size_t j = 0; j < a.level_count; ++j) {
    const Level& lv = a.levels[j];
    __m512i c = _mm512_loadu_si512(lv.codes + t);
    if (lv.has_nulls) {
      const __mmask16 isnull = _mm512_cmpeq_epi32_mask(
          c, _mm512_set1_epi32(static_cast<int>(relation::kNullCode)));
      c = _mm512_mask_mov_epi32(
          c, isnull, _mm512_set1_epi32(static_cast<int>(lv.null_slot)));
    }
    key = _mm512_add_epi32(
        _mm512_mullo_epi32(key,
                           _mm512_set1_epi32(static_cast<int>(lv.stride))),
        c);
  }
  return key;
}

/// Resolves one batch's miss lanes. Lane order = tuple order, and
/// dense[cell] is re-read per lane, so intra-batch (and, under the 2x
/// unroll, cross-batch) duplicates see the id an earlier lane inserted —
/// first-appearance assignment survives batching. The miss bitmask is
/// walked with ctz instead of a 16-way branch per lane: at high
/// fresh-ratios nearly every batch has a miss or three, and the
/// unpredictable per-lane branches were the dominant cost of the naive
/// loop. When materializing (`id != nullptr`), the corrected id vector is
/// rebuilt through a spill; count-only callers skip that entirely.
inline uint32_t FixupMisses16(uint32_t* dense, __m512i key, __m512i* id,
                              __mmask16 miss, uint32_t fresh,
                              std::vector<uint64_t>* keys_out) {
  alignas(64) uint32_t kk[16];
  _mm512_store_si512(kk, key);
  if (id == nullptr) {
    uint32_t mm = miss;
    while (mm != 0) {
      const int l = __builtin_ctz(mm);
      mm &= mm - 1;
      const uint32_t cell = kk[l];
      if (dense[cell] == kVacant) {
        dense[cell] = fresh++;
        if (keys_out != nullptr) keys_out->push_back(cell);
      }
    }
    return fresh;
  }
  alignas(64) uint32_t ii[16];
  _mm512_store_si512(ii, *id);
  uint32_t mm = miss;
  while (mm != 0) {
    const int l = __builtin_ctz(mm);
    mm &= mm - 1;
    const uint32_t cell = kk[l];
    uint32_t cur = dense[cell];
    if (cur == kVacant) {
      cur = fresh++;
      dense[cell] = cur;
      if (keys_out != nullptr) keys_out->push_back(cell);
    }
    ii[l] = cur;
  }
  *id = _mm512_load_si512(ii);
  return fresh;
}

/// Single-level specialization of the dense loop — the AVX-512 twin of
/// the AVX2 tier's Dense1Level8. Refine-by-one-attribute is the hottest
/// shape the repair search produces, and the generic loop's
/// RefineArgs/Level indirection plus the (cold-path) push_back call make
/// GCC re-load every field and re-test every runtime flag per 16-tuple
/// batch. This version hoists all batch constants into locals before the
/// loop and resolves the masked/count-only/keys shape at compile time, so
/// the steady-state body is load + gather + opmask compare.
template <bool kMasked, bool kCountOnly, bool kKeys>
uint32_t Dense1Level16(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  const uint32_t* const base = a.base_ids;
  const uint8_t* const live = a.live;
  uint32_t* const out = a.out;
  std::vector<uint64_t>* const keys_out = a.keys_out;
  const Level lv = a.levels[0];
  const uint32_t* const codes = lv.codes;
  const bool check = base != nullptr && a.base_groups <= 0xffffffffull;
  const bool has_nulls = lv.has_nulls;
  const __m512i vgroups = _mm512_set1_epi32(static_cast<int>(a.base_groups));
  const __m512i vstride = _mm512_set1_epi32(static_cast<int>(lv.stride));
  const __m512i vnull =
      _mm512_set1_epi32(static_cast<int>(relation::kNullCode));
  const __m512i vslot = _mm512_set1_epi32(static_cast<int>(lv.null_slot));
  const __m512i vvacant = _mm512_set1_epi32(-1);

  // One batch's key vector: base ids (bounds-checked on live lanes) *
  // stride + NULL-remapped codes. Everything it reads is a local.
  const auto keys_at = [&](size_t t, __mmask16 m) {
    __m512i key;
    if (base != nullptr) {
      key = _mm512_loadu_si512(base + t);
      if (check) {
        const __mmask16 liveness = kMasked ? m : static_cast<__mmask16>(0xffff);
        if (_mm512_mask_cmpge_epu32_mask(liveness, key, vgroups) != 0) {
          detail::ThrowBadId();
        }
      }
    } else {
      key = _mm512_setzero_si512();
    }
    __m512i c = _mm512_loadu_si512(codes + t);
    if (has_nulls) {
      const __mmask16 isnull = _mm512_cmpeq_epi32_mask(c, vnull);
      c = _mm512_mask_mov_epi32(c, isnull, vslot);
    }
    return _mm512_add_epi32(_mm512_mullo_epi32(key, vstride), c);
  };

  size_t t = a.lo;
  // 2x unrolled: both gathers in flight before either fixup (latency
  // hiding); batch 1's stale-vacant reads self-correct because the fixup
  // re-reads each missed cell, strictly in tuple order.
  for (; t + 32 <= a.hi; t += 32) {
    __mmask16 m0 = 0xffff;
    __mmask16 m1 = 0xffff;
    if (kMasked) {
      const __m256i bytes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(live + t));
      const __mmask32 lm =
          _mm256_cmpneq_epi8_mask(bytes, _mm256_setzero_si256());
      m0 = static_cast<__mmask16>(lm);
      m1 = static_cast<__mmask16>(lm >> 16);
    }
    const __m512i key0 = keys_at(t, m0);
    const __m512i key1 = keys_at(t + 16, m1);
    __m512i id0 = kMasked
                      ? _mm512_mask_i32gather_epi32(vvacant, m0, key0, dense, 4)
                      : _mm512_i32gather_epi32(key0, dense, 4);
    __m512i id1 = kMasked
                      ? _mm512_mask_i32gather_epi32(vvacant, m1, key1, dense, 4)
                      : _mm512_i32gather_epi32(key1, dense, 4);
    const __mmask16 miss0 = kMasked
                                ? _mm512_mask_cmpeq_epi32_mask(m0, id0, vvacant)
                                : _mm512_cmpeq_epi32_mask(id0, vvacant);
    const __mmask16 miss1 = kMasked
                                ? _mm512_mask_cmpeq_epi32_mask(m1, id1, vvacant)
                                : _mm512_cmpeq_epi32_mask(id1, vvacant);
    if ((miss0 | miss1) != 0) {
      // Inline fixup over the combined 32-lane spill: ctz-walk in lane
      // (= tuple) order with a per-cell re-read, so duplicates within and
      // across the pair still get first-appearance ids. `kKeys == false`
      // removes the only call in the loop body, letting every batch
      // constant live in a register across iterations.
      alignas(64) uint32_t kk[32];
      _mm512_store_si512(kk, key0);
      _mm512_store_si512(kk + 16, key1);
      uint32_t bits = static_cast<uint32_t>(miss0) |
                      (static_cast<uint32_t>(miss1) << 16);
      if (kCountOnly) {
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          if (dense[cell] == kVacant) {
            dense[cell] = fresh++;
            if (kKeys) keys_out->push_back(cell);
          }
        }
      } else {
        alignas(64) uint32_t ii[32];
        _mm512_store_si512(ii, id0);
        _mm512_store_si512(ii + 16, id1);
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          uint32_t cur = dense[cell];
          if (cur == kVacant) {
            cur = fresh++;
            dense[cell] = cur;
            if (kKeys) keys_out->push_back(cell);
          }
          ii[l] = cur;
        }
        id0 = _mm512_load_si512(ii);
        id1 = _mm512_load_si512(ii + 16);
      }
    }
    if (!kCountOnly) {
      _mm512_storeu_si512(out + t, id0);
      _mm512_storeu_si512(out + t + 16, id1);
    }
  }
  for (; t + 16 <= a.hi; t += 16) {
    __mmask16 m = 0xffff;
    if (kMasked) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(live + t));
      m = _mm_cmpneq_epi8_mask(bytes, _mm_setzero_si128());
      if (m == 0) continue;
    }
    const __m512i key = keys_at(t, m);
    __m512i id = kMasked
                     ? _mm512_mask_i32gather_epi32(vvacant, m, key, dense, 4)
                     : _mm512_i32gather_epi32(key, dense, 4);
    uint32_t bits = kMasked ? _mm512_mask_cmpeq_epi32_mask(m, id, vvacant)
                            : _mm512_cmpeq_epi32_mask(id, vvacant);
    if (bits != 0) {
      alignas(64) uint32_t kk[16];
      _mm512_store_si512(kk, key);
      if (kCountOnly) {
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          if (dense[cell] == kVacant) {
            dense[cell] = fresh++;
            if (kKeys) keys_out->push_back(cell);
          }
        }
      } else {
        alignas(64) uint32_t ii[16];
        _mm512_store_si512(ii, id);
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          uint32_t cur = dense[cell];
          if (cur == kVacant) {
            cur = fresh++;
            dense[cell] = cur;
            if (kKeys) keys_out->push_back(cell);
          }
          ii[l] = cur;
        }
        id = _mm512_load_si512(ii);
      }
    }
    if (!kCountOnly) _mm512_storeu_si512(out + t, id);
  }
  return detail::DenseRefineRange(a, dense, fresh, t, a.hi);
}

template <bool kMasked, bool kCountOnly>
uint32_t Dense1Level16K(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  return a.keys_out != nullptr
             ? Dense1Level16<kMasked, kCountOnly, true>(a, dense, fresh)
             : Dense1Level16<kMasked, kCountOnly, false>(a, dense, fresh);
}

uint32_t Avx512Dense(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  if (a.level_count == 1) {
    const bool masked = a.live != nullptr;
    const bool count_only = a.out == nullptr;
    if (masked) {
      return count_only ? Dense1Level16K<true, true>(a, dense, fresh)
                        : Dense1Level16K<true, false>(a, dense, fresh);
    }
    return count_only ? Dense1Level16K<false, true>(a, dense, fresh)
                      : Dense1Level16K<false, false>(a, dense, fresh);
  }
  const __m512i vvacant = _mm512_set1_epi32(-1);
  const bool count_only = a.out == nullptr;
  size_t t = a.lo;
  // 2x unrolled main loop: both gathers issue before either fixup, which
  // hides most of the gather latency (this is where the bulk of the
  // speedup over one-batch-at-a-time comes from). Batch 1's gather may
  // race batch 0's inserts and read a stale kVacant — harmless, the lane
  // just takes the fixup path, which re-reads the cell after batch 0's
  // fixup completed.
  for (; t + 32 <= a.hi; t += 32) {
    __mmask16 m0 = 0xffff;
    __mmask16 m1 = 0xffff;
    if (a.live != nullptr) {
      const __m256i bytes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.live + t));
      const __mmask32 lm =
          _mm256_cmpneq_epi8_mask(bytes, _mm256_setzero_si256());
      m0 = static_cast<__mmask16>(lm);
      m1 = static_cast<__mmask16>(lm >> 16);
    }
    const __m512i key0 = PackedKeys16(a, t, m0);
    const __m512i key1 = PackedKeys16(a, t + 16, m1);
    __m512i id0 = _mm512_mask_i32gather_epi32(vvacant, m0, key0, dense, 4);
    __m512i id1 = _mm512_mask_i32gather_epi32(vvacant, m1, key1, dense, 4);
    const __mmask16 miss0 = _mm512_mask_cmpeq_epi32_mask(m0, id0, vvacant);
    const __mmask16 miss1 = _mm512_mask_cmpeq_epi32_mask(m1, id1, vvacant);
    // Fixups strictly in tuple order: batch 0 before batch 1.
    if (miss0 != 0) {
      fresh = FixupMisses16(dense, key0, count_only ? nullptr : &id0, miss0,
                            fresh, a.keys_out);
    }
    if (miss1 != 0) {
      fresh = FixupMisses16(dense, key1, count_only ? nullptr : &id1, miss1,
                            fresh, a.keys_out);
    }
    if (!count_only) {
      _mm512_storeu_si512(a.out + t, id0);
      _mm512_storeu_si512(a.out + t + 16, id1);
    }
  }
  for (; t + 16 <= a.hi; t += 16) {
    __mmask16 m = 0xffff;
    if (a.live != nullptr) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.live + t));
      m = _mm_cmpneq_epi8_mask(bytes, _mm_setzero_si128());
      if (m == 0) continue;
    }
    const __m512i key = PackedKeys16(a, t, m);
    __m512i id = _mm512_mask_i32gather_epi32(vvacant, m, key, dense, 4);
    const __mmask16 miss = _mm512_mask_cmpeq_epi32_mask(m, id, vvacant);
    if (miss != 0) {
      fresh = FixupMisses16(dense, key, count_only ? nullptr : &id, miss,
                            fresh, a.keys_out);
    }
    if (!count_only) _mm512_storeu_si512(a.out + t, id);
  }
  return detail::DenseRefineRange(a, dense, fresh, t, a.hi);
}

/// 8-lane splitmix64 — vpmullq (DQ) makes this three multiplies, no
/// cross-product emulation.
inline __m512i Mix64x8(__m512i x) {
  x = _mm512_add_epi64(
      x, _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = _mm512_mullo_epi64(
      _mm512_xor_si512(x, _mm512_srli_epi64(x, 30)),
      _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = _mm512_mullo_epi64(
      _mm512_xor_si512(x, _mm512_srli_epi64(x, 27)),
      _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

inline __m512i HashOf8(__m512i key) {
  return _mm512_xor_si512(
      _mm512_set1_epi64(static_cast<long long>(detail::kHashSeed)),
      _mm512_add_epi64(
          Mix64x8(key),
          _mm512_set1_epi64(static_cast<long long>(detail::kHashAdd))));
}

uint32_t Avx512Flat(const RefineArgs& a, util::FlatIdTable& table,
                    uint32_t fresh) {
  constexpr size_t kBlock = 128;
  constexpr size_t kPrefetchAhead = 8;
  alignas(64) uint64_t keys[kBlock];
  alignas(64) uint64_t hashes[kBlock];

  for (size_t b = a.lo; b < a.hi; b += kBlock) {
    const size_t be = std::min(a.hi, b + kBlock);
    size_t t = b;
    for (; t + 8 <= be; t += 8) {
      __m512i key;
      if (a.base_ids != nullptr) {
        const __m256i id32 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.base_ids + t));
        if (a.base_groups <= 0xffffffffull) {
          __mmask8 m = 0xff;
          if (a.live != nullptr) {
            const __m128i bytes = _mm_loadl_epi64(
                reinterpret_cast<const __m128i*>(a.live + t));
            m = static_cast<__mmask8>(
                _mm_cmpneq_epi8_mask(bytes, _mm_setzero_si128()) & 0xff);
          }
          const __m256i vgroups =
              _mm256_set1_epi32(static_cast<int>(a.base_groups));
          if (_mm256_mask_cmpge_epu32_mask(m, id32, vgroups) != 0) {
            detail::ThrowBadId();
          }
        }
        key = _mm512_cvtepu32_epi64(id32);
      } else {
        key = _mm512_setzero_si512();
      }
      for (size_t j = 0; j < a.level_count; ++j) {
        const Level& lv = a.levels[j];
        __m256i c =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lv.codes + t));
        if (lv.has_nulls) {
          const __mmask8 isnull = _mm256_cmpeq_epi32_mask(
              c, _mm256_set1_epi32(static_cast<int>(relation::kNullCode)));
          c = _mm256_mask_mov_epi32(
              c, isnull, _mm256_set1_epi32(static_cast<int>(lv.null_slot)));
        }
        key = _mm512_add_epi64(
            _mm512_mullo_epi64(
                key, _mm512_set1_epi64(static_cast<long long>(lv.stride))),
            _mm512_cvtepu32_epi64(c));
      }
      _mm512_store_si512(keys + (t - b), key);
      _mm512_store_si512(hashes + (t - b), HashOf8(key));
    }
    for (; t < be; ++t) {
      if (a.live != nullptr && a.live[t] == 0) {
        keys[t - b] = 0;
        hashes[t - b] = 0;
        continue;
      }
      keys[t - b] = detail::PackedKey(a, t);
      hashes[t - b] = util::FlatIdTable::HashOf(keys[t - b]);
    }
    for (t = b; t < be; ++t) {
      if (a.live != nullptr && a.live[t] == 0) continue;
      if (t + kPrefetchAhead < be) {
        table.PrefetchHash(hashes[t + kPrefetchAhead - b]);
      }
      bool inserted = false;
      const uint32_t id =
          table.FindOrInsertHashed(keys[t - b], hashes[t - b], fresh,
                                   &inserted);
      if (inserted) {
        if (a.keys_out != nullptr) a.keys_out->push_back(keys[t - b]);
        ++fresh;
      }
      if (a.out != nullptr) a.out[t] = id;
    }
  }
  return fresh;
}

void Avx512Remap(uint32_t* ids, size_t lo, size_t hi, const uint32_t* remap) {
  size_t t = lo;
  for (; t + 16 <= hi; t += 16) {
    const __m512i local = _mm512_loadu_si512(ids + t);
    const __m512i global = _mm512_i32gather_epi32(local, remap, 4);
    _mm512_storeu_si512(ids + t, global);
  }
  detail::RemapRange(ids, t, hi, remap);
}

}  // namespace

const KernelSet kAvx512Kernels{util::CpuTier::kAvx512, Avx512Dense,
                               Avx512Flat, Avx512Remap};

}  // namespace fdevolve::query::kernels

#endif  // FDEVOLVE_X86_KERNELS
