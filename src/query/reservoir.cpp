#include "query/reservoir.h"

#include <stdexcept>
#include <string>

namespace fdevolve::query {

ReservoirSampler::ReservoirSampler(const relation::Relation* rel,
                                   size_t capacity, uint64_t seed)
    : rel_(rel),
      capacity_(capacity == 0 ? 1 : capacity),
      seed_(seed),
      rng_(seed),
      observed_version_(0),
      observed_compactions_(rel->compactions()) {
  slots_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  Sync();
}

ReservoirSampler::ReservoirSampler(const relation::Relation* rel,
                                   const ReservoirState& state)
    : rel_(rel),
      capacity_(state.capacity == 0 ? 1 : static_cast<size_t>(state.capacity)),
      seed_(state.seed),
      rng_(util::Rng::FromState(state.rng_state)),
      seen_(state.seen),
      slots_(state.rows),
      observed_version_(static_cast<size_t>(state.observed_version)),
      observed_compactions_(static_cast<size_t>(state.observed_compactions)) {
  if (observed_version_ != rel_->version()) {
    throw std::invalid_argument(
        "ReservoirSampler: state captured at watermark " +
        std::to_string(observed_version_) + " but the relation is at " +
        std::to_string(rel_->version()) +
        " (state paired with the wrong relation snapshot)");
  }
  if (observed_compactions_ != rel_->compactions()) {
    throw std::invalid_argument(
        "ReservoirSampler: state captured at compaction count " +
        std::to_string(observed_compactions_) + " but the relation has " +
        std::to_string(rel_->compactions()));
  }
  if (slots_.size() > capacity_) {
    throw std::invalid_argument(
        "ReservoirSampler: state holds more slots than its capacity");
  }
  if (seen_ < slots_.size() || seen_ > observed_version_) {
    throw std::invalid_argument(
        "ReservoirSampler: inconsistent offered-row counter in state");
  }
  for (uint32_t row : slots_) {
    if (row >= rel_->version()) {
      throw std::invalid_argument(
          "ReservoirSampler: state references physical row " +
          std::to_string(row) + " beyond the relation watermark");
    }
  }
}

void ReservoirSampler::Offer(uint32_t t) {
  ++seen_;
  if (slots_.size() < capacity_) {
    slots_.push_back(t);
    return;
  }
  // Replace a uniform slot with probability capacity/seen: one draw per
  // offer once full, which is what makes the slot sequence a pure
  // function of (seed, offered-row sequence) — the determinism invariant.
  const uint64_t j = rng_.Below(seen_);
  if (j < capacity_) slots_[static_cast<size_t>(j)] = t;
}

void ReservoirSampler::Rebuild() {
  slots_.clear();
  seen_ = 0;
  const size_t n = rel_->version();
  for (size_t t = 0; t < n; ++t) Offer(static_cast<uint32_t>(t));
}

void ReservoirSampler::Sync() {
  if (rel_->compactions() != observed_compactions_) {
    observed_compactions_ = rel_->compactions();
    Rebuild();
    observed_version_ = rel_->version();
    return;
  }
  const size_t version = rel_->version();
  for (size_t t = observed_version_; t < version; ++t) {
    Offer(static_cast<uint32_t>(t));
  }
  observed_version_ = version;
}

std::vector<uint32_t> ReservoirSampler::LiveMembers() const {
  std::vector<uint32_t> live;
  live.reserve(slots_.size());
  for (uint32_t row : slots_) {
    if (rel_->is_live(row)) live.push_back(row);
  }
  return live;
}

ReservoirState ReservoirSampler::State() const {
  ReservoirState s;
  s.capacity = capacity_;
  s.seed = seed_;
  s.rng_state = rng_.state();
  s.seen = seen_;
  s.rows = slots_;
  s.observed_version = observed_version_;
  s.observed_compactions = observed_compactions_;
  return s;
}

}  // namespace fdevolve::query
