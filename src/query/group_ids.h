// Dense group-id assignment: the shared primitive behind distinct counting
// (CB method) and clustering construction (EB baseline).
//
// A refinement chain combines the current group ids with the dictionary
// codes of a sequence of columns. Chains execute as *fused segments*: each
// segment packs as many consecutive levels as fit into one mixed-radix key
// (query/kernels.h) and sweeps the relation once — a 3-attribute GroupBy
// is typically ONE pass, not three. Within a segment, three execution
// paths share the loop, each provided by the runtime-dispatched SIMD
// kernel layer (baseline scalar / SSE4.2 / AVX2 / AVX-512, selected once
// per process by query::kernels::Active()):
//
//   * dense — when the segment radix (group_count * Π strides) is
//     O(tuples), a direct-indexed scratch array maps the packed key to the
//     next id with no hashing at all;
//   * flat  — otherwise an open-addressing table (util::FlatIdTable) keyed
//     on the packed u64 key takes over; no per-node allocation, linear
//     probing, power-of-two capacity;
//   * parallel — with `RefineScratch::threads > 1` and enough tuples
//     (more than `RefineScratch::grain`), the segment is range-partitioned
//     across the shared util::ThreadPool: each chunk assigns *local*
//     first-appearance ids, a sequential chunk-order merge maps local ids
//     to global ones, and a second parallel sweep rewrites the output.
//     Because the merge walks chunks in range order and each chunk's key
//     list is in local first-appearance order, the global ids are
//     bit-identical to what the sequential scan assigns — and because the
//     chunks run SIMD kernels, parallel and vectorized execution stack.
//
// All paths assign fresh ids in (logical) scan order, so ids remain
// deterministic and dense in order of first appearance — regardless of
// thread count. Passing a RefineScratch lets long-lived callers
// (DistinctEvaluator, the EB ranking loop) reuse the scratch buffers across
// passes; the overloads without one are conveniences that pay a fresh
// allocation and always run sequentially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/kernels.h"
#include "relation/relation.h"
#include "util/flat_table.h"

namespace fdevolve::query {

/// \brief Partition of the tuples of a relation by equality on an attribute
/// set.
///
/// `ids[t]` is a dense cluster id in [0, group_count); ids are assigned in
/// order of first appearance, so they are deterministic for a given relation
/// — the parallel execution path reproduces exactly the same assignment.
/// Invariant (enforced by the refinement engine, required of hand-built
/// instances): every id is < group_count.
///
/// Groupings cover every PHYSICAL row of the relation, tombstoned ones
/// included — that is what keeps ids append-stable under deletions.
/// `group_count` therefore counts groups over physical rows; live-only
/// distinct counts come from the count-only entry points below or from
/// query::DistinctEvaluator's per-group live refcounts.
struct Grouping {
  std::vector<uint32_t> ids;   ///< per-tuple dense group id
  size_t group_count = 0;      ///< number of distinct groups
};

/// \brief Reusable scratch buffers and execution knobs for refinement
/// passes.
///
/// Default-constructible and cheap when unused; a long-lived instance makes
/// repeated GroupBy/RefineBy/count calls allocation-free in steady state.
///
/// Thread-safety: a RefineScratch belongs to exactly one logical caller at
/// a time — two threads must not share one. The parallel pass hands each
/// *chunk* its own `ChunkState`, so internal parallelism never contends on
/// shared buffers.
struct RefineScratch {
  std::vector<uint32_t> dense;     ///< direct-indexed packed-key map
  util::FlatIdTable table;         ///< open-addressing fallback
  std::vector<uint32_t> chain_ids; ///< intermediate ids for count-only chains
  std::vector<kernels::Level> levels; ///< per-chain kernel level descriptors

  /// Execution width for refinement passes over this scratch.
  /// 1 (the default) is the exact sequential code path; 0 resolves to
  /// `hardware_concurrency`; k > 1 range-partitions large passes into at
  /// most k chunks on the shared util::ThreadPool.
  int threads = 1;

  /// Minimum tuples per chunk: passes shorter than `grain` stay sequential,
  /// so unit-test-sized relations never pay parallel overhead. Exposed so
  /// differential tests can force chunking on small inputs.
  size_t grain = size_t{1} << 15;

  /// Per-chunk state of one parallel pass ("thread-local" by chunk index,
  /// which is what keeps the merge deterministic). Each chunk runs the
  /// same dense-or-flat choice as a sequential pass, with the admission
  /// test scaled to its chunk length.
  struct ChunkState {
    std::vector<uint32_t> dense; ///< chunk-local direct-indexed map
    util::FlatIdTable table;     ///< local (id, code) -> local id partial
    std::vector<uint64_t> keys;  ///< key of each local id, in local id order
    std::vector<uint32_t> remap; ///< local id -> merged global id
  };
  std::vector<ChunkState> chunks; ///< sized to the pass width on demand
  util::FlatIdTable merge;        ///< global table for the chunk-order merge
};

/// \brief Groups all tuples of `rel` by the attributes in `attrs`.
///
/// Empty `attrs` puts every tuple in one group (the projection on zero
/// attributes has exactly one distinct value), matching relational
/// semantics. NULLs compare equal to each other for grouping purposes; the
/// FD layer never passes NULL-able attributes here, but the clustering
/// layer may.
///
/// A single NULL-free attribute is answered by copying the column's
/// dictionary codes (already dense first-appearance ids); otherwise cost is
/// O(tuples * |attrs|) via per-attribute partition refinement, parallelized
/// per `scratch.threads`.
///
/// \param scratch reusable buffers + the `threads` execution knob; the
///        overload without one runs sequentially on fresh buffers.
Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs);
Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs,
                 RefineScratch& scratch);

/// \brief Refines an existing grouping by one extra attribute.
///
/// This is the incremental step the repair search uses so that evaluating
/// candidate FA : XA -> Y reuses the X grouping instead of regrouping from
/// scratch.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr);
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr, RefineScratch& scratch);

/// \brief Refines an existing grouping by a whole attribute set.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs);
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs, RefineScratch& scratch);

/// \brief |GroupBy(rel, attrs).group_count| without materializing
/// `Grouping::ids`, restricted to the relation's LIVE rows.
///
/// On an append-only relation a single attribute is answered straight
/// from the column dictionary (dict_size + has_nulls) with no per-tuple
/// work at all; longer sets run the refinement chain but skip writing ids
/// on the final pass (the parallel path still merges chunk key sets,
/// which is what produces the global count). When the relation carries
/// tombstones the final (count-only) pass skips dead rows — the count is
/// the number of groups with at least one live row — while intermediate
/// materializing passes still cover every physical row, keeping their ids
/// append-stable.
size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs);
size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs, RefineScratch& scratch);

/// \brief Number of groups RefineBy(rel, base, attrs) would produce with
/// at least one live row, without materializing the refined ids. `base`
/// must cover every physical row (dead included), which is what GroupBy /
/// RefineBy produce.
size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs);
size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs, RefineScratch& scratch);

/// \brief Number of groups induced jointly by two precomputed groupings,
/// i.e. |C_{A ∪ B}| given C_A and C_B — without touching column data.
size_t JointGroupCount(const Grouping& a, const Grouping& b);

}  // namespace fdevolve::query
