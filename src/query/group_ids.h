// Dense group-id assignment: the shared primitive behind distinct counting
// (CB method) and clustering construction (EB baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace fdevolve::query {

/// Partition of the tuples of a relation by equality on an attribute set.
/// `ids[t]` is a dense cluster id in [0, group_count); ids are assigned in
/// order of first appearance, so they are deterministic for a given relation.
struct Grouping {
  std::vector<uint32_t> ids;
  size_t group_count = 0;
};

/// Groups all tuples of `rel` by the attributes in `attrs`.
///
/// Empty `attrs` puts every tuple in one group (the projection on zero
/// attributes has exactly one distinct value), matching relational semantics.
/// NULLs compare equal to each other for grouping purposes; the FD layer
/// never passes NULL-able attributes here, but the clustering layer may.
///
/// Cost: O(tuples * |attrs|) expected, via per-attribute partition
/// refinement with a hash table keyed on (current id, next code).
Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs);

/// Refines an existing grouping by one extra attribute. This is the
/// incremental step the repair search uses so that evaluating candidate
/// FA : XA -> Y reuses the X grouping instead of regrouping from scratch.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr);

/// Refines an existing grouping by a whole attribute set.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs);

/// Number of groups induced jointly by two precomputed groupings, i.e.
/// |C_{A ∪ B}| given C_A and C_B — without touching column data.
size_t JointGroupCount(const Grouping& a, const Grouping& b);

}  // namespace fdevolve::query
