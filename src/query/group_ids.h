// Dense group-id assignment: the shared primitive behind distinct counting
// (CB method) and clustering construction (EB baseline).
//
// Every refinement pass combines the current group ids with one column's
// dictionary codes. Two execution paths share that loop:
//
//   * dense — when group_count * (dict_size + has_nulls) is O(tuples), a
//     direct-indexed scratch array maps (id, code) to the next id with no
//     hashing at all;
//   * flat  — otherwise an open-addressing table (util::FlatIdTable) keyed
//     on (id << 32 | code) takes over; no per-node allocation, linear
//     probing, power-of-two capacity.
//
// Both paths assign fresh ids in scan order, so ids remain deterministic
// and dense in order of first appearance. Passing a RefineScratch lets
// long-lived callers (DistinctEvaluator, the EB ranking loop) reuse the
// scratch buffers across passes; the overloads without one are conveniences
// that pay a fresh allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "relation/relation.h"
#include "util/flat_table.h"

namespace fdevolve::query {

/// Partition of the tuples of a relation by equality on an attribute set.
/// `ids[t]` is a dense cluster id in [0, group_count); ids are assigned in
/// order of first appearance, so they are deterministic for a given relation.
/// Invariant (enforced by the refinement engine, required of hand-built
/// instances): every id is < group_count.
struct Grouping {
  std::vector<uint32_t> ids;
  size_t group_count = 0;
};

/// Reusable scratch buffers for refinement passes. Default-constructible and
/// cheap when unused; a long-lived instance makes repeated GroupBy/RefineBy/
/// count calls allocation-free in steady state.
struct RefineScratch {
  std::vector<uint32_t> dense;     ///< direct-indexed (id * stride + code) map
  util::FlatIdTable table;         ///< open-addressing fallback
  std::vector<uint32_t> chain_ids; ///< intermediate ids for count-only chains
};

/// Groups all tuples of `rel` by the attributes in `attrs`.
///
/// Empty `attrs` puts every tuple in one group (the projection on zero
/// attributes has exactly one distinct value), matching relational semantics.
/// NULLs compare equal to each other for grouping purposes; the FD layer
/// never passes NULL-able attributes here, but the clustering layer may.
///
/// A single NULL-free attribute is answered by copying the column's
/// dictionary codes (already dense first-appearance ids); otherwise cost is
/// O(tuples * |attrs|) via per-attribute partition refinement.
Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs);
Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs,
                 RefineScratch& scratch);

/// Refines an existing grouping by one extra attribute. This is the
/// incremental step the repair search uses so that evaluating candidate
/// FA : XA -> Y reuses the X grouping instead of regrouping from scratch.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr);
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr, RefineScratch& scratch);

/// Refines an existing grouping by a whole attribute set.
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs);
Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs, RefineScratch& scratch);

/// |GroupBy(rel, attrs).group_count| without materializing `Grouping::ids`.
/// A single attribute is answered straight from the column dictionary
/// (dict_size + has_nulls) with no per-tuple work at all; longer sets run
/// the refinement chain but skip writing ids on the final pass.
size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs);
size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs, RefineScratch& scratch);

/// Number of groups RefineBy(rel, base, attrs) would produce, without
/// materializing the refined ids.
size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs);
size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs, RefineScratch& scratch);

/// Number of groups induced jointly by two precomputed groupings, i.e.
/// |C_{A ∪ B}| given C_A and C_B — without touching column data.
size_t JointGroupCount(const Grouping& a, const Grouping& b);

}  // namespace fdevolve::query
