#include "query/distinct.h"

#include <algorithm>

namespace fdevolve::query {
namespace {

size_t SortDistinct(const relation::Relation& rel,
                    const relation::AttrSet& attrs) {
  size_t n = rel.tuple_count();
  if (n == 0) return 0;
  auto cols = attrs.ToVector();
  if (cols.empty()) return 1;

  // Materialize composite keys, sort, count boundaries. This mirrors what a
  // sort-based COUNT DISTINCT plan does in a DBMS.
  std::vector<std::vector<uint32_t>> keys(n);
  for (size_t t = 0; t < n; ++t) {
    keys[t].reserve(cols.size());
    for (int c : cols) keys[t].push_back(rel.column(c).code(t));
  }
  std::sort(keys.begin(), keys.end());
  size_t distinct = 1;
  for (size_t t = 1; t < n; ++t) {
    if (keys[t] != keys[t - 1]) ++distinct;
  }
  return distinct;
}

}  // namespace

size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy) {
  if (strategy == DistinctStrategy::kSort) return SortDistinct(rel, attrs);
  return GroupBy(rel, attrs).group_count;
}

size_t DistinctEvaluator::Count(const relation::AttrSet& attrs) {
  return GroupFor(attrs).group_count;
}

const Grouping& DistinctEvaluator::GroupFor(const relation::AttrSet& attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  ++misses_;

  // Find the largest cached subset to refine from; fall back to scratch.
  // A linear scan over the cache is fine: the cache holds one entry per
  // *evaluated* attribute set, and each lookup saves a full O(n·|attrs|)
  // regroup when it hits.
  const relation::AttrSet* best_key = nullptr;
  const Grouping* best = nullptr;
  int best_count = -1;
  for (const auto& [key, grouping] : cache_) {
    if (key.SubsetOf(attrs)) {
      int c = key.Count();
      if (c > best_count) {
        best_count = c;
        best_key = &key;
        best = &grouping;
      }
    }
  }

  Grouping g = (best != nullptr)
                   ? RefineBy(rel_, *best, attrs.Minus(*best_key))
                   : GroupBy(rel_, attrs);
  auto [ins, _] = cache_.emplace(attrs, std::move(g));
  return ins->second;
}

}  // namespace fdevolve::query
