#include "query/distinct.h"

#include <algorithm>
#include <numeric>

#include "util/thread_pool.h"

namespace fdevolve::query {
namespace {

size_t SortDistinct(const relation::Relation& rel,
                    const relation::AttrSet& attrs) {
  const size_t n = rel.tuple_count();
  if (n == 0) return 0;
  const auto cols = attrs.ToVector();
  if (cols.empty()) return 1;
  const size_t k = cols.size();

  // One flat row-major key buffer + an index sort. This mirrors what a
  // sort-based COUNT DISTINCT plan does in a DBMS, without the per-row
  // vector allocations a naive materialization would pay.
  std::vector<uint32_t> keys(n * k);
  for (size_t j = 0; j < k; ++j) {
    const auto& codes = rel.column(cols[j]).codes();
    for (size_t t = 0; t < n; ++t) keys[t * k + j] = codes[t];
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  auto row = [&](uint32_t t) { return keys.data() + static_cast<size_t>(t) * k; };
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t* pa = row(a);
    const uint32_t* pb = row(b);
    for (size_t j = 0; j < k; ++j) {
      if (pa[j] != pb[j]) return pa[j] < pb[j];
    }
    return false;
  });
  size_t distinct = 1;
  for (size_t t = 1; t < n; ++t) {
    if (!std::equal(row(order[t]), row(order[t]) + k, row(order[t - 1]))) {
      ++distinct;
    }
  }
  return distinct;
}

}  // namespace

size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy, int threads) {
  if (strategy == DistinctStrategy::kSort) return SortDistinct(rel, attrs);
  RefineScratch scratch;
  scratch.threads = util::ResolveThreads(threads);
  return GroupCountBy(rel, attrs, scratch);
}

DistinctEvaluator::DistinctEvaluator(const relation::Relation& rel,
                                     int threads)
    : rel_(rel) {
  scratch_.threads = util::ResolveThreads(threads);
}

size_t DistinctEvaluator::Count(const relation::AttrSet& attrs) {
  if (auto memo = counts_.find(attrs); memo != counts_.end()) {
    return memo->second;
  }
  size_t result;
  if (rel_.tuple_count() == 0 || attrs.Empty() || attrs.Count() == 1) {
    // O(1) via the dictionary fast path; not worth counting as a miss.
    result = GroupCountBy(rel_, attrs, scratch_);
  } else if (auto it = cache_.find(attrs); it != cache_.end()) {
    result = it->second.group_count;
  } else {
    ++misses_;
    SubsetMatch best = BestCachedSubset(attrs);
    relation::AttrSet gap = best.key ? attrs.Minus(*best.key) : attrs;
    if (gap.Count() <= 1) {
      result = RefineCountBy(rel_, *best.grouping, gap, scratch_);
    } else {
      // Materialize all but one missing attribute: the repair search asks
      // for |π_XA_1Y|, |π_XA_2Y|, ... and this caches the shared base once
      // instead of regrouping it per sibling. Prefer dropping an attribute
      // whose complement is already cached (the shared base may sit on
      // either side of the index order); otherwise drop the largest.
      const auto gap_attrs = gap.ToVector();
      int dropped = gap_attrs.back();
      for (int a : gap_attrs) {
        relation::AttrSet head = attrs;
        head.Remove(a);
        if (cache_.find(head) != cache_.end()) {
          dropped = a;
          break;
        }
      }
      relation::AttrSet head = attrs;
      head.Remove(dropped);
      const Grouping& base = GroupFor(head);
      relation::AttrSet tail;
      tail.Add(dropped);
      result = RefineCountBy(rel_, base, tail, scratch_);
    }
  }
  counts_.emplace(attrs, result);
  return result;
}

const Grouping& DistinctEvaluator::GroupFor(const relation::AttrSet& attrs) {
  if (auto it = cache_.find(attrs); it != cache_.end()) return it->second;
  ++misses_;
  SubsetMatch best = BestCachedSubset(attrs);
  Grouping g = best.key
                   ? RefineBy(rel_, *best.grouping, attrs.Minus(*best.key),
                              scratch_)
                   : GroupBy(rel_, attrs, scratch_);
  return Insert(attrs, std::move(g));
}

DistinctEvaluator::SubsetMatch DistinctEvaluator::BestCachedSubset(
    const relation::AttrSet& attrs) const {
  SubsetMatch m;
  int top = std::min<int>(attrs.Count(), static_cast<int>(by_size_.size()) - 1);
  for (int c = top; c >= 0 && m.key == nullptr; --c) {
    for (const relation::AttrSet& key : by_size_[static_cast<size_t>(c)]) {
      if (key.SubsetOf(attrs)) {
        auto it = cache_.find(key);
        m.key = &it->first;
        m.grouping = &it->second;
        break;
      }
    }
  }
  return m;
}

const Grouping& DistinctEvaluator::Insert(const relation::AttrSet& attrs,
                                          Grouping g) {
  counts_.emplace(attrs, g.group_count);
  auto [it, inserted] = cache_.emplace(attrs, std::move(g));
  if (inserted) {
    const auto bucket = static_cast<size_t>(attrs.Count());
    if (by_size_.size() <= bucket) by_size_.resize(bucket + 1);
    by_size_[bucket].push_back(attrs);
  }
  return it->second;
}

}  // namespace fdevolve::query
