#include "query/distinct.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fdevolve::query {
namespace {

size_t SortDistinct(const relation::Relation& rel,
                    const relation::AttrSet& attrs) {
  const size_t n = rel.live_count();
  if (n == 0) return 0;
  const auto cols = attrs.ToVector();
  if (cols.empty()) return 1;
  const size_t k = cols.size();

  // One flat row-major key buffer + an index sort, over the live rows
  // only. This mirrors what a sort-based COUNT DISTINCT plan does in a
  // DBMS, without the per-row vector allocations a naive materialization
  // would pay.
  std::vector<uint32_t> rows;
  rows.reserve(n);
  for (size_t t = 0; t < rel.tuple_count(); ++t) {
    if (rel.is_live(t)) rows.push_back(static_cast<uint32_t>(t));
  }
  std::vector<uint32_t> keys(n * k);
  for (size_t j = 0; j < k; ++j) {
    const auto& codes = rel.column(cols[j]).codes();
    for (size_t t = 0; t < n; ++t) keys[t * k + j] = codes[rows[t]];
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  auto row = [&](uint32_t t) { return keys.data() + static_cast<size_t>(t) * k; };
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t* pa = row(a);
    const uint32_t* pb = row(b);
    for (size_t j = 0; j < k; ++j) {
      if (pa[j] != pb[j]) return pa[j] < pb[j];
    }
    return false;
  });
  size_t distinct = 1;
  for (size_t t = 1; t < n; ++t) {
    if (!std::equal(row(order[t]), row(order[t]) + k, row(order[t - 1]))) {
      ++distinct;
    }
  }
  return distinct;
}

}  // namespace

size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy, int threads) {
  if (strategy == DistinctStrategy::kSort) return SortDistinct(rel, attrs);
  RefineScratch scratch;
  scratch.threads = util::ResolveThreads(threads);
  return GroupCountBy(rel, attrs, scratch);
}

DistinctEvaluator::DistinctEvaluator(const relation::Relation& rel,
                                     int threads)
    : rel_(rel), watermark_(rel.version()) {
  scratch_.threads = util::ResolveThreads(threads);
  mutation_seen_ = rel.has_tombstones();
  tomb_pos_ = rel.deletion_log().size();
  epoch_seen_ = rel.mutation_epoch();
  compactions_seen_ = rel.compactions();
}

void DistinctEvaluator::MaybeAdvance() {
  if (rel_.version() != watermark_ || rel_.mutation_epoch() != epoch_seen_ ||
      rel_.compactions() != compactions_seen_) {
    Advance();
  }
}

void DistinctEvaluator::Advance() {
  if (rel_.compactions() != compactions_seen_) {
    // A compaction reassigned physical row ids and dictionary codes
    // wholesale — every cached grouping is meaningless now. Drop the lot
    // and restart from the compacted relation; because its encoded state
    // is bit-identical to a fresh build of the live rows, the rebuilt
    // caches reproduce fresh-rebuild results exactly.
    cache_.clear();
    counts_.clear();
    by_size_.clear();
    watermark_ = rel_.version();
    compactions_seen_ = rel_.compactions();
    epoch_seen_ = rel_.mutation_epoch();
    mutation_seen_ = rel_.has_tombstones();
    tomb_pos_ = rel_.deletion_log().size();
    return;
  }
  const size_t n = rel_.version();
  if (n < watermark_) {
    throw std::logic_error(
        "DistinctEvaluator::Advance: relation shrank below the watermark "
        "without a compaction — stale evaluator paired with a mutated "
        "relation");
  }
  const bool appended = n != watermark_;
  const bool mutated = rel_.mutation_epoch() != epoch_seen_;
  if (!appended && !mutated) return;
  if (appended) {
    // Popcount-ascending bucket order advances every grouping's base
    // before the grouping itself, so dependent chains always read
    // already-extended base ids.
    for (const auto& bucket : by_size_) {
      for (const relation::AttrSet& key : bucket) {
        AdvanceGrouping(cache_.find(key)->second, n);
      }
    }
  }
  // Appends first, then deletions: a row appended and deleted between two
  // queries is first counted live by AdvanceGrouping and then decremented
  // by its deletion-log entry — refcount updates commute, so the net
  // state is exact.
  if (mutated) FoldDeletions();
  // Count memos: grouping-backed entries are refreshed from the advanced
  // state (live-group counts once refcounts are active); count-only memos
  // have no chain to extend and are dropped (they recompute on next use —
  // O(1) for the empty/single-attribute fast paths, one refinement chain
  // otherwise).
  for (auto it = counts_.begin(); it != counts_.end();) {
    auto backing = cache_.find(it->first);
    if (backing == cache_.end()) {
      it = counts_.erase(it);
    } else {
      const CachedGrouping& cg = backing->second;
      it->second = mutation_seen_ ? cg.live_groups : cg.grouping.group_count;
      ++it;
    }
  }
  watermark_ = n;
  epoch_seen_ = rel_.mutation_epoch();
}

void DistinctEvaluator::BuildLiveRefcounts(CachedGrouping& cg) {
  const Grouping& g = cg.grouping;
  const auto& bitmap = rel_.live_bitmap();
  cg.live.assign(g.group_count, 0u);
  cg.live_groups = 0;
  for (size_t t = 0; t < g.ids.size(); ++t) {
    if (!bitmap.empty() && bitmap[t] == 0) continue;
    if (cg.live[g.ids[t]]++ == 0) ++cg.live_groups;
  }
}

void DistinctEvaluator::FoldDeletions() {
  const auto& log = rel_.deletion_log();
  if (!mutation_seen_) {
    // First observed mutation: materialize refcounts for every cached
    // grouping in one scan each. Appends were folded first, so each
    // grouping covers the full bitmap.
    mutation_seen_ = true;
    for (auto& entry : cache_) BuildLiveRefcounts(entry.second);
    tomb_pos_ = log.size();
    return;
  }
  for (auto& entry : cache_) {
    CachedGrouping& cg = entry.second;
    for (size_t p = tomb_pos_; p < log.size(); ++p) {
      if (--cg.live[cg.grouping.ids[log[p]]] == 0) --cg.live_groups;
    }
  }
  tomb_pos_ = log.size();
}

void DistinctEvaluator::AdvanceGrouping(CachedGrouping& cg, size_t n) {
  Grouping& g = cg.grouping;
  const size_t prev = g.ids.size();
  if (cg.gap.empty()) {
    // The empty attribute set: every tuple in one group.
    g.ids.resize(n, 0u);
    g.group_count = n > 0 ? 1 : 0;
    cg.tabled = n;
    ExtendLiveRefcounts(cg, prev, n);
    return;
  }
  if (cg.levels.empty()) {
    // First advance of this grouping: create the chain and replay the
    // prefix through it below (cg.tabled == 0). The replay reproduces the
    // exact ids the build assigned — every build path (dense, flat,
    // parallel, dictionary fast path) assigns first-appearance ids in
    // scan order, which is precisely what the chained table walk does.
    cg.levels.resize(cg.gap.size());
    for (size_t j = 0; j < cg.gap.size(); ++j) cg.levels[j].attr = cg.gap[j];
    cg.tabled = 0;
  }

  const std::vector<uint32_t>* base_ids = nullptr;
  if (cg.has_base) {
    base_ids = &cache_.find(cg.base)->second.grouping.ids;
  }
  const size_t k = cg.levels.size();
  std::vector<const uint32_t*> codes(k);
  for (size_t j = 0; j < k; ++j) {
    codes[j] = rel_.column(cg.levels[j].attr).codes().data();
  }

  // No reserve(n) here: an exact-size reserve would reallocate on every
  // advance (quadratic copying under frequent small batches); push_back's
  // geometric growth amortizes to O(1) per appended row.
  const size_t have = g.ids.size();
  for (size_t t = cg.tabled; t < n; ++t) {
    uint32_t id = base_ids ? (*base_ids)[t] : 0u;
    for (size_t j = 0; j < k; ++j) {
      CachedGrouping::Level& lv = cg.levels[j];
      const uint64_t key = (static_cast<uint64_t>(id) << 32) | codes[j][t];
      bool inserted = false;
      id = lv.table.FindOrInsert(key, lv.group_count, &inserted);
      if (inserted) ++lv.group_count;
    }
    if (t < have) {
      // Prefix replay: the chain walk must agree with the ids the build
      // produced; a mismatch means a refinement path broke first-
      // appearance order.
      assert(g.ids[t] == id);
    } else {
      g.ids.push_back(id);
    }
  }
  g.group_count = cg.levels.back().group_count;
  cg.tabled = n;
  ExtendLiveRefcounts(cg, prev, n);
}

void DistinctEvaluator::ExtendLiveRefcounts(CachedGrouping& cg, size_t from,
                                            size_t to) {
  if (!mutation_seen_ || to <= from) return;
  // Appended rows are always live at append time; if one was deleted again
  // before this advance, its deletion-log entry (folded after appends)
  // takes the refcount back down.
  const Grouping& g = cg.grouping;
  cg.live.resize(g.group_count, 0u);
  for (size_t t = from; t < to; ++t) {
    if (cg.live[g.ids[t]]++ == 0) ++cg.live_groups;
  }
}

size_t DistinctEvaluator::Count(const relation::AttrSet& attrs) {
  MaybeAdvance();
  if (auto memo = counts_.find(attrs); memo != counts_.end()) {
    return memo->second;
  }
  size_t result;
  if (mutation_seen_) {
    // Tombstones active: the dictionary fast path is invalid and a
    // count-only memo would be dropped on every Advance, so route every
    // nontrivial query through a refcounted cached grouping — repeated
    // monitor checks then stay O(Δ) per mutation.
    if (rel_.live_count() == 0) {
      result = 0;
    } else if (attrs.Empty()) {
      result = 1;
    } else {
      GroupFor(attrs);  // ensures a refcounted cache entry exists
      result = cache_.find(attrs)->second.live_groups;
    }
  } else if (rel_.tuple_count() == 0 || attrs.Empty() || attrs.Count() == 1) {
    // O(1) via the dictionary fast path; not worth counting as a miss.
    result = GroupCountBy(rel_, attrs, scratch_);
  } else if (auto it = cache_.find(attrs); it != cache_.end()) {
    result = it->second.grouping.group_count;
  } else {
    ++misses_;
    SubsetMatch best = BestCachedSubset(attrs);
    relation::AttrSet gap = best.key ? attrs.Minus(*best.key) : attrs;
    if (gap.Count() <= 1) {
      result = RefineCountBy(rel_, *best.grouping, gap, scratch_);
    } else {
      // Materialize all but one missing attribute: the repair search asks
      // for |π_XA_1Y|, |π_XA_2Y|, ... and this caches the shared base once
      // instead of regrouping it per sibling. Prefer dropping an attribute
      // whose complement is already cached (the shared base may sit on
      // either side of the index order); otherwise drop the largest.
      const auto gap_attrs = gap.ToVector();
      int dropped = gap_attrs.back();
      for (int a : gap_attrs) {
        relation::AttrSet head = attrs;
        head.Remove(a);
        if (cache_.find(head) != cache_.end()) {
          dropped = a;
          break;
        }
      }
      relation::AttrSet head = attrs;
      head.Remove(dropped);
      const Grouping& base = GroupFor(head);
      relation::AttrSet tail;
      tail.Add(dropped);
      result = RefineCountBy(rel_, base, tail, scratch_);
    }
  }
  counts_.emplace(attrs, result);
  return result;
}

const Grouping& DistinctEvaluator::GroupFor(const relation::AttrSet& attrs) {
  MaybeAdvance();
  if (auto it = cache_.find(attrs); it != cache_.end()) {
    return it->second.grouping;
  }
  ++misses_;
  SubsetMatch best = BestCachedSubset(attrs);
  Grouping g = best.key
                   ? RefineBy(rel_, *best.grouping, attrs.Minus(*best.key),
                              scratch_)
                   : GroupBy(rel_, attrs, scratch_);
  return Insert(attrs, std::move(g), best.key);
}

DistinctEvaluator::SubsetMatch DistinctEvaluator::BestCachedSubset(
    const relation::AttrSet& attrs) const {
  SubsetMatch m;
  int top = std::min<int>(attrs.Count(), static_cast<int>(by_size_.size()) - 1);
  for (int c = top; c >= 0 && m.key == nullptr; --c) {
    for (const relation::AttrSet& key : by_size_[static_cast<size_t>(c)]) {
      if (key.SubsetOf(attrs)) {
        auto it = cache_.find(key);
        m.key = &it->first;
        m.grouping = &it->second.grouping;
        break;
      }
    }
  }
  return m;
}

const Grouping& DistinctEvaluator::Insert(const relation::AttrSet& attrs,
                                          Grouping g,
                                          const relation::AttrSet* base_key) {
  CachedGrouping cg;
  cg.grouping = std::move(g);
  if (base_key != nullptr) {
    cg.has_base = true;
    cg.base = *base_key;
    cg.gap = attrs.Minus(*base_key).ToVector();
  } else {
    cg.gap = attrs.ToVector();
  }
  if (mutation_seen_) BuildLiveRefcounts(cg);
  counts_.emplace(attrs,
                  mutation_seen_ ? cg.live_groups : cg.grouping.group_count);
  // Level tables are not built here: Advance() replays the prefix through
  // fresh tables the first time this grouping must be extended, so static
  // workloads never pay for them (cg.tabled stays 0 until then).
  auto [it, inserted] = cache_.emplace(attrs, std::move(cg));
  if (inserted) {
    const auto bucket = static_cast<size_t>(attrs.Count());
    if (by_size_.size() <= bucket) by_size_.resize(bucket + 1);
    by_size_[bucket].push_back(attrs);
  }
  return it->second.grouping;
}

}  // namespace fdevolve::query
