// Per-column statistics used for candidate-pool selection, cost planning,
// and reporting.
//
// All statistics are computed over the relation's LIVE rows — a tombstoned
// row contributes neither to distinct counts nor to NULL fractions, so the
// stats describe exactly the instance a fresh rebuild of the live rows
// would produce. On an append-only relation the dictionary answers ndv in
// O(1); under tombstones one occurrence-count scan per column is paid.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace fdevolve::query {

/// Summary of one column, over the relation's live rows.
struct ColumnStats {
  std::string name;
  size_t distinct_count = 0;  ///< distinct non-NULL values (ndv) among live rows
  size_t null_count = 0;      ///< NULL cells among live rows
  double null_fraction = 0.0; ///< null_count / live rows (0 when no live rows)
  bool is_unique = false;     ///< nonempty, NULL-free, every live value distinct

  /// Largest live group under π_{this column}: the maximum number of live
  /// rows sharing one value (NULLs count as one shared group). 0 when the
  /// relation has no live rows. A repair that adds this column can shrink
  /// the worst violating group to at most this size.
  size_t max_group_rows = 0;

  /// Mean encoded width in bytes of the distinct live values — the
  /// dictionary footprint per entry (string payload size, 8 bytes for
  /// numeric values). 0 when the column has no live non-NULL value. The
  /// cost planner uses this as the per-group key-build estimate.
  double avg_dict_width = 0.0;

  /// Distinct slots the column contributes to a grouping product: its ndv
  /// plus one shared slot for NULL when any live cell is NULL. This is the
  /// factor by which adding the column can multiply a projection count.
  size_t group_slots() const {
    return distinct_count + (null_count > 0 ? 1u : 0u);
  }
};

/// Computes stats for every column of `rel` over its live rows.
std::vector<ColumnStats> ComputeColumnStats(const relation::Relation& rel);

/// Cheap sound upper bound on |π_{X ∪ {added}}| given |π_X| = base_distinct:
///   |π_XZ| ≤ min(live_rows, |π_X| · slots(Z))
/// where slots(Z) counts Z's distinct values plus a NULL slot. The product
/// saturates (never wraps) so the bound stays sound for huge cardinalities.
size_t ProjectionUpperBound(size_t base_distinct, const ColumnStats& added,
                            size_t live_rows);

/// Saturating size_t product — returns SIZE_MAX instead of wrapping.
size_t SaturatingMul(size_t a, size_t b);

/// Attributes whose columns are UNIQUE over the live instance (candidate
/// keys of size one). The paper's §3/§6.3 discussion singles these out:
/// adding a UNIQUE attribute trivially repairs any FD but is a degenerate
/// choice.
relation::AttrSet UniqueAttrs(const relation::Relation& rel);

}  // namespace fdevolve::query
