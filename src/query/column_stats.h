// Per-column statistics used for candidate-pool selection, cost planning,
// and reporting.
//
// All statistics are computed over the relation's LIVE rows — a tombstoned
// row contributes neither to distinct counts nor to NULL fractions, so the
// stats describe exactly the instance a fresh rebuild of the live rows
// would produce. On an append-only relation the dictionary answers ndv in
// O(1); under tombstones one occurrence-count scan per column is paid.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace fdevolve::query {

/// Summary of one column, over the relation's live rows.
struct ColumnStats {
  std::string name;
  size_t distinct_count = 0;  ///< distinct non-NULL values (ndv) among live rows
  size_t null_count = 0;      ///< NULL cells among live rows
  double null_fraction = 0.0; ///< null_count / live rows (0 when no live rows)
  bool is_unique = false;     ///< nonempty, NULL-free, every live value distinct

  /// Mean encoded width in bytes of the distinct live values — the
  /// dictionary footprint per entry (string payload size, 8 bytes for
  /// numeric values). 0 when the column has no live non-NULL value. The
  /// cost planner uses this as the per-group key-build estimate.
  double avg_dict_width = 0.0;
};

/// Computes stats for every column of `rel` over its live rows.
std::vector<ColumnStats> ComputeColumnStats(const relation::Relation& rel);

/// Attributes whose columns are UNIQUE over the live instance (candidate
/// keys of size one). The paper's §3/§6.3 discussion singles these out:
/// adding a UNIQUE attribute trivially repairs any FD but is a degenerate
/// choice.
relation::AttrSet UniqueAttrs(const relation::Relation& rel);

}  // namespace fdevolve::query
