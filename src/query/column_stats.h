// Per-column statistics used for candidate-pool selection and reporting.
#pragma once

#include <string>
#include <vector>

#include "relation/relation.h"

namespace fdevolve::query {

/// Summary of one column.
struct ColumnStats {
  std::string name;
  size_t distinct_count = 0;  ///< distinct non-NULL values
  size_t null_count = 0;
  bool is_unique = false;  ///< every non-NULL value occurs exactly once
};

/// Computes stats for every column of `rel`.
std::vector<ColumnStats> ComputeColumnStats(const relation::Relation& rel);

/// Attributes whose columns are UNIQUE over the instance (candidate keys of
/// size one). The paper's §3/§6.3 discussion singles these out: adding a
/// UNIQUE attribute trivially repairs any FD but is a degenerate choice.
relation::AttrSet UniqueAttrs(const relation::Relation& rel);

}  // namespace fdevolve::query
