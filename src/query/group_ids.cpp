#include "query/group_ids.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/thread_pool.h"

namespace fdevolve::query {
namespace {

constexpr uint32_t kNoId = util::FlatIdTable::kVacant;

/// Dense-path admission test: the direct-indexed array costs one O(cells)
/// clear per pass, so it must stay within a small multiple of the per-tuple
/// work. Small absolute sizes are always allowed (the clear is free next to
/// the scan), larger ones only while cells stay O(n).
bool UseDense(size_t groups, size_t stride, size_t n) {
  if (stride == 0) return false;
  if (groups > (std::numeric_limits<size_t>::max)() / stride) return false;
  size_t cells = groups * stride;
  return cells <= std::max<size_t>(size_t{1} << 16, 4 * n);
}

/// One refinement pass: combines `base_ids` (nullptr = the trivial one-group
/// partition) with `col`'s dictionary codes. Writes the refined ids to `out`
/// unless it is nullptr (count-only), and returns the refined group count.
/// `out` may alias `base_ids`: each slot is read before it is written.
///
/// `live` (optional, count-only passes only): tombstone bitmap — rows with
/// live[t] == 0 are skipped, so the returned count is the number of groups
/// with at least one live row. Materializing passes must cover every
/// physical row (group ids are append-stable over physical order), so
/// callers pass live == nullptr whenever out != nullptr.
size_t RefinePass(const uint32_t* base_ids, size_t base_groups,
                  const relation::Column& col, size_t n, RefineScratch& s,
                  uint32_t* out, const uint8_t* live = nullptr) {
  if (n == 0) return 0;
  const uint32_t* codes = col.codes().data();
  const size_t dict = col.dict_size();
  const size_t stride = dict + (col.has_nulls() ? 1 : 0);
  uint32_t fresh = 0;
  if (UseDense(base_groups, stride, n)) {
    const size_t cells = base_groups * stride;
    if (s.dense.size() < cells) s.dense.resize(cells);
    std::fill(s.dense.begin(), s.dense.begin() + static_cast<ptrdiff_t>(cells),
              kNoId);
    for (size_t t = 0; t < n; ++t) {
      if (live != nullptr && live[t] == 0) continue;
      const uint32_t code = codes[t];
      const size_t c = code == relation::kNullCode ? dict : code;
      const size_t id_in = base_ids ? base_ids[t] : 0u;
      // Grouping is an open struct, so a hand-built base can lie about its
      // group_count; the direct-indexed path must not turn that into an
      // out-of-bounds write. One predictable branch per tuple.
      if (id_in >= base_groups) {
        throw std::invalid_argument("RefinePass: group id out of range");
      }
      const size_t cell = id_in * stride + c;
      uint32_t id = s.dense[cell];
      if (id == kNoId) {
        id = fresh++;
        s.dense[cell] = id;
      }
      if (out != nullptr) out[t] = id;
    }
  } else {
    s.table.Reset(n);  // a pass introduces at most n distinct (id, code) pairs
    for (size_t t = 0; t < n; ++t) {
      if (live != nullptr && live[t] == 0) continue;
      const size_t id_in = base_ids ? base_ids[t] : 0u;
      // Same contract as the dense branch: reject ids >= group_count, so a
      // malformed base fails identically regardless of which path runs.
      if (id_in >= base_groups) {
        throw std::invalid_argument("RefinePass: group id out of range");
      }
      const uint64_t key = (static_cast<uint64_t>(id_in) << 32) | codes[t];
      bool inserted = false;
      const uint32_t id = s.table.FindOrInsert(key, fresh, &inserted);
      if (inserted) ++fresh;
      if (out != nullptr) out[t] = id;
    }
  }
  return fresh;
}

/// Range-partitioned refinement pass (the `scratch.threads > 1` path).
///
/// Phase 1 (parallel)   — each chunk scans its tuple range and assigns
///   *local* first-appearance ids through its own FlatIdTable partial,
///   recording the (id, code) key of every local id in assignment order.
///   When materializing, local ids are written to `out` in place.
/// Phase 2 (sequential) — chunk key lists are merged in chunk (= range)
///   order through one global table. A chunk's key list is in local
///   first-appearance order and chunks cover ascending tuple ranges, so
///   the global ids this assigns are exactly the sequential scan's
///   first-appearance ids — the parallel path is bit-identical, not just
///   partition-equivalent.
/// Phase 3 (parallel)   — local ids in `out` are rewritten via each chunk's
///   local->global remap (skipped when count-only).
///
/// Each chunk picks dense or flat on its own, with the admission test
/// scaled to the *chunk* length: a chunk-local dense array costs its own
/// O(cells) clear, so per-chunk memory and clear time stay bounded the
/// same way the sequential pass bounds them (total extra memory across
/// chunks is O(n) cells). Dense or flat, the key recorded per fresh local
/// id is the same (id << 32 | raw code), so the merge cannot tell the
/// paths apart.
size_t ParallelRefinePass(const uint32_t* base_ids, size_t base_groups,
                          const relation::Column& col, size_t n,
                          RefineScratch& s, int width, uint32_t* out,
                          const uint8_t* live = nullptr) {
  const uint32_t* codes = col.codes().data();
  const size_t dict = col.dict_size();
  const size_t stride = dict + (col.has_nulls() ? 1 : 0);
  const size_t chunk_rows =
      (n + static_cast<size_t>(width) - 1) / static_cast<size_t>(width);
  // Shrink to the number of non-empty chunks: with width near n/grain a
  // trailing chunk can otherwise start past n, and its wrapped length
  // would poison the per-chunk dense-admission test.
  width = static_cast<int>((n + chunk_rows - 1) / chunk_rows);
  if (s.chunks.size() < static_cast<size_t>(width)) {
    s.chunks.resize(static_cast<size_t>(width));
  }
  util::ThreadPool& pool = util::ThreadPool::Global();

  // The parallel-for iterates chunk indices, not tuples: the tuple
  // partition is fixed here (chunk_rows) so phases 1 and 3 agree on it.
  pool.ParallelFor(
      static_cast<size_t>(width), 1, width,
      [&](int, size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          RefineScratch::ChunkState& cs = s.chunks[c];
          const size_t lo = c * chunk_rows;
          const size_t hi = std::min(n, lo + chunk_rows);
          cs.keys.clear();
          uint32_t fresh = 0;
          if (UseDense(base_groups, stride, hi - lo)) {
            const size_t cells = base_groups * stride;
            if (cs.dense.size() < cells) cs.dense.resize(cells);
            std::fill(cs.dense.begin(),
                      cs.dense.begin() + static_cast<ptrdiff_t>(cells), kNoId);
            for (size_t t = lo; t < hi; ++t) {
              if (live != nullptr && live[t] == 0) continue;
              const uint32_t code = codes[t];
              const size_t cc = code == relation::kNullCode ? dict : code;
              const size_t id_in = base_ids ? base_ids[t] : 0u;
              // Same contract as the sequential paths: a hand-built base
              // lying about group_count must fail, not corrupt memory.
              if (id_in >= base_groups) {
                throw std::invalid_argument(
                    "RefinePass: group id out of range");
              }
              const size_t cell = id_in * stride + cc;
              uint32_t id = cs.dense[cell];
              if (id == kNoId) {
                id = fresh++;
                cs.dense[cell] = id;
                cs.keys.push_back((static_cast<uint64_t>(id_in) << 32) |
                                  code);
              }
              if (out != nullptr) out[t] = id;
            }
          } else {
            cs.table.Reset(hi - lo);
            for (size_t t = lo; t < hi; ++t) {
              if (live != nullptr && live[t] == 0) continue;
              const size_t id_in = base_ids ? base_ids[t] : 0u;
              if (id_in >= base_groups) {
                throw std::invalid_argument(
                    "RefinePass: group id out of range");
              }
              const uint64_t key =
                  (static_cast<uint64_t>(id_in) << 32) | codes[t];
              bool inserted = false;
              const uint32_t id = cs.table.FindOrInsert(key, fresh, &inserted);
              if (inserted) {
                cs.keys.push_back(key);
                ++fresh;
              }
              if (out != nullptr) out[t] = id;
            }
          }
        }
      });

  size_t total_keys = 0;
  for (int c = 0; c < width; ++c) {
    total_keys += s.chunks[static_cast<size_t>(c)].keys.size();
  }
  s.merge.Reset(total_keys);
  uint32_t fresh = 0;
  for (int c = 0; c < width; ++c) {
    RefineScratch::ChunkState& cs = s.chunks[static_cast<size_t>(c)];
    cs.remap.resize(cs.keys.size());
    for (size_t j = 0; j < cs.keys.size(); ++j) {
      bool inserted = false;
      const uint32_t gid = s.merge.FindOrInsert(cs.keys[j], fresh, &inserted);
      if (inserted) ++fresh;
      cs.remap[j] = gid;
    }
  }

  if (out != nullptr) {
    pool.ParallelFor(
        static_cast<size_t>(width), 1, width,
        [&](int, size_t cb, size_t ce) {
          for (size_t c = cb; c < ce; ++c) {
            const std::vector<uint32_t>& remap = s.chunks[c].remap;
            const size_t lo = c * chunk_rows;
            const size_t hi = std::min(n, lo + chunk_rows);
            for (size_t t = lo; t < hi; ++t) out[t] = remap[out[t]];
          }
        });
  }
  return fresh;
}

/// Pass dispatcher: picks the parallel path when the scratch's `threads`
/// knob and the pass size justify it, the sequential dense/flat paths
/// otherwise. `threads == 1` never reaches the pool — the exact sequential
/// code path.
size_t RunRefinePass(const uint32_t* base_ids, size_t base_groups,
                     const relation::Column& col, size_t n, RefineScratch& s,
                     uint32_t* out, const uint8_t* live = nullptr) {
  if (s.threads != 1 && n > s.grain) {
    const size_t grain = std::max<size_t>(s.grain, 1);
    const int width = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(util::ResolveThreads(s.threads)),
        (n + grain - 1) / grain));
    if (width > 1) {
      return ParallelRefinePass(base_ids, base_groups, col, n, s, width, out,
                                live);
    }
  }
  return RefinePass(base_ids, base_groups, col, n, s, out, live);
}

/// Tombstone bitmap pointer for count-only passes: nullptr when every row
/// is live, so the append-only hot loops keep their branch-free shape.
const uint8_t* LiveMask(const relation::Relation& rel) {
  return rel.has_tombstones() ? rel.live_bitmap().data() : nullptr;
}

/// Distinct live dictionary codes of one column — the tombstone-aware
/// replacement for the O(1) dict_size fast path. O(n + dict).
size_t LiveDistinctOneColumn(const relation::Relation& rel, int attr) {
  const relation::Column& col = rel.column(attr);
  const uint32_t* codes = col.codes().data();
  const uint8_t* live = rel.live_bitmap().data();
  const size_t n = rel.tuple_count();
  const size_t dict = col.dict_size();
  std::vector<uint8_t> seen(dict + 1, 0);  // slot `dict` counts NULL
  size_t distinct = 0;
  for (size_t t = 0; t < n; ++t) {
    if (live[t] == 0) continue;
    const size_t c = codes[t] == relation::kNullCode ? dict : codes[t];
    if (seen[c] == 0) {
      seen[c] = 1;
      ++distinct;
    }
  }
  return distinct;
}

void CheckBase(const relation::Relation& rel, const Grouping& base,
               const char* where) {
  if (base.ids.size() != rel.tuple_count()) {
    throw std::invalid_argument(std::string(where) +
                                ": grouping size mismatch");
  }
}

}  // namespace

Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs,
                 RefineScratch& scratch) {
  Grouping g;
  const size_t n = rel.tuple_count();
  if (n == 0) return g;
  const auto cols = attrs.ToVector();
  if (cols.empty()) {
    g.ids.assign(n, 0);
    g.group_count = 1;
    return g;
  }
  if (cols.size() == 1 && !rel.column(cols[0]).has_nulls()) {
    // Dictionary codes are already dense ids in first-appearance order.
    g.ids = rel.column(cols[0]).codes();
    g.group_count = rel.column(cols[0]).dict_size();
    return g;
  }
  g.ids.resize(n);
  const uint32_t* base = nullptr;
  size_t groups = 1;
  for (int a : cols) {
    groups =
        RunRefinePass(base, groups, rel.column(a), n, scratch, g.ids.data());
    base = g.ids.data();
  }
  g.group_count = groups;
  return g;
}

Grouping GroupBy(const relation::Relation& rel,
                 const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return GroupBy(rel, attrs, scratch);
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineBy");
  Grouping out;
  const size_t n = base.ids.size();
  if (n == 0) return out;
  out.ids.resize(n);
  out.group_count = RunRefinePass(base.ids.data(), base.group_count,
                                  rel.column(attr), n, scratch, out.ids.data());
  return out;
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr) {
  RefineScratch scratch;
  return RefineBy(rel, base, attr, scratch);
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineBy");
  const size_t n = base.ids.size();
  const auto cols = attrs.ToVector();
  if (cols.empty() || n == 0) {
    Grouping copy = base;
    return copy;
  }
  Grouping out;
  out.ids.resize(n);
  const uint32_t* ids = base.ids.data();
  size_t groups = base.group_count;
  for (int a : cols) {
    groups =
        RunRefinePass(ids, groups, rel.column(a), n, scratch, out.ids.data());
    ids = out.ids.data();
  }
  out.group_count = groups;
  return out;
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return RefineBy(rel, base, attrs, scratch);
}

size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs, RefineScratch& scratch) {
  const size_t n = rel.tuple_count();
  if (n == 0) return 0;
  const uint8_t* live = LiveMask(rel);
  if (live != nullptr && rel.live_count() == 0) return 0;
  const auto cols = attrs.ToVector();
  if (cols.empty()) return 1;
  if (cols.size() == 1) {
    if (live != nullptr) return LiveDistinctOneColumn(rel, cols[0]);
    // |π_A| falls straight out of the dictionary: no per-tuple work.
    const auto& col = rel.column(cols[0]);
    return col.dict_size() + (col.has_nulls() ? 1 : 0);
  }
  // The chain passes materialize over every physical row (dead included —
  // intermediate ids must stay append-stable); only the final count-only
  // pass filters, which is what makes the count "groups with a live row".
  scratch.chain_ids.resize(n);
  uint32_t* ids = scratch.chain_ids.data();
  const uint32_t* base = nullptr;
  size_t groups = 1;
  for (size_t i = 0; i + 1 < cols.size(); ++i) {
    groups = RunRefinePass(base, groups, rel.column(cols[i]), n, scratch, ids);
    base = ids;
  }
  return RunRefinePass(base, groups, rel.column(cols.back()), n, scratch,
                       nullptr, live);
}

size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return GroupCountBy(rel, attrs, scratch);
}

size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineCountBy");
  const size_t n = base.ids.size();
  if (n == 0) return attrs.Empty() ? base.group_count : 0;
  const uint8_t* live = LiveMask(rel);
  const auto cols = attrs.ToVector();
  if (cols.empty()) {
    if (live == nullptr) return base.group_count;
    // Tombstone-aware: groups of `base` with at least one live row.
    std::vector<uint8_t> seen(base.group_count, 0);
    size_t groups = 0;
    for (size_t t = 0; t < n; ++t) {
      if (live[t] == 0) continue;
      if (seen[base.ids[t]] == 0) {
        seen[base.ids[t]] = 1;
        ++groups;
      }
    }
    return groups;
  }
  const uint32_t* ids = base.ids.data();
  size_t groups = base.group_count;
  if (cols.size() > 1) {
    scratch.chain_ids.resize(n);
    uint32_t* tmp = scratch.chain_ids.data();
    for (size_t i = 0; i + 1 < cols.size(); ++i) {
      groups =
          RunRefinePass(ids, groups, rel.column(cols[i]), n, scratch, tmp);
      ids = tmp;
    }
  }
  return RunRefinePass(ids, groups, rel.column(cols.back()), n, scratch,
                       nullptr, live);
}

size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return RefineCountBy(rel, base, attrs, scratch);
}

size_t JointGroupCount(const Grouping& a, const Grouping& b) {
  if (a.ids.size() != b.ids.size()) {
    throw std::invalid_argument("JointGroupCount: size mismatch");
  }
  const size_t n = a.ids.size();
  if (n == 0) return 0;
  size_t fresh = 0;
  if (UseDense(a.group_count, b.group_count, n)) {
    std::vector<uint32_t> dense(a.group_count * b.group_count, kNoId);
    for (size_t t = 0; t < n; ++t) {
      if (a.ids[t] >= a.group_count || b.ids[t] >= b.group_count) {
        throw std::invalid_argument("JointGroupCount: group id out of range");
      }
      uint32_t& cell =
          dense[static_cast<size_t>(a.ids[t]) * b.group_count + b.ids[t]];
      if (cell == kNoId) cell = static_cast<uint32_t>(fresh++);
    }
  } else {
    util::FlatIdTable table;
    table.Reset(n);
    for (size_t t = 0; t < n; ++t) {
      if (a.ids[t] >= a.group_count || b.ids[t] >= b.group_count) {
        throw std::invalid_argument("JointGroupCount: group id out of range");
      }
      const uint64_t key = (static_cast<uint64_t>(a.ids[t]) << 32) | b.ids[t];
      bool inserted = false;
      table.FindOrInsert(key, static_cast<uint32_t>(fresh), &inserted);
      if (inserted) ++fresh;
    }
  }
  return fresh;
}

}  // namespace fdevolve::query
