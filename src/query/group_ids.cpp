#include "query/group_ids.h"

#include <stdexcept>
#include <unordered_map>

#include "util/hash.h"

namespace fdevolve::query {
namespace {

/// One refinement pass: combine current ids with a column's codes.
Grouping RefineByCodes(const Grouping& base, const std::vector<uint32_t>& codes) {
  Grouping out;
  out.ids.resize(base.ids.size());
  // (id, code) -> new dense id.
  std::unordered_map<uint64_t, uint32_t> next;
  next.reserve(base.group_count * 2 + 16);
  uint32_t fresh = 0;
  for (size_t t = 0; t < base.ids.size(); ++t) {
    uint64_t key = (static_cast<uint64_t>(base.ids[t]) << 32) | codes[t];
    auto [it, inserted] = next.emplace(key, fresh);
    if (inserted) ++fresh;
    out.ids[t] = it->second;
  }
  out.group_count = fresh;
  return out;
}

Grouping TrivialGrouping(size_t n) {
  Grouping g;
  g.ids.assign(n, 0);
  g.group_count = n == 0 ? 0 : 1;
  return g;
}

}  // namespace

Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs) {
  Grouping g = TrivialGrouping(rel.tuple_count());
  for (int a : attrs.ToVector()) {
    g = RefineByCodes(g, rel.column(a).codes());
  }
  return g;
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr) {
  if (base.ids.size() != rel.tuple_count()) {
    throw std::invalid_argument("RefineBy: grouping size mismatch");
  }
  return RefineByCodes(base, rel.column(attr).codes());
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs) {
  Grouping g = base;
  for (int a : attrs.ToVector()) {
    g = RefineByCodes(g, rel.column(a).codes());
  }
  return g;
}

size_t JointGroupCount(const Grouping& a, const Grouping& b) {
  if (a.ids.size() != b.ids.size()) {
    throw std::invalid_argument("JointGroupCount: size mismatch");
  }
  std::unordered_map<uint64_t, uint32_t> seen;
  seen.reserve(a.group_count + b.group_count);
  uint32_t fresh = 0;
  for (size_t t = 0; t < a.ids.size(); ++t) {
    uint64_t key = (static_cast<uint64_t>(a.ids[t]) << 32) | b.ids[t];
    auto [it, inserted] = seen.emplace(key, fresh);
    if (inserted) ++fresh;
  }
  return fresh;
}

}  // namespace fdevolve::query
