#include "query/group_ids.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "query/kernels.h"
#include "util/thread_pool.h"

namespace fdevolve::query {
namespace {

constexpr uint32_t kNoId = util::FlatIdTable::kVacant;

/// Dense-path admission limit for a pass of `n` tuples: the direct-indexed
/// array costs one O(cells) clear per pass, so cells must stay within a
/// small multiple of the per-tuple work (small absolute sizes are always
/// allowed — the clear is free next to the scan). Clamped to the kernel
/// layer's signed-gather bound.
size_t DenseLimit(size_t n) {
  const size_t lim = std::max<size_t>(size_t{1} << 16, 4 * n);
  return std::min(lim, kernels::kDenseCellLimit);
}

/// Fills `levels` with the kernel descriptors for a column chain.
void BuildLevels(const relation::Relation& rel, const int* cols, size_t k,
                 std::vector<kernels::Level>& levels) {
  levels.clear();
  levels.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    const relation::Column& col = rel.column(cols[j]);
    kernels::Level lv;
    lv.codes = col.codes().data();
    lv.has_nulls = col.has_nulls();
    lv.null_slot = static_cast<uint32_t>(col.dict_size());
    lv.stride = static_cast<uint64_t>(col.dict_size()) +
                (col.has_nulls() ? 1 : 0);
    levels.push_back(lv);
  }
}

/// Fused-segment planner: how many of the remaining `nlevels` levels one
/// pass can take. Prefers the longest *dense-admitted* prefix (packed
/// radix <= DenseLimit(n)); when even the first level does not fit the
/// dense array, takes the longest prefix whose packed key fits u64 for
/// the flat path. Returns the level count and reports the segment radix
/// (`*cells_out`) and which path was planned.
///
/// Segment boundaries never affect results — each segment assigns
/// first-appearance ids over the prefix packing, which composes to the
/// same final ids for any split — so this is purely a cost decision.
size_t PlanSegment(uint64_t groups, const kernels::Level* levels,
                   size_t nlevels, size_t n, uint64_t* cells_out,
                   bool* dense_out) {
  const uint64_t dense_limit = DenseLimit(n);
  uint64_t prod = groups;
  size_t take = 0;
  for (size_t j = 0; j < nlevels; ++j) {
    const uint64_t stride = levels[j].stride;
    if (stride == 0 || prod > dense_limit / stride) break;
    prod *= stride;
    take = j + 1;
  }
  if (take > 0) {
    *cells_out = prod;
    *dense_out = true;
    return take;
  }
  // Flat segment. Real ids are u32 regardless of what a (possibly
  // hand-built, possibly lying) base claims as group_count, so cap the
  // radix base at 2^32 when checking u64 fit — the packed keys built from
  // actual ids cannot overflow under that bound.
  const uint64_t eff_groups =
      std::min<uint64_t>(groups, uint64_t{1} << 32);
  prod = eff_groups;
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  for (size_t j = 0; j < nlevels; ++j) {
    const uint64_t stride = levels[j].stride;
    if (stride == 0 || prod > kMax / stride) break;
    prod *= stride;
    take = j + 1;
  }
  if (take == 0) take = 1;  // stride 0 <=> empty relation; callers gate n > 0
  *cells_out = prod;
  *dense_out = false;
  return take;
}

/// Sequential fused pass over one segment.
size_t SequentialSegment(const uint32_t* base_ids, uint64_t base_groups,
                         const kernels::Level* levels, size_t nlevels,
                         size_t n, RefineScratch& s, uint32_t* out,
                         const uint8_t* live, uint64_t cells, bool dense) {
  const kernels::KernelSet& ks = kernels::Active();
  kernels::RefineArgs a;
  a.base_ids = base_ids;
  a.base_groups = base_groups;
  a.levels = levels;
  a.level_count = nlevels;
  a.lo = 0;
  a.hi = n;
  a.out = out;
  a.live = live;
  if (dense) {
    if (s.dense.size() < cells) s.dense.resize(cells);
    std::fill(s.dense.begin(), s.dense.begin() + static_cast<ptrdiff_t>(cells),
              kNoId);
    return ks.dense_refine(a, s.dense.data(), 0);
  }
  s.table.Reset(n);  // a pass introduces at most n distinct packed keys
  return ks.flat_refine(a, s.table, 0);
}

/// Range-partitioned fused pass (the `scratch.threads > 1` path).
///
/// Phase 1 (parallel)   — each chunk scans its tuple range and assigns
///   *local* first-appearance ids, recording the packed key of every local
///   id in assignment order. When materializing, local ids land in `out`.
/// Phase 2 (sequential) — chunk key lists are merged in chunk (= range)
///   order through one global table; since each list is in local
///   first-appearance order and chunks cover ascending ranges, the global
///   ids are exactly the sequential scan's — bit-identical, not just
///   partition-equivalent.
/// Phase 3 (parallel)   — local ids in `out` are rewritten through each
///   chunk's local->global remap (skipped when count-only).
///
/// Each chunk picks dense or flat on its own with the admission test
/// scaled to the *chunk* length (total extra memory stays O(n) cells, as
/// in the sequential bound). Dense or flat, the recorded key is the same
/// packed value, so the merge cannot tell the paths apart — nor can it
/// tell SIMD tiers apart, since every tier records identical key lists.
size_t ParallelSegment(const uint32_t* base_ids, uint64_t base_groups,
                       const kernels::Level* levels, size_t nlevels, size_t n,
                       RefineScratch& s, int width, uint32_t* out,
                       const uint8_t* live, uint64_t cells) {
  const size_t chunk_rows =
      (n + static_cast<size_t>(width) - 1) / static_cast<size_t>(width);
  // Shrink to the number of non-empty chunks: with width near n/grain a
  // trailing chunk can otherwise start past n, and its wrapped length
  // would poison the per-chunk dense-admission test.
  width = static_cast<int>((n + chunk_rows - 1) / chunk_rows);
  if (s.chunks.size() < static_cast<size_t>(width)) {
    s.chunks.resize(static_cast<size_t>(width));
  }
  const kernels::KernelSet& ks = kernels::Active();
  util::ThreadPool& pool = util::ThreadPool::Global();

  // The parallel-for iterates chunk indices, not tuples: the tuple
  // partition is fixed here (chunk_rows) so phases 1 and 3 agree on it.
  pool.ParallelFor(
      static_cast<size_t>(width), 1, width, [&](int, size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          RefineScratch::ChunkState& cs = s.chunks[c];
          const size_t lo = c * chunk_rows;
          const size_t hi = std::min(n, lo + chunk_rows);
          cs.keys.clear();
          kernels::RefineArgs a;
          a.base_ids = base_ids;
          a.base_groups = base_groups;
          a.levels = levels;
          a.level_count = nlevels;
          a.lo = lo;
          a.hi = hi;
          a.out = out;
          a.live = live;
          a.keys_out = &cs.keys;
          if (cells <= DenseLimit(hi - lo)) {
            if (cs.dense.size() < cells) cs.dense.resize(cells);
            std::fill(cs.dense.begin(),
                      cs.dense.begin() + static_cast<ptrdiff_t>(cells), kNoId);
            ks.dense_refine(a, cs.dense.data(), 0);
          } else {
            cs.table.Reset(hi - lo);
            ks.flat_refine(a, cs.table, 0);
          }
        }
      });

  size_t total_keys = 0;
  for (int c = 0; c < width; ++c) {
    total_keys += s.chunks[static_cast<size_t>(c)].keys.size();
  }
  s.merge.Reset(total_keys);
  uint32_t fresh = 0;
  for (int c = 0; c < width; ++c) {
    RefineScratch::ChunkState& cs = s.chunks[static_cast<size_t>(c)];
    cs.remap.resize(cs.keys.size());
    for (size_t j = 0; j < cs.keys.size(); ++j) {
      bool inserted = false;
      const uint32_t gid = s.merge.FindOrInsert(cs.keys[j], fresh, &inserted);
      if (inserted) ++fresh;
      cs.remap[j] = gid;
    }
  }

  if (out != nullptr) {
    pool.ParallelFor(
        static_cast<size_t>(width), 1, width, [&](int, size_t cb, size_t ce) {
          for (size_t c = cb; c < ce; ++c) {
            const size_t lo = c * chunk_rows;
            const size_t hi = std::min(n, lo + chunk_rows);
            ks.remap(out, lo, hi, s.chunks[c].remap.data());
          }
        });
  }
  return fresh;
}

/// Segment dispatcher: parallel when the scratch's `threads` knob and the
/// pass size justify it, sequential otherwise. `threads == 1` never
/// reaches the pool.
size_t RunSegment(const uint32_t* base_ids, uint64_t base_groups,
                  const kernels::Level* levels, size_t nlevels, size_t n,
                  RefineScratch& s, uint32_t* out, const uint8_t* live,
                  uint64_t cells, bool dense) {
  if (s.threads != 1 && n > s.grain) {
    const size_t grain = std::max<size_t>(s.grain, 1);
    const int width = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(util::ResolveThreads(s.threads)),
        (n + grain - 1) / grain));
    if (width > 1) {
      return ParallelSegment(base_ids, base_groups, levels, nlevels, n, s,
                             width, out, live, cells);
    }
  }
  return SequentialSegment(base_ids, base_groups, levels, nlevels, n, s, out,
                           live, cells, dense);
}

/// Runs a whole refinement chain as a sequence of *fused* segments: each
/// segment combines as many remaining levels as its packed mixed-radix key
/// affords (see kernels.h) and sweeps the relation once, instead of one
/// full-relation pass per level. Chains that fit one segment — the common
/// case for the repair search's 2-4 attribute sets — touch every column
/// exactly once.
///
/// `out == nullptr` is the count-only form: intermediate segments (if the
/// chain needs more than one) materialize into `s.chain_ids`, and only the
/// final segment applies `live` — dead rows are skipped there, so the
/// result counts groups with at least one live row while every
/// intermediate id stays append-stable over physical rows.
size_t RunRefineChain(const uint32_t* base_ids, size_t base_groups,
                      const int* cols, size_t ncols,
                      const relation::Relation& rel, size_t n,
                      RefineScratch& s, uint32_t* out, const uint8_t* live) {
  BuildLevels(rel, cols, ncols, s.levels);
  uint64_t groups = base_groups;
  const uint32_t* ids = base_ids;
  size_t j = 0;
  while (j < ncols) {
    uint64_t cells = 0;
    bool dense = false;
    const size_t take =
        PlanSegment(groups, s.levels.data() + j, ncols - j, n, &cells, &dense);
    const bool last = (j + take == ncols);
    uint32_t* seg_out = out;
    if (last) {
      // Final segment: `out` as requested (possibly null = count-only),
      // and the only place the tombstone filter may apply.
      seg_out = out;
    } else if (out == nullptr) {
      s.chain_ids.resize(n);
      seg_out = s.chain_ids.data();
    }
    // seg_out may alias `ids` (in-place refinement) — kernels read each
    // tuple's base id before writing its slot.
    groups = RunSegment(ids, groups, s.levels.data() + j, take, n, s, seg_out,
                        last ? live : nullptr, cells, dense);
    ids = seg_out;
    j += take;
  }
  return static_cast<size_t>(groups);
}

/// Tombstone bitmap pointer for count-only passes: nullptr when every row
/// is live, so the append-only hot loops keep their branch-free shape.
const uint8_t* LiveMask(const relation::Relation& rel) {
  return rel.has_tombstones() ? rel.live_bitmap().data() : nullptr;
}

/// Distinct live dictionary codes of one column — the tombstone-aware
/// replacement for the O(1) dict_size fast path. O(n + dict).
size_t LiveDistinctOneColumn(const relation::Relation& rel, int attr) {
  const relation::Column& col = rel.column(attr);
  const uint32_t* codes = col.codes().data();
  const uint8_t* live = rel.live_bitmap().data();
  const size_t n = rel.tuple_count();
  const size_t dict = col.dict_size();
  std::vector<uint8_t> seen(dict + 1, 0);  // slot `dict` counts NULL
  size_t distinct = 0;
  for (size_t t = 0; t < n; ++t) {
    if (live[t] == 0) continue;
    const size_t c = codes[t] == relation::kNullCode ? dict : codes[t];
    if (seen[c] == 0) {
      seen[c] = 1;
      ++distinct;
    }
  }
  return distinct;
}

void CheckBase(const relation::Relation& rel, const Grouping& base,
               const char* where) {
  if (base.ids.size() != rel.tuple_count()) {
    throw std::invalid_argument(std::string(where) +
                                ": grouping size mismatch");
  }
}

}  // namespace

Grouping GroupBy(const relation::Relation& rel, const relation::AttrSet& attrs,
                 RefineScratch& scratch) {
  Grouping g;
  const size_t n = rel.tuple_count();
  if (n == 0) return g;
  const auto cols = attrs.ToVector();
  if (cols.empty()) {
    g.ids.assign(n, 0);
    g.group_count = 1;
    return g;
  }
  if (cols.size() == 1 && !rel.column(cols[0]).has_nulls()) {
    // Dictionary codes are already dense ids in first-appearance order.
    g.ids = rel.column(cols[0]).codes();
    g.group_count = rel.column(cols[0]).dict_size();
    return g;
  }
  g.ids.resize(n);
  g.group_count = RunRefineChain(nullptr, 1, cols.data(), cols.size(), rel, n,
                                 scratch, g.ids.data(), nullptr);
  return g;
}

Grouping GroupBy(const relation::Relation& rel,
                 const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return GroupBy(rel, attrs, scratch);
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineBy");
  Grouping out;
  const size_t n = base.ids.size();
  if (n == 0) return out;
  out.ids.resize(n);
  out.group_count = RunRefineChain(base.ids.data(), base.group_count, &attr, 1,
                                   rel, n, scratch, out.ids.data(), nullptr);
  return out;
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  int attr) {
  RefineScratch scratch;
  return RefineBy(rel, base, attr, scratch);
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineBy");
  const size_t n = base.ids.size();
  const auto cols = attrs.ToVector();
  if (cols.empty() || n == 0) {
    Grouping copy = base;
    return copy;
  }
  Grouping out;
  out.ids.resize(n);
  out.group_count =
      RunRefineChain(base.ids.data(), base.group_count, cols.data(),
                     cols.size(), rel, n, scratch, out.ids.data(), nullptr);
  return out;
}

Grouping RefineBy(const relation::Relation& rel, const Grouping& base,
                  const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return RefineBy(rel, base, attrs, scratch);
}

size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs, RefineScratch& scratch) {
  const size_t n = rel.tuple_count();
  if (n == 0) return 0;
  const uint8_t* live = LiveMask(rel);
  if (live != nullptr && rel.live_count() == 0) return 0;
  const auto cols = attrs.ToVector();
  if (cols.empty()) return 1;
  if (cols.size() == 1) {
    if (live != nullptr) return LiveDistinctOneColumn(rel, cols[0]);
    // |π_A| falls straight out of the dictionary: no per-tuple work.
    const auto& col = rel.column(cols[0]);
    return col.dict_size() + (col.has_nulls() ? 1 : 0);
  }
  // Count-only fused chain: when every level fits one segment — the common
  // case — this is a single sweep with no id materialization at all. The
  // tombstone filter applies only to the final segment (see RunRefineChain),
  // which is what makes the count "groups with a live row" while any
  // intermediate ids stay append-stable.
  return RunRefineChain(nullptr, 1, cols.data(), cols.size(), rel, n, scratch,
                        nullptr, live);
}

size_t GroupCountBy(const relation::Relation& rel,
                    const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return GroupCountBy(rel, attrs, scratch);
}

size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs, RefineScratch& scratch) {
  CheckBase(rel, base, "RefineCountBy");
  const size_t n = base.ids.size();
  if (n == 0) return attrs.Empty() ? base.group_count : 0;
  const uint8_t* live = LiveMask(rel);
  const auto cols = attrs.ToVector();
  if (cols.empty()) {
    if (live == nullptr) return base.group_count;
    // Tombstone-aware: groups of `base` with at least one live row.
    std::vector<uint8_t> seen(base.group_count, 0);
    size_t groups = 0;
    for (size_t t = 0; t < n; ++t) {
      if (live[t] == 0) continue;
      if (seen[base.ids[t]] == 0) {
        seen[base.ids[t]] = 1;
        ++groups;
      }
    }
    return groups;
  }
  return RunRefineChain(base.ids.data(), base.group_count, cols.data(),
                        cols.size(), rel, n, scratch, nullptr, live);
}

size_t RefineCountBy(const relation::Relation& rel, const Grouping& base,
                     const relation::AttrSet& attrs) {
  RefineScratch scratch;
  return RefineCountBy(rel, base, attrs, scratch);
}

size_t JointGroupCount(const Grouping& a, const Grouping& b) {
  if (a.ids.size() != b.ids.size()) {
    throw std::invalid_argument("JointGroupCount: size mismatch");
  }
  const size_t n = a.ids.size();
  if (n == 0) return 0;
  size_t fresh = 0;
  const bool dense =
      b.group_count != 0 &&
      a.group_count <= DenseLimit(n) / b.group_count;
  if (dense) {
    std::vector<uint32_t> dense_map(a.group_count * b.group_count, kNoId);
    for (size_t t = 0; t < n; ++t) {
      if (a.ids[t] >= a.group_count || b.ids[t] >= b.group_count) {
        throw std::invalid_argument("JointGroupCount: group id out of range");
      }
      uint32_t& cell =
          dense_map[static_cast<size_t>(a.ids[t]) * b.group_count + b.ids[t]];
      if (cell == kNoId) cell = static_cast<uint32_t>(fresh++);
    }
  } else {
    util::FlatIdTable table;
    table.Reset(n);
    for (size_t t = 0; t < n; ++t) {
      if (a.ids[t] >= a.group_count || b.ids[t] >= b.group_count) {
        throw std::invalid_argument("JointGroupCount: group id out of range");
      }
      const uint64_t key = (static_cast<uint64_t>(a.ids[t]) << 32) | b.ids[t];
      bool inserted = false;
      table.FindOrInsert(key, static_cast<uint32_t>(fresh), &inserted);
      if (inserted) ++fresh;
    }
  }
  return fresh;
}

}  // namespace fdevolve::query
