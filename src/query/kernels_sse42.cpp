// SSE4.2 kernel tier: 4-lane dense key computation with scalar probes, and
// a block-batched flat path that precomputes hashes and prefetches probe
// lines ahead. No gathers exist at this level, so the wins are smaller
// than AVX2/AVX-512 — this tier mostly guarantees pre-AVX x86-64 hosts
// still get batched hashing and that the dispatch ladder has no holes.
// Compiled with -msse4.2.
#include "query/kernels.h"

#if defined(FDEVOLVE_X86_KERNELS)

#include <immintrin.h>

#include <algorithm>

#include "query/kernels_detail.h"

namespace fdevolve::query::kernels {
namespace {

constexpr uint32_t kVacant = util::FlatIdTable::kVacant;

uint32_t Sse42Dense(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  if (a.live != nullptr) {
    // Tombstoned count-only passes stay scalar at this tier: without
    // masked loads the bookkeeping costs more than the 4-lane math saves.
    return detail::DenseRefineRange(a, dense, fresh, a.lo, a.hi);
  }
  size_t t = a.lo;
  for (; t + 4 <= a.hi; t += 4) {
    __m128i key;
    if (a.base_ids != nullptr) {
      key = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.base_ids + t));
      if (a.base_groups <= 0xffffffffull) {
        const __m128i vgroups =
            _mm_set1_epi32(static_cast<int>(a.base_groups));
        const __m128i bad =
            _mm_cmpeq_epi32(_mm_max_epu32(key, vgroups), key);
        if (!_mm_testz_si128(bad, bad)) detail::ThrowBadId();
      }
    } else {
      key = _mm_setzero_si128();
    }
    for (size_t j = 0; j < a.level_count; ++j) {
      const Level& lv = a.levels[j];
      __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lv.codes + t));
      if (lv.has_nulls) {
        const __m128i isnull = _mm_cmpeq_epi32(
            c, _mm_set1_epi32(static_cast<int>(relation::kNullCode)));
        c = _mm_blendv_epi8(
            c, _mm_set1_epi32(static_cast<int>(lv.null_slot)), isnull);
      }
      key = _mm_add_epi32(
          _mm_mullo_epi32(key, _mm_set1_epi32(static_cast<int>(lv.stride))),
          c);
    }
    alignas(16) uint32_t kk[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(kk), key);
    for (int l = 0; l < 4; ++l) {
      uint32_t id = dense[kk[l]];
      if (id == kVacant) {
        id = fresh++;
        dense[kk[l]] = id;
        if (a.keys_out != nullptr) a.keys_out->push_back(kk[l]);
      }
      if (a.out != nullptr) a.out[t + static_cast<size_t>(l)] = id;
    }
  }
  return detail::DenseRefineRange(a, dense, fresh, t, a.hi);
}

uint32_t Sse42Flat(const RefineArgs& a, util::FlatIdTable& table,
                   uint32_t fresh) {
  constexpr size_t kBlock = 128;
  constexpr size_t kPrefetchAhead = 8;
  uint64_t keys[kBlock];
  uint64_t hashes[kBlock];
  for (size_t b = a.lo; b < a.hi; b += kBlock) {
    const size_t be = std::min(a.hi, b + kBlock);
    for (size_t t = b; t < be; ++t) {
      if (a.live != nullptr && a.live[t] == 0) {
        keys[t - b] = 0;
        hashes[t - b] = 0;
        continue;
      }
      keys[t - b] = detail::PackedKey(a, t);
      hashes[t - b] = util::FlatIdTable::HashOf(keys[t - b]);
    }
    for (size_t t = b; t < be; ++t) {
      if (a.live != nullptr && a.live[t] == 0) continue;
      if (t + kPrefetchAhead < be) {
        table.PrefetchHash(hashes[t + kPrefetchAhead - b]);
      }
      bool inserted = false;
      const uint32_t id =
          table.FindOrInsertHashed(keys[t - b], hashes[t - b], fresh,
                                   &inserted);
      if (inserted) {
        if (a.keys_out != nullptr) a.keys_out->push_back(keys[t - b]);
        ++fresh;
      }
      if (a.out != nullptr) a.out[t] = id;
    }
  }
  return fresh;
}

void Sse42Remap(uint32_t* ids, size_t lo, size_t hi, const uint32_t* remap) {
  detail::RemapRange(ids, lo, hi, remap);
}

}  // namespace

const KernelSet kSse42Kernels{util::CpuTier::kSse42, Sse42Dense, Sse42Flat,
                              Sse42Remap};

}  // namespace fdevolve::query::kernels

#endif  // FDEVOLVE_X86_KERNELS
