// AVX2 kernel tier: 8-lane dense refinement with vpgatherdd probes, 4-lane
// packed-u64 key + splitmix64 hashing for the flat path, gathered remap.
// Compiled with -mavx2 (per-file flag in src/query/CMakeLists.txt); only
// ever called after runtime detection, so the rest of the binary stays
// portable.
#include "query/kernels.h"

#if defined(FDEVOLVE_X86_KERNELS)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "query/kernels_detail.h"

namespace fdevolve::query::kernels {
namespace {

constexpr uint32_t kVacant = util::FlatIdTable::kVacant;

/// Lane mask (32-bit lanes, all-ones = live) from 8 tombstone bytes.
inline __m256i LiveMask8(const uint8_t* live, size_t t) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(live + t));
  const __m256i lanes = _mm256_cvtepu8_epi32(bytes);
  return _mm256_cmpgt_epi32(lanes, _mm256_setzero_si256());
}

/// 8 packed keys for tuples [t, t+8): base-id load + bounds check (live
/// lanes only) + per-level NULL remap and radix accumulate. Dense segments
/// guarantee every key fits u32 (radix <= 2^31), so the whole computation
/// stays in 32-bit lanes.
inline __m256i PackedKeys8(const RefineArgs& a, size_t t, __m256i livemask,
                           bool masked) {
  __m256i key;
  if (a.base_ids != nullptr) {
    key = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.base_ids + t));
    if (a.base_groups <= 0xffffffffull) {
      // id >= groups  <=>  max_u32(id, groups) == id (the unsigned-compare
      // idiom AVX2 affords; groups is exact since it fits u32 here).
      const __m256i vgroups =
          _mm256_set1_epi32(static_cast<int>(a.base_groups));
      __m256i bad = _mm256_cmpeq_epi32(_mm256_max_epu32(key, vgroups), key);
      if (masked) bad = _mm256_and_si256(bad, livemask);
      if (!_mm256_testz_si256(bad, bad)) detail::ThrowBadId();
    }
  } else {
    key = _mm256_setzero_si256();
  }
  for (size_t j = 0; j < a.level_count; ++j) {
    const Level& lv = a.levels[j];
    __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lv.codes + t));
    if (lv.has_nulls) {
      const __m256i isnull = _mm256_cmpeq_epi32(
          c, _mm256_set1_epi32(static_cast<int>(relation::kNullCode)));
      c = _mm256_blendv_epi8(
          c, _mm256_set1_epi32(static_cast<int>(lv.null_slot)), isnull);
    }
    key = _mm256_add_epi32(
        _mm256_mullo_epi32(key,
                           _mm256_set1_epi32(static_cast<int>(lv.stride))),
        c);
  }
  return key;
}

/// Resolves one batch's miss lanes (see the AVX-512 twin for the full
/// rationale): ctz-walked miss bitmask in lane (= tuple) order with a
/// per-lane re-read, so duplicates inside and across batches still get
/// first-appearance ids. `id == nullptr` is the count-only form — no id
/// vector spill/reload.
inline uint32_t FixupMisses8(uint32_t* dense, __m256i key, __m256i* id,
                             uint32_t bits, uint32_t fresh,
                             std::vector<uint64_t>* keys_out) {
  alignas(32) uint32_t kk[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(kk), key);
  if (id == nullptr) {
    while (bits != 0) {
      const int l = __builtin_ctz(bits);
      bits &= bits - 1;
      const uint32_t cell = kk[l];
      if (dense[cell] == kVacant) {
        dense[cell] = fresh++;
        if (keys_out != nullptr) keys_out->push_back(cell);
      }
    }
    return fresh;
  }
  alignas(32) uint32_t ii[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ii), *id);
  while (bits != 0) {
    const int l = __builtin_ctz(bits);
    bits &= bits - 1;
    const uint32_t cell = kk[l];
    uint32_t cur = dense[cell];
    if (cur == kVacant) {
      cur = fresh++;
      dense[cell] = cur;
      if (keys_out != nullptr) keys_out->push_back(cell);
    }
    ii[l] = cur;
  }
  *id = _mm256_load_si256(reinterpret_cast<const __m256i*>(ii));
  return fresh;
}

inline uint32_t MissBits8(__m256i miss) {
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(miss)));
}

/// Single-level specialization of the dense loop. Refine-by-one-attribute
/// is the hottest shape the repair search produces, and the generic loop
/// pays dearly for it: the RefineArgs/Level indirection plus the
/// (cold-path) push_back call make GCC re-load every field and re-test
/// every runtime flag per 8-tuple batch — measured ~2.5x over this
/// version, which hoists all batch constants into locals before the loop
/// and resolves the masked/count-only shape at compile time.
template <bool kMasked, bool kCountOnly, bool kKeys>
uint32_t Dense1Level8(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  const uint32_t* const base = a.base_ids;
  const uint8_t* const live = a.live;
  uint32_t* const out = a.out;
  std::vector<uint64_t>* const keys_out = a.keys_out;
  const Level lv = a.levels[0];
  const uint32_t* const codes = lv.codes;
  const bool check = base != nullptr && a.base_groups <= 0xffffffffull;
  const bool has_nulls = lv.has_nulls;
  const __m256i vgroups =
      _mm256_set1_epi32(static_cast<int>(a.base_groups));
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(lv.stride));
  const __m256i vnull =
      _mm256_set1_epi32(static_cast<int>(relation::kNullCode));
  const __m256i vslot = _mm256_set1_epi32(static_cast<int>(lv.null_slot));
  const __m256i vvacant = _mm256_set1_epi32(-1);

  // One batch's key vector: base ids (bounds-checked on live lanes) *
  // stride + NULL-remapped codes. Everything it reads is a local.
  const auto keys_at = [&](size_t t, __m256i livemask) {
    __m256i key;
    if (base != nullptr) {
      key = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + t));
      if (check) {
        __m256i bad = _mm256_cmpeq_epi32(_mm256_max_epu32(key, vgroups), key);
        if (kMasked) bad = _mm256_and_si256(bad, livemask);
        if (!_mm256_testz_si256(bad, bad)) detail::ThrowBadId();
      }
    } else {
      key = _mm256_setzero_si256();
    }
    __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + t));
    if (has_nulls) {
      const __m256i isnull = _mm256_cmpeq_epi32(c, vnull);
      c = _mm256_blendv_epi8(c, vslot, isnull);
    }
    return _mm256_add_epi32(_mm256_mullo_epi32(key, vstride), c);
  };

  size_t t = a.lo;
  // 2x unrolled: both gathers in flight before either fixup (latency
  // hiding); batch 1's stale-vacant reads self-correct because the fixup
  // re-reads each missed cell, strictly in tuple order.
  for (; t + 16 <= a.hi; t += 16) {
    __m256i live0 = _mm256_set1_epi32(-1);
    __m256i live1 = live0;
    if (kMasked) {
      live0 = LiveMask8(live, t);
      live1 = LiveMask8(live, t + 8);
    }
    const __m256i key0 = keys_at(t, live0);
    const __m256i key1 = keys_at(t + 8, live1);
    __m256i id0 =
        kMasked ? _mm256_mask_i32gather_epi32(
                      vvacant, reinterpret_cast<const int*>(dense), key0,
                      live0, 4)
                : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                         key0, 4);
    __m256i id1 =
        kMasked ? _mm256_mask_i32gather_epi32(
                      vvacant, reinterpret_cast<const int*>(dense), key1,
                      live1, 4)
                : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                         key1, 4);
    __m256i miss0 = _mm256_cmpeq_epi32(id0, vvacant);
    __m256i miss1 = _mm256_cmpeq_epi32(id1, vvacant);
    if (kMasked) {
      miss0 = _mm256_and_si256(miss0, live0);
      miss1 = _mm256_and_si256(miss1, live1);
    }
    const uint32_t bits0 = MissBits8(miss0);
    const uint32_t bits1 = MissBits8(miss1);
    if ((bits0 | bits1) != 0) {
      // Inline fixup over the combined 16-lane spill: ctz-walk in lane
      // (= tuple) order with a per-cell re-read, so duplicates within and
      // across the pair still get first-appearance ids. `kKeys == false`
      // removes the only call in the loop body, letting every batch
      // constant live in a register across iterations.
      alignas(32) uint32_t kk[16];
      _mm256_store_si256(reinterpret_cast<__m256i*>(kk), key0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(kk + 8), key1);
      uint32_t bits = bits0 | (bits1 << 8);
      if (kCountOnly) {
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          if (dense[cell] == kVacant) {
            dense[cell] = fresh++;
            if (kKeys) keys_out->push_back(cell);
          }
        }
      } else {
        alignas(32) uint32_t ii[16];
        _mm256_store_si256(reinterpret_cast<__m256i*>(ii), id0);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ii + 8), id1);
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          uint32_t cur = dense[cell];
          if (cur == kVacant) {
            cur = fresh++;
            dense[cell] = cur;
            if (kKeys) keys_out->push_back(cell);
          }
          ii[l] = cur;
        }
        id0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(ii));
        id1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(ii + 8));
      }
    }
    if (!kCountOnly) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t), id0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t + 8), id1);
    }
  }
  for (; t + 8 <= a.hi; t += 8) {
    __m256i livemask = _mm256_set1_epi32(-1);
    if (kMasked) {
      livemask = LiveMask8(live, t);
      if (_mm256_testz_si256(livemask, livemask)) continue;
    }
    const __m256i key = keys_at(t, livemask);
    __m256i id =
        kMasked ? _mm256_mask_i32gather_epi32(
                      vvacant, reinterpret_cast<const int*>(dense), key,
                      livemask, 4)
                : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                         key, 4);
    __m256i miss = _mm256_cmpeq_epi32(id, vvacant);
    if (kMasked) miss = _mm256_and_si256(miss, livemask);
    uint32_t bits = MissBits8(miss);
    if (bits != 0) {
      alignas(32) uint32_t kk[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(kk), key);
      if (kCountOnly) {
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          if (dense[cell] == kVacant) {
            dense[cell] = fresh++;
            if (kKeys) keys_out->push_back(cell);
          }
        }
      } else {
        alignas(32) uint32_t ii[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(ii), id);
        while (bits != 0) {
          const int l = __builtin_ctz(bits);
          bits &= bits - 1;
          const uint32_t cell = kk[l];
          uint32_t cur = dense[cell];
          if (cur == kVacant) {
            cur = fresh++;
            dense[cell] = cur;
            if (kKeys) keys_out->push_back(cell);
          }
          ii[l] = cur;
        }
        id = _mm256_load_si256(reinterpret_cast<const __m256i*>(ii));
      }
    }
    if (!kCountOnly) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t), id);
    }
  }
  return detail::DenseRefineRange(a, dense, fresh, t, a.hi);
}

template <bool kMasked, bool kCountOnly>
uint32_t Dense1Level8K(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  return a.keys_out != nullptr
             ? Dense1Level8<kMasked, kCountOnly, true>(a, dense, fresh)
             : Dense1Level8<kMasked, kCountOnly, false>(a, dense, fresh);
}

uint32_t Avx2Dense(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  if (a.level_count == 1) {
    const bool masked = a.live != nullptr;
    const bool count_only = a.out == nullptr;
    if (masked) {
      return count_only ? Dense1Level8K<true, true>(a, dense, fresh)
                        : Dense1Level8K<true, false>(a, dense, fresh);
    }
    return count_only ? Dense1Level8K<false, true>(a, dense, fresh)
                      : Dense1Level8K<false, false>(a, dense, fresh);
  }
  const __m256i vvacant = _mm256_set1_epi32(-1);
  const bool masked = a.live != nullptr;
  const bool count_only = a.out == nullptr;
  size_t t = a.lo;
  // 2x unrolled: both gathers are in flight before either fixup runs
  // (gather latency hiding). Batch 1's gather may read a stale kVacant
  // for a key batch 0 is about to insert — harmless, its fixup re-reads
  // the cell after batch 0's fixup completed, in tuple order.
  for (; t + 16 <= a.hi; t += 16) {
    __m256i live0 = _mm256_set1_epi32(-1);
    __m256i live1 = live0;
    if (masked) {
      live0 = LiveMask8(a.live, t);
      live1 = LiveMask8(a.live, t + 8);
    }
    const __m256i key0 = PackedKeys8(a, t, live0, masked);
    const __m256i key1 = PackedKeys8(a, t + 8, live1, masked);
    __m256i id0 =
        masked ? _mm256_mask_i32gather_epi32(
                     vvacant, reinterpret_cast<const int*>(dense), key0,
                     live0, 4)
               : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                        key0, 4);
    __m256i id1 =
        masked ? _mm256_mask_i32gather_epi32(
                     vvacant, reinterpret_cast<const int*>(dense), key1,
                     live1, 4)
               : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                        key1, 4);
    __m256i miss0 = _mm256_cmpeq_epi32(id0, vvacant);
    __m256i miss1 = _mm256_cmpeq_epi32(id1, vvacant);
    if (masked) {
      miss0 = _mm256_and_si256(miss0, live0);
      miss1 = _mm256_and_si256(miss1, live1);
    }
    const uint32_t bits0 = MissBits8(miss0);
    const uint32_t bits1 = MissBits8(miss1);
    if (bits0 != 0) {
      fresh = FixupMisses8(dense, key0, count_only ? nullptr : &id0, bits0,
                           fresh, a.keys_out);
    }
    if (bits1 != 0) {
      fresh = FixupMisses8(dense, key1, count_only ? nullptr : &id1, bits1,
                           fresh, a.keys_out);
    }
    if (!count_only) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.out + t), id0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.out + t + 8), id1);
    }
  }
  for (; t + 8 <= a.hi; t += 8) {
    __m256i livemask = _mm256_set1_epi32(-1);
    if (masked) {
      livemask = LiveMask8(a.live, t);
      if (_mm256_testz_si256(livemask, livemask)) continue;
    }
    const __m256i key = PackedKeys8(a, t, livemask, masked);
    // Dead lanes must not touch memory (their keys are unchecked); the
    // masked gather leaves them at kVacant, filtered out of `miss` below.
    __m256i id =
        masked ? _mm256_mask_i32gather_epi32(
                     vvacant, reinterpret_cast<const int*>(dense), key,
                     livemask, 4)
               : _mm256_i32gather_epi32(reinterpret_cast<const int*>(dense),
                                        key, 4);
    __m256i miss = _mm256_cmpeq_epi32(id, vvacant);
    if (masked) miss = _mm256_and_si256(miss, livemask);
    const uint32_t bits = MissBits8(miss);
    if (bits != 0) {
      fresh = FixupMisses8(dense, key, count_only ? nullptr : &id, bits,
                           fresh, a.keys_out);
    }
    if (!count_only) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.out + t), id);
    }
  }
  return detail::DenseRefineRange(a, dense, fresh, t, a.hi);
}

/// 64x64 -> low 64 multiply (AVX2 has no vpmullq): lo*lo plus the two
/// cross products shifted into the high half.
inline __m256i Mul64(__m256i x, __m256i y) {
  const __m256i lo = _mm256_mul_epu32(x, y);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(x, 32), y),
                       _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// 4-lane splitmix64 finalizer — must match util::Mix64 bit-for-bit.
inline __m256i Mix64x4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// FlatIdTable::HashOf on 4 lanes: seed ^ (Mix64(key) + folded constant).
inline __m256i HashOf4(__m256i key) {
  const __m256i mixed = Mix64x4(key);
  return _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(detail::kHashSeed)),
      _mm256_add_epi64(
          mixed,
          _mm256_set1_epi64x(static_cast<long long>(detail::kHashAdd))));
}

uint32_t Avx2Flat(const RefineArgs& a, util::FlatIdTable& table,
                  uint32_t fresh) {
  constexpr size_t kBlock = 128;
  constexpr size_t kPrefetchAhead = 8;
  alignas(32) uint64_t keys[kBlock];
  alignas(32) uint64_t hashes[kBlock];

  for (size_t b = a.lo; b < a.hi; b += kBlock) {
    const size_t be = std::min(a.hi, b + kBlock);
    // Build phase: packed u64 keys + hashes, 4 lanes at a time. Dead
    // lanes still get a (meaningless but safely computed) key — the probe
    // phase skips them, and their base ids are exempt from the check.
    size_t t = b;
    for (; t + 4 <= be; t += 4) {
      __m256i key;
      if (a.base_ids != nullptr) {
        const __m128i id32 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.base_ids + t));
        if (a.base_groups <= 0xffffffffull) {
          const __m128i vgroups =
              _mm_set1_epi32(static_cast<int>(a.base_groups));
          __m128i bad = _mm_cmpeq_epi32(_mm_max_epu32(id32, vgroups), id32);
          if (a.live != nullptr) {
            int lbytes;
            std::memcpy(&lbytes, a.live + t, sizeof(lbytes));
            const __m128i lv32 =
                _mm_cvtepu8_epi32(_mm_cvtsi32_si128(lbytes));
            bad = _mm_and_si128(
                bad, _mm_cmpgt_epi32(lv32, _mm_setzero_si128()));
          }
          if (!_mm_testz_si128(bad, bad)) detail::ThrowBadId();
        }
        key = _mm256_cvtepu32_epi64(id32);
      } else {
        key = _mm256_setzero_si256();
      }
      for (size_t j = 0; j < a.level_count; ++j) {
        const Level& lv = a.levels[j];
        __m128i c =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(lv.codes + t));
        if (lv.has_nulls) {
          const __m128i isnull = _mm_cmpeq_epi32(
              c, _mm_set1_epi32(static_cast<int>(relation::kNullCode)));
          c = _mm_blendv_epi8(
              c, _mm_set1_epi32(static_cast<int>(lv.null_slot)), isnull);
        }
        key = _mm256_add_epi64(
            Mul64(key,
                  _mm256_set1_epi64x(static_cast<long long>(lv.stride))),
            _mm256_cvtepu32_epi64(c));
      }
      _mm256_store_si256(reinterpret_cast<__m256i*>(keys + (t - b)), key);
      _mm256_store_si256(reinterpret_cast<__m256i*>(hashes + (t - b)),
                         HashOf4(key));
    }
    for (; t < be; ++t) {
      // Scalar tail of the block; dead rows keep a placeholder (skipped
      // below) because PackedKey's bounds check must not fire for them.
      if (a.live != nullptr && a.live[t] == 0) {
        keys[t - b] = 0;
        hashes[t - b] = 0;
        continue;
      }
      keys[t - b] = detail::PackedKey(a, t);
      hashes[t - b] = util::FlatIdTable::HashOf(keys[t - b]);
    }
    // Probe phase: scalar FindOrInsertHashed fed precomputed hashes, with
    // the next probe line prefetched a fixed distance ahead.
    for (t = b; t < be; ++t) {
      if (a.live != nullptr && a.live[t] == 0) continue;
      if (t + kPrefetchAhead < be) {
        table.PrefetchHash(hashes[t + kPrefetchAhead - b]);
      }
      bool inserted = false;
      const uint32_t id =
          table.FindOrInsertHashed(keys[t - b], hashes[t - b], fresh,
                                   &inserted);
      if (inserted) {
        if (a.keys_out != nullptr) a.keys_out->push_back(keys[t - b]);
        ++fresh;
      }
      if (a.out != nullptr) a.out[t] = id;
    }
  }
  return fresh;
}

void Avx2Remap(uint32_t* ids, size_t lo, size_t hi, const uint32_t* remap) {
  size_t t = lo;
  for (; t + 8 <= hi; t += 8) {
    const __m256i local =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + t));
    const __m256i global = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(remap), local, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + t), global);
  }
  detail::RemapRange(ids, t, hi, remap);
}

}  // namespace

const KernelSet kAvx2Kernels{util::CpuTier::kAvx2, Avx2Dense, Avx2Flat,
                             Avx2Remap};

}  // namespace fdevolve::query::kernels

#endif  // FDEVOLVE_X86_KERNELS
