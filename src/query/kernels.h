// Runtime-dispatched vectorized kernels for the partition-refinement hot
// paths (the DuckDB cpu_feature shape: one function-pointer set per ISA
// tier, resolved once at startup from util::DetectCpuFeatures()).
//
// Every kernel implements the same *fused multi-level* refinement pass: one
// sweep over a tuple range combines the incoming group ids with a whole
// chain of column levels at once via a packed mixed-radix key
//
//     key(t) = ((id * s_1 + c_1) * s_2 + c_2) ... * s_k + c_k
//
// where s_j = dict_size_j + has_nulls_j and c_j is the (NULL-remapped)
// dictionary code. The packing is injective, and its first-appearance
// order over tuples equals the final ids of the sequential per-level chain
// — so a fused segment is bit-identical to k single-level passes while
// touching the relation once instead of k times. Drivers split a chain
// into segments whose radix fits the dense array or a u64 flat key
// (query/group_ids.cpp does the planning; kernels just execute one
// segment over one range).
//
// Identity contract (enforced by tests/query/kernel_tier_fuzz_test.cpp):
// every tier — baseline scalar, SSE4.2, AVX2, AVX-512 — assigns exactly
// the same first-appearance ids, records the same key list, and throws the
// same exception on malformed bases. The SIMD variants may batch the
// bounds check (an exception fires before any tuple of the offending batch
// is processed, instead of mid-batch), which is only observable on the
// exception path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cpu_features.h"
#include "util/flat_table.h"

// FDEVOLVE_X86_KERNELS is defined (by src/query/CMakeLists.txt, for the
// query module's TUs only) exactly when the ISA-specific kernel files are
// compiled with their per-file -m flags: x86-64 with GCC/Clang. Everywhere
// else the registry holds the baseline set alone. Keeping the macro and
// the flag condition in one place is what guarantees the registry never
// references a kernel set that was not built.

namespace fdevolve::query::kernels {

/// One column level of a fused refinement segment.
struct Level {
  const uint32_t* codes = nullptr;  ///< dictionary codes, one per tuple
  uint64_t stride = 0;              ///< dict_size + has_nulls (radix digit)
  uint32_t null_slot = 0;           ///< code kNullCode remaps to (== dict_size)
  bool has_nulls = false;           ///< whether kNullCode can appear at all
};

/// Inputs of one fused refinement pass over the tuple range [lo, hi).
///
/// Contracts shared by every kernel:
///   * `base_ids == nullptr` means the trivial one-group base (id 0).
///     Otherwise each live tuple's id is bounds-checked against
///     `base_groups` and a violation throws std::invalid_argument
///     ("RefinePass: group id out of range") — dead rows are exempt,
///     exactly like the scalar loop they replace.
///   * `out` may alias `base_ids`: every slot is read before written.
///   * `live != nullptr` (tombstone bitmap; 0 = dead row skipped) implies
///     `out == nullptr` — only count-only passes filter.
///   * `keys_out`, when set, receives the packed key of every fresh id in
///     assignment order (the parallel merge consumes this).
struct RefineArgs {
  const uint32_t* base_ids = nullptr;
  uint64_t base_groups = 1;
  const Level* levels = nullptr;
  size_t level_count = 0;
  size_t lo = 0;
  size_t hi = 0;
  uint32_t* out = nullptr;
  const uint8_t* live = nullptr;
  std::vector<uint64_t>* keys_out = nullptr;
};

/// Direct-indexed pass: `dense` has one cell per possible packed key,
/// pre-filled with util::FlatIdTable::kVacant. The caller guarantees the
/// segment radix (cell count) is <= kDenseCellLimit, which is what lets the
/// gather-based variants treat keys as signed 32-bit indices. Returns the
/// updated fresh-id counter.
using DenseRefineFn = uint32_t (*)(const RefineArgs& args, uint32_t* dense,
                                   uint32_t fresh);

/// Open-addressing pass through a util::FlatIdTable keyed on the packed
/// u64 key. Vector tiers batch the Mix64-based hash and feed
/// FindOrInsertHashed with prefetching. Returns the updated fresh counter.
using FlatRefineFn = uint32_t (*)(const RefineArgs& args,
                                  util::FlatIdTable& table, uint32_t fresh);

/// Rewrite pass of the parallel path: ids[t] = remap[ids[t]] over [lo, hi).
using RemapFn = void (*)(uint32_t* ids, size_t lo, size_t hi,
                         const uint32_t* remap);

/// One dispatch tier's kernels. Instances are immutable statics; the
/// registry publishes a pointer to the active one.
struct KernelSet {
  util::CpuTier tier;
  DenseRefineFn dense_refine;
  FlatRefineFn flat_refine;
  RemapFn remap;
};

/// Largest dense array any driver may admit (cells). Bounded by 2^31 so
/// packed keys stay valid *signed* 32-bit gather indices on every tier.
constexpr size_t kDenseCellLimit = size_t{1} << 31;

/// \brief The active kernel set.
///
/// Resolved once on first use: the host's best tier, optionally lowered by
/// the FDEVOLVE_CPU_FEATURES environment variable (unknown names throw
/// std::invalid_argument; names above what the host supports clamp down).
/// Thread-safe; after the first call this is one atomic load.
const KernelSet& Active();

/// Best tier the host CPU + OS support (independent of any override).
util::CpuTier DetectedTier();

/// Tier of the currently active kernel set (after env/CLI overrides).
util::CpuTier SelectedTier();

/// \brief Forces the active kernel set to `tier`, clamped to what the host
/// supports; returns the tier actually installed. Used by the
/// --cpu-features flag, the tier-identity fuzz suite, and bench_kernels.
/// Not thread-safe against concurrent refinement passes — call at startup
/// or between passes.
util::CpuTier ForceTier(util::CpuTier tier);

/// ForceTier by name; throws std::invalid_argument on unknown names
/// (valid: baseline|sse42|avx2|avx512).
util::CpuTier ForceTierByName(const std::string& name);

/// Tiers this process can actually run (compiled in AND host-supported),
/// ascending. Always contains kBaseline.
std::vector<util::CpuTier> SupportedTiers();

}  // namespace fdevolve::query::kernels
