// COUNT(DISTINCT attrs) — the only "SQL" the paper's algorithm needs.
//
// The paper implements confidence/goodness with COUNT(DISTINCT ...) queries
// against MySQL and notes the cost is a sort (O(n log n)) or hash count.
// We provide both strategies; the hash path is the default and the sort path
// exists for the ablation bench that validates the complexity claim.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::query {

/// Strategy used by DistinctCount.
enum class DistinctStrategy {
  kHash,  ///< partition refinement (dense / open-addressing; default)
  kSort,  ///< sort composite keys, then count boundaries
};

/// |π_attrs(rel)| — the number of distinct projected tuples.
/// Empty attrs yields 1 on non-empty relations, 0 on empty ones.
/// The hash strategy is count-only: it never materializes group ids, and a
/// single attribute is answered from the column dictionary in O(1).
size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy = DistinctStrategy::kHash);

/// Batched evaluator with a per-instance memo. The repair search asks for
/// |π_X|, |π_XY|, |π_XA|, |π_XAY| over many overlapping sets; memoising the
/// groupings turns each new query into one refinement pass.
///
/// Two tiers of memoisation:
///   * GroupFor() materializes and caches full groupings, indexed by
///     popcount so the best cached subset to refine from is found without
///     scanning the whole cache;
///   * Count() is count-only — the final refinement pass never writes ids.
///     It memoises the resulting cardinality, refines from the largest
///     cached grouping, and when more than one attribute is missing it
///     materializes all but the last so sibling queries (the search's
///     XA_iY pattern) share the base.
/// Scratch buffers are owned by the evaluator and reused across passes, so
/// steady-state queries allocate only when a grouping enters the cache.
class DistinctEvaluator {
 public:
  explicit DistinctEvaluator(const relation::Relation& rel) : rel_(rel) {}

  /// |π_attrs(rel)| with memoisation (count-only; see class comment).
  size_t Count(const relation::AttrSet& attrs);

  /// Memoised grouping for an attribute set (shared with clustering code).
  const Grouping& GroupFor(const relation::AttrSet& attrs);

  /// Number of memoised groupings (exposed for tests / instrumentation).
  size_t cache_size() const { return cache_.size(); }

  /// Total number of grouping/count computations performed (cache misses).
  size_t miss_count() const { return misses_; }

  const relation::Relation& rel() const { return rel_; }

 private:
  struct SubsetMatch {
    const relation::AttrSet* key = nullptr;
    const Grouping* grouping = nullptr;
  };

  /// Largest cached subset of `attrs` (including `attrs` itself), found by
  /// walking the popcount buckets from |attrs| downward.
  SubsetMatch BestCachedSubset(const relation::AttrSet& attrs) const;

  const Grouping& Insert(const relation::AttrSet& attrs, Grouping g);

  const relation::Relation& rel_;
  std::unordered_map<relation::AttrSet, Grouping, relation::AttrSetHash> cache_;
  std::unordered_map<relation::AttrSet, size_t, relation::AttrSetHash> counts_;
  /// Cache keys bucketed by AttrSet::Count() — the subset-search index.
  std::vector<std::vector<relation::AttrSet>> by_size_;
  RefineScratch scratch_;
  size_t misses_ = 0;
};

}  // namespace fdevolve::query
