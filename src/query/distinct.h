// COUNT(DISTINCT attrs) — the only "SQL" the paper's algorithm needs.
//
// The paper implements confidence/goodness with COUNT(DISTINCT ...) queries
// against MySQL and notes the cost is a sort (O(n log n)) or hash count.
// We provide both strategies; the hash path is the default and the sort path
// exists for the ablation bench that validates the complexity claim.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::query {

/// \brief Strategy used by DistinctCount.
enum class DistinctStrategy {
  kHash,  ///< partition refinement (dense / open-addressing; default)
  kSort,  ///< sort composite keys, then count boundaries
};

/// \brief |π_attrs(rel)| — the number of distinct projected tuples.
///
/// Empty attrs yields 1 on non-empty relations, 0 on empty ones.
/// The hash strategy is count-only: it never materializes group ids, and a
/// single attribute is answered from the column dictionary in O(1).
///
/// \param threads execution width for the hash strategy's refinement
///        passes: 0 (default) resolves to `hardware_concurrency`, 1 forces
///        the exact sequential code path, k > 1 range-partitions large
///        scans across the shared thread pool. The result is identical for
///        every value — parallelism changes wall time, never the count.
///        The sort strategy ignores it.
/// \return the distinct count.
size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy = DistinctStrategy::kHash,
                     int threads = 0);

/// \brief Batched evaluator with a per-instance memo, incrementally
/// maintainable under appends.
///
/// The repair search asks for |π_X|, |π_XY|, |π_XA|, |π_XAY| over many
/// overlapping sets; memoising the groupings turns each new query into one
/// refinement pass.
///
/// Two tiers of memoisation:
///   * GroupFor() materializes and caches full groupings, indexed by
///     popcount so the best cached subset to refine from is found without
///     scanning the whole cache;
///   * Count() is count-only — the final refinement pass never writes ids.
///     It memoises the resulting cardinality, refines from the largest
///     cached grouping, and when more than one attribute is missing it
///     materializes all but the last so sibling queries (the search's
///     XA_iY pattern) share the base.
/// Scratch buffers are owned by the evaluator and reused across passes, so
/// steady-state queries allocate only when a grouping enters the cache.
///
/// \par Incremental maintenance (Advance)
/// The evaluator tracks the relation's row watermark
/// (relation::Relation::version()). When rows have been appended since the
/// last query, Advance() — called explicitly or automatically on the next
/// Count()/GroupFor() — extends every cached grouping and count over just
/// the appended suffix: each cached grouping keeps one key→id
/// util::FlatIdTable per attribute of its derivation chain alive, so a new
/// tuple costs one table lookup per chain level (existing key → existing
/// group id, new key → the next fresh id). Because dictionary codes and
/// group ids are append-stable, no cache entry is ever invalidated, and
/// the advanced state is bit-identical to what rebuilding the same query
/// sequence from scratch on the grown relation would produce. Level
/// tables are built lazily on the first Advance (one replay of the
/// prefix), so purely-static workloads pay nothing for them.
///
/// \par Thread-safety contract
/// An evaluator instance is **single-owner**: Count(), GroupFor(), and
/// Advance() mutate the memo caches, so two threads must never call into
/// the same instance concurrently (including "read-only looking" calls —
/// every query may insert or advance). External synchronization or one
/// evaluator per thread is required. The `threads` knob is *internal*
/// parallelism and is safe: the evaluator stays the only writer to its
/// caches while worker threads range-partition individual scans through
/// chunk-private state, and all workers have finished (with a
/// happens-before edge) when a query returns. Callers that parallelize
/// *across* candidates (the repair search) instead snapshot
/// `const Grouping&` references from GroupFor() up front and hand worker
/// threads their own RefineScratch — cached groupings are stable (their
/// addresses never change, and their contents only grow via Advance), so
/// concurrent reads of them are safe as long as no thread is inside
/// Count()/GroupFor()/Advance() at the same time, and no rows are appended
/// to the relation while the snapshots are being read.
class DistinctEvaluator {
 public:
  /// \param rel relation queried; must outlive the evaluator. Appends to
  ///        `rel` between queries are folded in incrementally (see class
  ///        comment); the evaluator must be quiescent while rows are
  ///        appended.
  /// \param threads execution width for refinement passes (see
  ///        DistinctCount); 0 = auto, 1 = exact sequential path.
  explicit DistinctEvaluator(const relation::Relation& rel, int threads = 0);

  /// \brief |π_attrs(rel)| with memoisation (count-only; see class
  /// comment). Identical for every `threads` setting.
  size_t Count(const relation::AttrSet& attrs);

  /// \brief Memoised grouping for an attribute set (shared with clustering
  /// code).
  ///
  /// The returned reference is stable for the evaluator's lifetime: cache
  /// entries are never evicted or moved after insertion. Their contents
  /// are extended in place by Advance() — `Grouping::ids` grows and
  /// `group_count` may increase, but ids already assigned never change.
  const Grouping& GroupFor(const relation::AttrSet& attrs);

  /// \brief Folds rows appended to rel() since the last query into every
  /// cached grouping and count. O(appended rows × chain levels) per cached
  /// grouping, plus a one-time prefix replay per grouping that has never
  /// been advanced before.
  ///
  /// Count() and GroupFor() call this automatically when the relation's
  /// version has moved, so explicit calls are only needed to control
  /// *when* the work happens. No-op when nothing was appended. Throws
  /// std::logic_error if the relation shrank (unsupported).
  void Advance();

  /// Rows already folded into the caches (== rel().version() after any
  /// query or Advance()).
  size_t watermark() const { return watermark_; }

  /// Number of memoised groupings (exposed for tests / instrumentation).
  size_t cache_size() const { return cache_.size(); }

  /// Total number of grouping/count computations performed (cache misses).
  /// Advance() maintains existing entries and never counts as a miss.
  size_t miss_count() const { return misses_; }

  /// Resolved execution width (>= 1) used by this evaluator's passes.
  int threads() const { return scratch_.threads; }

  const relation::Relation& rel() const { return rel_; }

 private:
  /// One memoised grouping plus the derivation record Advance() needs to
  /// extend it: the cached subset it was refined from (if any) and the
  /// per-attribute chain of key→id tables.
  struct CachedGrouping {
    Grouping grouping;

    bool has_base = false;     ///< grouping was refined from a cached base
    relation::AttrSet base;    ///< the (strict-subset) base key, if any
    std::vector<int> gap;      ///< attrs chained on top, ascending order

    /// One refinement level of the chain. `table` maps
    /// (incoming id << 32 | column code) to the id assigned at this level,
    /// exactly mirroring the flat refinement pass; `group_count` is the
    /// number of ids handed out so far (== table.size()).
    struct Level {
      int attr = -1;
      util::FlatIdTable table;
      uint32_t group_count = 0;
    };
    std::vector<Level> levels;  ///< built lazily on the first Advance
    size_t tabled = 0;          ///< rows [0, tabled) folded into `levels`
  };

  struct SubsetMatch {
    const relation::AttrSet* key = nullptr;
    const Grouping* grouping = nullptr;
  };

  /// Largest cached subset of `attrs` (including `attrs` itself), found by
  /// walking the popcount buckets from |attrs| downward.
  SubsetMatch BestCachedSubset(const relation::AttrSet& attrs) const;

  const Grouping& Insert(const relation::AttrSet& attrs, Grouping g,
                         const relation::AttrSet* base_key);

  /// Runs Advance() if the relation's version moved since the last query.
  void MaybeAdvance();

  /// Extends one cached grouping to cover rows [0, n), building its level
  /// tables first if this is its first advance.
  void AdvanceGrouping(CachedGrouping& cg, size_t n);

  const relation::Relation& rel_;
  std::unordered_map<relation::AttrSet, CachedGrouping, relation::AttrSetHash>
      cache_;
  std::unordered_map<relation::AttrSet, size_t, relation::AttrSetHash> counts_;
  /// Cache keys bucketed by AttrSet::Count() — the subset-search index.
  /// Bucket order is also Advance()'s processing order: a grouping's base
  /// has strictly fewer attributes, so walking buckets ascending advances
  /// every base before its dependents.
  std::vector<std::vector<relation::AttrSet>> by_size_;
  RefineScratch scratch_;
  size_t misses_ = 0;
  size_t watermark_ = 0;  ///< rows folded into the caches so far
};

}  // namespace fdevolve::query
