// COUNT(DISTINCT attrs) — the only "SQL" the paper's algorithm needs.
//
// The paper implements confidence/goodness with COUNT(DISTINCT ...) queries
// against MySQL and notes the cost is a sort (O(n log n)) or hash count.
// We provide both strategies; the hash path is the default and the sort path
// exists for the ablation bench that validates the complexity claim.
#pragma once

#include <cstddef>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::query {

/// Strategy used by DistinctCount.
enum class DistinctStrategy {
  kHash,  ///< partition refinement with hash tables (default)
  kSort,  ///< sort composite keys, then count boundaries
};

/// |π_attrs(rel)| — the number of distinct projected tuples.
/// Empty attrs yields 1 on non-empty relations, 0 on empty ones.
size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy = DistinctStrategy::kHash);

/// Batched evaluator with a per-instance memo. The repair search asks for
/// |π_X|, |π_XY|, |π_XA|, |π_XAY| over many overlapping sets; memoising the
/// groupings turns each new query into one refinement pass.
class DistinctEvaluator {
 public:
  explicit DistinctEvaluator(const relation::Relation& rel) : rel_(rel) {}

  /// |π_attrs(rel)| with memoisation.
  size_t Count(const relation::AttrSet& attrs);

  /// Memoised grouping for an attribute set (shared with clustering code).
  const Grouping& GroupFor(const relation::AttrSet& attrs);

  /// Number of memoised groupings (exposed for tests / instrumentation).
  size_t cache_size() const { return cache_.size(); }

  /// Total number of grouping computations performed (cache misses).
  size_t miss_count() const { return misses_; }

  const relation::Relation& rel() const { return rel_; }

 private:
  const relation::Relation& rel_;
  std::unordered_map<relation::AttrSet, Grouping, relation::AttrSetHash> cache_;
  size_t misses_ = 0;
};

}  // namespace fdevolve::query
