// COUNT(DISTINCT attrs) — the only "SQL" the paper's algorithm needs.
//
// The paper implements confidence/goodness with COUNT(DISTINCT ...) queries
// against MySQL and notes the cost is a sort (O(n log n)) or hash count.
// We provide both strategies; the hash path is the default and the sort path
// exists for the ablation bench that validates the complexity claim.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::query {

/// \brief Strategy used by DistinctCount.
enum class DistinctStrategy {
  kHash,  ///< partition refinement (dense / open-addressing; default)
  kSort,  ///< sort composite keys, then count boundaries
};

/// \brief |π_attrs(rel)| — the number of distinct projected tuples.
///
/// Empty attrs yields 1 on non-empty relations, 0 on empty ones.
/// The hash strategy is count-only: it never materializes group ids, and a
/// single attribute is answered from the column dictionary in O(1).
///
/// \param threads execution width for the hash strategy's refinement
///        passes: 0 (default) resolves to `hardware_concurrency`, 1 forces
///        the exact sequential code path, k > 1 range-partitions large
///        scans across the shared thread pool. The result is identical for
///        every value — parallelism changes wall time, never the count.
///        The sort strategy ignores it.
/// \return the distinct count.
size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy = DistinctStrategy::kHash,
                     int threads = 0);

/// \brief Batched evaluator with a per-instance memo.
///
/// The repair search asks for |π_X|, |π_XY|, |π_XA|, |π_XAY| over many
/// overlapping sets; memoising the groupings turns each new query into one
/// refinement pass.
///
/// Two tiers of memoisation:
///   * GroupFor() materializes and caches full groupings, indexed by
///     popcount so the best cached subset to refine from is found without
///     scanning the whole cache;
///   * Count() is count-only — the final refinement pass never writes ids.
///     It memoises the resulting cardinality, refines from the largest
///     cached grouping, and when more than one attribute is missing it
///     materializes all but the last so sibling queries (the search's
///     XA_iY pattern) share the base.
/// Scratch buffers are owned by the evaluator and reused across passes, so
/// steady-state queries allocate only when a grouping enters the cache.
///
/// \par Thread-safety contract
/// An evaluator instance is **single-owner**: Count() and GroupFor() mutate
/// the memo caches, so two threads must never call into the same instance
/// concurrently (including "read-only looking" calls — every query may
/// insert). External synchronization or one evaluator per thread is
/// required. The `threads` knob is *internal* parallelism and is safe: the
/// evaluator stays the only writer to its caches while worker threads
/// range-partition individual scans through chunk-private state, and all
/// workers have finished (with a happens-before edge) when a query
/// returns. Callers that parallelize *across* candidates (the repair
/// search) instead snapshot `const Grouping&` references from GroupFor()
/// up front and hand worker threads their own RefineScratch — cached
/// groupings are stable (never mutated or moved once inserted), so
/// concurrent reads of them are safe as long as no thread is inside
/// Count()/GroupFor() at the same time.
class DistinctEvaluator {
 public:
  /// \param rel relation queried; must outlive the evaluator.
  /// \param threads execution width for refinement passes (see
  ///        DistinctCount); 0 = auto, 1 = exact sequential path.
  explicit DistinctEvaluator(const relation::Relation& rel, int threads = 0);

  /// \brief |π_attrs(rel)| with memoisation (count-only; see class
  /// comment). Identical for every `threads` setting.
  size_t Count(const relation::AttrSet& attrs);

  /// \brief Memoised grouping for an attribute set (shared with clustering
  /// code).
  ///
  /// The returned reference is stable for the evaluator's lifetime: cache
  /// entries are never evicted, mutated, or moved after insertion.
  const Grouping& GroupFor(const relation::AttrSet& attrs);

  /// Number of memoised groupings (exposed for tests / instrumentation).
  size_t cache_size() const { return cache_.size(); }

  /// Total number of grouping/count computations performed (cache misses).
  size_t miss_count() const { return misses_; }

  /// Resolved execution width (>= 1) used by this evaluator's passes.
  int threads() const { return scratch_.threads; }

  const relation::Relation& rel() const { return rel_; }

 private:
  struct SubsetMatch {
    const relation::AttrSet* key = nullptr;
    const Grouping* grouping = nullptr;
  };

  /// Largest cached subset of `attrs` (including `attrs` itself), found by
  /// walking the popcount buckets from |attrs| downward.
  SubsetMatch BestCachedSubset(const relation::AttrSet& attrs) const;

  const Grouping& Insert(const relation::AttrSet& attrs, Grouping g);

  const relation::Relation& rel_;
  std::unordered_map<relation::AttrSet, Grouping, relation::AttrSetHash> cache_;
  std::unordered_map<relation::AttrSet, size_t, relation::AttrSetHash> counts_;
  /// Cache keys bucketed by AttrSet::Count() — the subset-search index.
  std::vector<std::vector<relation::AttrSet>> by_size_;
  RefineScratch scratch_;
  size_t misses_ = 0;
};

}  // namespace fdevolve::query
