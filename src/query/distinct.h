// COUNT(DISTINCT attrs) — the only "SQL" the paper's algorithm needs.
//
// The paper implements confidence/goodness with COUNT(DISTINCT ...) queries
// against MySQL and notes the cost is a sort (O(n log n)) or hash count.
// We provide both strategies; the hash path is the default and the sort path
// exists for the ablation bench that validates the complexity claim.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "query/group_ids.h"
#include "relation/relation.h"

namespace fdevolve::query {

/// \brief Strategy used by DistinctCount.
enum class DistinctStrategy {
  kHash,  ///< partition refinement (dense / open-addressing; default)
  kSort,  ///< sort composite keys, then count boundaries
};

/// \brief |π_attrs(rel)| — the number of distinct projected tuples over
/// the relation's live rows (tombstoned rows are excluded).
///
/// Empty attrs yields 1 when any live row exists, 0 otherwise.
/// The hash strategy is count-only: it never materializes group ids, and a
/// single attribute on an append-only relation is answered from the
/// column dictionary in O(1).
///
/// \param threads execution width for the hash strategy's refinement
///        passes: 0 (default) resolves to `hardware_concurrency`, 1 forces
///        the exact sequential code path, k > 1 range-partitions large
///        scans across the shared thread pool. The result is identical for
///        every value — parallelism changes wall time, never the count.
///        The sort strategy ignores it.
/// \return the distinct count.
size_t DistinctCount(const relation::Relation& rel,
                     const relation::AttrSet& attrs,
                     DistinctStrategy strategy = DistinctStrategy::kHash,
                     int threads = 0);

/// \brief Batched evaluator with a per-instance memo, incrementally
/// maintainable under appends.
///
/// The repair search asks for |π_X|, |π_XY|, |π_XA|, |π_XAY| over many
/// overlapping sets; memoising the groupings turns each new query into one
/// refinement pass.
///
/// Two tiers of memoisation:
///   * GroupFor() materializes and caches full groupings, indexed by
///     popcount so the best cached subset to refine from is found without
///     scanning the whole cache;
///   * Count() is count-only — the final refinement pass never writes ids.
///     It memoises the resulting cardinality, refines from the largest
///     cached grouping, and when more than one attribute is missing it
///     materializes all but the last so sibling queries (the search's
///     XA_iY pattern) share the base.
/// Scratch buffers are owned by the evaluator and reused across passes, so
/// steady-state queries allocate only when a grouping enters the cache.
///
/// \par Incremental maintenance (Advance)
/// The evaluator tracks the relation's row watermark
/// (relation::Relation::version()). When rows have been appended since the
/// last query, Advance() — called explicitly or automatically on the next
/// Count()/GroupFor() — extends every cached grouping and count over just
/// the appended suffix: each cached grouping keeps one key→id
/// util::FlatIdTable per attribute of its derivation chain alive, so a new
/// tuple costs one table lookup per chain level (existing key → existing
/// group id, new key → the next fresh id). Because dictionary codes and
/// group ids are append-stable, no cache entry is ever invalidated, and
/// the advanced state is bit-identical to what rebuilding the same query
/// sequence from scratch on the grown relation would produce. Level
/// tables are built lazily on the first Advance (one replay of the
/// prefix), so purely-static workloads pay nothing for them.
///
/// \par Deletions and compaction
/// The evaluator also tracks relation::Relation::mutation_epoch() and the
/// deletion log. Cached groupings keep covering every physical row (their
/// ids never change — deletion does not reassign row ids or codes), and
/// each grows a per-group LIVE REFCOUNT vector the first time a deletion
/// is observed: Count() then answers with the number of groups whose
/// refcount is nonzero. Folding one deleted row into one cached grouping
/// is a single decrement via its maintained ids — O(cached groupings) per
/// deleted row overall, independent of relation size — and appends keep
/// their O(levels) cost (a fresh row increments its group's refcount as
/// its id is assigned). Under tombstones every Count() is routed through
/// a cached grouping (the dictionary fast path is no longer valid), so
/// monitor-style workloads stay O(Δ) per check.
///
/// A Compact() reassigns physical row ids and codes wholesale; the
/// evaluator detects it via relation::Relation::compactions() and drops
/// every cache entry — Grouping references obtained before a compaction
/// are invalidated (their contents are cleared, not extended). The next
/// query rebuilds from the compacted relation, whose encoded state is
/// bit-identical to a fresh append-only build of the live rows, so
/// post-compaction results equal fresh-rebuild results exactly.
///
/// \par Thread-safety contract
/// An evaluator instance is **single-owner**: Count(), GroupFor(), and
/// Advance() mutate the memo caches, so two threads must never call into
/// the same instance concurrently (including "read-only looking" calls —
/// every query may insert or advance). External synchronization or one
/// evaluator per thread is required. The `threads` knob is *internal*
/// parallelism and is safe: the evaluator stays the only writer to its
/// caches while worker threads range-partition individual scans through
/// chunk-private state, and all workers have finished (with a
/// happens-before edge) when a query returns. Callers that parallelize
/// *across* candidates (the repair search) instead snapshot
/// `const Grouping&` references from GroupFor() up front and hand worker
/// threads their own RefineScratch — cached groupings are stable (their
/// addresses never change, and their contents only grow via Advance), so
/// concurrent reads of them are safe as long as no thread is inside
/// Count()/GroupFor()/Advance() at the same time, and no rows are appended
/// to the relation while the snapshots are being read.
class DistinctEvaluator {
 public:
  /// \param rel relation queried; must outlive the evaluator. Appends to
  ///        `rel` between queries are folded in incrementally (see class
  ///        comment); the evaluator must be quiescent while rows are
  ///        appended.
  /// \param threads execution width for refinement passes (see
  ///        DistinctCount); 0 = auto, 1 = exact sequential path.
  explicit DistinctEvaluator(const relation::Relation& rel, int threads = 0);

  /// \brief |π_attrs| over the relation's live rows, with memoisation
  /// (see class comment). Identical for every `threads` setting.
  size_t Count(const relation::AttrSet& attrs);

  /// \brief Memoised grouping for an attribute set (shared with clustering
  /// code). Covers every physical row, tombstoned ones included.
  ///
  /// The returned reference is stable until the relation is compacted:
  /// cache entries are never evicted or moved after insertion, and their
  /// contents are extended in place by Advance() — `Grouping::ids` grows
  /// and `group_count` may increase, but ids already assigned never
  /// change. A relation::Relation::Compact() invalidates every previously
  /// returned reference (the cache is dropped and rebuilt); callers that
  /// snapshot references must not hold them across a compaction.
  const Grouping& GroupFor(const relation::AttrSet& attrs);

  /// \brief Folds relation changes since the last query into every cached
  /// grouping and count: appended rows first (O(appended × chain levels)
  /// per cached grouping, plus a one-time prefix replay per grouping that
  /// has never been advanced before), then newly tombstoned rows from the
  /// deletion log (O(1) per cached grouping per deleted row). A observed
  /// compaction instead resets the caches entirely.
  ///
  /// Count() and GroupFor() call this automatically when the relation's
  /// version, mutation epoch, or compaction counter has moved, so
  /// explicit calls are only needed to control *when* the work happens.
  /// Throws std::logic_error if the relation shrank without a compaction
  /// (a stale-cache pairing bug — see relation::Relation's class
  /// comment).
  void Advance();

  /// Rows already folded into the caches (== rel().version() after any
  /// query or Advance()).
  size_t watermark() const { return watermark_; }

  /// Number of memoised groupings (exposed for tests / instrumentation).
  size_t cache_size() const { return cache_.size(); }

  /// Total number of grouping/count computations performed (cache misses).
  /// Advance() maintains existing entries and never counts as a miss.
  size_t miss_count() const { return misses_; }

  /// Resolved execution width (>= 1) used by this evaluator's passes.
  int threads() const { return scratch_.threads; }

  const relation::Relation& rel() const { return rel_; }

 private:
  /// One memoised grouping plus the derivation record Advance() needs to
  /// extend it: the cached subset it was refined from (if any) and the
  /// per-attribute chain of key→id tables.
  struct CachedGrouping {
    Grouping grouping;

    bool has_base = false;     ///< grouping was refined from a cached base
    relation::AttrSet base;    ///< the (strict-subset) base key, if any
    std::vector<int> gap;      ///< attrs chained on top, ascending order

    /// One refinement level of the chain. `table` maps
    /// (incoming id << 32 | column code) to the id assigned at this level,
    /// exactly mirroring the flat refinement pass; `group_count` is the
    /// number of ids handed out so far (== table.size()).
    struct Level {
      int attr = -1;
      util::FlatIdTable table;
      uint32_t group_count = 0;
    };
    std::vector<Level> levels;  ///< built lazily on the first Advance
    size_t tabled = 0;          ///< rows [0, tabled) folded into `levels`

    /// Per-group live-row refcounts, materialized for every cached
    /// grouping the first time a deletion is observed (empty before
    /// that). `live_groups` is the number of nonzero entries — the
    /// live-row distinct count this grouping answers.
    std::vector<uint32_t> live;
    size_t live_groups = 0;
  };

  struct SubsetMatch {
    const relation::AttrSet* key = nullptr;
    const Grouping* grouping = nullptr;
  };

  /// Largest cached subset of `attrs` (including `attrs` itself), found by
  /// walking the popcount buckets from |attrs| downward.
  SubsetMatch BestCachedSubset(const relation::AttrSet& attrs) const;

  const Grouping& Insert(const relation::AttrSet& attrs, Grouping g,
                         const relation::AttrSet* base_key);

  /// Runs Advance() if the relation's version, mutation epoch, or
  /// compaction counter moved since the last query; resets the caches
  /// outright when a compaction happened.
  void MaybeAdvance();

  /// Extends one cached grouping to cover rows [0, n), building its level
  /// tables first if this is its first advance. When refcounts are active
  /// (`mutation_seen_`), the newly folded rows — always live, appends
  /// cannot be pre-tombstoned — increment their groups' refcounts.
  void AdvanceGrouping(CachedGrouping& cg, size_t n);

  /// Builds `cg.live` / `cg.live_groups` from scratch by scanning
  /// `cg.grouping.ids` against the relation's tombstone bitmap.
  void BuildLiveRefcounts(CachedGrouping& cg);

  /// Increments refcounts for freshly appended rows [from, to); no-op
  /// before the first observed mutation.
  void ExtendLiveRefcounts(CachedGrouping& cg, size_t from, size_t to);

  /// Folds deletion-log entries [tomb_pos_, end) into every cached
  /// grouping's refcounts; on the first observed mutation builds the
  /// refcounts wholesale instead.
  void FoldDeletions();

  const relation::Relation& rel_;
  std::unordered_map<relation::AttrSet, CachedGrouping, relation::AttrSetHash>
      cache_;
  std::unordered_map<relation::AttrSet, size_t, relation::AttrSetHash> counts_;
  /// Cache keys bucketed by AttrSet::Count() — the subset-search index.
  /// Bucket order is also Advance()'s processing order: a grouping's base
  /// has strictly fewer attributes, so walking buckets ascending advances
  /// every base before its dependents.
  std::vector<std::vector<relation::AttrSet>> by_size_;
  RefineScratch scratch_;
  size_t misses_ = 0;
  size_t watermark_ = 0;  ///< rows folded into the caches so far

  // Mutation tracking (see the class comment's deletion paragraph).
  bool mutation_seen_ = false;    ///< refcounts are materialized
  size_t tomb_pos_ = 0;           ///< deletion-log entries already folded
  size_t epoch_seen_ = 0;         ///< rel_.mutation_epoch() snapshot
  size_t compactions_seen_ = 0;   ///< rel_.compactions() snapshot
};

}  // namespace fdevolve::query
