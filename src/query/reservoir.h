// Deterministic, seed-driven reservoir sample over an evolving relation.
//
// The sampled monitoring mode (fd::SampledSchemaMonitor) needs a fixed
// memory budget regardless of stream length: a uniform sample of the live
// rows, maintained under INSERT/DELETE/UPDATE through the same
// version()/mutation_epoch()/compactions() contract the incremental
// caches use. The classic streaming answer is Vitter's Algorithm R over a
// fixed-capacity reservoir (DuckDB's physical_reservoir_sample operator is
// the production shape of the same idea), adapted here for the
// tombstone-mutable storage:
//
//   * **Appends** run plain Algorithm R over *physical* rows: the t-th
//     offered row replaces a uniformly chosen slot with probability k/t.
//     The reservoir is therefore always a uniform k-subset of the physical
//     rows offered so far.
//   * **Deletes** do NOT restructure the reservoir. A tombstoned member
//     merely stops counting: consumers read the sample through
//     LiveMembers(), which filters through Relation::is_live() at read
//     time. Uniformity survives — intersecting a uniform random k-subset
//     of physical rows with the fixed live set yields, conditional on its
//     size, a uniform sample of the live rows. (Replacing dead members
//     eagerly would bias toward recent rows; Random-Pairing-style schemes
//     fix that at the cost of extra state. The server compacts once half
//     the physical rows are dead, so live occupancy stays >= k/2 in
//     expectation and the simple scheme keeps its effective sample size.)
//   * **Compaction** reassigns physical ids wholesale, so the sampler
//     detects it (compactions() diff) and deterministically rebuilds:
//     it re-offers every row of the compacted relation in physical order,
//     with the generator continuing from its current state. The rebuilt
//     reservoir is a pure function of (relation state, generator state),
//     both of which are themselves pure functions of the per-table
//     statement order — which is what keeps serial journal replay
//     bit-identical to a live run (see server/service.h).
//
// Determinism-under-seed invariant: every Offer consumes a fixed number
// of generator draws (one once the reservoir is full, zero before), so
// the slot sequence — and every estimate derived from it — is a pure
// function of (seed, sequence of offered rows, compaction points). The
// full generator state is exposed for checkpointing; a restored sampler
// continues the exact slot sequence the checkpointed one would have
// produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relation/relation.h"
#include "util/rng.h"

namespace fdevolve::query {

/// Complete serializable state of a ReservoirSampler — what an FDEV
/// sampled-monitor checkpoint persists so resume continues the identical
/// replacement sequence.
struct ReservoirState {
  uint64_t capacity = 0;
  uint64_t seed = 0;       ///< construction seed (diagnostic; state rules)
  uint64_t rng_state = 0;  ///< generator state at capture
  uint64_t seen = 0;       ///< physical rows offered since last rebuild
  std::vector<uint32_t> rows;  ///< reservoir slots (physical row ids)
  uint64_t observed_version = 0;
  uint64_t observed_compactions = 0;
};

/// Fixed-capacity uniform sample of a relation's rows (see file comment).
///
/// Single-owner, externally synchronized, like query::DistinctEvaluator:
/// the relation must be quiescent during every call. Not copyable (it
/// observes the relation by reference); the relation must outlive it.
class ReservoirSampler {
 public:
  /// Samples `*rel` with the given slot budget (>= 1; 0 is promoted to 1)
  /// and seed. Rows already present are folded in immediately, so a
  /// sampler over a non-empty relation starts representative.
  ReservoirSampler(const relation::Relation* rel, size_t capacity,
                   uint64_t seed);

  /// Restores a checkpointed sampler against `*rel`. The relation must be
  /// at the state the checkpoint was captured against (same watermark and
  /// compaction count) — throws std::invalid_argument otherwise, naming
  /// the mismatch. The restored sampler's subsequent slot sequence is
  /// bit-identical to the captured one's.
  ReservoirSampler(const relation::Relation* rel, const ReservoirState& state);

  ReservoirSampler(const ReservoirSampler&) = delete;
  ReservoirSampler& operator=(const ReservoirSampler&) = delete;

  /// Folds in everything that happened to the relation since the last
  /// call: a compaction triggers the deterministic rebuild, then any
  /// appended suffix is offered row by row. Deletes need no action here
  /// (read-time filtering). Call under the same quiescence the evaluator
  /// requires; a no-op when nothing changed.
  void Sync();

  /// Live members of the reservoir (physical row ids, slot order), i.e.
  /// the uniform sample of the live rows. Does not Sync() — call that
  /// first when the relation may have advanced.
  std::vector<uint32_t> LiveMembers() const;

  /// Raw slots, dead members included (slot order is meaningful to the
  /// replacement sequence, so tests compare it directly).
  const std::vector<uint32_t>& slots() const { return slots_; }

  size_t capacity() const { return capacity_; }
  uint64_t seed() const { return seed_; }

  /// Physical rows offered since the last rebuild (Algorithm R's t).
  uint64_t seen() const { return seen_; }

  /// Serializable state snapshot (see ReservoirState).
  ReservoirState State() const;

 private:
  /// Algorithm R step for physical row `t`.
  void Offer(uint32_t t);

  /// Deterministic full rebuild after a compaction: re-offers every row
  /// of the (now all-live) relation in physical order, generator
  /// continuing from its current state.
  void Rebuild();

  const relation::Relation* rel_;
  size_t capacity_;
  uint64_t seed_;
  util::Rng rng_;
  uint64_t seen_ = 0;
  std::vector<uint32_t> slots_;
  size_t observed_version_ = 0;
  size_t observed_compactions_ = 0;
};

}  // namespace fdevolve::query
