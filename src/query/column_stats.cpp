#include "query/column_stats.h"

namespace fdevolve::query {

std::vector<ColumnStats> ComputeColumnStats(const relation::Relation& rel) {
  std::vector<ColumnStats> out;
  out.reserve(static_cast<size_t>(rel.attr_count()));
  for (int i = 0; i < rel.attr_count(); ++i) {
    const auto& col = rel.column(i);
    ColumnStats s;
    s.name = rel.schema().attr(i).name;
    s.null_count = col.null_count();
    s.distinct_count = col.dict_size();
    s.is_unique = col.dict_size() + col.null_count() == col.size() &&
                  col.size() > 0 && col.null_count() == 0;
    out.push_back(std::move(s));
  }
  return out;
}

relation::AttrSet UniqueAttrs(const relation::Relation& rel) {
  relation::AttrSet s;
  auto stats = ComputeColumnStats(rel);
  for (int i = 0; i < rel.attr_count(); ++i) {
    if (stats[static_cast<size_t>(i)].is_unique) s.Add(i);
  }
  return s;
}

}  // namespace fdevolve::query
