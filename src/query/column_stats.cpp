#include "query/column_stats.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace fdevolve::query {
namespace {

double ValueWidth(const relation::Value& v) {
  return v.is_string() ? static_cast<double>(v.as_string().size()) : 8.0;
}

}  // namespace

std::vector<ColumnStats> ComputeColumnStats(const relation::Relation& rel) {
  std::vector<ColumnStats> out;
  out.reserve(static_cast<size_t>(rel.attr_count()));
  const size_t live_rows = rel.live_count();
  const bool tombstoned = rel.has_tombstones();
  // Scratch reused across columns when an occurrence scan is needed.
  std::vector<uint32_t> occurrences;
  for (int i = 0; i < rel.attr_count(); ++i) {
    const auto& col = rel.column(i);
    ColumnStats s;
    s.name = rel.schema().attr(i).name;
    size_t max_occurrence = 0;
    if (!tombstoned) {
      // Append-only fast path: the dictionary is exactly the live ndv.
      s.null_count = col.null_count();
      s.distinct_count = col.dict_size();
      if (col.dict_size() + col.null_count() == col.size() &&
          col.null_count() <= 1) {
        // Every row is a singleton group (at most one of them NULL).
        max_occurrence = col.size() > 0 ? 1 : 0;
      } else {
        // One occurrence pass to find the real heaviest group — the cost
        // planner's bounds want the true maximum, not the 1-vs-2 telltale
        // that uniqueness detection needs.
        occurrences.assign(col.dict_size(), 0u);
        size_t null_occurrence = 0;
        const auto& codes = col.codes();
        for (size_t t = 0; t < codes.size(); ++t) {
          const uint32_t c = codes[t];
          const size_t n = c == relation::kNullCode
                               ? ++null_occurrence
                               : static_cast<size_t>(++occurrences[c]);
          if (n > max_occurrence) max_occurrence = n;
        }
      }
      double width = 0.0;
      for (size_t c = 0; c < col.dict_size(); ++c) {
        width += ValueWidth(col.DictValue(static_cast<uint32_t>(c)));
      }
      s.avg_dict_width = col.dict_size() > 0 ? width / col.dict_size() : 0.0;
    } else {
      // One occurrence-count pass over the live rows: a dictionary entry
      // only referenced by dead rows must not count toward ndv.
      occurrences.assign(col.dict_size(), 0u);
      const auto& codes = col.codes();
      for (size_t t = 0; t < codes.size(); ++t) {
        if (!rel.is_live(t)) continue;
        const uint32_t c = codes[t];
        if (c == relation::kNullCode) {
          // Live NULLs form one shared group for max_group_rows purposes.
          const size_t n = ++s.null_count;
          if (n > max_occurrence) max_occurrence = n;
          continue;
        }
        const size_t n = ++occurrences[c];
        if (n > max_occurrence) max_occurrence = n;
      }
      double width = 0.0;
      for (size_t c = 0; c < occurrences.size(); ++c) {
        if (occurrences[c] == 0) continue;
        ++s.distinct_count;
        width += ValueWidth(col.DictValue(static_cast<uint32_t>(c)));
      }
      s.avg_dict_width =
          s.distinct_count > 0 ? width / s.distinct_count : 0.0;
    }
    s.max_group_rows = max_occurrence;
    s.null_fraction =
        live_rows > 0 ? static_cast<double>(s.null_count) / live_rows : 0.0;
    s.is_unique = live_rows > 0 && s.null_count == 0 && max_occurrence <= 1 &&
                  s.distinct_count == live_rows;
    out.push_back(std::move(s));
  }
  return out;
}

size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<size_t>::max() / b) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

size_t ProjectionUpperBound(size_t base_distinct, const ColumnStats& added,
                            size_t live_rows) {
  return std::min(live_rows, SaturatingMul(base_distinct, added.group_slots()));
}

relation::AttrSet UniqueAttrs(const relation::Relation& rel) {
  relation::AttrSet s;
  auto stats = ComputeColumnStats(rel);
  for (int i = 0; i < rel.attr_count(); ++i) {
    if (stats[static_cast<size_t>(i)].is_unique) s.Add(i);
  }
  return s;
}

}  // namespace fdevolve::query
