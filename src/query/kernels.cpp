// Kernel registry: resolves the active tier once, publishes it through an
// atomic pointer, and hosts the baseline scalar kernel set (which is the
// reference semantics every vector tier must reproduce bit-for-bit).
#include "query/kernels.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "query/kernels_detail.h"

namespace fdevolve::query::kernels {
namespace {

uint32_t BaselineDense(const RefineArgs& a, uint32_t* dense, uint32_t fresh) {
  return detail::DenseRefineRange(a, dense, fresh, a.lo, a.hi);
}

uint32_t BaselineFlat(const RefineArgs& a, util::FlatIdTable& table,
                      uint32_t fresh) {
  return detail::FlatRefineRange(a, table, fresh, a.lo, a.hi);
}

void BaselineRemap(uint32_t* ids, size_t lo, size_t hi,
                   const uint32_t* remap) {
  detail::RemapRange(ids, lo, hi, remap);
}

constexpr KernelSet kBaselineKernels{util::CpuTier::kBaseline, BaselineDense,
                                     BaselineFlat, BaselineRemap};

/// Tier -> kernel set, falling back to baseline when a tier is not
/// compiled into this binary (non-x86 builds).
const KernelSet* SetForTier(util::CpuTier tier) {
  switch (tier) {
#if defined(FDEVOLVE_X86_KERNELS)
    case util::CpuTier::kAvx512:
      return &kAvx512Kernels;
    case util::CpuTier::kAvx2:
      return &kAvx2Kernels;
    case util::CpuTier::kSse42:
      return &kSse42Kernels;
#else
    case util::CpuTier::kAvx512:
    case util::CpuTier::kAvx2:
    case util::CpuTier::kSse42:
#endif
    case util::CpuTier::kBaseline:
      break;
  }
  return &kBaselineKernels;
}

util::CpuTier ClampToHost(util::CpuTier tier) {
  const util::CpuTier host = util::DetectCpuFeatures().max_tier();
  return static_cast<int>(tier) < static_cast<int>(host) ? tier : host;
}

std::atomic<const KernelSet*> g_active{nullptr};

/// Startup resolution: the host's best tier, lowered by the env override
/// if present. Throws on unknown override names — deliberately loud, a
/// typo silently running baseline would be a perf bug nobody notices.
const KernelSet* ResolveStartup() {
  util::CpuTier tier = util::DetectCpuFeatures().max_tier();
  const char* env = std::getenv("FDEVOLVE_CPU_FEATURES");
  if (env != nullptr && *env != '\0') {
    util::CpuTier want;
    if (!util::ParseCpuTier(env, &want)) {
      throw std::invalid_argument(
          std::string("FDEVOLVE_CPU_FEATURES: unknown tier '") + env +
          "' (expected baseline|sse42|avx2|avx512)");
    }
    tier = ClampToHost(want);
  }
  return SetForTier(tier);
}

}  // namespace

const KernelSet& Active() {
  const KernelSet* set = g_active.load(std::memory_order_acquire);
  if (set == nullptr) {
    const KernelSet* resolved = ResolveStartup();
    const KernelSet* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, resolved,
                                          std::memory_order_acq_rel)) {
      resolved = expected;  // another thread (or ForceTier) won the race
    }
    set = resolved;
  }
  return *set;
}

util::CpuTier DetectedTier() {
  return util::DetectCpuFeatures().max_tier();
}

util::CpuTier SelectedTier() { return Active().tier; }

util::CpuTier ForceTier(util::CpuTier tier) {
  const KernelSet* set = SetForTier(ClampToHost(tier));
  g_active.store(set, std::memory_order_release);
  return set->tier;
}

util::CpuTier ForceTierByName(const std::string& name) {
  util::CpuTier tier;
  if (!util::ParseCpuTier(name, &tier)) {
    throw std::invalid_argument("unknown cpu tier '" + name +
                                "' (expected baseline|sse42|avx2|avx512)");
  }
  return ForceTier(tier);
}

std::vector<util::CpuTier> SupportedTiers() {
  std::vector<util::CpuTier> tiers{util::CpuTier::kBaseline};
  for (int t = 1; t <= static_cast<int>(util::CpuTier::kAvx512); ++t) {
    const util::CpuTier tier = static_cast<util::CpuTier>(t);
    // Host-supported AND actually compiled in (SetForTier does not fall
    // back) — exactly the tiers ForceTier(tier) would install as-is.
    if (ClampToHost(tier) == tier && SetForTier(tier)->tier == tier) {
      tiers.push_back(tier);
    }
  }
  return tiers;
}

}  // namespace fdevolve::query::kernels
