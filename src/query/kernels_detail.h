// Scalar reference loops shared by the baseline kernel set and the tail /
// fallback paths of every SIMD tier. These ARE the semantics: a vector
// kernel is correct iff it is observationally identical to these loops
// (same ids, same key lists, same exceptions), which is what the
// dispatch-tier fuzz suite asserts.
#pragma once

#include <stdexcept>

#include "query/kernels.h"
#include "relation/relation.h"

namespace fdevolve::query::kernels {

#if defined(FDEVOLVE_X86_KERNELS)
// Defined in kernels_<tier>.cpp (compiled with per-file -m flags); only
// the registry in kernels.cpp references them.
extern const KernelSet kSse42Kernels;
extern const KernelSet kAvx2Kernels;
extern const KernelSet kAvx512Kernels;
#endif

namespace detail {

/// The additive constant of HashCombine(kHashSeed, key) — everything in it
/// except Mix64(key) is fixed, so SIMD hash kernels fold it to one add.
constexpr uint64_t kHashSeed = util::FlatIdTable::kHashSeed;
constexpr uint64_t kHashAdd =
    0x9e3779b97f4a7c15ULL + (kHashSeed << 12) + (kHashSeed >> 4);

[[noreturn]] inline void ThrowBadId() {
  throw std::invalid_argument("RefinePass: group id out of range");
}

/// Packed mixed-radix key of tuple `t` (see kernels.h). Bounds-checks the
/// incoming id — callers skip dead rows before calling, which preserves
/// the scalar loop's "dead rows are never checked" behavior.
inline uint64_t PackedKey(const RefineArgs& a, size_t t) {
  uint64_t key = 0;
  if (a.base_ids != nullptr) {
    key = a.base_ids[t];
    if (key >= a.base_groups) ThrowBadId();
  }
  for (size_t j = 0; j < a.level_count; ++j) {
    const Level& lv = a.levels[j];
    uint64_t c = lv.codes[t];
    if (lv.has_nulls && c == relation::kNullCode) c = lv.null_slot;
    key = key * lv.stride + c;
  }
  return key;
}

/// Scalar dense pass over [lo, hi) — the sub-range form so SIMD kernels
/// can delegate their unaligned tails to the exact reference loop.
inline uint32_t DenseRefineRange(const RefineArgs& a, uint32_t* dense,
                                 uint32_t fresh, size_t lo, size_t hi) {
  for (size_t t = lo; t < hi; ++t) {
    if (a.live != nullptr && a.live[t] == 0) continue;
    const uint64_t key = PackedKey(a, t);
    uint32_t id = dense[key];
    if (id == util::FlatIdTable::kVacant) {
      id = fresh++;
      dense[key] = id;
      if (a.keys_out != nullptr) a.keys_out->push_back(key);
    }
    if (a.out != nullptr) a.out[t] = id;
  }
  return fresh;
}

/// Scalar flat pass over [lo, hi).
inline uint32_t FlatRefineRange(const RefineArgs& a, util::FlatIdTable& table,
                                uint32_t fresh, size_t lo, size_t hi) {
  for (size_t t = lo; t < hi; ++t) {
    if (a.live != nullptr && a.live[t] == 0) continue;
    const uint64_t key = PackedKey(a, t);
    bool inserted = false;
    const uint32_t id = table.FindOrInsert(key, fresh, &inserted);
    if (inserted) {
      if (a.keys_out != nullptr) a.keys_out->push_back(key);
      ++fresh;
    }
    if (a.out != nullptr) a.out[t] = id;
  }
  return fresh;
}

inline void RemapRange(uint32_t* ids, size_t lo, size_t hi,
                       const uint32_t* remap) {
  for (size_t t = lo; t < hi; ++t) ids[t] = remap[ids[t]];
}

}  // namespace detail
}  // namespace fdevolve::query::kernels
