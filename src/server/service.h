// Concurrency core of the FD-monitoring server: N sessions issuing SQL
// against one shared catalog + named monitors, socket-free so tests and
// the bench driver can exercise the exact production locking without a
// network in the loop (the TCP layer in server.h is a thin shell).
//
// Locking model (MVCC-lite over tombstone-mutable relations):
//
//   * catalog lock (shared_mutex) — guards the table map and the catalog
//     itself. DDL (CREATE TABLE, DECLARE FD) and CHECKPOINT take it
//     exclusively; everything else takes it shared.
//   * per-table lock (shared_mutex) — writers (INSERT/DELETE/UPDATE + the
//     monitor poll that follows each, SUBSCRIBE's subscriber-list edit)
//     take it exclusively; readers (SELECT) take it shared. The storage
//     stays append-shaped under mutation (DELETE only tombstones; UPDATE
//     is delete + append), so a reader under the shared lock sees a
//     consistent state: rows [0, version()) have immutable codes and the
//     tombstone bitmap only changes under the exclusive lock.
//
//   Lock order is always catalog before table; no operation holds two
//   table locks at once (CHECKPOINT quiesces via the exclusive catalog
//   lock alone, which every data path acquires shared).
//
// Monitors run in external mode (fd::SchemaMonitor's shared-relation
// constructors): each write path mutates through the SQL engine and then
// calls Poll() under the same exclusive table lock, so the monitor always
// observes a quiescent relation. Drift events (violated AND recovered)
// are pushed to subscribed sessions from inside that critical section —
// ordering is therefore exactly commit order per table.
//
// Serial-replay identity: every committed write statement (INSERT,
// DELETE, UPDATE, CREATE TABLE first, DECLARE FD) is journaled per table
// in commit order (the canonical ToString of the parsed statement).
// Replaying a table's journal through a fresh Service reproduces the
// relation, group ids, monitor counters, and drift log bit-for-bit —
// group ids are append-stable first-appearance ids (tombstones never
// reassign them), DELETE/UPDATE row selection is deterministic in
// physical row order, and compaction fires from a deterministic policy
// (MaybeCompact) evaluated at statement boundaries, so everything depends
// only on per-table statement order, which is what the journal records.
// The concurrency suite asserts this equivalence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fd/sampled_monitor.h"
#include "fd/schema_monitor.h"
#include "sql/database.h"
#include "storage/snapshot.h"

namespace fdevolve::server {

class Service {
 public:
  struct Options {
    /// Where CHECKPOINT (and the TCP layer's shutdown path) persists the
    /// server-state snapshot. Empty = CHECKPOINT replies ERR.
    std::string checkpoint_path;
    /// Check interval for monitors whose DECLARE FD had no EVERY clause.
    size_t default_check_interval = 1;
    /// Record per-table commit-order journals (the replay-identity
    /// harness). Off for throughput benchmarking.
    bool record_journal = true;
  };

  using SessionId = uint64_t;

  /// Sink for asynchronous DRIFT pushes. Called with one complete line
  /// (no trailing newline), possibly from another session's thread; the
  /// Service serializes calls per session. Return false to report the
  /// sink dead (the session stops receiving pushes).
  using PushFn = std::function<bool(const std::string& line)>;

  Service();  ///< default options (no checkpoint path, journal on)
  explicit Service(Options opts);

  /// Loads the server-state snapshot at `opts.checkpoint_path` and
  /// rebuilds tables + monitors from it. Call before any session opens.
  /// Returns false + error if the file is missing or corrupt.
  bool Resume(std::string* error);

  /// Registers a session. `push` may be null (a session that never
  /// subscribes — e.g. the replay harness).
  SessionId OpenSession(PushFn push);

  /// Unregisters a session and removes its subscriptions. Safe to call
  /// while other sessions are mid-statement.
  void CloseSession(SessionId id);

  struct Result {
    std::string reply;      ///< one protocol line (OK/ERR, no newline)
    bool shutdown = false;  ///< statement was SHUTDOWN; caller stops serving
  };

  /// Parses and executes one statement line on behalf of a session.
  /// Thread-safe: any number of sessions may call concurrently. Never
  /// throws — parse/execution failures come back as ERR replies.
  Result ExecuteLine(SessionId id, const std::string& line);

  /// Persists the server-state snapshot to `opts.checkpoint_path`.
  /// Quiesces all sessions for the duration (exclusive catalog lock).
  bool SaveCheckpoint(std::string* error);

  /// Serialized server state (the exact bytes SaveCheckpoint writes) —
  /// the concurrency suite compares these across concurrent vs. serial
  /// runs for bit-identity. Quiesces like SaveCheckpoint.
  std::string SerializeState() const;

  /// Commit-order journal of a table ("" if unknown table). Entry 0 is
  /// the CREATE TABLE statement; resumed tables start with an empty
  /// journal (their state came from the snapshot, not from statements).
  std::vector<std::string> Journal(const std::string& table) const;

  std::vector<std::string> TableNames() const;

  /// Drift log of a table's monitor (empty if no monitor).
  std::vector<fd::DriftEvent> DriftLog(const std::string& table) const;

  /// Drift log of a table's *sampled* monitor (empty if none). Sampled
  /// events carry approx=true + intervals unless the reservoir covered
  /// every live row at the transition.
  std::vector<fd::DriftEvent> SampledDriftLog(const std::string& table) const;

  /// Latest per-FD estimates of a table's sampled monitor (empty if
  /// none) — what the estimate-sequence suites assert on.
  std::vector<fd::SampledMeasures> SampledEstimates(
      const std::string& table) const;

 private:
  struct SessionRec {
    PushFn push;
    std::mutex push_mutex;  ///< serializes pushes to one session
    bool dead = false;      ///< push sink reported failure (under mutex)

    void Push(const std::string& line);
  };

  struct TableEntry {
    relation::Relation* rel = nullptr;  ///< stable pointer into db_
    mutable std::shared_mutex mutex;
    std::unique_ptr<fd::SchemaMonitor> monitor;  ///< external mode; may be null
    size_t check_interval = 0;  ///< the monitor's EVERY (0 = no monitor)
    /// Sampled monitor (DECLARE FD ... SAMPLE k [SEED s]); external mode,
    /// polled right after the exact monitor under the same exclusive
    /// table lock. One reservoir per table: every sampled DECLARE must
    /// agree on interval, capacity, and seed.
    std::unique_ptr<fd::SampledSchemaMonitor> sampled;
    size_t sampled_interval = 0;
    std::vector<std::shared_ptr<SessionRec>> subscribers;
    std::vector<std::string> journal;
  };

  /// Looks up a table entry; throws std::invalid_argument if absent.
  /// Caller must hold the catalog lock (shared suffices).
  TableEntry* FindEntry(const std::string& table) const;

  /// Deterministic compaction policy, run after every committed DELETE /
  /// UPDATE under the table's exclusive lock: compacts when the relation
  /// has at least kCompactMinRows physical rows and at least half of them
  /// are dead. A pure function of physical state, so journal replay
  /// compacts at identical statement boundaries (replay identity).
  void MaybeCompact(TableEntry* entry);

  /// Physical-row floor below which MaybeCompact never fires (avoids
  /// thrashing tiny tables where a rebuild outcosts the scan it saves).
  static constexpr size_t kCompactMinRows = 64;

  /// Wires the monitor's drift callback to push to subscribers. Runs
  /// under the table's exclusive lock (Poll is only called there).
  void InstallDriftCallback(TableEntry* entry, const std::string& table);
  void InstallSampledDriftCallback(TableEntry* entry,
                                   const std::string& table);

  /// Builds entries (and monitors, when `monitors`/`sampled` has state
  /// for them) for every table in db_. Caller holds the exclusive
  /// catalog lock.
  void BuildEntries(
      const std::vector<storage::ServerMonitorState>& monitors,
      const std::vector<storage::ServerSampledMonitorState>& sampled);

  std::shared_ptr<SessionRec> FindSession(SessionId id);

  Options opts_;
  mutable std::shared_mutex catalog_mutex_;
  sql::Database db_;
  /// std::map: stable iteration in name order gives CHECKPOINT a
  /// deterministic table sequence in the snapshot.
  std::map<std::string, std::unique_ptr<TableEntry>> tables_;

  std::mutex sessions_mutex_;
  std::unordered_map<SessionId, std::shared_ptr<SessionRec>> sessions_;
  SessionId next_session_ = 1;  ///< under sessions_mutex_
};

}  // namespace fdevolve::server
