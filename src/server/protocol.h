// Wire protocol of the FD-monitoring server — plain TCP, newline-framed.
//
// Requests: one SQL statement per line (LF-terminated; a trailing CR is
// stripped so `nc -C` and telnet-style clients work). Empty lines are
// ignored. The dialect is the full sql/ grammar: SELECT COUNT, INSERT,
// DELETE, UPDATE, CREATE TABLE, DECLARE FD ... ON t [EVERY n],
// EXPLAIN REPAIR ... ON t, SUBSCRIBE DRIFT ON t, CHECKPOINT, SHUTDOWN.
//
// Replies: exactly one line per request —
//
//   OK <uint64>      statement succeeded; the value is the count for
//                    SELECT, rows inserted for INSERT, 0 otherwise
//   PLAN <text>      EXPLAIN REPAIR succeeded; <text> is the rendered
//                    repair-search plan with its newlines flattened to
//                    " | " so the reply stays one frame
//   ERR <message>    parse or execution error (single line; embedded
//                    newlines in the message are flattened to spaces)
//
// Pushes: sessions that issued SUBSCRIBE DRIFT ON t additionally receive
// asynchronous lines
//
//   DRIFT table=<t> fd_index=<i> tuples=<n> confidence=<c>
//         [approx=1 confidence_lo=<l> confidence_hi=<h>
//          goodness_lo=<l> goodness_hi=<h>]
//         kind=<violated|recovered> fd=<text>
//
// (one line on the wire) whenever a monitored FD on t crosses the
// exact/violated boundary: kind=violated when an insert broke a
// previously-exact FD, kind=recovered when deletes removed the last
// violating witness and the FD is exact again. The bracketed fields
// appear only on events from a sampled monitor (DECLARE FD ... SAMPLE k)
// whose reservoir did not cover every live row: the measures are then
// estimates and the lo/hi pairs bound them. DRIFT lines can
// arrive at ANY point between — or even before — reply lines (a session
// subscribed to a table it inserts into sees the DRIFT its own insert
// triggered before that insert's OK). Clients must therefore read lines
// until a non-DRIFT line arrives and treat the DRIFTs as out-of-band
// (Client::Request does exactly this). <text> is the FD rendered against
// the table schema and may contain spaces; it is always the final field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fd/schema_monitor.h"

namespace fdevolve::server {

/// Formats the one-line success reply (no trailing newline).
std::string FormatOk(uint64_t value);

/// Formats the one-line error reply; newlines in `message` become spaces
/// so the reply cannot be mistaken for multiple frames.
std::string FormatError(const std::string& message);

/// Formats an asynchronous drift push line. `fd_text` is the drifted
/// (violated or recovered) FD rendered against the table schema.
std::string FormatDrift(const std::string& table, const fd::DriftEvent& event,
                        const std::string& fd_text);

/// Formats the one-line EXPLAIN REPAIR reply: the plan's newlines are
/// flattened to " | " separators so the reply stays a single frame.
std::string FormatPlan(const std::string& plan_text);

/// A reply or push line, decoded.
struct ParsedReply {
  enum class Kind { kOk, kError, kDrift, kPlan };
  Kind kind = Kind::kError;
  uint64_t value = 0;     ///< OK payload
  std::string text;       ///< ERR message, raw DRIFT line, or PLAN payload
};

/// Decodes one reply/push line; std::nullopt if the line matches none of
/// the three frame shapes (protocol violation).
std::optional<ParsedReply> ParseReply(const std::string& line);

}  // namespace fdevolve::server
