// Blocking line client for the FD-monitoring server — the counterpart of
// protocol.h used by the tests, the smoke scripts, and bench_server.
//
// Request() sends one statement and reads lines until the reply arrives,
// collecting any DRIFT pushes that land first (the protocol lets pushes
// interleave anywhere — see protocol.h). Pushes that arrive while no
// request is in flight are read with PollDrift().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fdevolve::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:port. Returns false + error on failure.
  bool Connect(uint16_t port, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void Close();

  struct Reply {
    bool ok = false;
    uint64_t value = 0;  ///< OK payload
    std::string error;   ///< ERR message, or transport failure
    std::string plan;    ///< PLAN payload (EXPLAIN REPAIR), flattened form
    std::vector<std::string> drift;  ///< DRIFT lines drained on the way
  };

  /// Sends one statement line and blocks for its OK/ERR/PLAN reply. DRIFT
  /// pushes read along the way land in Reply::drift; a PLAN reply sets
  /// ok = true and carries the plan text in Reply::plan.
  Reply Request(const std::string& statement);

  /// Blocks up to `timeout_ms` for one DRIFT push line (between
  /// requests). std::nullopt on timeout, closed connection, or a
  /// non-DRIFT line (protocol violation outside a request).
  std::optional<std::string> PollDrift(int timeout_ms);

 private:
  /// Reads one LF-terminated line (CR stripped); nullopt on EOF/error.
  std::optional<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace fdevolve::server
