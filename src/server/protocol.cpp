#include "server/protocol.h"

#include "sql/ast.h"
#include "util/parse.h"

namespace fdevolve::server {

std::string FormatOk(uint64_t value) { return "OK " + std::to_string(value); }

std::string FormatError(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + flat;
}

std::string FormatDrift(const std::string& table, const fd::DriftEvent& event,
                        const std::string& fd_text) {
  std::string line = "DRIFT table=" + sql::QuoteIdentifier(table) +
                     " fd_index=" + std::to_string(event.fd_index) +
                     " tuples=" + std::to_string(event.tuple_count) +
                     " confidence=" + std::to_string(event.measures.confidence);
  if (event.approx) {
    line += " approx=1 confidence_lo=" + std::to_string(event.confidence_lo) +
            " confidence_hi=" + std::to_string(event.confidence_hi) +
            " goodness_lo=" + std::to_string(event.goodness_lo) +
            " goodness_hi=" + std::to_string(event.goodness_hi);
  }
  line += " kind=";
  line += event.kind == fd::DriftKind::kRecovered ? "recovered" : "violated";
  line += " fd=" + fd_text;
  return line;
}

std::string FormatPlan(const std::string& plan_text) {
  std::string flat;
  flat.reserve(plan_text.size());
  for (size_t i = 0; i < plan_text.size(); ++i) {
    const char c = plan_text[i];
    if (c == '\r') continue;
    if (c == '\n') {
      if (i + 1 < plan_text.size()) flat += " | ";  // drop the trailing one
      continue;
    }
    flat.push_back(c);
  }
  return "PLAN " + flat;
}

std::optional<ParsedReply> ParseReply(const std::string& line) {
  ParsedReply reply;
  if (line.rfind("OK ", 0) == 0) {
    auto v = util::ParseUint64(line.substr(3));
    if (!v) return std::nullopt;
    reply.kind = ParsedReply::Kind::kOk;
    reply.value = *v;
    return reply;
  }
  if (line.rfind("ERR ", 0) == 0) {
    reply.kind = ParsedReply::Kind::kError;
    reply.text = line.substr(4);
    return reply;
  }
  if (line.rfind("PLAN ", 0) == 0) {
    reply.kind = ParsedReply::Kind::kPlan;
    reply.text = line.substr(5);
    return reply;
  }
  if (line.rfind("DRIFT ", 0) == 0) {
    reply.kind = ParsedReply::Kind::kDrift;
    reply.text = line;
    return reply;
  }
  return std::nullopt;
}

}  // namespace fdevolve::server
