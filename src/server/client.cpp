#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/protocol.h"

namespace fdevolve::server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::Connect(uint16_t port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

std::optional<std::string> Client::ReadLine() {
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Client::Reply Client::Request(const std::string& statement) {
  Reply reply;
  if (fd_ < 0) {
    reply.error = "not connected";
    return reply;
  }
  std::string framed = statement + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      reply.error = std::string("send: ") + std::strerror(errno);
      return reply;
    }
    off += static_cast<size_t>(n);
  }
  for (;;) {
    auto line = ReadLine();
    if (!line) {
      reply.error = "connection closed before reply";
      return reply;
    }
    auto parsed = ParseReply(*line);
    if (!parsed) {
      reply.error = "protocol violation: '" + *line + "'";
      return reply;
    }
    switch (parsed->kind) {
      case ParsedReply::Kind::kDrift:
        reply.drift.push_back(*line);
        continue;
      case ParsedReply::Kind::kOk:
        reply.ok = true;
        reply.value = parsed->value;
        return reply;
      case ParsedReply::Kind::kPlan:
        reply.ok = true;
        reply.plan = parsed->text;
        return reply;
      case ParsedReply::Kind::kError:
        reply.error = parsed->text;
        return reply;
    }
  }
}

std::optional<std::string> Client::PollDrift(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  // Serve from the buffer first: a push may already have been read
  // alongside an earlier reply's bytes.
  if (buffer_.find('\n') == std::string::npos) {
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) return std::nullopt;
  }
  auto line = ReadLine();
  if (!line) return std::nullopt;
  auto parsed = ParseReply(*line);
  if (!parsed || parsed->kind != ParsedReply::Kind::kDrift) {
    return std::nullopt;
  }
  return line;
}

}  // namespace fdevolve::server
