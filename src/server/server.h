// TCP shell around server::Service — plain sockets, newline framing (see
// protocol.h), one thread per connection.
//
// Lifecycle:
//
//   Server server(options);
//   server.Start(&error);        // bind 127.0.0.1, listen, spawn acceptor
//   ... server.port() ...        // resolved port (options.port 0 = pick)
//   server.Wait();               // blocks until shutdown, then drains
//
// Shutdown arrives three ways and converges on one path: a SHUTDOWN
// statement from any session, RequestShutdown() from another thread, or
// RequestShutdown() from a signal handler — it only writes one byte to a
// self-pipe, the async-signal-safe subset. The acceptor wakes on the
// pipe, stops accepting, half-closes every live connection (which wakes
// their blocked reads), joins the session threads, and — when a
// checkpoint path is configured — persists the server-state snapshot
// before Wait() returns. The checkpoint-on-shutdown invariant: a server
// with a checkpoint path never exits the serving loop without writing a
// loadable snapshot of its final state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"

namespace fdevolve::server {

class Server {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
    Service::Options service;
    /// Load the checkpoint at service.checkpoint_path before serving.
    bool resume = false;
  };

  explicit Server(Options opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor thread. On failure (bind
  /// error, resume failure) returns false + error and owns no resources.
  bool Start(std::string* error);

  /// Port actually bound (valid after Start succeeds).
  uint16_t port() const { return port_; }

  /// Blocks until shutdown is requested, then drains connections, joins
  /// threads, and checkpoints if configured. Returns false + error only
  /// for a failed shutdown checkpoint.
  bool Wait(std::string* error);

  /// Initiates shutdown. Async-signal-safe: writes one byte to the
  /// self-pipe and nothing else. Idempotent.
  void RequestShutdown();

  Service& service() { return service_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;  ///< replies vs. drift pushes on one socket
    std::thread thread;
  };

  void AcceptLoop();
  void SessionLoop(Connection* conn);
  bool WriteLine(Connection* conn, const std::string& line);

  Options opts_;
  Service service_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< [0] read end (poll), [1] write end
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> shutting_down_{false};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace fdevolve::server
