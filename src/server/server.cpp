#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "server/protocol.h"

namespace fdevolve::server {
namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// send() the whole buffer, riding out EINTR. MSG_NOSIGNAL turns a
/// vanished peer into an EPIPE return instead of a process-killing
/// SIGPIPE; the caller then drops the session.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Options opts) : opts_(std::move(opts)), service_(opts_.service) {}

Server::~Server() {
  RequestShutdown();
  if (acceptor_.joinable()) Wait(nullptr);
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  CloseFd(listen_fd_);
}

bool Server::Start(std::string* error) {
  if (opts_.resume) {
    if (!service_.Resume(error)) return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    CloseFd(listen_fd_);
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    CloseFd(listen_fd_);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void Server::RequestShutdown() {
  // Only async-signal-safe operations: this runs from SIGTERM handlers.
  // (A lock-free atomic store qualifies; writing to an unopened pipe
  // (fd -1) fails harmlessly with EBADF.)
  shutting_down_.store(true);
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown byte (or pipe error)
    if (fds[0].revents == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (shutting_down_.load()) {
      ::close(client);
      break;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = client;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

bool Server::WriteLine(Connection* conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::string framed = line + "\n";
  return WriteAll(conn->fd, framed.data(), framed.size());
}

void Server::SessionLoop(Connection* conn) {
  // The push sink shares the connection's write mutex with replies, so a
  // DRIFT line from another session's insert never tears a reply frame.
  Service::SessionId session = service_.OpenSession(
      [this, conn](const std::string& line) { return WriteLine(conn, line); });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown()'s wake-up)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      Service::Result result = service_.ExecuteLine(session, line);
      if (!WriteLine(conn, result.reply)) {
        open = false;
        break;
      }
      if (result.shutdown) {
        RequestShutdown();
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  service_.CloseSession(session);
  ::shutdown(conn->fd, SHUT_RDWR);
}

bool Server::Wait(std::string* error) {
  if (acceptor_.joinable()) acceptor_.join();
  // Half-close every connection: blocked reads return 0 and the session
  // threads unwind through their normal close path.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
    CloseFd(conn->fd);
  }
  if (!opts_.service.checkpoint_path.empty()) {
    return service_.SaveCheckpoint(error);
  }
  return true;
}

}  // namespace fdevolve::server
