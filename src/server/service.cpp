#include "server/service.h"

#include <stdexcept>
#include <utility>

#include "server/protocol.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace fdevolve::server {

void Service::SessionRec::Push(const std::string& line) {
  std::lock_guard<std::mutex> lock(push_mutex);
  if (dead || !push) return;
  if (!push(line)) dead = true;
}

Service::Service() : Service(Options()) {}

Service::Service(Options opts) : opts_(std::move(opts)) {}

bool Service::Resume(std::string* error) {
  std::unique_lock cat(catalog_mutex_);
  if (opts_.checkpoint_path.empty()) {
    if (error) *error = "no checkpoint path configured";
    return false;
  }
  sql::Database db;
  std::vector<storage::ServerMonitorState> monitors;
  std::vector<storage::ServerSampledMonitorState> sampled;
  if (!storage::LoadServerSnapshot(opts_.checkpoint_path, &db, &monitors,
                                   error, &sampled)) {
    return false;
  }
  db_ = std::move(db);
  tables_.clear();
  BuildEntries(monitors, sampled);
  return true;
}

void Service::BuildEntries(
    const std::vector<storage::ServerMonitorState>& monitors,
    const std::vector<storage::ServerSampledMonitorState>& sampled) {
  for (const auto& name : db_.TableNames()) {
    auto entry = std::make_unique<TableEntry>();
    entry->rel = &db_.GetMutable(name);
    tables_[name] = std::move(entry);
  }
  for (const auto& m : monitors) {
    TableEntry* entry = tables_.at(m.table).get();
    // threads=1: session threads provide the concurrency; a nested
    // evaluator pool per table would oversubscribe the machine.
    entry->check_interval = m.state.check_interval;
    entry->monitor = std::make_unique<fd::SchemaMonitor>(
        entry->rel, m.state, /*threads=*/1);
    InstallDriftCallback(entry, m.table);
  }
  for (const auto& m : sampled) {
    TableEntry* entry = tables_.at(m.table).get();
    entry->sampled_interval = m.state.base.check_interval;
    entry->sampled = std::make_unique<fd::SampledSchemaMonitor>(
        entry->rel, m.state);
    InstallSampledDriftCallback(entry, m.table);
  }
}

Service::SessionId Service::OpenSession(PushFn push) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  SessionId id = next_session_++;
  auto rec = std::make_shared<SessionRec>();
  rec->push = std::move(push);
  sessions_[id] = std::move(rec);
  return id;
}

void Service::CloseSession(SessionId id) {
  std::shared_ptr<SessionRec> rec;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    rec = std::move(it->second);
    sessions_.erase(it);
  }
  // Drop the sink first so in-flight pushes from other sessions become
  // no-ops, then prune the subscriber lists.
  {
    std::lock_guard<std::mutex> lock(rec->push_mutex);
    rec->dead = true;
    rec->push = nullptr;
  }
  std::shared_lock cat(catalog_mutex_);
  for (auto& [name, entry] : tables_) {
    std::unique_lock table(entry->mutex);
    auto& subs = entry->subscribers;
    for (size_t i = 0; i < subs.size();) {
      if (subs[i] == rec) {
        subs.erase(subs.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

std::shared_ptr<Service::SessionRec> Service::FindSession(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Service::TableEntry* Service::FindEntry(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    throw std::invalid_argument("unknown table '" + table + "'");
  }
  return it->second.get();
}

void Service::MaybeCompact(TableEntry* entry) {
  // Deterministic policy: a pure function of the relation's physical
  // state, evaluated after every committed mutation statement. Replaying
  // a table's journal therefore compacts at exactly the same statement
  // boundaries as the live run did — which is what keeps serial replay
  // bit-identical to the concurrent state (group ids and dictionary
  // codes are reassigned at a compaction, so WHEN it happens matters).
  relation::Relation* rel = entry->rel;
  if (rel->tuple_count() >= kCompactMinRows &&
      rel->dead_count() * 2 >= rel->tuple_count()) {
    rel->Compact();
  }
}

void Service::InstallDriftCallback(TableEntry* entry,
                                   const std::string& table) {
  // Invoked by the monitor during Poll(), i.e. under the table's
  // exclusive lock — the subscriber list is stable for the duration and
  // pushes happen in commit order.
  entry->monitor->OnDrift([entry, table](const fd::DriftEvent& ev) {
    const fd::MonitoredFd& mfd = entry->monitor->fds()[ev.fd_index];
    std::string line = FormatDrift(
        table, ev, mfd.fd.ToString(entry->rel->schema()));
    for (const auto& sub : entry->subscribers) sub->Push(line);
  });
}

void Service::InstallSampledDriftCallback(TableEntry* entry,
                                          const std::string& table) {
  // Same critical section as the exact monitor's callback; FormatDrift
  // adds the approx + interval fields for approximate events.
  entry->sampled->OnDrift([entry, table](const fd::DriftEvent& ev) {
    const fd::MonitoredFd& mfd = entry->sampled->fds()[ev.fd_index];
    std::string line = FormatDrift(
        table, ev, mfd.fd.ToString(entry->rel->schema()));
    for (const auto& sub : entry->subscribers) sub->Push(line);
  });
}

Service::Result Service::ExecuteLine(SessionId id, const std::string& line) {
  Result res;
  sql::Statement stmt;
  try {
    stmt = sql::ParseStatement(line);
  } catch (const std::exception& e) {
    res.reply = FormatError(e.what());
    return res;
  }
  try {
    if (const auto* q = std::get_if<sql::CountQuery>(&stmt)) {
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(q->table);
      std::shared_lock table(entry->mutex);
      // Disambiguate to the read-only overload (the variant overload
      // would also accept a CountQuery by conversion).
      res.reply =
          FormatOk(sql::Execute(*q, static_cast<const sql::Database&>(db_)));
      return res;
    }
    if (const auto* explain = std::get_if<sql::ExplainRepairStatement>(&stmt)) {
      // Read-only like a SELECT: a shared table lock keeps writers out
      // while the planner computes stats and measures over the live rows.
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(explain->table);
      std::shared_lock table(entry->mutex);
      res.reply = FormatPlan(
          sql::Execute(*explain, static_cast<const sql::Database&>(db_)));
      return res;
    }
    if (const auto* ins = std::get_if<sql::InsertStatement>(&stmt)) {
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(ins->table);
      std::unique_lock table(entry->mutex);
      uint64_t n = sql::Execute(*ins, db_);
      if (opts_.record_journal) entry->journal.push_back(ins->ToString());
      // Same critical section as the append: the monitor observes the
      // quiescent post-append relation and drift pushes follow commit
      // order (see class comment).
      if (entry->monitor) entry->monitor->Poll();
      if (entry->sampled) entry->sampled->Poll();
      res.reply = FormatOk(n);
      return res;
    }
    if (const auto* del = std::get_if<sql::DeleteStatement>(&stmt)) {
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(del->table);
      std::unique_lock table(entry->mutex);
      uint64_t n = sql::Execute(*del, db_);
      if (opts_.record_journal) entry->journal.push_back(del->ToString());
      MaybeCompact(entry);
      if (entry->monitor) entry->monitor->Poll();
      if (entry->sampled) entry->sampled->Poll();
      res.reply = FormatOk(n);
      return res;
    }
    if (const auto* upd = std::get_if<sql::UpdateStatement>(&stmt)) {
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(upd->table);
      std::unique_lock table(entry->mutex);
      uint64_t n = sql::Execute(*upd, db_);
      if (opts_.record_journal) entry->journal.push_back(upd->ToString());
      MaybeCompact(entry);
      if (entry->monitor) entry->monitor->Poll();
      if (entry->sampled) entry->sampled->Poll();
      res.reply = FormatOk(n);
      return res;
    }
    if (const auto* create = std::get_if<sql::CreateTableStatement>(&stmt)) {
      std::unique_lock cat(catalog_mutex_);
      sql::Execute(*create, db_);
      auto entry = std::make_unique<TableEntry>();
      entry->rel = &db_.GetMutable(create->table);
      if (opts_.record_journal) entry->journal.push_back(create->ToString());
      tables_[create->table] = std::move(entry);
      res.reply = FormatOk(0);
      return res;
    }
    if (const auto* declare = std::get_if<sql::DeclareFdStatement>(&stmt)) {
      std::unique_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(declare->table);
      const relation::Schema& schema = entry->rel->schema();
      // Resolve throws on unknown columns; the Fd constructor rejects
      // overlapping sides — both before any state changes.
      fd::Fd fd(schema.Resolve(declare->lhs), schema.Resolve(declare->rhs));
      if (declare->sample_size != 0) {
        // SAMPLE k [SEED s] routes the FD to the table's sampled monitor
        // (one reservoir per table — interval, capacity, and seed must
        // agree across every sampled DECLARE on it).
        if (!entry->sampled) {
          size_t interval = declare->check_interval != 0
                                ? declare->check_interval
                                : opts_.default_check_interval;
          entry->sampled = std::make_unique<fd::SampledSchemaMonitor>(
              entry->rel, std::vector<fd::Fd>{}, interval,
              declare->sample_size, declare->sample_seed);
          entry->sampled_interval = interval;
          InstallSampledDriftCallback(entry, declare->table);
        } else {
          if (declare->check_interval != 0 &&
              declare->check_interval != entry->sampled_interval) {
            throw std::invalid_argument(
                "sampled monitor on '" + declare->table +
                "' already checks EVERY " +
                std::to_string(entry->sampled_interval) +
                "; one interval per table");
          }
          if (declare->sample_size != entry->sampled->sample_capacity() ||
              declare->sample_seed != entry->sampled->sample_seed()) {
            throw std::invalid_argument(
                "sampled monitor on '" + declare->table +
                "' already uses SAMPLE " +
                std::to_string(entry->sampled->sample_capacity()) + " SEED " +
                std::to_string(entry->sampled->sample_seed()) +
                "; one reservoir per table");
          }
        }
        db_.DeclareFd(declare->table, fd);
        entry->sampled->AddFd(std::move(fd));
        if (opts_.record_journal) {
          entry->journal.push_back(declare->ToString());
        }
        res.reply = FormatOk(0);
        return res;
      }
      if (!entry->monitor) {
        size_t interval = declare->check_interval != 0
                              ? declare->check_interval
                              : opts_.default_check_interval;
        entry->monitor = std::make_unique<fd::SchemaMonitor>(
            entry->rel, std::vector<fd::Fd>{}, interval, /*threads=*/1);
        entry->check_interval = interval;
        InstallDriftCallback(entry, declare->table);
      } else if (declare->check_interval != 0 &&
                 declare->check_interval != entry->check_interval) {
        throw std::invalid_argument(
            "monitor on '" + declare->table + "' already checks EVERY " +
            std::to_string(entry->check_interval) +
            "; one interval per table");
      }
      db_.DeclareFd(declare->table, fd);
      entry->monitor->AddFd(std::move(fd));
      if (opts_.record_journal) entry->journal.push_back(declare->ToString());
      res.reply = FormatOk(0);
      return res;
    }
    if (const auto* sub = std::get_if<sql::SubscribeStatement>(&stmt)) {
      std::shared_ptr<SessionRec> rec = FindSession(id);
      if (!rec) throw std::invalid_argument("unknown session");
      std::shared_lock cat(catalog_mutex_);
      TableEntry* entry = FindEntry(sub->table);
      std::unique_lock table(entry->mutex);
      bool present = false;
      for (const auto& s : entry->subscribers) present |= (s == rec);
      if (!present) entry->subscribers.push_back(std::move(rec));
      res.reply = FormatOk(0);
      return res;
    }
    if (std::get_if<sql::CheckpointStatement>(&stmt)) {
      std::string error;
      if (!SaveCheckpoint(&error)) throw std::runtime_error(error);
      res.reply = FormatOk(0);
      return res;
    }
    // SHUTDOWN: acknowledge, then let the serving layer stop (and
    // checkpoint, when configured).
    res.reply = FormatOk(0);
    res.shutdown = true;
    return res;
  } catch (const std::exception& e) {
    res.reply = FormatError(e.what());
    return res;
  }
}

bool Service::SaveCheckpoint(std::string* error) {
  if (opts_.checkpoint_path.empty()) {
    if (error) *error = "no checkpoint path configured";
    return false;
  }
  // The exclusive catalog lock quiesces every session (all data paths
  // hold it shared), so the snapshot is a consistent cut.
  std::unique_lock cat(catalog_mutex_);
  std::vector<storage::ServerMonitorState> monitors;
  std::vector<storage::ServerSampledMonitorState> sampled;
  for (const auto& [name, entry] : tables_) {
    if (entry->monitor) monitors.push_back({name, entry->monitor->State()});
    if (entry->sampled) sampled.push_back({name, entry->sampled->State()});
  }
  return storage::SaveServerSnapshot(db_, monitors, opts_.checkpoint_path,
                                     error, sampled);
}

std::string Service::SerializeState() const {
  std::unique_lock cat(catalog_mutex_);
  std::vector<storage::ServerMonitorState> monitors;
  std::vector<storage::ServerSampledMonitorState> sampled;
  for (const auto& [name, entry] : tables_) {
    if (entry->monitor) monitors.push_back({name, entry->monitor->State()});
    if (entry->sampled) sampled.push_back({name, entry->sampled->State()});
  }
  return storage::SerializeServerState(db_, monitors, sampled);
}

std::vector<std::string> Service::Journal(const std::string& table) const {
  std::shared_lock cat(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  std::shared_lock tl(it->second->mutex);
  return it->second->journal;
}

std::vector<std::string> Service::TableNames() const {
  std::shared_lock cat(catalog_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::vector<fd::DriftEvent> Service::DriftLog(const std::string& table) const {
  std::shared_lock cat(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  std::shared_lock tl(it->second->mutex);
  if (!it->second->monitor) return {};
  return it->second->monitor->drift_log();
}

std::vector<fd::DriftEvent> Service::SampledDriftLog(
    const std::string& table) const {
  std::shared_lock cat(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  std::shared_lock tl(it->second->mutex);
  if (!it->second->sampled) return {};
  return it->second->sampled->drift_log();
}

std::vector<fd::SampledMeasures> Service::SampledEstimates(
    const std::string& table) const {
  std::shared_lock cat(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  std::shared_lock tl(it->second->mutex);
  if (!it->second->sampled) return {};
  return it->second->sampled->estimates();
}

}  // namespace fdevolve::server
