#include "storage/snapshot.h"

#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/binary_io.h"

namespace fdevolve::storage {
namespace {

using util::BinaryReader;
using util::BinaryWriter;

constexpr char kMagic[4] = {'F', 'D', 'E', 'V'};
constexpr size_t kHeaderSize = 4 + 4 + 4;  // magic + version + kind
constexpr size_t kTrailerSize = 8;         // FNV-1a checksum

enum PayloadKind : uint32_t {
  kKindRelation = 1,
  kKindDatabase = 2,
  kKindMonitor = 3,
  kKindServer = 4,
  kKindSampledMonitor = 5,
};

const char* KindName(uint32_t kind) {
  switch (kind) {
    case kKindRelation:
      return "relation";
    case kKindDatabase:
      return "database";
    case kKindMonitor:
      return "monitor checkpoint";
    case kKindServer:
      return "server state";
    case kKindSampledMonitor:
      return "sampled monitor checkpoint";
  }
  return "unknown";
}

uint8_t TypeTag(relation::DataType t) {
  switch (t) {
    case relation::DataType::kInt64:
      return 0;
    case relation::DataType::kDouble:
      return 1;
    case relation::DataType::kString:
      return 2;
  }
  throw std::logic_error("unreachable data type");
}

relation::DataType TypeFromTag(uint8_t tag) {
  switch (tag) {
    case 0:
      return relation::DataType::kInt64;
    case 1:
      return relation::DataType::kDouble;
    case 2:
      return relation::DataType::kString;
  }
  throw util::BinaryIoError("bad column type tag " + std::to_string(tag));
}

// --- Payload writers. Each Write*Payload appends the naked payload; the
// --- envelope (magic/version/kind + checksum trailer) is added by Seal.

void WriteAttrSet(BinaryWriter& w, const relation::AttrSet& s) {
  const auto idx = s.ToVector();
  w.U32(static_cast<uint32_t>(idx.size()));
  for (int i : idx) w.U32(static_cast<uint32_t>(i));
}

relation::AttrSet ReadAttrSet(BinaryReader& r) {
  uint32_t count = r.U32();
  relation::AttrSet s;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t a = r.U32();
    if (a >= static_cast<uint32_t>(relation::AttrSet::kMaxAttrs)) {
      throw util::BinaryIoError("attribute index " + std::to_string(a) +
                                " out of range");
    }
    s.Add(static_cast<int>(a));
  }
  return s;
}

void WriteFd(BinaryWriter& w, const fd::Fd& f) {
  w.Str(f.label());
  WriteAttrSet(w, f.lhs());
  WriteAttrSet(w, f.rhs());
}

fd::Fd ReadFd(BinaryReader& r) {
  std::string label = r.Str();
  relation::AttrSet lhs = ReadAttrSet(r);
  relation::AttrSet rhs = ReadAttrSet(r);
  // Fd's constructor rejects overlapping sides / empty consequent; let its
  // std::invalid_argument surface as the load error.
  return fd::Fd(lhs, rhs, std::move(label));
}

void WriteMeasures(BinaryWriter& w, const fd::FdMeasures& m) {
  w.U64(m.distinct_x);
  w.U64(m.distinct_xy);
  w.U64(m.distinct_y);
  w.F64(m.confidence);
  w.I64(m.goodness);
  w.U8(m.exact ? 1 : 0);
}

fd::FdMeasures ReadMeasures(BinaryReader& r) {
  fd::FdMeasures m;
  m.distinct_x = r.U64();
  m.distinct_xy = r.U64();
  m.distinct_y = r.U64();
  m.confidence = r.F64();
  m.goodness = r.I64();
  m.exact = r.U8() != 0;
  return m;
}

void WriteRelationPayload(BinaryWriter& w, const relation::Relation& rel) {
  w.Str(rel.name());
  const relation::Schema& s = rel.schema();
  w.U32(static_cast<uint32_t>(s.size()));
  for (const auto& a : s.attrs()) {
    w.Str(a.name);
    w.U8(TypeTag(a.type));
  }
  w.U64(rel.tuple_count());
  for (int i = 0; i < s.size(); ++i) {
    const relation::Column& col = rel.column(i);
    w.U64(col.null_count());
    w.U64(col.dict_size());
    for (size_t c = 0; c < col.dict_size(); ++c) {
      const relation::Value& v = col.DictValue(static_cast<uint32_t>(c));
      switch (col.type()) {
        case relation::DataType::kInt64:
          w.I64(v.as_int());
          break;
        case relation::DataType::kDouble:
          w.F64(v.as_double());  // exact bits, not a decimal rendering
          break;
        case relation::DataType::kString:
          w.Str(v.as_string());
          break;
      }
    }
    w.U32Array(col.codes());
  }
  // v2 tombstone section: dead physical row ids in deletion order (empty
  // array for all-live relations — one u32 of overhead, no branch on read).
  w.U32Array(rel.deletion_log());
  // v3 lifetime-counter section: the mutation history watermarks the
  // monitor cadence (appends_ever + deletes_ever) and the reservoir
  // samplers (compactions) are keyed to. mutation_epoch is derived on
  // restore, not stored.
  w.U64(rel.appends_ever());
  w.U64(rel.deletes_ever());
  w.U64(rel.compactions());
}

/// Replays a v2 deletion log through DeleteRow so the loaded relation's
/// tombstone bitmap, deletion log, and mutation counters are rebuilt the
/// same deterministic way the live writer built them. DeleteRow itself
/// rejects out-of-range and duplicate ids, so a corrupt log fails the
/// load instead of fabricating state.
void ReplayDeletionLog(BinaryReader& r, relation::Relation* rel) {
  std::vector<uint32_t> log = r.U32Array();
  for (uint32_t id : log) rel->DeleteRow(id);
}

relation::Relation ReadRelationPayload(BinaryReader& r, uint32_t version) {
  std::string name = r.Str();
  uint32_t attr_count = r.U32();
  std::vector<relation::Attribute> attrs;
  attrs.reserve(attr_count);
  for (uint32_t i = 0; i < attr_count; ++i) {
    relation::Attribute a;
    a.name = r.Str();
    a.type = TypeFromTag(r.U8());
    attrs.push_back(std::move(a));
  }
  relation::Schema schema(std::move(attrs));  // throws on duplicate names
  uint64_t tuples = r.U64();

  if (attr_count == 0) {
    // Degenerate but representable: a zero-attribute relation still has a
    // tuple count (AppendRow({}) increments it). FromEncoded derives the
    // count from the columns, so replay the appends instead — bounded, so
    // a crafted count cannot turn the load into a near-endless loop.
    if (tuples > (uint64_t{1} << 27)) {
      throw util::BinaryIoError("implausible zero-attribute tuple count " +
                                std::to_string(tuples));
    }
    relation::Relation rel(std::move(name), std::move(schema));
    for (uint64_t t = 0; t < tuples; ++t) rel.AppendRow({});
    if (version >= 2) ReplayDeletionLog(r, &rel);
    if (version >= 3) {
      const uint64_t appends = r.U64();
      const uint64_t deletes = r.U64();
      const uint64_t compactions = r.U64();
      rel.RestoreLifetimeCounters(static_cast<size_t>(appends),
                                  static_cast<size_t>(deletes),
                                  static_cast<size_t>(compactions));
    }
    return rel;
  }

  std::vector<relation::Column> columns;
  columns.reserve(attr_count);
  for (uint32_t i = 0; i < attr_count; ++i) {
    relation::DataType type = schema.attr(static_cast<int>(i)).type;
    uint64_t null_count = r.U64();
    uint64_t dict_size = r.U64();
    std::vector<relation::Value> dict;
    // Every dictionary entry occupies at least one payload byte, so a
    // corrupt dict_size larger than the remaining range fails here rather
    // than in a giant reserve.
    if (dict_size > r.remaining()) {
      throw util::BinaryIoError("dictionary size " +
                                std::to_string(dict_size) +
                                " exceeds remaining payload");
    }
    dict.reserve(static_cast<size_t>(dict_size));
    for (uint64_t c = 0; c < dict_size; ++c) {
      switch (type) {
        case relation::DataType::kInt64:
          dict.emplace_back(r.I64());
          break;
        case relation::DataType::kDouble:
          dict.emplace_back(r.F64());
          break;
        case relation::DataType::kString:
          dict.emplace_back(r.Str());
          break;
      }
    }
    std::vector<uint32_t> codes = r.U32Array();
    if (codes.size() != tuples) {
      throw util::BinaryIoError(
          "column '" + schema.attr(static_cast<int>(i)).name + "' has " +
          std::to_string(codes.size()) + " codes for " +
          std::to_string(tuples) + " tuples");
    }
    // FromEncoded re-validates code ranges, null counts, and dictionary
    // uniqueness — the structural invariants a checksum cannot see.
    columns.push_back(relation::Column::FromEncoded(
        type, std::move(dict), std::move(codes),
        static_cast<size_t>(null_count)));
  }
  relation::Relation rel = relation::Relation::FromEncoded(
      std::move(name), std::move(schema), std::move(columns));
  if (version >= 2) ReplayDeletionLog(r, &rel);
  if (version >= 3) {
    const uint64_t appends = r.U64();
    const uint64_t deletes = r.U64();
    const uint64_t compactions = r.U64();
    // Throws std::invalid_argument on impossible counters — the same
    // corrupt-payload path FromEncoded's structural checks take.
    rel.RestoreLifetimeCounters(static_cast<size_t>(appends),
                                static_cast<size_t>(deletes),
                                static_cast<size_t>(compactions));
  }
  return rel;
}

// Monitored-FD list + drift log — the relation-free core shared by the
// monitor checkpoint and the server-state payloads.

void WriteFdsAndDrift(BinaryWriter& w, const std::vector<fd::MonitoredFd>& fds,
                      const std::vector<fd::DriftEvent>& drift_log) {
  w.U32(static_cast<uint32_t>(fds.size()));
  for (const auto& m : fds) {
    WriteFd(w, m.fd);
    WriteMeasures(w, m.measures);
    w.U8(m.was_exact_at_registration ? 1 : 0);
    w.U8(m.violated ? 1 : 0);
    w.U64(m.first_violation_at);
  }
  w.U32(static_cast<uint32_t>(drift_log.size()));
  for (const auto& ev : drift_log) {
    w.U64(ev.fd_index);
    w.U64(ev.tuple_count);
    WriteMeasures(w, ev.measures);
    // v2: the event's direction. v1 files predate recovery events, so the
    // reader's default (kViolated = 0) is exactly what they meant.
    w.U8(static_cast<uint8_t>(ev.kind));
    // v3: sampled-estimate fields. Exact events write their defaults
    // (approx=0, degenerate intervals) — which is also what v1/v2 files
    // load as, since their writers only had exact monitors.
    w.U8(ev.approx ? 1 : 0);
    w.F64(ev.confidence_lo);
    w.F64(ev.confidence_hi);
    w.F64(ev.goodness_lo);
    w.F64(ev.goodness_hi);
  }
}

void ReadFdsAndDrift(BinaryReader& r, uint32_t version,
                     std::vector<fd::MonitoredFd>* fds,
                     std::vector<fd::DriftEvent>* drift_log) {
  uint32_t fd_count = r.U32();
  fds->reserve(fd_count);
  for (uint32_t i = 0; i < fd_count; ++i) {
    fd::MonitoredFd m;
    m.fd = ReadFd(r);
    m.measures = ReadMeasures(r);
    m.was_exact_at_registration = r.U8() != 0;
    m.violated = r.U8() != 0;
    m.first_violation_at = r.U64();
    fds->push_back(std::move(m));
  }
  uint32_t drift_count = r.U32();
  drift_log->reserve(drift_count);
  for (uint32_t i = 0; i < drift_count; ++i) {
    fd::DriftEvent ev;
    ev.fd_index = r.U64();
    if (ev.fd_index >= fd_count) {
      throw util::BinaryIoError("drift event references FD " +
                                std::to_string(ev.fd_index) + " of " +
                                std::to_string(fd_count));
    }
    ev.tuple_count = r.U64();
    ev.measures = ReadMeasures(r);
    if (version >= 2) {
      uint8_t kind = r.U8();
      if (kind > static_cast<uint8_t>(fd::DriftKind::kRecovered)) {
        throw util::BinaryIoError("bad drift kind " + std::to_string(kind));
      }
      ev.kind = static_cast<fd::DriftKind>(kind);
    }
    if (version >= 3) {
      uint8_t approx = r.U8();
      if (approx > 1) {
        throw util::BinaryIoError("bad drift approx flag " +
                                  std::to_string(approx));
      }
      ev.approx = approx != 0;
      ev.confidence_lo = r.F64();
      ev.confidence_hi = r.F64();
      ev.goodness_lo = r.F64();
      ev.goodness_hi = r.F64();
    }
    drift_log->push_back(std::move(ev));
  }
}

void WriteCheckpointPayload(BinaryWriter& w,
                            const fd::MonitorCheckpoint& ckpt) {
  WriteRelationPayload(w, ckpt.rel);
  w.U64(ckpt.check_interval);
  w.U64(ckpt.inserts_since_check);
  w.U64(ckpt.checks_run);
  w.U64(ckpt.stream_batch_hint);
  WriteFdsAndDrift(w, ckpt.fds, ckpt.drift_log);
}

fd::MonitorCheckpoint ReadCheckpointPayload(BinaryReader& r,
                                            uint32_t version) {
  relation::Relation rel = ReadRelationPayload(r, version);
  uint64_t check_interval = r.U64();
  uint64_t inserts_since_check = r.U64();
  uint64_t checks_run = r.U64();
  uint64_t stream_batch_hint = r.U64();
  std::vector<fd::MonitoredFd> fds;
  std::vector<fd::DriftEvent> drift;
  ReadFdsAndDrift(r, version, &fds, &drift);
  return fd::MonitorCheckpoint{std::move(rel),
                               std::move(fds),
                               std::move(drift),
                               static_cast<size_t>(check_interval),
                               static_cast<size_t>(inserts_since_check),
                               static_cast<size_t>(checks_run),
                               static_cast<size_t>(stream_batch_hint)};
}

void WriteMonitorStatePayload(BinaryWriter& w, const fd::MonitorState& s) {
  w.U64(s.check_interval);
  w.U64(s.inserts_since_check);
  w.U64(s.checks_run);
  w.U64(s.watermark);
  WriteFdsAndDrift(w, s.fds, s.drift_log);
}

fd::MonitorState ReadMonitorStatePayload(BinaryReader& r, uint32_t version) {
  fd::MonitorState s;
  s.check_interval = static_cast<size_t>(r.U64());
  s.inserts_since_check = static_cast<size_t>(r.U64());
  s.checks_run = static_cast<size_t>(r.U64());
  s.watermark = static_cast<size_t>(r.U64());
  ReadFdsAndDrift(r, version, &s.fds, &s.drift_log);
  return s;
}

// Reservoir state (v3) — the sampler's full replay state. Structural
// validation against the paired relation happens in ReservoirSampler's
// restore constructor; here only self-consistency is checked.

void WriteReservoirState(BinaryWriter& w, const query::ReservoirState& s) {
  w.U64(s.capacity);
  w.U64(s.seed);
  w.U64(s.rng_state);
  w.U64(s.seen);
  w.U32Array(s.rows);
  w.U64(s.observed_version);
  w.U64(s.observed_compactions);
}

query::ReservoirState ReadReservoirState(BinaryReader& r) {
  query::ReservoirState s;
  s.capacity = r.U64();
  s.seed = r.U64();
  s.rng_state = r.U64();
  s.seen = r.U64();
  s.rows = r.U32Array();
  s.observed_version = r.U64();
  s.observed_compactions = r.U64();
  if (s.capacity == 0) {
    throw util::BinaryIoError("reservoir state with zero capacity");
  }
  if (s.rows.size() > s.capacity) {
    throw util::BinaryIoError(
        "reservoir state holds " + std::to_string(s.rows.size()) +
        " slots for capacity " + std::to_string(s.capacity));
  }
  return s;
}

void WriteSampledCheckpointPayload(BinaryWriter& w,
                                   const fd::SampledMonitorCheckpoint& ckpt) {
  WriteCheckpointPayload(w, ckpt.base);
  WriteReservoirState(w, ckpt.reservoir);
}

fd::SampledMonitorCheckpoint ReadSampledCheckpointPayload(BinaryReader& r,
                                                          uint32_t version) {
  fd::MonitorCheckpoint base = ReadCheckpointPayload(r, version);
  query::ReservoirState reservoir = ReadReservoirState(r);
  return fd::SampledMonitorCheckpoint{std::move(base), std::move(reservoir)};
}

void WriteSampledMonitorStatePayload(BinaryWriter& w,
                                     const fd::SampledMonitorState& s) {
  WriteMonitorStatePayload(w, s.base);
  WriteReservoirState(w, s.reservoir);
}

fd::SampledMonitorState ReadSampledMonitorStatePayload(BinaryReader& r,
                                                       uint32_t version) {
  fd::SampledMonitorState s;
  s.base = ReadMonitorStatePayload(r, version);
  s.reservoir = ReadReservoirState(r);
  return s;
}

// The catalog section of the database/server payloads (tables + declared
// FDs), factored so the server payload is exactly "catalog then monitors".

void WriteDatabasePayload(BinaryWriter& w, const sql::Database& db) {
  const auto tables = db.TableNames();
  w.U32(static_cast<uint32_t>(tables.size()));
  for (const auto& name : tables) WriteRelationPayload(w, db.Get(name));
  const auto fds = db.Fds();
  w.U32(static_cast<uint32_t>(fds.size()));
  for (const auto& d : fds) {
    w.Str(d.table);
    WriteFd(w, d.fd);
  }
}

void ReadDatabasePayload(BinaryReader& r, uint32_t version,
                         sql::Database* db) {
  uint32_t table_count = r.U32();
  for (uint32_t i = 0; i < table_count; ++i) {
    db->AddRelation(ReadRelationPayload(r, version));
  }
  uint32_t fd_count = r.U32();
  for (uint32_t i = 0; i < fd_count; ++i) {
    std::string table = r.Str();
    // DeclareFd validates table existence and schema bounds.
    db->DeclareFd(table, ReadFd(r));
  }
}

// --- Envelope.

std::string Seal(BinaryWriter&& w) {
  w.U64(w.Checksum());
  return w.buffer();
}

BinaryWriter OpenWriter(uint32_t kind) {
  BinaryWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kFormatVersion);
  w.U32(kind);
  return w;
}

/// Verifies the envelope, fills `*version_out` with the file's format
/// version (payload readers branch on it), and returns the payload range
/// — or fills `error`. `not_snapshot` (optional) is set when the input
/// lacks the magic entirely — the structured "try another format" signal.
std::optional<std::string_view> OpenEnvelope(std::string_view bytes,
                                             uint32_t expected_kind,
                                             uint32_t* version_out,
                                             std::string* error,
                                             bool* not_snapshot = nullptr) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    if (error) *error = "not an FDEV snapshot (file too small)";
    if (not_snapshot) *not_snapshot = true;
    return std::nullopt;
  }
  // Magic first (so a non-snapshot file is reported as such, letting
  // callers sniff the format), then the checksum: it subsumes most
  // corruption, and everything after it can trust the byte values (the
  // parse-level bounds checks remain as defense in depth).
  if (bytes.substr(0, 4) != std::string_view(kMagic, 4)) {
    if (error) *error = "not an FDEV snapshot (bad magic)";
    if (not_snapshot) *not_snapshot = true;
    return std::nullopt;
  }
  BinaryReader trailer(bytes.substr(bytes.size() - kTrailerSize));
  const uint64_t stored = trailer.U64();
  const uint64_t computed =
      util::Checksum64(bytes.data(), bytes.size() - kTrailerSize);
  if (stored != computed) {
    if (error) *error = "checksum mismatch (truncated or corrupt snapshot)";
    return std::nullopt;
  }
  BinaryReader header(bytes.substr(4));
  const uint32_t version = header.U32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    if (error) {
      *error = "unsupported snapshot version " + std::to_string(version) +
               " (this build reads " + std::to_string(kMinFormatVersion) +
               ".." + std::to_string(kFormatVersion) + ")";
    }
    return std::nullopt;
  }
  *version_out = version;
  const uint32_t kind = header.U32();
  if (kind != expected_kind) {
    if (error) {
      *error = std::string("snapshot kind mismatch: expected ") +
               KindName(expected_kind) + ", found " + KindName(kind);
    }
    return std::nullopt;
  }
  return bytes.substr(kHeaderSize,
                      bytes.size() - kHeaderSize - kTrailerSize);
}

// --- File helpers.

std::optional<std::string> ReadFileBytes(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  // One bulk read at the known size: an istreambuf_iterator loop costs a
  // virtual call per byte, which alone would dwarf the parse time.
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  if (size > 0) in.read(bytes.data(), size);
  if (!in || in.gcount() != size) {
    if (error) *error = "I/O error reading '" + path + "'";
    return std::nullopt;
  }
  return bytes;
}

bool WriteFileBytes(const std::string& bytes, const std::string& path,
                    std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  // Flush before checking: a disk-full error surfacing at flush time must
  // fail the save, not report success (same audit as WriteCsvFile).
  out.flush();
  if (!out.good()) {
    if (error) *error = "I/O error writing '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

std::string SerializeRelation(const relation::Relation& rel) {
  BinaryWriter w = OpenWriter(kKindRelation);
  WriteRelationPayload(w, rel);
  return Seal(std::move(w));
}

RelationSnapshotResult DeserializeRelation(std::string_view bytes) {
  RelationSnapshotResult result;
  uint32_t version = 0;
  auto payload = OpenEnvelope(bytes, kKindRelation, &version, &result.error,
                              &result.not_a_snapshot);
  if (!payload) return result;
  try {
    BinaryReader r(*payload);
    relation::Relation rel = ReadRelationPayload(r, version);
    if (!r.AtEnd()) {
      result.error = "trailing bytes after relation payload";
      return result;
    }
    result.relation.emplace(std::move(rel));
  } catch (const std::exception& e) {
    result.error = std::string("corrupt relation snapshot: ") + e.what();
  }
  return result;
}

std::string SerializeDatabase(const sql::Database& db) {
  BinaryWriter w = OpenWriter(kKindDatabase);
  WriteDatabasePayload(w, db);
  return Seal(std::move(w));
}

bool DeserializeDatabase(std::string_view bytes, sql::Database* db,
                         std::string* error) {
  uint32_t version = 0;
  auto payload = OpenEnvelope(bytes, kKindDatabase, &version, error);
  if (!payload) return false;
  try {
    BinaryReader r(*payload);
    ReadDatabasePayload(r, version, db);
    if (!r.AtEnd()) {
      if (error) *error = "trailing bytes after database payload";
      return false;
    }
  } catch (const std::exception& e) {
    if (error) *error = std::string("corrupt database snapshot: ") + e.what();
    return false;
  }
  return true;
}

std::string SerializeServerState(
    const sql::Database& db, const std::vector<ServerMonitorState>& monitors,
    const std::vector<ServerSampledMonitorState>& sampled) {
  BinaryWriter w = OpenWriter(kKindServer);
  WriteDatabasePayload(w, db);
  w.U32(static_cast<uint32_t>(monitors.size()));
  for (const auto& m : monitors) {
    w.Str(m.table);
    WriteMonitorStatePayload(w, m.state);
  }
  // v3 sampled-monitor section (one u32 of overhead when empty).
  w.U32(static_cast<uint32_t>(sampled.size()));
  for (const auto& m : sampled) {
    w.Str(m.table);
    WriteSampledMonitorStatePayload(w, m.state);
  }
  return Seal(std::move(w));
}

bool DeserializeServerState(std::string_view bytes, sql::Database* db,
                            std::vector<ServerMonitorState>* monitors,
                            std::string* error,
                            std::vector<ServerSampledMonitorState>* sampled) {
  uint32_t version = 0;
  auto payload = OpenEnvelope(bytes, kKindServer, &version, error);
  if (!payload) return false;
  try {
    BinaryReader r(*payload);
    ReadDatabasePayload(r, version, db);
    uint32_t monitor_count = r.U32();
    for (uint32_t i = 0; i < monitor_count; ++i) {
      ServerMonitorState m;
      m.table = r.Str();
      m.state = ReadMonitorStatePayload(r, version);
      if (!db->Has(m.table)) {
        throw util::BinaryIoError("monitor state references unknown table '" +
                                  m.table + "'");
      }
      // The restore constructor re-checks this too, but failing at load
      // time pins the blame on the file rather than on server wiring.
      if (m.state.watermark != db->Get(m.table).version()) {
        throw util::BinaryIoError(
            "monitor state for '" + m.table + "' captured at watermark " +
            std::to_string(m.state.watermark) + " but the table holds " +
            std::to_string(db->Get(m.table).version()) + " tuples");
      }
      monitors->push_back(std::move(m));
    }
    if (version >= 3) {
      uint32_t sampled_count = r.U32();
      if (sampled_count > 0 && sampled == nullptr) {
        throw util::BinaryIoError(
            "snapshot carries sampled monitors but the caller cannot "
            "restore them");
      }
      for (uint32_t i = 0; i < sampled_count; ++i) {
        ServerSampledMonitorState m;
        m.table = r.Str();
        m.state = ReadSampledMonitorStatePayload(r, version);
        if (!db->Has(m.table)) {
          throw util::BinaryIoError(
              "sampled monitor state references unknown table '" + m.table +
              "'");
        }
        if (m.state.base.watermark != db->Get(m.table).version()) {
          throw util::BinaryIoError(
              "sampled monitor state for '" + m.table +
              "' captured at watermark " +
              std::to_string(m.state.base.watermark) +
              " but the table holds " +
              std::to_string(db->Get(m.table).version()) + " tuples");
        }
        sampled->push_back(std::move(m));
      }
    }
    if (!r.AtEnd()) {
      if (error) *error = "trailing bytes after server-state payload";
      return false;
    }
  } catch (const std::exception& e) {
    if (error) {
      *error = std::string("corrupt server-state snapshot: ") + e.what();
    }
    return false;
  }
  return true;
}

std::string SerializeCheckpoint(const fd::MonitorCheckpoint& ckpt) {
  BinaryWriter w = OpenWriter(kKindMonitor);
  WriteCheckpointPayload(w, ckpt);
  return Seal(std::move(w));
}

std::string SerializeSampledCheckpoint(
    const fd::SampledMonitorCheckpoint& ckpt) {
  BinaryWriter w = OpenWriter(kKindSampledMonitor);
  WriteSampledCheckpointPayload(w, ckpt);
  return Seal(std::move(w));
}

SampledCheckpointResult DeserializeSampledCheckpoint(std::string_view bytes) {
  SampledCheckpointResult result;
  uint32_t version = 0;
  auto payload =
      OpenEnvelope(bytes, kKindSampledMonitor, &version, &result.error);
  if (!payload) return result;
  try {
    BinaryReader r(*payload);
    fd::SampledMonitorCheckpoint ckpt = ReadSampledCheckpointPayload(r, version);
    if (!r.AtEnd()) {
      result.error = "trailing bytes after sampled checkpoint payload";
      return result;
    }
    result.checkpoint.emplace(std::move(ckpt));
  } catch (const std::exception& e) {
    result.error = std::string("corrupt sampled monitor checkpoint: ") +
                   e.what();
  }
  return result;
}

CheckpointResult DeserializeCheckpoint(std::string_view bytes) {
  CheckpointResult result;
  uint32_t version = 0;
  auto payload = OpenEnvelope(bytes, kKindMonitor, &version, &result.error);
  if (!payload) return result;
  try {
    BinaryReader r(*payload);
    fd::MonitorCheckpoint ckpt = ReadCheckpointPayload(r, version);
    if (!r.AtEnd()) {
      result.error = "trailing bytes after checkpoint payload";
      return result;
    }
    result.checkpoint.emplace(std::move(ckpt));
  } catch (const std::exception& e) {
    result.error = std::string("corrupt monitor checkpoint: ") + e.what();
  }
  return result;
}

bool SaveRelationSnapshot(const relation::Relation& rel,
                          const std::string& path, std::string* error) {
  return WriteFileBytes(SerializeRelation(rel), path, error);
}

RelationSnapshotResult LoadRelationSnapshot(const std::string& path) {
  RelationSnapshotResult result;
  auto bytes = ReadFileBytes(path, &result.error);
  if (!bytes) return result;
  return DeserializeRelation(*bytes);
}

bool SaveDatabaseSnapshot(const sql::Database& db, const std::string& path,
                          std::string* error) {
  return WriteFileBytes(SerializeDatabase(db), path, error);
}

bool LoadDatabaseSnapshot(const std::string& path, sql::Database* db,
                          std::string* error) {
  auto bytes = ReadFileBytes(path, error);
  if (!bytes) return false;
  return DeserializeDatabase(*bytes, db, error);
}

bool SaveMonitorCheckpoint(const fd::SchemaMonitor& monitor,
                           const std::string& path, std::string* error) {
  return WriteFileBytes(SerializeCheckpoint(monitor.Checkpoint()), path,
                        error);
}

bool SaveMonitorCheckpoint(const fd::MonitorCheckpoint& ckpt,
                           const std::string& path, std::string* error) {
  return WriteFileBytes(SerializeCheckpoint(ckpt), path, error);
}

CheckpointResult LoadMonitorCheckpoint(const std::string& path) {
  CheckpointResult result;
  auto bytes = ReadFileBytes(path, &result.error);
  if (!bytes) return result;
  return DeserializeCheckpoint(*bytes);
}

bool SaveSampledCheckpoint(const fd::SampledMonitorCheckpoint& ckpt,
                           const std::string& path, std::string* error) {
  return WriteFileBytes(SerializeSampledCheckpoint(ckpt), path, error);
}

SampledCheckpointResult LoadSampledCheckpoint(const std::string& path) {
  SampledCheckpointResult result;
  auto bytes = ReadFileBytes(path, &result.error);
  if (!bytes) return result;
  return DeserializeSampledCheckpoint(*bytes);
}

bool SaveServerSnapshot(const sql::Database& db,
                        const std::vector<ServerMonitorState>& monitors,
                        const std::string& path, std::string* error,
                        const std::vector<ServerSampledMonitorState>& sampled) {
  return WriteFileBytes(SerializeServerState(db, monitors, sampled), path,
                        error);
}

bool LoadServerSnapshot(const std::string& path, sql::Database* db,
                        std::vector<ServerMonitorState>* monitors,
                        std::string* error,
                        std::vector<ServerSampledMonitorState>* sampled) {
  auto bytes = ReadFileBytes(path, error);
  if (!bytes) return false;
  return DeserializeServerState(*bytes, db, monitors, error, sampled);
}

}  // namespace fdevolve::storage
