// FDEV1 — versioned binary columnar snapshots.
//
// CSV persistence re-parses and re-dictionary-encodes the whole stream on
// every restart; snapshots instead serialize the *encoded* layer directly
// (per-column dictionary + dense codes + row watermark, no per-cell Value
// boxing), in the spirit of DuckDB's persisted column segments and
// Hyrise's binary table export. Three payload kinds share one envelope:
//
//   * Relation          — one dictionary-encoded relation;
//   * Database catalog  — named relations + declared FDs;
//   * Monitor checkpoint — a SchemaMonitor's complete resumable state
//     (relation, registered FDs, accepted repairs, per-FD maintained
//     counters, drift log, interval position), so a monitoring process can
//     stop and resume mid-stream without replaying it.
//
// File layout (all integers little-endian, see util/binary_io.h):
//
//   offset 0: magic "FDEV"            (4 bytes)
//             format version u32     (currently 1)
//             payload kind u32       (1 = relation, 2 = database,
//                                     3 = monitor checkpoint)
//             payload bytes
//   trailer:  FNV-1a u64 over everything before the trailer
//
// Integrity policy: loads verify size, magic, version, kind, and checksum
// before parsing, then parse with bounds-checked reads and validate every
// structural invariant (code ranges, null counts, dictionary uniqueness,
// schema/FD consistency, measure agreement). A truncated or bit-flipped
// file fails with a clean error — never a crash, never a silently wrong
// object. Version policy: the u32 after the magic is bumped on any layout
// change; readers reject versions they do not know (no silent best-effort
// parsing of future formats).
//
// Bit-identity contract: a loaded snapshot reproduces the encoded state
// exactly — same dictionary order, same codes, same watermark — so every
// downstream computation (group ids, distinct counts, measure doubles,
// drift flags) is bit-identical to the evaluator state that wrote it. The
// differential fuzz suite and bench_snapshot gate this.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "fd/schema_monitor.h"
#include "relation/relation.h"
#include "sql/database.h"

namespace fdevolve::storage {

/// Format version written by this build; readers accept exactly this.
inline constexpr uint32_t kFormatVersion = 1;

/// Result of loading a relation snapshot (mirrors relation::CsvResult).
struct RelationSnapshotResult {
  std::optional<relation::Relation> relation;
  std::string error;

  /// True when the input is not an FDEV snapshot at all (missing magic /
  /// shorter than the envelope) — as opposed to a corrupt or mismatched
  /// snapshot. Lets callers that accept several formats fall back to
  /// another parser without matching on error text.
  bool not_a_snapshot = false;

  bool ok() const { return relation.has_value(); }
};

/// Result of loading a monitor checkpoint.
struct CheckpointResult {
  std::optional<fd::MonitorCheckpoint> checkpoint;
  std::string error;

  bool ok() const { return checkpoint.has_value(); }
};

// --- Buffer-level API (the file functions are thin wrappers; tests use
// --- these to corrupt bytes in memory).

/// Serializes to a complete snapshot byte string (envelope + checksum).
std::string SerializeRelation(const relation::Relation& rel);
std::string SerializeDatabase(const sql::Database& db);
std::string SerializeCheckpoint(const fd::MonitorCheckpoint& ckpt);

/// Parses a complete snapshot byte string of the matching kind.
RelationSnapshotResult DeserializeRelation(std::string_view bytes);
bool DeserializeDatabase(std::string_view bytes, sql::Database* db,
                         std::string* error);
CheckpointResult DeserializeCheckpoint(std::string_view bytes);

// --- File-level API. Writers flush before reporting success so
// --- flush-time I/O errors (e.g. disk full) are not swallowed.

bool SaveRelationSnapshot(const relation::Relation& rel,
                          const std::string& path, std::string* error);
RelationSnapshotResult LoadRelationSnapshot(const std::string& path);

bool SaveDatabaseSnapshot(const sql::Database& db, const std::string& path,
                          std::string* error);
/// Adds the snapshot's relations and FDs into `db` (normally empty;
/// duplicate table names fail). On failure `*db` may hold a partial load,
/// matching sql::LoadCatalog's semantics.
bool LoadDatabaseSnapshot(const std::string& path, sql::Database* db,
                          std::string* error);

/// Checkpoints a monitor (calls SchemaMonitor::Checkpoint()).
bool SaveMonitorCheckpoint(const fd::SchemaMonitor& monitor,
                           const std::string& path, std::string* error);
/// Saves an explicit checkpoint — for drivers that annotate it (e.g. the
/// CLI filling MonitorCheckpoint::stream_batch_hint) before persisting.
bool SaveMonitorCheckpoint(const fd::MonitorCheckpoint& ckpt,
                           const std::string& path, std::string* error);
CheckpointResult LoadMonitorCheckpoint(const std::string& path);

}  // namespace fdevolve::storage
