// FDEV1 — versioned binary columnar snapshots.
//
// CSV persistence re-parses and re-dictionary-encodes the whole stream on
// every restart; snapshots instead serialize the *encoded* layer directly
// (per-column dictionary + dense codes + row watermark, no per-cell Value
// boxing), in the spirit of DuckDB's persisted column segments and
// Hyrise's binary table export. Four payload kinds share one envelope:
//
//   * Relation          — one dictionary-encoded relation;
//   * Database catalog  — named relations + declared FDs;
//   * Monitor checkpoint — a SchemaMonitor's complete resumable state
//     (relation, registered FDs, accepted repairs, per-FD maintained
//     counters, drift log, interval position), so a monitoring process can
//     stop and resume mid-stream without replaying it;
//   * Server state      — a server::Service's durable state: the whole
//     catalog plus one relation-free MonitorState per monitored table
//     (the relations live in the catalog section; embedding a copy per
//     monitor would double the file);
//   * Sampled monitor checkpoint — a SampledSchemaMonitor's resumable
//     state: the monitor-checkpoint payload plus its reservoir (slots and
//     raw generator state), so a resumed sampled monitor replays the
//     identical remaining estimate sequence.
//
// File layout (all integers little-endian, see util/binary_io.h):
//
//   offset 0: magic "FDEV"            (4 bytes)
//             format version u32     (currently 3; v1/v2 files still load)
//             payload kind u32       (1 = relation, 2 = database,
//                                     3 = monitor checkpoint,
//                                     4 = server state,
//                                     5 = sampled monitor checkpoint)
//             payload bytes
//   trailer:  FNV-1a u64 over everything before the trailer
//
// Version history:
//
//   v1 — append-only relations; drift events carry no kind.
//   v2 — each relation payload ends with its tombstone deletion log (a
//        u32 array of dead physical row ids in deletion order; empty for
//        all-live relations), and each drift-log entry carries a kind
//        byte (0 = violated, 1 = recovered). A v1 file therefore loads
//        as an all-live relation whose drift events default to violated
//        — exactly what v1 writers could express.
//   v3 — each drift-log entry additionally carries an approx byte and
//        four interval doubles (confidence lo/hi, goodness lo/hi; see
//        fd::DriftEvent — all-default for exact events), the server-state
//        payload ends with a sampled-monitor section (count + per-entry
//        table name, monitor state, reservoir state; empty when no
//        sampled monitors exist), and the new kind 5 serializes a
//        standalone sampled monitor checkpoint. v1/v2 files load with
//        exact-event defaults and an empty sampled section — exactly what
//        their writers could express.
//
// Integrity policy: loads verify size, magic, version, kind, and checksum
// before parsing, then parse with bounds-checked reads and validate every
// structural invariant (code ranges, null counts, dictionary uniqueness,
// deletion-log bounds, schema/FD consistency, measure agreement). A
// truncated or bit-flipped file fails with a clean error — never a crash,
// never a silently wrong object. Version policy: the u32 after the magic
// is bumped on any layout change; readers accept every version they know
// how to parse (currently 1 and 2) and reject the rest (no silent
// best-effort parsing of future formats). Writers always emit the
// current version.
//
// Bit-identity contract: a loaded snapshot reproduces the encoded state
// exactly — same dictionary order, same codes, same watermark, same
// tombstone bitmap (the deletion log is replayed through DeleteRow) — so
// every downstream computation (group ids, distinct counts, measure
// doubles, drift flags) is bit-identical to the evaluator state that
// wrote it. The differential fuzz suite and bench_snapshot gate this.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fd/sampled_monitor.h"
#include "fd/schema_monitor.h"
#include "relation/relation.h"
#include "sql/database.h"

namespace fdevolve::storage {

/// Format version written by this build. Readers accept every version in
/// [kMinFormatVersion, kFormatVersion] (see the version history above).
inline constexpr uint32_t kFormatVersion = 3;
inline constexpr uint32_t kMinFormatVersion = 1;

/// Result of loading a relation snapshot (mirrors relation::CsvResult).
struct RelationSnapshotResult {
  std::optional<relation::Relation> relation;
  std::string error;

  /// True when the input is not an FDEV snapshot at all (missing magic /
  /// shorter than the envelope) — as opposed to a corrupt or mismatched
  /// snapshot. Lets callers that accept several formats fall back to
  /// another parser without matching on error text.
  bool not_a_snapshot = false;

  bool ok() const { return relation.has_value(); }
};

/// Result of loading a monitor checkpoint.
struct CheckpointResult {
  std::optional<fd::MonitorCheckpoint> checkpoint;
  std::string error;

  bool ok() const { return checkpoint.has_value(); }
};

/// Result of loading a sampled monitor checkpoint (kind 5).
struct SampledCheckpointResult {
  std::optional<fd::SampledMonitorCheckpoint> checkpoint;
  std::string error;

  bool ok() const { return checkpoint.has_value(); }
};

/// One monitored table's relation-free monitor state, keyed by table name
/// into the catalog persisted alongside it (see the server-state kind).
struct ServerMonitorState {
  std::string table;
  fd::MonitorState state;
};

/// Sampled counterpart: one table's sampled monitor state (monitor state
/// + reservoir), persisted in the server payload's v3 sampled section.
struct ServerSampledMonitorState {
  std::string table;
  fd::SampledMonitorState state;
};

// --- Buffer-level API (the file functions are thin wrappers; tests use
// --- these to corrupt bytes in memory).

/// Serializes to a complete snapshot byte string (envelope + checksum).
std::string SerializeRelation(const relation::Relation& rel);
std::string SerializeDatabase(const sql::Database& db);
std::string SerializeCheckpoint(const fd::MonitorCheckpoint& ckpt);
std::string SerializeSampledCheckpoint(const fd::SampledMonitorCheckpoint& ckpt);

std::string SerializeServerState(
    const sql::Database& db, const std::vector<ServerMonitorState>& monitors,
    const std::vector<ServerSampledMonitorState>& sampled = {});

/// Parses a complete snapshot byte string of the matching kind.
RelationSnapshotResult DeserializeRelation(std::string_view bytes);
bool DeserializeDatabase(std::string_view bytes, sql::Database* db,
                         std::string* error);
CheckpointResult DeserializeCheckpoint(std::string_view bytes);
SampledCheckpointResult DeserializeSampledCheckpoint(std::string_view bytes);

/// Adds the snapshot's catalog into `db` (normally empty) and fills
/// `monitors` (and, when non-null, `sampled`) with the per-table monitor
/// states. Structural validation: every monitor state must reference a
/// table present in the snapshot and its watermark must equal that
/// table's tuple count (the pairing guarantee SchemaMonitor's restore
/// constructor relies on); sampled states additionally carry their
/// reservoir, validated on restore by ReservoirSampler. A v3 file with a
/// sampled section fails the load when `sampled` is null rather than
/// silently dropping monitors. On failure `*db` may hold a partial load.
bool DeserializeServerState(std::string_view bytes, sql::Database* db,
                            std::vector<ServerMonitorState>* monitors,
                            std::string* error,
                            std::vector<ServerSampledMonitorState>* sampled =
                                nullptr);

// --- File-level API. Writers flush before reporting success so
// --- flush-time I/O errors (e.g. disk full) are not swallowed.

bool SaveRelationSnapshot(const relation::Relation& rel,
                          const std::string& path, std::string* error);
RelationSnapshotResult LoadRelationSnapshot(const std::string& path);

bool SaveDatabaseSnapshot(const sql::Database& db, const std::string& path,
                          std::string* error);
/// Adds the snapshot's relations and FDs into `db` (normally empty;
/// duplicate table names fail). On failure `*db` may hold a partial load,
/// matching sql::LoadCatalog's semantics.
bool LoadDatabaseSnapshot(const std::string& path, sql::Database* db,
                          std::string* error);

/// Checkpoints a monitor (calls SchemaMonitor::Checkpoint()).
bool SaveMonitorCheckpoint(const fd::SchemaMonitor& monitor,
                           const std::string& path, std::string* error);
/// Saves an explicit checkpoint — for drivers that annotate it (e.g. the
/// CLI filling MonitorCheckpoint::stream_batch_hint) before persisting.
bool SaveMonitorCheckpoint(const fd::MonitorCheckpoint& ckpt,
                           const std::string& path, std::string* error);
CheckpointResult LoadMonitorCheckpoint(const std::string& path);

/// Sampled-monitor counterparts (kind 5).
bool SaveSampledCheckpoint(const fd::SampledMonitorCheckpoint& ckpt,
                           const std::string& path, std::string* error);
SampledCheckpointResult LoadSampledCheckpoint(const std::string& path);

bool SaveServerSnapshot(const sql::Database& db,
                        const std::vector<ServerMonitorState>& monitors,
                        const std::string& path, std::string* error,
                        const std::vector<ServerSampledMonitorState>& sampled =
                            {});
bool LoadServerSnapshot(const std::string& path, sql::Database* db,
                        std::vector<ServerMonitorState>* monitors,
                        std::string* error,
                        std::vector<ServerSampledMonitorState>* sampled =
                            nullptr);

}  // namespace fdevolve::storage
