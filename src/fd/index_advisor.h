// Index recommendations from repaired FDs — the §6.3 claim that the
// goodness criterion "supports indexing and query optimization": when a
// repair reaches goodness 0, the FD is invertible (a bijection between
// antecedent and consequent clusters), so an index on the antecedent also
// serves lookups by the consequent.
#pragma once

#include <string>
#include <vector>

#include "fd/measures.h"
#include "fd/repair_search.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// One index suggestion derived from an exact FD.
struct IndexRecommendation {
  relation::AttrSet key;      ///< columns of the suggested index (X)
  relation::AttrSet covers;   ///< consequent it serves (Y)
  bool invertible = false;    ///< goodness == 0: Y-side lookups too
  /// Distinct keys / tuples — 1.0 means a unique index.
  double selectivity = 0.0;
  std::string rationale;

  std::string ToString(const relation::Schema& schema) const;
};

/// Derives a recommendation for one exact FD; returns invertible == true
/// iff the goodness is 0. Throws std::invalid_argument if the FD is not
/// exact on the instance (indexes from violated FDs would lie).
IndexRecommendation AdviseIndex(const relation::Relation& rel, const Fd& fd);

/// Collects recommendations from the accepted repairs of a search result,
/// invertible ones first (the §6.3 preference).
std::vector<IndexRecommendation> AdviseFromRepairs(
    const relation::Relation& rel, const RepairResult& result);

}  // namespace fdevolve::fd
