#include "fd/index_advisor.h"

#include <algorithm>
#include <sstream>

namespace fdevolve::fd {

std::string IndexRecommendation::ToString(
    const relation::Schema& schema) const {
  std::ostringstream os;
  os << "INDEX ON " << schema.Describe(key);
  if (invertible) {
    os << " (invertible: also serves lookups by " << schema.Describe(covers)
       << ")";
  } else {
    os << " (serves " << schema.Describe(covers) << " lookups)";
  }
  return os.str();
}

IndexRecommendation AdviseIndex(const relation::Relation& rel, const Fd& fd) {
  FdMeasures m = ComputeMeasures(rel, fd);
  if (!m.exact) {
    throw std::invalid_argument(
        "AdviseIndex: FD is violated on the instance; repair it first");
  }
  IndexRecommendation rec;
  rec.key = fd.lhs();
  rec.covers = fd.rhs();
  rec.invertible = m.goodness == 0;
  rec.selectivity =
      rel.tuple_count() == 0
          ? 0.0
          : static_cast<double>(m.distinct_x) /
                static_cast<double>(rel.tuple_count());
  std::ostringstream why;
  why << "exact FD with goodness " << m.goodness << "; " << m.distinct_x
      << " distinct keys over " << rel.tuple_count() << " tuples";
  rec.rationale = why.str();
  return rec;
}

std::vector<IndexRecommendation> AdviseFromRepairs(
    const relation::Relation& rel, const RepairResult& result) {
  std::vector<IndexRecommendation> out;
  if (result.already_exact) {
    out.push_back(AdviseIndex(rel, result.original));
    return out;
  }
  for (const auto& r : result.repairs) {
    out.push_back(AdviseIndex(rel, r.repaired));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const IndexRecommendation& a,
                      const IndexRecommendation& b) {
                     return a.invertible > b.invertible;
                   });
  return out;
}

}  // namespace fdevolve::fd
