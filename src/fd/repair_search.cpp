#include "fd/repair_search.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <unordered_set>

#include "fd/cost_model.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fdevolve::fd {
namespace {

/// Frontier node: a candidate antecedent extension awaiting expansion.
struct Node {
  relation::AttrSet added;
  double confidence = 0.0;
  uint64_t abs_goodness = 0;
  int64_t goodness = 0;
  size_t distinct_x = 0;
  size_t distinct_xy = 0;
  size_t distinct_y = 0;
  uint64_t seq = 0;  ///< insertion order, final determinism tie-break
};

/// Priority: fewer added attributes first (minimality), then the §4.2 rank
/// (confidence descending, |goodness| ascending), then insertion order.
struct NodeWorse {
  bool operator()(const Node& a, const Node& b) const {
    int ca = a.added.Count();
    int cb = b.added.Count();
    if (ca != cb) return ca > cb;
    if (a.confidence != b.confidence) return a.confidence < b.confidence;
    if (a.abs_goodness != b.abs_goodness) return a.abs_goodness > b.abs_goodness;
    return a.seq > b.seq;
  }
};

FdMeasures MeasuresOf(const Node& n) {
  FdMeasures m;
  m.distinct_x = n.distinct_x;
  m.distinct_xy = n.distinct_xy;
  m.distinct_y = n.distinct_y;
  m.confidence = n.confidence;
  m.goodness = n.goodness;
  m.exact = n.distinct_x == n.distinct_xy;
  return m;
}

}  // namespace

const char* ToString(StopReason reason) {
  switch (reason) {
    case StopReason::kExhausted:
      return "exhausted";
    case StopReason::kMaxEvaluations:
      return "max-evaluations";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kTopK:
      return "top-k";
  }
  return "unknown";
}

RepairResult Extend(const relation::Relation& rel, const Fd& fd,
                    const RepairOptions& opts) {
  relation::RequireNoTombstones(rel, "fd::Extend");
  util::Timer timer;
  RepairResult result;
  result.original = fd;

  const double target =
      opts.target_confidence > 1.0 ? 1.0 : opts.target_confidence;
  auto satisfies_target = [target](size_t x, size_t xy, double confidence) {
    // target == 1 means exactness, decided on integers (no FP tolerance).
    return target >= 1.0 ? x == xy : confidence >= target;
  };

  query::DistinctEvaluator eval(rel, opts.threads);
  result.original_measures = ComputeMeasures(eval, fd);
  if (satisfies_target(result.original_measures.distinct_x,
                       result.original_measures.distinct_xy,
                       result.original_measures.confidence)) {
    result.already_exact = true;
    result.stats.elapsed_ms = timer.ElapsedMs();
    return result;
  }

  // Warm the evaluator with the groupings every candidate refines from:
  // C_X for the |π_XA| counts and C_XY for the |π_XAY| counts. With both
  // cached, evaluating a candidate is two count-only refinement passes.
  eval.GroupFor(fd.lhs());
  eval.GroupFor(fd.AllAttrs());

  const relation::AttrSet pool = CandidatePool(rel, fd, opts.pool);
  const int max_depth =
      opts.max_added_attrs > 0
          ? std::min(opts.max_added_attrs, pool.Count())
          : pool.Count();

  // Planner state. The cardinality bound for candidate C = base∪{a} covers
  // every superset S ⊇ C within the depth limit:
  //   |π_{X∪S}| ≤ min(n_live, |π_{X∪base}| · slots(a) · products[r])
  // with r = max_depth − |C|, where products[r] multiplies the r largest
  // pool slot counts (saturating, so never unsound). |π_{X∪S∪Y}| ≥
  // |π_{X∪base∪Y}| by monotonicity, so when the bound cannot reach the
  // target no superset of C is acceptable and the whole branch is skipped
  // without evaluation. Pruning never changes answers: an acceptable set
  // has no prunable subset (the bound would contradict its acceptability),
  // so its evaluation chain survives, and surviving candidates keep their
  // relative seq order — the repair list stays bit-identical to the
  // unplanned search.
  std::optional<CostModel> model;
  std::vector<size_t> reach_products;
  if (opts.use_planner || opts.budget_cost > 0.0) {
    model.emplace(rel);
    reach_products = model->TopSlotProducts(pool, max_depth);
  }
  const bool budgeted =
      model && (opts.budget_ms > 0.0 || opts.budget_cost > 0.0);

  std::priority_queue<Node, std::vector<Node>, NodeWorse> frontier;
  std::unordered_set<relation::AttrSet, relation::AttrSetHash> visited;
  std::vector<relation::AttrSet> found_sets;
  uint64_t seq = 0;

  // Candidate evaluation is batched: one batch is the seed phase or one
  // node expansion — exactly the set of siblings the sequential loop would
  // evaluate back to back. With exec_width > 1 the batch fans out across
  // the shared pool; every worker counts its candidate slice against its
  // own scratch while sharing the batch's two base groupings read-only
  // (the evaluator itself is single-owner and is never touched inside the
  // parallel region). Results are folded back in pool order with the same
  // budget, dedup, and seq-number semantics as the sequential loop, so the
  // frontier — and therefore the ranked output — is bit-identical for
  // every thread count.
  const int exec_width = util::ResolveThreads(opts.threads);
  const size_t y_count = result.original_measures.distinct_y;
  std::vector<query::RefineScratch> worker_scratch;
  std::vector<relation::AttrSet> batch_sets;
  std::vector<int> batch_attrs;
  std::vector<FdMeasures> batch_measures;

  // Evaluates the candidates `base_added ∪ {a}` for each `a` of `attrs`
  // in order; `base_x`/`base_xy` are the parent's |π_XU| and |π_XUY|
  // counts, which seed the planner's bounds. Returns false when a budget
  // stopped the batch.
  std::vector<int> budget_order;
  auto evaluate_batch = [&](const relation::AttrSet& base_added,
                            const std::vector<int>& attrs, size_t base_x,
                            size_t base_xy) -> bool {
    batch_sets.clear();
    batch_attrs.clear();
    bool budget_hit = false;
    const int depth = base_added.Count() + 1;
    const size_t reach =
        model && depth <= max_depth
            ? reach_products[static_cast<size_t>(max_depth - depth)]
            : 0;
    const std::vector<int>* order = &attrs;
    if (budgeted) {
      // A budget is spent cheap/high-signal-first: reorder the batch by
      // reachable-cardinality bound descending (closer to |π_XUY| = more
      // confidence available), modeled cost ascending, then attribute
      // index. Reordering shifts seq tie-breaks, so budgeted runs trade
      // the bit-identity guarantee for better use of the budget.
      budget_order = attrs;
      std::stable_sort(
          budget_order.begin(), budget_order.end(), [&](int a, int b) {
            const size_t ba = model->ReachableDistinctBound(base_x, a, reach);
            const size_t bb = model->ReachableDistinctBound(base_x, b, reach);
            if (ba != bb) return ba > bb;
            const double ca = model->CandidateCostMs(a);
            const double cb = model->CandidateCostMs(b);
            if (ca != cb) return ca < cb;
            return a < b;
          });
      order = &budget_order;
    }
    for (int a : *order) {
      // Budget checks before dedup, per candidate — the order the
      // sequential evaluate-and-push used.
      if (opts.max_evaluations != 0 &&
          result.stats.candidates_evaluated + batch_sets.size() >=
              opts.max_evaluations) {
        result.stats.stop_reason = StopReason::kMaxEvaluations;
        budget_hit = true;
        break;
      }
      if (opts.budget_ms > 0.0 && timer.ElapsedMs() >= opts.budget_ms) {
        result.stats.stop_reason = StopReason::kBudget;
        budget_hit = true;
        break;
      }
      const double cost = model ? model->CandidateCostMs(a) : 0.0;
      if (opts.budget_cost > 0.0 &&
          result.stats.planned_cost_ms + cost > opts.budget_cost) {
        result.stats.stop_reason = StopReason::kBudget;
        budget_hit = true;
        break;
      }
      relation::AttrSet added = base_added.With(a);
      if (!visited.insert(added).second) continue;  // duplicate set
      if (opts.use_planner && model) {
        const size_t ub = model->ReachableDistinctBound(base_x, a, reach);
        const bool reachable =
            target >= 1.0 ? ub >= base_xy
                          : static_cast<double>(ub) /
                                    static_cast<double>(base_xy) >=
                                target;
        if (!reachable) {  // no acceptable set below this branch
          ++result.stats.pruned_by_bound;
          continue;
        }
      }
      result.stats.planned_cost_ms += cost;
      batch_sets.push_back(std::move(added));
      batch_attrs.push_back(a);
    }

    batch_measures.assign(batch_sets.size(), FdMeasures{});
    if (exec_width > 1 && batch_sets.size() > 1) {
      // Materialize the shared bases once (both are one refinement off a
      // cached grouping); cache references stay valid while workers read.
      const relation::AttrSet base_x = fd.lhs().Union(base_added);
      const query::Grouping& gx = eval.GroupFor(base_x);
      const query::Grouping& gxy = eval.GroupFor(base_x.Union(fd.rhs()));
      // One scratch per chunk actually used — ParallelFor caps the width
      // at the batch size, so an absurd threads value must not allocate
      // past it.
      const size_t slots = std::min<size_t>(
          static_cast<size_t>(exec_width), batch_sets.size());
      if (worker_scratch.size() < slots) worker_scratch.resize(slots);
      util::ThreadPool::Global().ParallelFor(
          batch_sets.size(), 1, exec_width,
          [&](int chunk, size_t lo, size_t hi) {
            query::RefineScratch& ws =
                worker_scratch[static_cast<size_t>(chunk)];
            for (size_t i = lo; i < hi; ++i) {
              relation::AttrSet one;
              one.Add(batch_attrs[i]);
              const size_t x = query::RefineCountBy(rel, gx, one, ws);
              const size_t xy = query::RefineCountBy(rel, gxy, one, ws);
              batch_measures[i] = MeasuresFromCounts(x, xy, y_count);
            }
          });
    } else {
      for (size_t i = 0; i < batch_sets.size(); ++i) {
        batch_measures[i] =
            ComputeMeasures(eval, fd.WithAntecedent(batch_sets[i]));
      }
    }

    for (size_t i = 0; i < batch_sets.size(); ++i) {
      const FdMeasures& m = batch_measures[i];
      ++result.stats.candidates_evaluated;
      Node n;
      n.added = batch_sets[i];
      n.confidence = m.confidence;
      n.abs_goodness = m.abs_goodness();
      n.goodness = m.goodness;
      n.distinct_x = m.distinct_x;
      n.distinct_xy = m.distinct_xy;
      n.distinct_y = m.distinct_y;
      n.seq = seq++;
      frontier.push(std::move(n));
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak, frontier.size());
    }
    return !budget_hit;
  };

  // Seed the frontier with every single-attribute extension (Algorithm 3
  // line 1: ExtendByOne on the original FD). A budget hit here still falls
  // through to the main loop: already-evaluated exact seeds are accepted
  // before the first expansion attempt stops the search.
  evaluate_batch(relation::AttrSet(), pool.ToVector(),
                 result.original_measures.distinct_x,
                 result.original_measures.distinct_xy);

  const bool has_threshold = opts.goodness_threshold >= 0;
  const auto threshold = static_cast<uint64_t>(
      has_threshold ? opts.goodness_threshold : 0);
  bool have_within_threshold = false;

  auto done = [&]() {
    switch (opts.mode) {
      case SearchMode::kFirstRepair:
        // With a goodness threshold, a repair outside it is only a
        // fallback; keep searching for one within.
        return has_threshold ? have_within_threshold : !result.repairs.empty();
      case SearchMode::kTopK:
        // top_k == 0 means "unlimited" (same as kAllRepairs); without this
        // the search would stop before evaluating anything and report an
        // exhausted, repair-free result.
        return opts.top_k != 0 && result.repairs.size() >= opts.top_k;
      case SearchMode::kAllRepairs:
        return false;
    }
    return false;
  };

  while (!frontier.empty() && !done()) {
    Node node = frontier.top();
    frontier.pop();

    // Supersets of an already-found repair are exact but not minimal.
    bool superset = false;
    for (const auto& found : found_sets) {
      if (found.SubsetOf(node.added)) {
        superset = true;
        break;
      }
    }
    if (superset) {
      ++result.stats.pruned_supersets;
      continue;
    }

    if (satisfies_target(node.distinct_x, node.distinct_xy,
                         node.confidence)) {  // accepted: a minimal repair
      Repair r;
      r.added = node.added;
      r.repaired = fd.WithAntecedent(node.added);
      r.measures = MeasuresOf(node);
      r.within_goodness_threshold =
          !has_threshold || r.measures.abs_goodness() <= threshold;
      have_within_threshold |= r.within_goodness_threshold;
      found_sets.push_back(node.added);
      result.repairs.push_back(std::move(r));
      continue;  // do not expand an exact node (Algorithm 3 line 5-6)
    }

    ++result.stats.nodes_expanded;
    if (node.added.Count() >= max_depth) continue;

    if (!evaluate_batch(node.added, pool.Minus(node.added).ToVector(),
                        node.distinct_x, node.distinct_xy)) {
      break;
    }
  }

  if (result.stats.stop_reason == StopReason::kExhausted) {
    if (opts.max_evaluations != 0 &&
        result.stats.candidates_evaluated >= opts.max_evaluations) {
      result.stats.stop_reason = StopReason::kMaxEvaluations;
    } else if (!frontier.empty()) {
      // The loop left work behind, so done() stopped it: the requested
      // repair count (kFirstRepair / kTopK) was reached.
      result.stats.stop_reason = StopReason::kTopK;
    }
  }

  // With a goodness threshold, order within-threshold repairs first,
  // preserving rank order inside each class.
  if (has_threshold) {
    std::stable_sort(result.repairs.begin(), result.repairs.end(),
                     [](const Repair& a, const Repair& b) {
                       return a.within_goodness_threshold >
                              b.within_goodness_threshold;
                     });
  }

  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

FindRepairsOutcome FindFdRepairs(const relation::Relation& rel,
                                 const std::vector<Fd>& fds,
                                 const RepairOptions& opts,
                                 const OrderingOptions& ordering) {
  FindRepairsOutcome outcome;
  outcome.order = OrderFds(rel, fds, ordering);
  outcome.results.reserve(outcome.order.size());
  for (const OrderedFd& of : outcome.order) {
    outcome.results.push_back(Extend(rel, of.fd, opts));
  }
  return outcome;
}

}  // namespace fdevolve::fd
