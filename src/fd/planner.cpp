#include "fd/planner.h"

#include <algorithm>
#include <sstream>

#include "fd/candidate_ranking.h"
#include "query/distinct.h"

namespace fdevolve::fd {
namespace {

std::string Round3(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

RepairPlan PlanRepair(const relation::Relation& rel, const Fd& fd,
                      const RepairOptions& opts) {
  RepairPlan plan;
  plan.fd = fd;
  plan.live_rows = rel.live_count();
  plan.target_confidence =
      opts.target_confidence > 1.0 ? 1.0 : opts.target_confidence;
  plan.use_planner = opts.use_planner;
  plan.budget_ms = opts.budget_ms;
  plan.budget_cost = opts.budget_cost;

  query::DistinctEvaluator eval(rel, 1);
  plan.original = ComputeMeasures(eval, fd);
  const size_t xy = plan.original.distinct_xy;
  plan.already_exact =
      plan.target_confidence >= 1.0
          ? plan.original.distinct_x == xy
          : plan.original.confidence >= plan.target_confidence;

  const relation::AttrSet pool = CandidatePool(rel, fd, opts.pool);
  plan.pool_size = pool.Count();
  plan.max_depth = opts.max_added_attrs > 0
                       ? std::min(opts.max_added_attrs, pool.Count())
                       : pool.Count();
  if (plan.already_exact || plan.pool_size == 0) return plan;

  const CostModel model(rel);
  const auto products = model.TopSlotProducts(pool, plan.max_depth - 1);
  const size_t reach_product =
      products[static_cast<size_t>(plan.max_depth - 1)];

  for (int a : pool.ToVector()) {
    PlannedCandidate c;
    c.attr = a;
    const query::ColumnStats& s = model.stats(a);
    c.ndv = s.distinct_count;
    c.group_slots = s.group_slots();
    c.max_group_rows = s.max_group_rows;
    c.null_fraction = s.null_fraction;
    c.est_cost_ms = model.CandidateCostMs(a);
    c.distinct_bound =
        model.ReachableDistinctBound(plan.original.distinct_x, a, 1);
    c.reachable_bound =
        model.ReachableDistinctBound(plan.original.distinct_x, a,
                                     reach_product);
    c.best_confidence =
        xy == 0 ? 1.0
                : std::min(1.0, static_cast<double>(c.reachable_bound) /
                                    static_cast<double>(xy));
    // Mirror of the executing search's prune test: exactness is decided on
    // integers, approximate targets on the correctly-rounded ratio.
    c.prunable = plan.target_confidence >= 1.0
                     ? c.reachable_bound < xy
                     : static_cast<double>(c.reachable_bound) /
                               static_cast<double>(xy) <
                           plan.target_confidence;
    if (!c.prunable) plan.planned_cost_ms += c.est_cost_ms;
    plan.candidates.push_back(c);
  }

  // Budget-spending order: high-signal first, cheap first among ties, then
  // attribute index for full determinism. Prunable branches sink.
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [](const PlannedCandidate& a, const PlannedCandidate& b) {
                     if (a.prunable != b.prunable) return !a.prunable;
                     if (a.best_confidence != b.best_confidence) {
                       return a.best_confidence > b.best_confidence;
                     }
                     if (a.est_cost_ms != b.est_cost_ms) {
                       return a.est_cost_ms < b.est_cost_ms;
                     }
                     return a.attr < b.attr;
                   });
  return plan;
}

std::string DescribePlan(const RepairPlan& plan,
                         const relation::Schema& schema) {
  std::ostringstream os;
  os << "repair plan for " << plan.fd.ToString(schema) << "\n";
  os << "  instance: " << plan.live_rows << " live rows, |pi_X|="
     << plan.original.distinct_x << ", |pi_XY|=" << plan.original.distinct_xy
     << ", confidence " << Round3(plan.original.confidence) << ", goodness "
     << plan.original.goodness << "\n";
  os << "  target confidence " << Round3(plan.target_confidence)
     << "; budget ";
  if (plan.budget_ms > 0.0 || plan.budget_cost > 0.0) {
    bool first = true;
    if (plan.budget_ms > 0.0) {
      os << Round3(plan.budget_ms) << " ms wall";
      first = false;
    }
    if (plan.budget_cost > 0.0) {
      os << (first ? "" : ", ") << Round3(plan.budget_cost) << " ms modeled";
    }
  } else {
    os << "none";
  }
  os << "; planner " << (plan.use_planner ? "on" : "off") << "\n";
  if (plan.already_exact) {
    os << "  already meets target; no search needed\n";
    return os.str();
  }
  size_t pruned = 0;
  for (const auto& c : plan.candidates) pruned += c.prunable ? 1u : 0u;
  os << "  search: pool " << plan.pool_size << " candidates, max depth "
     << plan.max_depth << ", seed cost " << Round3(plan.planned_cost_ms)
     << " ms over " << (plan.candidates.size() - pruned) << " candidates ("
     << pruned << " pruned by bound)\n";
  os << "  seed order (signal desc, cost asc):\n";
  int i = 1;
  for (const auto& c : plan.candidates) {
    os << "    " << i++ << ". +" << schema.attr(c.attr).name << " ndv="
       << c.ndv << " slots=" << c.group_slots << " maxgroup="
       << c.max_group_rows;
    if (c.null_fraction > 0.0) os << " nulls=" << Round3(c.null_fraction);
    os << " |pi_XA|<=" << c.distinct_bound << " reach<=" << c.reachable_bound
       << " best-conf=" << Round3(c.best_confidence) << " cost="
       << Round3(c.est_cost_ms) << "ms";
    if (c.prunable) {
      if (plan.target_confidence >= 1.0) {
        os << " PRUNED (reachable " << c.reachable_bound << " < |pi_XY| "
           << plan.original.distinct_xy << ")";
      } else {
        os << " PRUNED (best-conf " << Round3(c.best_confidence)
           << " < target)";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fdevolve::fd
