#include "fd/fd.h"

#include <stdexcept>

#include "util/strings.h"

namespace fdevolve::fd {

Fd::Fd(relation::AttrSet lhs, relation::AttrSet rhs, std::string label)
    : lhs_(lhs), rhs_(rhs), label_(std::move(label)) {
  if (rhs_.Empty()) {
    throw std::invalid_argument("Fd: empty consequent");
  }
  if (lhs_.Intersects(rhs_)) {
    throw std::invalid_argument("Fd: antecedent and consequent overlap");
  }
}

Fd Fd::WithAntecedent(int attr) const {
  Fd f = *this;
  if (f.rhs_.Contains(attr)) {
    throw std::invalid_argument("Fd::WithAntecedent: attr is in consequent");
  }
  f.lhs_.Add(attr);
  return f;
}

Fd Fd::WithAntecedent(const relation::AttrSet& attrs) const {
  Fd f = *this;
  if (f.rhs_.Intersects(attrs)) {
    throw std::invalid_argument("Fd::WithAntecedent: attrs overlap consequent");
  }
  f.lhs_ = f.lhs_.Union(attrs);
  return f;
}

std::vector<Fd> Fd::Decompose() const {
  std::vector<Fd> out;
  for (int a : rhs_.ToVector()) {
    relation::AttrSet y;
    y.Add(a);
    out.emplace_back(lhs_, y, label_);
  }
  return out;
}

Fd Fd::Parse(const std::string& text, const relation::Schema& schema,
             std::string label) {
  auto pos = text.find("->");
  if (pos == std::string::npos) {
    throw std::invalid_argument("Fd::Parse: missing '->' in '" + text + "'");
  }
  auto lhs_names = util::SplitTrimmed(text.substr(0, pos), ',');
  auto rhs_names = util::SplitTrimmed(text.substr(pos + 2), ',');
  if (rhs_names.empty()) {
    throw std::invalid_argument("Fd::Parse: empty consequent in '" + text + "'");
  }
  return Fd(schema.Resolve(lhs_names), schema.Resolve(rhs_names),
            std::move(label));
}

std::string Fd::ToString(const relation::Schema& schema) const {
  return schema.Describe(lhs_) + " -> " + schema.Describe(rhs_);
}

}  // namespace fdevolve::fd
