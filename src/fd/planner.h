// Plan phase of the repair search: what `EXPLAIN REPAIR` renders and what
// a budgeted `Extend` spends first.
//
// `PlanRepair` prices every seed candidate (one-attribute antecedent
// extension) with the `CostModel`, computes its sound cardinality bounds,
// and orders the candidates the way a budgeted search spends them:
// high-signal-first, cheap-first among ties. Planning only *estimates* —
// no candidate is evaluated; the plan's bounds mark which branches the
// executing search will prune before evaluation. With no budget the
// executing search keeps the fixed-rank frontier order, so the plan is a
// prediction of work, never a change of answers.
#pragma once

#include <string>
#include <vector>

#include "fd/cost_model.h"
#include "fd/fd.h"
#include "fd/measures.h"
#include "fd/repair_search.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace fdevolve::fd {

/// One seed candidate X∪{attr} -> Y as the planner prices it.
struct PlannedCandidate {
  int attr = -1;             ///< attribute index added to the antecedent
  size_t ndv = 0;            ///< live distinct non-NULL values of the column
  size_t group_slots = 0;    ///< ndv + NULL slot: the max grouping multiplier
  size_t max_group_rows = 0; ///< heaviest live group under this column
  double null_fraction = 0.0;
  double est_cost_ms = 0.0;  ///< CostModel::CandidateCostMs estimate
  /// Upper bound on |π_{X∪{attr}}| (one extension step).
  size_t distinct_bound = 0;
  /// Upper bound on |π_XS| over every superset S ∋ attr within the depth
  /// limit — what the whole branch below this candidate can reach.
  size_t reachable_bound = 0;
  /// Best reachable confidence of the branch: min(1, reachable_bound/|π_XY|).
  double best_confidence = 0.0;
  /// True when best_confidence cannot meet the target: the executing
  /// search skips this branch without evaluating it.
  bool prunable = false;
};

/// The plan for one Extend run.
struct RepairPlan {
  Fd fd;
  FdMeasures original;        ///< measures of the FD as declared
  bool already_exact = false; ///< target already met; search would not run
  size_t live_rows = 0;
  int pool_size = 0;          ///< candidate attributes after pool filtering
  int max_depth = 0;          ///< resolved max antecedent additions
  double target_confidence = 1.0;
  bool use_planner = true;
  double budget_ms = 0.0;
  double budget_cost = 0.0;
  /// Modeled cost of evaluating every non-prunable seed candidate once.
  double planned_cost_ms = 0.0;
  /// Seed candidates in budget-spending order (signal desc, cost asc).
  std::vector<PlannedCandidate> candidates;
};

/// Builds the plan without evaluating any candidate. Works on tombstoned
/// relations (stats and measures are live-row exact).
RepairPlan PlanRepair(const relation::Relation& rel, const Fd& fd,
                      const RepairOptions& opts = {});

/// Renders the plan as readable multi-line text (the EXPLAIN output).
std::string DescribePlan(const RepairPlan& plan,
                         const relation::Schema& schema);

}  // namespace fdevolve::fd
