#include "fd/candidate_ranking.h"

#include <algorithm>

#include "query/column_stats.h"

namespace fdevolve::fd {

relation::AttrSet CandidatePool(const relation::Relation& rel, const Fd& fd,
                                const PoolOptions& opts) {
  relation::AttrSet pool = rel.schema().AllAttrs().Minus(fd.AllAttrs());
  if (opts.exclude_nulls) {
    pool = pool.Intersect(rel.NonNullAttrs());
  }
  if (opts.exclude_unique) {
    pool = pool.Minus(query::UniqueAttrs(rel));
  }
  if (!opts.restrict_to.Empty()) {
    pool = pool.Intersect(opts.restrict_to);
  }
  return pool;
}

std::vector<Candidate> ExtendByOne(query::DistinctEvaluator& eval,
                                   const Fd& fd,
                                   const relation::AttrSet& pool) {
  // Warm the shared bases: every candidate's counts refine C_X and C_XY.
  eval.GroupFor(fd.lhs());
  eval.GroupFor(fd.AllAttrs());
  std::vector<Candidate> out;
  out.reserve(static_cast<size_t>(pool.Count()));
  for (int a : pool.ToVector()) {
    Candidate c;
    c.attr = a;
    c.extended = fd.WithAntecedent(a);
    c.measures = ComputeMeasures(eval, c.extended);
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), Candidate::RankLess);
  return out;
}

std::vector<Candidate> ExtendByOne(query::DistinctEvaluator& eval,
                                   const Fd& fd, const PoolOptions& opts) {
  return ExtendByOne(eval, fd, CandidatePool(eval.rel(), fd, opts));
}

}  // namespace fdevolve::fd
