// Distinct-count and FD-measure estimation from a uniform row sample,
// with computed error intervals.
//
// The paper's measures are ratios of exact distinct counts; under a
// reservoir sample we only see m of the N live rows, and the estimation
// problem is the classic "distinct values from a random sample" one —
// known to be hard in the near-unique-key regime, where a plug-in ratio
// d_x/d_xy is catastrophically biased (a key column looks like a handful
// of repeated values at any sampling rate). The estimator here therefore
// leans on what a sample makes *certain* and bounds the rest:
//
//   * A sampled distinct count d is a certain LOWER bound on the
//     population count D (every sampled key exists).
//   * The Good–Turing singleton count f1 (keys seen exactly once) drives
//     the point estimate D^ = d + (N − m) · f1/m: the expected number of
//     unseen keys revealed per additional row is the unseen-mass estimate
//     f1/m. The UPPER bound widens the per-row discovery rate by a
//     z·sqrt(f1+1)/m slack (normal tail on the singleton count, +1 so a
//     zero-singleton sample keeps nonzero slack) and caps it at 1:
//     D_hi = d + (N − m) · min(1, (f1 + z·sqrt(f1+1)) / m),  z = 2.576.
//   * A sampled violation is certain: e = d_xy − d_x > 0 exhibits two
//     rows agreeing on X and differing on Y, which is a witness pair in
//     the full relation too. And the population excess E = D_xy − D_x can
//     never be smaller than the sampled excess e (each sampled XY-split
//     of an X-group exists in the population). Confidence bounds are
//     assembled from these structural facts plus the GT bounds:
//
//       c_lo = d_x / D^hi_xy            (c = D_x/D_xy >= d_x/D_xy when
//                                        D_x >= d_x, certain)
//       c_hi = 1                         when e == 0 (no sampled witness)
//       c_hi = D^hi_x / (D^hi_x + e)     when e > 0: c = D_x/(D_x + E)
//                                        <= D_x/(D_x + e), increasing in
//                                        D_x, so the GT cap bounds it
//
//     so a coverage failure requires a GT upper bound to miss — the one
//     controllable failure mode, which the statistical suite measures.
//   * Goodness g = D_x − D_y is bracketed by the same pieces:
//     [d_x − D^hi_y, D^hi_x − d_y] (lower bounds certain, uppers GT).
//
// Full-coverage collapse: when m == N the sample IS the live relation;
// every estimate routes through the exact integer counts and
// MeasuresFromCounts, intervals collapse to points, and approx == false.
// This is the hinge of the sample_rate=1.0 ≡ exact bit-identity gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fd/fd.h"
#include "fd/measures.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// One estimated distinct count with its interval. `lo` is certain
/// (sampled keys exist); `est`/`hi` are Good–Turing (see file comment).
struct CountEstimate {
  double est = 0.0;
  size_t lo = 0;
  double hi = 0.0;
};

/// Raw per-projection statistics of a sample: distinct keys and
/// singleton keys among the m sampled rows.
struct SampleProjectionStats {
  size_t distinct = 0;
  size_t singletons = 0;  ///< keys appearing exactly once (GT's f1)
};

/// FD measures estimated from a sample, plus their intervals. When
/// `approx` is false the sample covered every live row: `measures` is the
/// exact MeasuresFromCounts result and the interval fields keep their
/// defaults (they carry no information — the estimate is the truth).
struct SampledMeasures {
  FdMeasures measures;
  bool approx = false;
  double confidence_lo = 1.0;
  double confidence_hi = 1.0;
  double goodness_lo = 0.0;
  double goodness_hi = 0.0;
  /// Live sampled rows / live relation rows the estimate was made from.
  size_t sample_rows = 0;
  size_t live_rows = 0;
  /// Certain violation flag: a witness pair (same X, different XY) was
  /// sampled. Implies the FD is violated on the full relation; its
  /// absence implies nothing (the defining asymmetry of sampled drift).
  bool witnessed_violation = false;
};

/// Computes distinct/singleton counts of the sampled rows' projection
/// onto `attrs` (dictionary codes compared positionally — same
/// value <=> same code, including NULLs via kNullCode).
SampleProjectionStats ProjectionStats(const relation::Relation& rel,
                                      const std::vector<uint32_t>& rows,
                                      const relation::AttrSet& attrs);

/// Good–Turing distinct-count estimate from sampled stats: `m` sampled
/// rows of `n` live rows yielded `stats`. Requires m <= n. When m == n
/// the estimate collapses to the exact count.
CountEstimate EstimateDistinct(const SampleProjectionStats& stats, size_t m,
                               size_t n);

/// Estimates one FD's measures from the sampled rows (physical row ids,
/// all live) of a relation with `live_rows` live rows. When
/// rows.size() == live_rows the result is exact (see file comment).
SampledMeasures EstimateMeasures(const relation::Relation& rel,
                                 const std::vector<uint32_t>& rows,
                                 size_t live_rows, const Fd& fd);

}  // namespace fdevolve::fd
