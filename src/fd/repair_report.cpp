#include "fd/repair_report.h"

#include <sstream>

namespace fdevolve::fd {
namespace {

std::string Round3(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

std::string ExplainRepair(const Repair& repair,
                          const relation::Schema& schema) {
  std::ostringstream os;
  os << "adds " << schema.Describe(repair.added) << "; confidence "
     << Round3(repair.measures.confidence) << ", goodness "
     << repair.measures.goodness;
  if (repair.measures.goodness == 0) {
    os << " (bijective mapping between antecedent and consequent clusters)";
  } else if (repair.measures.goodness > 0) {
    os << " (antecedent " << repair.measures.goodness
       << " clusters more specific than consequent)";
  } else {
    os << " (antecedent " << -repair.measures.goodness
       << " clusters less specific than consequent)";
  }
  if (!repair.within_goodness_threshold) {
    os << " [outside goodness threshold]";
  }
  return os.str();
}

std::string DescribeResult(const RepairResult& result,
                           const relation::Schema& schema) {
  std::ostringstream os;
  os << "FD " << result.original.ToString(schema) << ": confidence "
     << Round3(result.original_measures.confidence) << ", goodness "
     << result.original_measures.goodness << "\n";
  if (result.already_exact) {
    os << "  already exact; nothing to repair\n";
    return os.str();
  }
  if (result.repairs.empty()) {
    os << "  no repair found";
    // Only truncation causes deserve a caveat: an exhausted search proved
    // there is nothing, and a top-k stop with no repairs cannot happen.
    if (result.stats.stop_reason == StopReason::kMaxEvaluations) {
      os << " (search budget exhausted: max evaluations)";
    } else if (result.stats.stop_reason == StopReason::kBudget) {
      os << " (search budget exhausted: latency budget)";
    }
    os << "\n";
    return os.str();
  }
  int i = 1;
  for (const auto& r : result.repairs) {
    os << "  " << i++ << ". " << r.repaired.ToString(schema) << " — "
       << ExplainRepair(r, schema) << "\n";
  }
  os << "  search stopped: " << ToString(result.stats.stop_reason);
  if (result.stats.pruned_by_bound > 0) {
    os << "; " << result.stats.pruned_by_bound << " branches pruned by bound";
  }
  os << "\n";
  return os.str();
}

std::string DescribeOutcome(const FindRepairsOutcome& outcome,
                            const relation::Schema& schema) {
  std::ostringstream os;
  os << "Repair order (rank O_F):\n";
  for (const auto& of : outcome.order) {
    os << "  " << of.fd.ToString(schema) << "  rank=" << Round3(of.rank)
       << " (ic=" << Round3(of.measures.inconsistency())
       << ", cf=" << Round3(of.conflict) << ")\n";
  }
  os << "\n";
  for (const auto& r : outcome.results) {
    os << DescribeResult(r, schema);
  }
  return os.str();
}

}  // namespace fdevolve::fd
