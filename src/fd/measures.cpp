#include "fd/measures.h"

namespace fdevolve::fd {

FdMeasures MeasuresFromCounts(size_t x, size_t xy, size_t y) {
  FdMeasures m;
  m.distinct_x = x;
  m.distinct_xy = xy;
  m.distinct_y = y;
  if (xy == 0) {
    // Empty instance: every FD is vacuously satisfied.
    m.confidence = 1.0;
    m.goodness = 0;
    m.exact = true;
    return m;
  }
  m.confidence = static_cast<double>(x) / static_cast<double>(xy);
  m.goodness = static_cast<int64_t>(x) - static_cast<int64_t>(y);
  m.exact = (x == xy);
  return m;
}

FdMeasures ComputeMeasures(const relation::Relation& rel, const Fd& fd) {
  query::DistinctEvaluator eval(rel);
  return ComputeMeasures(eval, fd);
}

FdMeasures ComputeMeasures(query::DistinctEvaluator& eval, const Fd& fd) {
  size_t x = eval.Count(fd.lhs());
  size_t xy = eval.Count(fd.AllAttrs());
  size_t y = eval.Count(fd.rhs());
  return MeasuresFromCounts(x, xy, y);
}

bool Satisfies(const relation::Relation& rel, const Fd& fd) {
  query::DistinctEvaluator eval(rel);
  return eval.Count(fd.lhs()) == eval.Count(fd.AllAttrs());
}

}  // namespace fdevolve::fd
