// Continuous FD validation over an evolving instance (§1's "periodic or
// continuous checks of FD validity").
//
// The monitor owns a relation that receives inserts; every `check_interval`
// mutations (inserts and deletes both count) it re-validates the declared
// FDs and records which of them drifted from exact to violated — or, under
// deletions, recovered from violated back to exact. The designer then asks
// for repair suggestions on the drifted set.
//
// Checks are incremental: the monitor owns one query::DistinctEvaluator
// for its whole lifetime and materializes the |π_X| / |π_XY| groupings of
// every monitored FD once, at registration. Each check then advances those
// groupings over just the rows appended since the previous check — O(Δ)
// per check instead of the O(n) a from-scratch evaluator pays — and reads
// the violation state straight off the maintained group counts: an exact
// X→Y breaks exactly when a new tuple lands in an existing X-group under a
// new XY-key, which is the one event that moves |π_XY| without |π_X|.
//
// Deletions fold in at the same cost class: the evaluator keeps per-group
// live refcounts, so one deleted row is one decrement per maintained
// grouping, and the counts a check reads are live-row counts. Removing the
// last witness of a violating XY-pair is the one event that moves |π_XY|
// down to |π_X| — the violated→exact transition the recovery event
// reports. A compaction of the monitored relation resets the evaluator;
// the monitor detects it (Relation::compactions()) and re-materializes
// every monitored grouping so subsequent checks stay O(Δ).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fd/repair_search.h"
#include "query/distinct.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// State of one declared FD at the latest check.
struct MonitoredFd {
  Fd fd;
  FdMeasures measures;
  bool was_exact_at_registration = false;
  bool violated = false;
  /// Tuple count at which the FD first became violated (0 if never).
  size_t first_violation_at = 0;
};

/// Direction of a drift transition.
enum class DriftKind : uint8_t {
  kViolated = 0,   ///< exact → violated (an insert broke the FD)
  kRecovered = 1,  ///< violated → exact (deletes removed every witness)
};

/// Event emitted when a monitored FD crosses the exact/violated boundary
/// in either direction. Under an append-only workload only kViolated is
/// reachable; kRecovered requires deletions.
struct DriftEvent {
  size_t fd_index = 0;
  /// Live tuples at the transition (== tuple_count() when no tombstones).
  size_t tuple_count = 0;
  FdMeasures measures;
  DriftKind kind = DriftKind::kViolated;

  /// True when the event came from a sampled monitor estimating from a
  /// strict subset of the live rows; the interval fields below then
  /// bracket the true confidence/goodness (see fd/sampled_estimate.h).
  /// Exact monitors — and sampled monitors whose reservoir covered every
  /// live row — leave all five fields at their defaults, so an exact
  /// event serializes identically whichever monitor emitted it (the
  /// sample_rate=1.0 bit-identity gate depends on this).
  bool approx = false;
  double confidence_lo = 1.0;
  double confidence_hi = 1.0;
  double goodness_lo = 0.0;
  double goodness_hi = 0.0;
};

/// Complete resumable state of a SchemaMonitor — everything a monitoring
/// process needs to stop and pick up mid-stream without replaying it.
///
/// The long-lived evaluator's groupings are deliberately *not* part of the
/// checkpoint: every grouping is a bit-identical function of the relation
/// (ids are dense first-appearance ids, append-stable under Advance), so
/// the restore constructor re-materializes them from the relation and
/// recovers the exact evaluator state the checkpointed monitor had. The
/// per-FD measures are carried anyway; when the checkpoint holds no
/// unchecked inserts (inserts_since_check == 0, so the stored measures
/// date from exactly the current watermark) they are cross-checked against
/// the re-materialized counters, turning a checkpoint/relation mismatch
/// (corruption, wrong file pairing) into a load-time error instead of a
/// silently wrong monitor.
struct MonitorCheckpoint {
  relation::Relation rel;            ///< owned relation at the watermark
  std::vector<MonitoredFd> fds;      ///< registered FDs + drift state
  std::vector<DriftEvent> drift_log;
  size_t check_interval = 1;
  size_t inserts_since_check = 0;
  size_t checks_run = 0;

  /// Streaming batch size of the driver that wrote the checkpoint (0 =
  /// unknown). Not monitor state — InsertBatch cadence depends on how the
  /// caller batches, so a resuming driver needs the original batch to
  /// reproduce the exact check sequence. Checkpoint() leaves it 0; the
  /// driver (e.g. the CLI) fills it in before serializing.
  size_t stream_batch_hint = 0;
};

/// A MonitorCheckpoint minus the relation — the resumable state of a
/// monitor that does *not* own its relation (external mode, see the
/// shared-relation SchemaMonitor constructors). The server persists the
/// shared catalog once and one MonitorState per monitor next to it,
/// instead of embedding a copy of the relation in every checkpoint.
struct MonitorState {
  std::vector<MonitoredFd> fds;
  std::vector<DriftEvent> drift_log;
  size_t check_interval = 1;
  size_t inserts_since_check = 0;
  size_t checks_run = 0;
  /// rel().version() at capture time. Restore refuses a relation whose
  /// watermark differs — the state would be paired with rows it never
  /// observed (or rows it observed would be missing).
  size_t watermark = 0;
};

/// Periodic validation loop.
///
/// Two ownership modes:
///   * **owning** — the monitor owns the relation and is fed through
///     Insert()/InsertBatch() (the CLI's streaming loop);
///   * **external** — the monitor observes a relation owned by someone
///     else (the server's shared catalog: the SQL engine appends, many
///     monitors watch). The caller appends through its own path and calls
///     Poll() afterwards; the monitor folds the appended suffix in and
///     runs a check when the interval elapses. The relation must outlive
///     the monitor, stay append-only, and be quiescent during every
///     monitor call (the server holds the table's write lock for both the
///     append and the Poll).
///
/// Not copyable or movable: the long-lived evaluator holds a reference to
/// the relation.
class SchemaMonitor {
 public:
  /// `check_interval`: re-validate after this many inserts (>=1).
  /// `threads`: execution width for the evaluator's refinement passes
  /// (0 = hardware_concurrency, 1 = exact sequential path); results are
  /// identical for every value.
  SchemaMonitor(relation::Relation initial, std::vector<Fd> fds,
                size_t check_interval = 1, int threads = 0);

  /// External mode: monitors `*shared` without owning it (see class
  /// comment). Measures are computed at the relation's current watermark.
  SchemaMonitor(relation::Relation* shared, std::vector<Fd> fds,
                size_t check_interval = 1, int threads = 0);

  /// External-mode restore: rebinds a captured MonitorState to `*shared`
  /// and re-materializes the evaluator groupings, recovering the exact
  /// monitor the state was taken from (same bit-identity argument as the
  /// checkpoint constructor below). Throws std::invalid_argument if the
  /// relation's watermark differs from the state's, if an FD references
  /// attributes outside the schema, or if the carried measures disagree
  /// with recomputation while comparable (inserts_since_check == 0).
  SchemaMonitor(relation::Relation* shared, MonitorState state,
                int threads = 0);

  /// Resumes from a checkpoint: restores the relation, registered FDs,
  /// drift log, and interval position verbatim, and re-materializes the
  /// evaluator groupings from the relation. The resumed monitor emits the
  /// exact check sequence the checkpointed one would have — measures,
  /// drift events, and counters are bit-identical from here on.
  ///
  /// Throws std::invalid_argument if an FD references attributes outside
  /// the schema, or if the checkpointed measures disagree with the ones
  /// recomputed from the relation when they are comparable (no unchecked
  /// inserts pending — see MonitorCheckpoint).
  explicit SchemaMonitor(MonitorCheckpoint checkpoint, int threads = 0);

  SchemaMonitor(const SchemaMonitor&) = delete;
  SchemaMonitor& operator=(const SchemaMonitor&) = delete;

  /// Snapshot of the complete resumable state (copies the relation).
  MonitorCheckpoint Checkpoint() const;

  /// Snapshot of the relation-free resumable state (external mode's
  /// checkpoint; pair it with the relation persisted elsewhere).
  MonitorState State() const;

  const relation::Relation& rel() const { return *rel_; }
  const std::vector<MonitoredFd>& fds() const { return monitored_; }
  const std::vector<DriftEvent>& drift_log() const { return drift_log_; }

  /// Optional callback invoked on each new drift event.
  void OnDrift(std::function<void(const DriftEvent&)> cb) {
    on_drift_ = std::move(cb);
  }

  /// Ingests one tuple; runs a check when the interval elapses.
  void Insert(const std::vector<relation::Value>& row);

  /// Ingests a batch of tuples (all-or-nothing validation, see
  /// relation::Relation::AppendRows); runs at most one check per batch,
  /// when the accumulated insert count crosses the interval.
  void InsertBatch(const std::vector<std::vector<relation::Value>>& rows);

  /// External-mode observation: folds mutations (appends AND deletes)
  /// applied to the relation since the monitor last looked into the
  /// mutation counter, and runs at most one check when the accumulated
  /// count crosses the interval — the same cadence InsertBatch gives a
  /// batch of that size. Counts through Relation::appends_ever() /
  /// deletes_ever(), so a compaction (which shrinks version()) cannot make
  /// the interval arithmetic underflow; a compaction also triggers
  /// re-materialization of the monitored groupings. A no-op when nothing
  /// changed.
  void Poll();

  /// Registers an additional FD on the live monitor (the server's DECLARE
  /// FD path): materializes its groupings and computes its measures at the
  /// current watermark. Throws std::invalid_argument if the FD references
  /// attributes outside the schema. Returns its index in fds().
  size_t AddFd(Fd fd);

  /// Forces a validation pass; returns indices of currently violated FDs.
  /// Cost is O(mutations since the previous check) — the pass advances
  /// the maintained groupings, folds pending deletions, and reads the
  /// live-group counters. Emits a kViolated event per exact→violated
  /// transition and a kRecovered event per violated→exact transition.
  std::vector<size_t> CheckNow();

  /// Suggests repairs for every currently violated FD. When the relation
  /// carries tombstones the search runs on a CompactedCopy() — the repair
  /// search scans physical rows and is tombstone-unaware by design.
  std::vector<RepairResult> SuggestRepairs(const RepairOptions& opts = {});

  /// Designer accepts a repair: the declared FD is replaced by the repaired
  /// one and its drift state resets. The repaired FD's groupings are
  /// materialized in the shared evaluator so subsequent checks stay O(Δ).
  /// Throws std::out_of_range on bad index.
  ///
  /// The superseded FD's groupings stay in the evaluator cache and keep
  /// being maintained — they cannot be evicted, because the repaired FD's
  /// grouping chains are typically derived from them (the repaired
  /// antecedent is a superset of the old one). Per-check cost is therefore
  /// O(Δ × tracked groupings), growing by a couple of chains per accepted
  /// repair; the designer loop accepts a handful of repairs over a
  /// monitor's lifetime, so this stays small in practice.
  void AcceptRepair(size_t fd_index, const Repair& repair);

  /// Number of validation passes run so far (instrumentation).
  size_t checks_run() const { return checks_run_; }

  /// Resolved execution width of the underlying evaluator.
  int threads() const { return eval_.threads(); }

 private:
  /// Materializes the FD's antecedent and full-attribute groupings in the
  /// shared evaluator so Advance() maintains them from here on.
  void Track(const Fd& fd);

  /// Shared registration path of the fresh constructors.
  void RegisterFds(std::vector<Fd> fds);

  /// Shared validation/re-tracking path of the restore constructors:
  /// adopts the monitored FDs + drift log, re-materializes groupings, and
  /// cross-checks carried measures when comparable.
  void RestoreMonitored(std::vector<MonitoredFd> fds,
                        std::vector<DriftEvent> drift_log);

  /// Re-materializes every monitored grouping after an observed
  /// compaction (the evaluator dropped its caches); no-op otherwise.
  void ResyncAfterCompaction();

  /// Appends a drift event to the log and fires the callback.
  void PushEvent(size_t fd_index, DriftKind kind, const FdMeasures& measures);

  std::unique_ptr<relation::Relation> owned_;  ///< null in external mode
  relation::Relation* rel_;                    ///< owned_ or the shared one
  query::DistinctEvaluator eval_;  ///< long-lived; advanced, never rebuilt
  std::vector<MonitoredFd> monitored_;
  std::vector<DriftEvent> drift_log_;
  std::function<void(const DriftEvent&)> on_drift_;
  size_t check_interval_;
  size_t inserts_since_check_ = 0;  ///< mutations accumulated toward a check
  size_t checks_run_ = 0;
  size_t observed_version_ = 0;  ///< physical watermark last observed
  /// appends_ever() + deletes_ever() last observed — the cadence counter
  /// (monotone across compactions, unlike observed_version_).
  size_t observed_mutations_ = 0;
  size_t observed_compactions_ = 0;  ///< compactions() last observed
};

}  // namespace fdevolve::fd
