// Continuous FD validation over an evolving instance (§1's "periodic or
// continuous checks of FD validity").
//
// The monitor owns a relation that receives inserts; every `check_interval`
// inserts it re-validates the declared FDs and records which of them
// drifted from exact to violated. The designer then asks for repair
// suggestions on the drifted set.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fd/repair_search.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// State of one declared FD at the latest check.
struct MonitoredFd {
  Fd fd;
  FdMeasures measures;
  bool was_exact_at_registration = false;
  bool violated = false;
  /// Tuple count at which the FD first became violated (0 if never).
  size_t first_violation_at = 0;
};

/// Event emitted when a previously-exact FD becomes violated.
struct DriftEvent {
  size_t fd_index = 0;
  size_t tuple_count = 0;
  FdMeasures measures;
};

/// Periodic validation loop.
class SchemaMonitor {
 public:
  /// `check_interval`: re-validate after this many inserts (>=1).
  SchemaMonitor(relation::Relation initial, std::vector<Fd> fds,
                size_t check_interval = 1);

  const relation::Relation& rel() const { return rel_; }
  const std::vector<MonitoredFd>& fds() const { return monitored_; }
  const std::vector<DriftEvent>& drift_log() const { return drift_log_; }

  /// Optional callback invoked on each new drift event.
  void OnDrift(std::function<void(const DriftEvent&)> cb) {
    on_drift_ = std::move(cb);
  }

  /// Ingests one tuple; runs a check when the interval elapses.
  void Insert(const std::vector<relation::Value>& row);

  /// Forces a validation pass; returns indices of currently violated FDs.
  std::vector<size_t> CheckNow();

  /// Suggests repairs for every currently violated FD.
  std::vector<RepairResult> SuggestRepairs(const RepairOptions& opts = {});

  /// Designer accepts a repair: the declared FD is replaced by the repaired
  /// one and its drift state resets. Throws std::out_of_range on bad index.
  void AcceptRepair(size_t fd_index, const Repair& repair);

 private:
  relation::Relation rel_;
  std::vector<MonitoredFd> monitored_;
  std::vector<DriftEvent> drift_log_;
  std::function<void(const DriftEvent&)> on_drift_;
  size_t check_interval_;
  size_t inserts_since_check_ = 0;
};

}  // namespace fdevolve::fd
