#include "fd/cost_model.h"

#include <algorithm>
#include <utility>

namespace fdevolve::fd {
namespace {

// Calibration constants, from bench_query_micro on the reference AVX2 box:
// a count-only dense refinement pass sweeps roughly one nanosecond per live
// tuple, and fresh-group key/dictionary work costs roughly a quarter of a
// nanosecond per encoded byte. The model only needs relative accuracy —
// budgets and orderings care about ratios, not absolute wall time.
constexpr double kNsPerTupleSweep = 1.0;
constexpr double kNsPerDictByte = 0.25;

}  // namespace

CostModel::CostModel(const relation::Relation& rel)
    : stats_(query::ComputeColumnStats(rel)), live_rows_(rel.live_count()) {}

CostModel::CostModel(std::vector<query::ColumnStats> stats, size_t live_rows)
    : stats_(std::move(stats)), live_rows_(live_rows) {}

double CostModel::CandidateCostMs(int attr) const {
  const query::ColumnStats& s = stats(attr);
  // Two count-only sweeps (C_X -> C_XA, C_XY -> C_XAY) over the live rows,
  // plus dictionary work proportional to the groups the column can create.
  const double sweep_ns =
      2.0 * static_cast<double>(live_rows_) * kNsPerTupleSweep;
  const double key_ns = static_cast<double>(s.group_slots()) *
                        s.avg_dict_width * kNsPerDictByte;
  return (sweep_ns + key_ns) * 1e-6;
}

std::vector<size_t> CostModel::TopSlotProducts(const relation::AttrSet& pool,
                                               int max_extra) const {
  std::vector<size_t> slots;
  for (int a : pool.ToVector()) slots.push_back(GroupSlots(a));
  std::sort(slots.begin(), slots.end(), std::greater<size_t>());
  if (max_extra < 0) max_extra = 0;
  std::vector<size_t> products(static_cast<size_t>(max_extra) + 1, 1);
  for (size_t r = 1; r < products.size(); ++r) {
    // Past the pool size no further extension exists; the product stops
    // growing (never shrinks — bounds must stay monotone in r).
    const size_t factor = r <= slots.size() ? slots[r - 1] : 1;
    products[r] = query::SaturatingMul(products[r - 1], factor);
  }
  return products;
}

}  // namespace fdevolve::fd
