// Conditional functional dependencies (CFDs) — the §7 future-work
// extension, following the related-work formulation (§2, [4]): an embedded
// FD X -> Y that must hold only on the tuples selected by a pattern of
// (attribute = constant) conditions.
//
// Two repair styles are supported when a CFD (or a plain FD, as the
// all-wildcard CFD) is violated:
//   1. antecedent extension — the paper's method, applied to the selected
//      subset of tuples;
//   2. condition refinement — keep the FD, find the conditions under which
//      it already holds (turning a broken global FD into a set of valid
//      CFDs), ranked by support.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/fd.h"
#include "fd/measures.h"
#include "fd/repair_search.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// One pattern conjunct: attribute = constant.
struct PatternCondition {
  int attr = -1;
  relation::Value value;

  bool Matches(const relation::Relation& rel, size_t row) const;
  std::string ToString(const relation::Schema& schema) const;
};

/// A CFD: embedded FD + conjunctive constant pattern.
class ConditionalFd {
 public:
  ConditionalFd() = default;
  ConditionalFd(Fd fd, std::vector<PatternCondition> pattern)
      : fd_(std::move(fd)), pattern_(std::move(pattern)) {}

  const Fd& embedded() const { return fd_; }
  const std::vector<PatternCondition>& pattern() const { return pattern_; }

  /// All-wildcard CFD == plain FD.
  bool IsPlainFd() const { return pattern_.empty(); }

  /// "[A] -> [B] WHEN C = 'x' AND D = 3".
  std::string ToString(const relation::Schema& schema) const;

 private:
  Fd fd_;
  std::vector<PatternCondition> pattern_;
};

/// Materialises σ_pattern(rel) as a relation (same schema, fewer rows).
relation::Relation SelectByPattern(const relation::Relation& rel,
                                   const std::vector<PatternCondition>& pattern);

/// Measures of the embedded FD on the selected subset, plus support.
struct CfdMeasures {
  FdMeasures fd_measures;   ///< over σ_pattern(rel)
  size_t selected_tuples = 0;
  double support = 0.0;     ///< selected / total (1 for plain FDs)
};

CfdMeasures ComputeCfdMeasures(const relation::Relation& rel,
                               const ConditionalFd& cfd);

/// Repair style 1: extend the embedded FD's antecedent so it holds on the
/// selected subset (the paper's Extend, run on σ_pattern(rel)).
RepairResult ExtendConditional(const relation::Relation& rel,
                               const ConditionalFd& cfd,
                               const RepairOptions& opts = {});

/// Repair style 2: condition refinement.
struct ConditionRepair {
  PatternCondition condition;  ///< added to the pattern
  ConditionalFd refined;       ///< the resulting CFD (exact on its subset)
  size_t selected_tuples = 0;
  double support = 0.0;        ///< fraction of the *violating* CFD's subset
};

struct ConditionRepairOptions {
  /// Candidate condition attributes: all attrs outside XY by default.
  relation::AttrSet restrict_to;
  /// Skip condition values selecting fewer tuples than this (noise floor).
  size_t min_selected = 2;
  /// Cap on distinct values tried per attribute (0 = no cap).
  size_t max_values_per_attr = 64;
};

/// Finds single-condition refinements (attr = value) under which the
/// embedded FD becomes exact; sorted by descending support.
std::vector<ConditionRepair> RefineByCondition(
    const relation::Relation& rel, const ConditionalFd& cfd,
    const ConditionRepairOptions& opts = {});

}  // namespace fdevolve::fd
