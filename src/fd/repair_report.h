// Designer-facing rendering of repair outcomes ("semi-automatic" surface).
#pragma once

#include <string>

#include "fd/repair_search.h"
#include "relation/schema.h"

namespace fdevolve::fd {

/// Renders one repair result as readable text:
/// original FD, its confidence/goodness, and the ranked repair list.
std::string DescribeResult(const RepairResult& result,
                           const relation::Schema& schema);

/// Renders an Algorithm-1 outcome: the repair order with ranks, then each
/// FD's result.
std::string DescribeOutcome(const FindRepairsOutcome& outcome,
                            const relation::Schema& schema);

/// One-line explanation of why a repair was ranked where it is, e.g.
/// "adds [Municipal]; confidence 1, goodness 0 (bijective mapping)".
std::string ExplainRepair(const Repair& repair, const relation::Schema& schema);

}  // namespace fdevolve::fd
