// Confidence and goodness — the paper's Definition 3 — plus derived scores.
#pragma once

#include <cstdint>

#include "fd/fd.h"
#include "query/distinct.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// All the counting-based measures of one FD on one instance.
struct FdMeasures {
  size_t distinct_x = 0;   ///< |π_X(r)|
  size_t distinct_xy = 0;  ///< |π_XY(r)|
  size_t distinct_y = 0;   ///< |π_Y(r)|

  /// c(F,r) = |π_X| / |π_XY|; 1 for the empty instance (vacuous).
  double confidence = 1.0;

  /// g(F,r) = |π_X| − |π_Y| (can be negative).
  int64_t goodness = 0;

  /// Exact iff confidence == 1 (Definition 4); computed on integers,
  /// so no floating-point tolerance is involved.
  bool exact = true;

  /// ic = 1 − c (§4.1 "degree of inconsistency").
  double inconsistency() const { return 1.0 - confidence; }

  /// |g| — used by the ε_CB measure (§5).
  uint64_t abs_goodness() const {
    return goodness < 0 ? static_cast<uint64_t>(-goodness)
                        : static_cast<uint64_t>(goodness);
  }

  /// ε_CB = ic + |g| (§5). Zero iff the FD induces a bijective function
  /// between the antecedent and consequent clusterings.
  double epsilon_cb() const {
    return inconsistency() + static_cast<double>(abs_goodness());
  }
};

/// Builds the full measure set from the three raw distinct counts.
/// Single source of the confidence/goodness arithmetic: every evaluation
/// path (memoised, fresh, and the repair search's parallel candidate
/// batches) goes through here, so their floating-point results are
/// bit-identical by construction.
FdMeasures MeasuresFromCounts(size_t distinct_x, size_t distinct_xy,
                              size_t distinct_y);

/// Computes the measures with a fresh evaluation (no cache).
FdMeasures ComputeMeasures(const relation::Relation& rel, const Fd& fd);

/// Computes the measures through a shared memoising evaluator.
FdMeasures ComputeMeasures(query::DistinctEvaluator& eval, const Fd& fd);

/// Definition 2 check (via confidence; |π_X| == |π_XY|).
bool Satisfies(const relation::Relation& rel, const Fd& fd);

}  // namespace fdevolve::fd
