#include "fd/closure.h"

#include <algorithm>

namespace fdevolve::fd {

relation::AttrSet AttributeClosure(const relation::AttrSet& attrs,
                                   const std::vector<Fd>& fds) {
  relation::AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& f : fds) {
      if (f.lhs().SubsetOf(closure) && !f.rhs().SubsetOf(closure)) {
        closure = closure.Union(f.rhs());
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<Fd>& fds, const Fd& candidate) {
  return candidate.rhs().SubsetOf(AttributeClosure(candidate.lhs(), fds));
}

std::vector<relation::AttrSet> CandidateKeys(const relation::AttrSet& universe,
                                             const std::vector<Fd>& fds,
                                             int max_key_size) {
  std::vector<relation::AttrSet> keys;
  const auto attrs = universe.ToVector();
  const int cap = max_key_size > 0
                      ? std::min<int>(max_key_size, universe.Count())
                      : universe.Count();

  auto is_superkey = [&](const relation::AttrSet& s) {
    return universe.SubsetOf(AttributeClosure(s, fds));
  };
  auto covered = [&](const relation::AttrSet& s) {
    for (const auto& k : keys) {
      if (k.SubsetOf(s)) return true;
    }
    return false;
  };

  // Levelwise from small to large: the first superkeys found per branch
  // are minimal; supersets of known keys are skipped.
  std::vector<relation::AttrSet> level = {relation::AttrSet()};
  for (int size = 1; size <= cap; ++size) {
    std::vector<relation::AttrSet> next;
    for (const auto& base : level) {
      int max_in = base.Empty() ? -1 : base.ToVector().back();
      for (int a : attrs) {
        if (a <= max_in) continue;
        relation::AttrSet grown = base.With(a);
        if (covered(grown)) continue;
        if (is_superkey(grown)) {
          keys.push_back(grown);
        } else {
          next.push_back(grown);
        }
      }
    }
    level = std::move(next);
  }
  return keys;
}

bool IsBcnf(const relation::AttrSet& universe, const std::vector<Fd>& fds) {
  for (const Fd& f : fds) {
    if (!universe.SubsetOf(AttributeClosure(f.lhs(), fds))) return false;
  }
  return true;
}

bool Is3nf(const relation::AttrSet& universe, const std::vector<Fd>& fds) {
  relation::AttrSet prime;
  for (const auto& key : CandidateKeys(universe, fds)) {
    prime = prime.Union(key);
  }
  for (const Fd& f : fds) {
    if (universe.SubsetOf(AttributeClosure(f.lhs(), fds))) continue;
    // Every consequent attribute outside the antecedent must be prime.
    if (!f.rhs().Minus(f.lhs()).SubsetOf(prime)) return false;
  }
  return true;
}

std::vector<Fd> MinimalCover(const std::vector<Fd>& fds) {
  // 1. Singleton consequents.
  std::vector<Fd> cover;
  for (const Fd& f : fds) {
    for (Fd& part : f.Decompose()) {
      cover.push_back(std::move(part));
    }
  }

  // 2. Remove extraneous antecedent attributes.
  for (auto& f : cover) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (int a : f.lhs().ToVector()) {
        relation::AttrSet smaller = f.lhs();
        smaller.Remove(a);
        if (smaller.Intersects(f.rhs())) continue;
        if (Implies(cover, Fd(smaller, f.rhs()))) {
          f = Fd(smaller, f.rhs(), f.label());
          shrunk = true;
          break;
        }
      }
    }
  }

  // 3. Drop redundant FDs (implied by the rest).
  for (size_t i = 0; i < cover.size();) {
    std::vector<Fd> rest;
    rest.reserve(cover.size() - 1);
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) rest.push_back(cover[j]);
    }
    if (Implies(rest, cover[i])) {
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 4. De-duplicate.
  std::vector<Fd> out;
  for (const auto& f : cover) {
    bool dup = false;
    for (const auto& g : out) {
      if (f == g) dup = true;
    }
    if (!dup) out.push_back(f);
  }
  return out;
}

}  // namespace fdevolve::fd
