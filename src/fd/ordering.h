// FD repair ordering (§4.1): rank O_F = (ic_F + cf_F) / 2.
#pragma once

#include <vector>

#include "fd/fd.h"
#include "fd/measures.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// Conflict score of `fd` against the whole declared set `all` (§4.1):
///
///   cf_F = ( Σ_{F' ∈ all, F' ≠ F} |F ∩ F'| / max(|F|, |F'|) ) / |all|
///
/// The score is instance-independent. The summation excludes F itself
/// (a dependency does not conflict with itself); the normalisation keeps
/// the paper's |F| denominator, i.e. the size of the whole declared set.
///
/// Note: in the paper's running example the printed ranks
/// (0.25, 0.167, 0.056) equal ic/2 exactly, i.e. all conflict scores were
/// taken as 0 even though F2 and F3 share `Zip`. We implement the formula
/// as defined; `OrderingOptions::include_conflict = false` reproduces the
/// example's printed numbers. Either choice yields the same order on the
/// running example (F1, F2, F3).
double ConflictScore(const Fd& fd, const std::vector<Fd>& all);

struct OrderingOptions {
  /// If false, O_F = ic_F / 2 (matches the paper's printed example values).
  bool include_conflict = true;
};

/// One FD with its computed ordering rank.
struct OrderedFd {
  Fd fd;
  FdMeasures measures;
  double conflict = 0.0;
  double rank = 0.0;  ///< O_F
  size_t original_index = 0;
};

/// Sorts FDs by descending rank (ties broken by declaration order).
/// This is `OrderFDs` from Algorithm 1.
std::vector<OrderedFd> OrderFds(const relation::Relation& rel,
                                const std::vector<Fd>& fds,
                                const OrderingOptions& opts = {});

}  // namespace fdevolve::fd
