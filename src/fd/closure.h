// Classical FD inference: attribute closure, implication, candidate keys,
// and normal-form checks. Backs the §3 remark that the method matters
// precisely when schemas are NOT in a higher normal form: the checks here
// let callers (and tests) verify that claim on concrete instances, and let
// the designer see what an accepted evolution does to the schema's keys.
#pragma once

#include <vector>

#include "fd/fd.h"
#include "relation/schema.h"

namespace fdevolve::fd {

/// Closure of `attrs` under `fds` (Armstrong axioms, standard fixpoint).
relation::AttrSet AttributeClosure(const relation::AttrSet& attrs,
                                   const std::vector<Fd>& fds);

/// True iff `fds` logically imply `candidate` (closure membership test).
/// Note: trivial FDs (Y ⊆ X) cannot arise — Fd's constructor rejects
/// overlapping sides — so the normal-form checks below need no
/// triviality filtering.
bool Implies(const std::vector<Fd>& fds, const Fd& candidate);

/// All candidate keys of a relation with attribute set `universe` under
/// `fds`: minimal attribute sets whose closure is the whole universe.
/// Exponential in the worst case; `max_key_size` bounds the search
/// (0 = |universe|).
std::vector<relation::AttrSet> CandidateKeys(const relation::AttrSet& universe,
                                             const std::vector<Fd>& fds,
                                             int max_key_size = 0);

/// Boyce-Codd normal form: every non-trivial declared FD has a superkey
/// antecedent.
bool IsBcnf(const relation::AttrSet& universe, const std::vector<Fd>& fds);

/// Third normal form: every non-trivial FD has a superkey antecedent or a
/// prime (member-of-some-key) consequent attribute.
bool Is3nf(const relation::AttrSet& universe, const std::vector<Fd>& fds);

/// A minimal cover of `fds`: singleton consequents, no redundant FDs, no
/// extraneous antecedent attributes. Deterministic for a given input order.
std::vector<Fd> MinimalCover(const std::vector<Fd>& fds);

}  // namespace fdevolve::fd
