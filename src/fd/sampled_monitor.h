// Approximate FD monitoring under a fixed memory budget: the same
// periodic-validation loop as SchemaMonitor, but measures are *estimated*
// from a deterministic reservoir sample (query::ReservoirSampler) instead
// of computed exactly, and every check reports an error interval with the
// estimate (fd/sampled_estimate.h).
//
// Drift semantics differ from the exact monitor in one deliberate way:
// a sampled monitor flags "violated" only on *certain* evidence — a
// sampled witness pair (two sampled rows agreeing on X, differing on Y).
// It therefore never raises a false drift alarm; what it can do is raise
// one late (the witness pair must land in the reservoir). Recovery is the
// mirror image: the FD is reported exact again when no sampled witness
// remains.
//
// Bit-identity at full coverage: when the reservoir capacity is at least
// the number of rows ever offered (so Algorithm R never evicts), the
// sample is exactly the live row set at every check, estimation collapses
// to the exact MeasuresFromCounts arithmetic, drift decisions coincide
// with the exact monitor's, and the drift log + base checkpoint serialize
// byte-identically to a SchemaMonitor fed the same stream. The
// differential suite gates this.
//
// Determinism under seed: the estimate sequence is a pure function of
// (seed, per-table statement order) — the sampler consumes a fixed number
// of generator draws per offered row and rebuilds deterministically at
// compactions. Checkpoints capture the full sampler state (slots + raw
// generator state), so a resumed monitor replays the identical remaining
// estimate sequence; the restore path re-estimates from the restored
// reservoir and cross-checks the carried measures whenever they are
// current (inserts_since_check == 0), the same tamper check the exact
// monitor runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fd/sampled_estimate.h"
#include "fd/schema_monitor.h"
#include "query/reservoir.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// Complete resumable state of an owning SampledSchemaMonitor: the exact
/// monitor's checkpoint (relation, FDs, drift log, interval position)
/// plus the reservoir state. At full coverage `base` is bit-identical to
/// the checkpoint an exact SchemaMonitor would produce.
struct SampledMonitorCheckpoint {
  MonitorCheckpoint base;
  query::ReservoirState reservoir;
};

/// Relation-free form (external mode — the server pairs it with the
/// catalog relation persisted alongside).
struct SampledMonitorState {
  MonitorState base;
  query::ReservoirState reservoir;
};

/// Periodic validation loop over a reservoir sample. Mirrors
/// SchemaMonitor's ownership modes and check cadence exactly (same
/// counters, same interval arithmetic) so the two monitors stay in
/// lockstep on identical streams. Not copyable or movable.
class SampledSchemaMonitor {
 public:
  /// Owning mode. `capacity` is the reservoir slot budget (>= 1);
  /// `seed` drives every sampling decision.
  SampledSchemaMonitor(relation::Relation initial, std::vector<Fd> fds,
                       size_t check_interval, size_t capacity, uint64_t seed);

  /// External mode (see SchemaMonitor): observes `*shared` without owning
  /// it; the caller mutates and then calls Poll() under quiescence.
  SampledSchemaMonitor(relation::Relation* shared, std::vector<Fd> fds,
                       size_t check_interval, size_t capacity, uint64_t seed);

  /// External-mode restore. Throws std::invalid_argument on watermark /
  /// compaction-count mismatch, on an FD outside the schema, or when the
  /// carried measures disagree with re-estimation while comparable.
  SampledSchemaMonitor(relation::Relation* shared, SampledMonitorState state);

  /// Owning-mode restore from a checkpoint (same validation).
  explicit SampledSchemaMonitor(SampledMonitorCheckpoint checkpoint);

  SampledSchemaMonitor(const SampledSchemaMonitor&) = delete;
  SampledSchemaMonitor& operator=(const SampledSchemaMonitor&) = delete;

  SampledMonitorCheckpoint Checkpoint() const;
  SampledMonitorState State() const;

  const relation::Relation& rel() const { return *rel_; }
  const std::vector<MonitoredFd>& fds() const { return monitored_; }
  const std::vector<DriftEvent>& drift_log() const { return drift_log_; }

  /// Latest per-FD estimate (parallel to fds(); refreshed at every check
  /// and at registration).
  const std::vector<SampledMeasures>& estimates() const { return estimates_; }

  void OnDrift(std::function<void(const DriftEvent&)> cb) {
    on_drift_ = std::move(cb);
  }

  /// Invoked once per monitored FD per check with the fresh estimate —
  /// the estimate *sequence* the determinism and resume suites assert on.
  void OnEstimate(std::function<void(size_t fd_index, const SampledMeasures&)> cb) {
    on_estimate_ = std::move(cb);
  }

  /// Ingests one tuple; runs a check when the interval elapses (same
  /// cadence as SchemaMonitor::Insert).
  void Insert(const std::vector<relation::Value>& row);

  /// Batch ingest; at most one check per batch (same cadence as
  /// SchemaMonitor::InsertBatch).
  void InsertBatch(const std::vector<std::vector<relation::Value>>& rows);

  /// External-mode observation; same cadence as SchemaMonitor::Poll.
  /// Also folds the relation's physical delta into the reservoir, so it
  /// must be called at the same statement boundaries on a replay as on
  /// the original run (the server calls it after every mutation
  /// statement) for the sampler's draw sequence to reproduce.
  void Poll();

  /// Registers an additional FD; estimates it at the current reservoir.
  /// Returns its index in fds().
  size_t AddFd(Fd fd);

  /// Forces a validation pass; returns indices of FDs with a currently
  /// sampled witness (certainly violated).
  std::vector<size_t> CheckNow();

  size_t checks_run() const { return checks_run_; }
  size_t sample_capacity() const { return sampler_->capacity(); }
  uint64_t sample_seed() const { return sampler_->seed(); }

 private:
  void RegisterFds(std::vector<Fd> fds);
  void RestoreMonitored(std::vector<MonitoredFd> fds,
                        std::vector<DriftEvent> drift_log);
  void PushEvent(size_t fd_index, DriftKind kind, const SampledMeasures& est);
  SampledMeasures Estimate(const Fd& fd,
                           const std::vector<uint32_t>& live_members) const;

  std::unique_ptr<relation::Relation> owned_;  ///< null in external mode
  relation::Relation* rel_;
  std::unique_ptr<query::ReservoirSampler> sampler_;
  std::vector<MonitoredFd> monitored_;
  std::vector<SampledMeasures> estimates_;
  std::vector<DriftEvent> drift_log_;
  std::function<void(const DriftEvent&)> on_drift_;
  std::function<void(size_t, const SampledMeasures&)> on_estimate_;
  size_t check_interval_;
  size_t inserts_since_check_ = 0;
  size_t checks_run_ = 0;
  size_t observed_mutations_ = 0;
};

}  // namespace fdevolve::fd
