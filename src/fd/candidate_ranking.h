// ExtendByOne (§4.2, Algorithm 2): rank single-attribute extensions.
#pragma once

#include <vector>

#include "fd/fd.h"
#include "fd/measures.h"
#include "query/distinct.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// One candidate extension FA : XA -> Y.
struct Candidate {
  int attr = -1;        ///< the attribute A added to the antecedent
  Fd extended;          ///< XA -> Y
  FdMeasures measures;  ///< confidence/goodness of the extended FD

  /// Ranking comparator (§4.2): primary key confidence (descending),
  /// secondary key goodness with values *closer to zero* preferred — this is
  /// what penalises UNIQUE-like attributes (PhNo loses to Municipal in
  /// Table 1 despite both reaching confidence 1). Final tie-break: attribute
  /// index, for determinism.
  static bool RankLess(const Candidate& a, const Candidate& b) {
    if (a.measures.confidence != b.measures.confidence) {
      return a.measures.confidence > b.measures.confidence;
    }
    if (a.measures.abs_goodness() != b.measures.abs_goodness()) {
      return a.measures.abs_goodness() < b.measures.abs_goodness();
    }
    return a.attr < b.attr;
  }
};

/// Options for candidate-pool construction.
struct PoolOptions {
  /// Exclude attributes whose column contains NULLs (§6.2.1: attributes in
  /// FDs may not contain NULL values).
  bool exclude_nulls = true;

  /// Exclude attributes that are UNIQUE on the instance. Off by default:
  /// the paper *discourages* them through goodness rather than banning them
  /// (§3, §6.3); turning this on is the harder variant studied in the
  /// ablation bench.
  bool exclude_unique = false;

  /// Optional explicit whitelist; if non-empty, the pool is intersected
  /// with it (used to window very wide relations such as Veterans).
  relation::AttrSet restrict_to;
};

/// Attributes eligible to extend `fd`'s antecedent: R \ XY, filtered by
/// `opts`.
relation::AttrSet CandidatePool(const relation::Relation& rel, const Fd& fd,
                                const PoolOptions& opts = {});

/// Evaluates and ranks every candidate in `pool`.
///
/// Unlike the paper's Algorithm 2 pseudocode — whose line 5 keeps only
/// exact candidates, contradicting Algorithm 3 which needs the inexact ones
/// in its queue — this returns *all* candidates, ranked; callers filter.
std::vector<Candidate> ExtendByOne(query::DistinctEvaluator& eval,
                                   const Fd& fd,
                                   const relation::AttrSet& pool);

/// Convenience overload that builds the pool itself.
std::vector<Candidate> ExtendByOne(query::DistinctEvaluator& eval,
                                   const Fd& fd,
                                   const PoolOptions& opts = {});

}  // namespace fdevolve::fd
