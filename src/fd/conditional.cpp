#include "fd/conditional.h"

#include <algorithm>

namespace fdevolve::fd {

bool PatternCondition::Matches(const relation::Relation& rel,
                               size_t row) const {
  return rel.Get(row, attr) == value;
}

std::string PatternCondition::ToString(const relation::Schema& schema) const {
  std::string v = value.is_string() ? "'" + value.as_string() + "'"
                                    : value.ToString();
  return schema.attr(attr).name + " = " + v;
}

std::string ConditionalFd::ToString(const relation::Schema& schema) const {
  std::string out = fd_.ToString(schema);
  for (size_t i = 0; i < pattern_.size(); ++i) {
    out += (i == 0 ? " WHEN " : " AND ");
    out += pattern_[i].ToString(schema);
  }
  return out;
}

relation::Relation SelectByPattern(
    const relation::Relation& rel,
    const std::vector<PatternCondition>& pattern) {
  relation::Relation out(rel.name() + "_sel", rel.schema());
  for (size_t row = 0; row < rel.tuple_count(); ++row) {
    bool pass = true;
    for (const auto& c : pattern) {
      if (!c.Matches(rel, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<relation::Value> values;
    values.reserve(static_cast<size_t>(rel.attr_count()));
    for (int a = 0; a < rel.attr_count(); ++a) values.push_back(rel.Get(row, a));
    out.AppendRow(values);
  }
  return out;
}

CfdMeasures ComputeCfdMeasures(const relation::Relation& rel,
                               const ConditionalFd& cfd) {
  relation::RequireNoTombstones(rel, "fd::ComputeCfdMeasures");
  CfdMeasures m;
  if (cfd.IsPlainFd()) {
    m.fd_measures = ComputeMeasures(rel, cfd.embedded());
    m.selected_tuples = rel.tuple_count();
    m.support = rel.tuple_count() == 0 ? 0.0 : 1.0;
    return m;
  }
  relation::Relation selected = SelectByPattern(rel, cfd.pattern());
  m.fd_measures = ComputeMeasures(selected, cfd.embedded());
  m.selected_tuples = selected.tuple_count();
  m.support = rel.tuple_count() == 0
                  ? 0.0
                  : static_cast<double>(selected.tuple_count()) /
                        static_cast<double>(rel.tuple_count());
  return m;
}

RepairResult ExtendConditional(const relation::Relation& rel,
                               const ConditionalFd& cfd,
                               const RepairOptions& opts) {
  relation::RequireNoTombstones(rel, "fd::ExtendConditional");
  if (cfd.IsPlainFd()) return Extend(rel, cfd.embedded(), opts);
  relation::Relation selected = SelectByPattern(rel, cfd.pattern());
  RepairOptions local = opts;
  // Condition attributes are constant on the subset; they cannot help and
  // adding them would be vacuous — exclude them from the pool.
  relation::AttrSet excluded;
  for (const auto& c : cfd.pattern()) excluded.Add(c.attr);
  relation::AttrSet pool =
      selected.schema().AllAttrs().Minus(excluded);
  local.pool.restrict_to = local.pool.restrict_to.Empty()
                               ? pool
                               : local.pool.restrict_to.Intersect(pool);
  return Extend(selected, cfd.embedded(), local);
}

std::vector<ConditionRepair> RefineByCondition(
    const relation::Relation& rel, const ConditionalFd& cfd,
    const ConditionRepairOptions& opts) {
  relation::Relation base = cfd.IsPlainFd()
                                ? relation::Relation(rel.name(), rel.schema())
                                : SelectByPattern(rel, cfd.pattern());
  const relation::Relation& subset = cfd.IsPlainFd() ? rel : base;

  relation::AttrSet candidates =
      subset.schema().AllAttrs().Minus(cfd.embedded().AllAttrs());
  for (const auto& c : cfd.pattern()) candidates.Remove(c.attr);
  if (!opts.restrict_to.Empty()) {
    candidates = candidates.Intersect(opts.restrict_to);
  }

  std::vector<ConditionRepair> out;
  for (int attr : candidates.ToVector()) {
    const auto& col = subset.column(attr);
    size_t value_count = col.dict_size();
    if (opts.max_values_per_attr != 0) {
      value_count = std::min(value_count, opts.max_values_per_attr);
    }
    for (uint32_t code = 0; code < value_count; ++code) {
      PatternCondition cond{attr, col.DictValue(code)};
      relation::Relation selected = SelectByPattern(subset, {cond});
      if (selected.tuple_count() < opts.min_selected) continue;
      FdMeasures m = ComputeMeasures(selected, cfd.embedded());
      if (!m.exact) continue;
      ConditionRepair r;
      r.condition = cond;
      std::vector<PatternCondition> pattern = cfd.pattern();
      pattern.push_back(cond);
      r.refined = ConditionalFd(cfd.embedded(), std::move(pattern));
      r.selected_tuples = selected.tuple_count();
      r.support = subset.tuple_count() == 0
                      ? 0.0
                      : static_cast<double>(selected.tuple_count()) /
                            static_cast<double>(subset.tuple_count());
      out.push_back(std::move(r));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ConditionRepair& a, const ConditionRepair& b) {
                     return a.support > b.support;
                   });
  return out;
}

}  // namespace fdevolve::fd
