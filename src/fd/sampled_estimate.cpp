#include "fd/sampled_estimate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>

namespace fdevolve::fd {
namespace {

/// Normal-tail slack on the Good–Turing discovery rate (~99.5th
/// percentile one-sided). The statistical suite measures the realized
/// coverage this buys across the adversarial churn scenarios.
constexpr double kUpperZ = 2.576;

double ClampTo(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

SampleProjectionStats ProjectionStats(const relation::Relation& rel,
                                      const std::vector<uint32_t>& rows,
                                      const relation::AttrSet& attrs) {
  SampleProjectionStats stats;
  const std::vector<int> idx = attrs.ToVector();
  // Keys are the concatenated dictionary codes of the projection —
  // positionally comparable because codes identify values exactly
  // (kNullCode included), and cheap to hash as raw bytes.
  std::string key(idx.size() * sizeof(uint32_t), '\0');
  std::unordered_map<std::string, size_t> counts;
  counts.reserve(rows.size() * 2);
  for (uint32_t row : rows) {
    for (size_t a = 0; a < idx.size(); ++a) {
      const uint32_t code = rel.column(idx[a]).code(row);
      std::memcpy(key.data() + a * sizeof(uint32_t), &code, sizeof(uint32_t));
    }
    ++counts[key];
  }
  stats.distinct = counts.size();
  for (const auto& [k, c] : counts) {
    if (c == 1) ++stats.singletons;
  }
  return stats;
}

CountEstimate EstimateDistinct(const SampleProjectionStats& stats, size_t m,
                               size_t n) {
  CountEstimate out;
  out.lo = stats.distinct;
  const double d = static_cast<double>(stats.distinct);
  if (m >= n) {
    // Full coverage: the sample is the population.
    out.est = d;
    out.hi = d;
    return out;
  }
  const double unseen = static_cast<double>(n - m);
  if (m == 0) {
    // No information: anything from 0 to n distinct keys is possible.
    out.est = 0.0;
    out.hi = static_cast<double>(n);
    return out;
  }
  const double f1 = static_cast<double>(stats.singletons);
  const double md = static_cast<double>(m);
  // Every unseen row reveals at most one new key, so d + unseen caps
  // both the estimate and the upper bound.
  const double cap = d + unseen;
  out.est = std::min(d + unseen * (f1 / md), cap);
  const double hi_rate = std::min(1.0, (f1 + kUpperZ * std::sqrt(f1 + 1.0)) / md);
  out.hi = std::min(d + unseen * hi_rate, cap);
  return out;
}

SampledMeasures EstimateMeasures(const relation::Relation& rel,
                                 const std::vector<uint32_t>& rows,
                                 size_t live_rows, const Fd& fd) {
  SampledMeasures out;
  out.sample_rows = rows.size();
  out.live_rows = live_rows;
  const size_t m = rows.size();
  const size_t n = live_rows;

  const SampleProjectionStats sx = ProjectionStats(rel, rows, fd.lhs());
  const SampleProjectionStats sxy = ProjectionStats(rel, rows, fd.AllAttrs());
  const SampleProjectionStats sy = ProjectionStats(rel, rows, fd.rhs());

  if (m >= n) {
    // Full coverage: route through the exact arithmetic so measures,
    // drift decisions, and serialized bytes are bit-identical to the
    // exact monitor's (the sample_rate=1.0 differential gate).
    out.measures = MeasuresFromCounts(sx.distinct, sxy.distinct, sy.distinct);
    out.approx = false;
    out.witnessed_violation = !out.measures.exact;
    return out;
  }

  out.approx = true;
  if (m == 0) {
    // Empty sample over a non-empty relation: vacuous point estimates
    // with maximally honest intervals.
    out.measures = MeasuresFromCounts(0, 0, 0);
    out.confidence_lo = 0.0;
    out.confidence_hi = 1.0;
    out.goodness_lo = -static_cast<double>(n);
    out.goodness_hi = static_cast<double>(n);
    return out;
  }

  const CountEstimate ex = EstimateDistinct(sx, m, n);
  const CountEstimate exy = EstimateDistinct(sxy, m, n);
  const CountEstimate ey = EstimateDistinct(sy, m, n);

  // Sampled excess: XY-keys beyond X-keys among the sampled rows. e > 0
  // exhibits a witness pair, and the population excess E >= e (each
  // sampled XY-split of an X-group exists in the population).
  const size_t e = sxy.distinct - sx.distinct;
  out.witnessed_violation = e > 0;

  // Structural coherence: D_xy = D_x + E >= D_x + e, so lift the
  // independently estimated XY count to at least the X estimate plus the
  // certain excess before forming the ratio.
  const double est_x = ex.est;
  const double est_xy = std::max(exy.est, est_x + static_cast<double>(e));
  const double est_y = ey.est;

  double c_lo = exy.hi > 0.0 ? static_cast<double>(sx.distinct) / exy.hi : 1.0;
  double c_hi =
      e > 0 ? ex.hi / (ex.hi + static_cast<double>(e)) : 1.0;
  c_lo = ClampTo(c_lo, 0.0, 1.0);
  c_hi = ClampTo(c_hi, c_lo, 1.0);
  const double c_est =
      est_xy > 0.0 ? ClampTo(est_x / est_xy, c_lo, c_hi) : 1.0;

  const double g_lo = static_cast<double>(sx.distinct) - ey.hi;
  const double g_hi = ex.hi - static_cast<double>(sy.distinct);
  const double g_est = ClampTo(est_x - est_y, g_lo, g_hi);

  out.measures.distinct_x = static_cast<size_t>(std::llround(est_x));
  out.measures.distinct_xy = static_cast<size_t>(std::llround(est_xy));
  out.measures.distinct_y = static_cast<size_t>(std::llround(est_y));
  out.measures.confidence = c_est;
  out.measures.goodness = std::llround(g_est);
  // Sampled drift semantics: "exact" here means "no sampled witness" —
  // the absence of certain evidence, not certainty of absence.
  out.measures.exact = !out.witnessed_violation;
  out.confidence_lo = c_lo;
  out.confidence_hi = c_hi;
  out.goodness_lo = g_lo;
  out.goodness_hi = g_hi;
  return out;
}

}  // namespace fdevolve::fd
