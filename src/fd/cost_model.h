// Statistics-driven cost model for the repair search (in the spirit of
// Hyrise's linear cost model and DuckDB's statistics propagation).
//
// The model turns per-column `query::ColumnStats` into two things the
// planner needs:
//
//   1. A linear per-candidate evaluation-cost estimate. Evaluating one
//      candidate X∪{A} -> Y is two count-only refinement passes over the
//      live rows (C_X -> C_XA and C_XY -> C_XAY) plus the key/dictionary
//      work proportional to the groups the added column can create.
//
//   2. Sound cardinality bounds. |π_{S∪{A}}| ≤ min(n_live, |π_S|·slots(A))
//      where slots(A) is A's ndv plus a NULL slot, and projection counts
//      are monotone in the attribute set. Composing the per-attribute
//      factors bounds everything reachable below a branch, so branches
//      whose best reachable confidence cannot meet the target are pruned
//      before evaluation. All bound arithmetic saturates — a product that
//      would overflow clamps to SIZE_MAX and the bound stays sound.
#pragma once

#include <cstddef>
#include <vector>

#include "query/column_stats.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace fdevolve::fd {

class CostModel {
 public:
  /// Computes live-row ColumnStats for every column of `rel`. Tombstones
  /// are fine: the stats describe exactly the live instance.
  explicit CostModel(const relation::Relation& rel);

  /// For tests: inject stats directly.
  CostModel(std::vector<query::ColumnStats> stats, size_t live_rows);

  size_t live_rows() const { return live_rows_; }
  const query::ColumnStats& stats(int attr) const {
    return stats_[static_cast<size_t>(attr)];
  }

  /// Distinct slots attribute `attr` contributes to a grouping product
  /// (ndv + NULL slot). The factor by which adding it can multiply |π_X|.
  size_t GroupSlots(int attr) const { return stats(attr).group_slots(); }

  /// Estimated evaluation cost in milliseconds for one candidate that adds
  /// `attr`: two count-only sweeps over the live rows plus a per-slot
  /// dictionary-width term. Calibrated against bench_query_micro (a
  /// count-only dense refine pass sweeps ~1 ns/tuple on the reference
  /// AVX2 box; key/dictionary work ~0.25 ns/byte).
  double CandidateCostMs(int attr) const;

  /// `products[r]`: the saturating product of the `r` largest group-slot
  /// counts among `pool` — an upper bound on the multiplier any `r`
  /// further pool extensions can contribute. products[0] == 1; the vector
  /// has `max_extra + 1` entries.
  std::vector<size_t> TopSlotProducts(const relation::AttrSet& pool,
                                      int max_extra) const;

  /// Sound upper bound on |π_{base ∪ {attr} ∪ E}| for every extension set
  /// E drawn from the pool with slot-product ≤ `top_slot_product`, given
  /// |π_base| = base_distinct:
  ///   min(live_rows, base_distinct · slots(attr) · top_slot_product)
  size_t ReachableDistinctBound(size_t base_distinct, int attr,
                                size_t top_slot_product) const {
    return std::min(live_rows_,
                    query::SaturatingMul(
                        query::SaturatingMul(base_distinct, GroupSlots(attr)),
                        top_slot_product));
  }

 private:
  std::vector<query::ColumnStats> stats_;
  size_t live_rows_ = 0;
};

}  // namespace fdevolve::fd
