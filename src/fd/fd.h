// Functional dependency representation and parsing.
#pragma once

#include <string>
#include <vector>

#include "relation/attr_set.h"
#include "relation/schema.h"

namespace fdevolve::fd {

/// A functional dependency X -> Y over some schema (attributes by index).
///
/// Following the paper (§1), FDs are normally decomposed so that the
/// consequent is a single attribute; the class supports set-valued
/// consequents for completeness, and `Decompose()` splits them.
class Fd {
 public:
  Fd() = default;

  /// Throws std::invalid_argument if lhs/rhs overlap or rhs is empty.
  Fd(relation::AttrSet lhs, relation::AttrSet rhs, std::string label = "");

  const relation::AttrSet& lhs() const { return lhs_; }
  const relation::AttrSet& rhs() const { return rhs_; }
  const std::string& label() const { return label_; }

  /// X ∪ Y — the attribute set of the whole FD; |F| in the paper.
  relation::AttrSet AllAttrs() const { return lhs_.Union(rhs_); }

  /// Number of attributes in the FD (|F| = |XY|).
  int Size() const { return AllAttrs().Count(); }

  /// A copy with `attr` added to the antecedent.
  Fd WithAntecedent(int attr) const;

  /// A copy with a whole set added to the antecedent.
  Fd WithAntecedent(const relation::AttrSet& attrs) const;

  /// Splits Y = {A1..Ak} into k FDs X -> Ai (paper's normal form).
  std::vector<Fd> Decompose() const;

  /// Parses "A, B -> C" / "A,B->C,D" against a schema.
  /// Throws std::invalid_argument on syntax errors or unknown attributes.
  static Fd Parse(const std::string& text, const relation::Schema& schema,
                  std::string label = "");

  /// Renders as "[A, B] -> [C]" using the schema's attribute names.
  std::string ToString(const relation::Schema& schema) const;

  bool operator==(const Fd& o) const { return lhs_ == o.lhs_ && rhs_ == o.rhs_; }
  bool operator!=(const Fd& o) const { return !(*this == o); }

 private:
  relation::AttrSet lhs_;
  relation::AttrSet rhs_;
  std::string label_;
};

}  // namespace fdevolve::fd
