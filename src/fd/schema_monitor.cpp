#include "fd/schema_monitor.h"

#include <stdexcept>

namespace fdevolve::fd {

SchemaMonitor::SchemaMonitor(relation::Relation initial, std::vector<Fd> fds,
                             size_t check_interval, int threads)
    : rel_(std::move(initial)),
      eval_(rel_, threads),
      check_interval_(check_interval == 0 ? 1 : check_interval) {
  monitored_.reserve(fds.size());
  for (auto& f : fds) {
    MonitoredFd m;
    m.fd = std::move(f);
    Track(m.fd);
    m.measures = ComputeMeasures(eval_, m.fd);
    m.was_exact_at_registration = m.measures.exact;
    m.violated = !m.measures.exact;
    if (m.violated) m.first_violation_at = rel_.tuple_count();
    monitored_.push_back(std::move(m));
  }
}

void SchemaMonitor::Track(const Fd& fd) {
  // Materializing |π_X| and |π_XY| gives Advance() a chain to maintain;
  // from then on each check costs one table lookup per appended tuple per
  // chain level. |π_Y| needs no grouping: a single consequent is answered
  // from the column dictionary in O(1), and a multi-attribute consequent
  // is worth maintaining too.
  eval_.GroupFor(fd.lhs());
  eval_.GroupFor(fd.AllAttrs());
  if (fd.rhs().Count() > 1) eval_.GroupFor(fd.rhs());
}

void SchemaMonitor::Insert(const std::vector<relation::Value>& row) {
  rel_.AppendRow(row);
  if (++inserts_since_check_ >= check_interval_) {
    inserts_since_check_ = 0;
    CheckNow();
  }
}

void SchemaMonitor::InsertBatch(
    const std::vector<std::vector<relation::Value>>& rows) {
  if (rows.empty()) return;
  rel_.AppendRows(rows);
  inserts_since_check_ += rows.size();
  if (inserts_since_check_ >= check_interval_) {
    inserts_since_check_ %= check_interval_;
    CheckNow();
  }
}

std::vector<size_t> SchemaMonitor::CheckNow() {
  ++checks_run_;
  std::vector<size_t> violated;
  // The evaluator auto-advances over the appended suffix on the first
  // query; every monitored FD's counts are then O(1) reads off the
  // maintained groupings.
  for (size_t i = 0; i < monitored_.size(); ++i) {
    MonitoredFd& m = monitored_[i];
    bool was_violated = m.violated;
    m.measures = ComputeMeasures(eval_, m.fd);
    m.violated = !m.measures.exact;
    if (m.violated) {
      violated.push_back(i);
      if (!was_violated) {
        m.first_violation_at = rel_.tuple_count();
        DriftEvent ev;
        ev.fd_index = i;
        ev.tuple_count = rel_.tuple_count();
        ev.measures = m.measures;
        drift_log_.push_back(ev);
        if (on_drift_) on_drift_(ev);
      }
    }
  }
  return violated;
}

std::vector<RepairResult> SchemaMonitor::SuggestRepairs(
    const RepairOptions& opts) {
  std::vector<RepairResult> out;
  for (const auto& m : monitored_) {
    if (m.violated) {
      out.push_back(Extend(rel_, m.fd, opts));
    }
  }
  return out;
}

void SchemaMonitor::AcceptRepair(size_t fd_index, const Repair& repair) {
  MonitoredFd& m = monitored_.at(fd_index);
  m.fd = repair.repaired;
  Track(m.fd);
  m.measures = ComputeMeasures(eval_, m.fd);
  m.violated = !m.measures.exact;
  m.was_exact_at_registration = m.measures.exact;
  m.first_violation_at = m.violated ? rel_.tuple_count() : 0;
}

}  // namespace fdevolve::fd
