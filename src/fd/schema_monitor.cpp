#include "fd/schema_monitor.h"

#include <stdexcept>
#include <utility>

namespace fdevolve::fd {
namespace {

/// Field-exact equality, doubles compared bitwise-as-values: the restore
/// path recomputes measures through the same integer counts and
/// MeasuresFromCounts arithmetic, so an honest checkpoint matches exactly.
bool SameMeasures(const FdMeasures& a, const FdMeasures& b) {
  return a.distinct_x == b.distinct_x && a.distinct_xy == b.distinct_xy &&
         a.distinct_y == b.distinct_y && a.confidence == b.confidence &&
         a.goodness == b.goodness && a.exact == b.exact;
}

}  // namespace

SchemaMonitor::SchemaMonitor(relation::Relation initial, std::vector<Fd> fds,
                             size_t check_interval, int threads)
    : owned_(std::make_unique<relation::Relation>(std::move(initial))),
      rel_(owned_.get()),
      eval_(*rel_, threads),
      check_interval_(check_interval == 0 ? 1 : check_interval),
      observed_version_(rel_->version()),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()),
      observed_compactions_(rel_->compactions()) {
  RegisterFds(std::move(fds));
}

SchemaMonitor::SchemaMonitor(relation::Relation* shared, std::vector<Fd> fds,
                             size_t check_interval, int threads)
    : rel_(shared),
      eval_(*rel_, threads),
      check_interval_(check_interval == 0 ? 1 : check_interval),
      observed_version_(rel_->version()),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()),
      observed_compactions_(rel_->compactions()) {
  RegisterFds(std::move(fds));
}

SchemaMonitor::SchemaMonitor(relation::Relation* shared, MonitorState state,
                             int threads)
    : rel_(shared),
      eval_(*rel_, threads),
      check_interval_(state.check_interval == 0 ? 1 : state.check_interval),
      inserts_since_check_(state.inserts_since_check),
      checks_run_(state.checks_run),
      observed_version_(rel_->version()),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()),
      observed_compactions_(rel_->compactions()) {
  if (state.watermark != rel_->version()) {
    throw std::invalid_argument(
        "SchemaMonitor: monitor state was captured at watermark " +
        std::to_string(state.watermark) + " but the relation is at " +
        std::to_string(rel_->version()) +
        " (state paired with the wrong relation snapshot)");
  }
  RestoreMonitored(std::move(state.fds), std::move(state.drift_log));
}

SchemaMonitor::SchemaMonitor(MonitorCheckpoint checkpoint, int threads)
    : owned_(std::make_unique<relation::Relation>(std::move(checkpoint.rel))),
      rel_(owned_.get()),
      eval_(*rel_, threads),
      check_interval_(checkpoint.check_interval == 0
                          ? 1
                          : checkpoint.check_interval),
      inserts_since_check_(checkpoint.inserts_since_check),
      checks_run_(checkpoint.checks_run),
      observed_version_(rel_->version()),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()),
      observed_compactions_(rel_->compactions()) {
  RestoreMonitored(std::move(checkpoint.fds), std::move(checkpoint.drift_log));
}

void SchemaMonitor::RegisterFds(std::vector<Fd> fds) {
  monitored_.reserve(fds.size());
  for (auto& f : fds) {
    AddFd(std::move(f));
  }
}

size_t SchemaMonitor::AddFd(Fd fd) {
  const relation::AttrSet all = rel_->schema().AllAttrs();
  if (!fd.AllAttrs().SubsetOf(all)) {
    throw std::invalid_argument(
        "SchemaMonitor: FD references attributes outside the relation "
        "schema");
  }
  MonitoredFd m;
  m.fd = std::move(fd);
  Track(m.fd);
  m.measures = ComputeMeasures(eval_, m.fd);
  m.was_exact_at_registration = m.measures.exact;
  m.violated = !m.measures.exact;
  if (m.violated) m.first_violation_at = rel_->tuple_count();
  monitored_.push_back(std::move(m));
  return monitored_.size() - 1;
}

void SchemaMonitor::RestoreMonitored(std::vector<MonitoredFd> fds,
                                     std::vector<DriftEvent> drift_log) {
  monitored_ = std::move(fds);
  drift_log_ = std::move(drift_log);
  const relation::AttrSet all = rel_->schema().AllAttrs();
  for (auto& m : monitored_) {
    if (!m.fd.AllAttrs().SubsetOf(all)) {
      throw std::invalid_argument(
          "SchemaMonitor: checkpointed FD references attributes outside the "
          "relation schema");
    }
    // Re-materializing from the relation recovers the exact groupings the
    // checkpointed evaluator held (ids are append-stable first-appearance
    // ids — see the bit-identity invariant in query/distinct.h).
    Track(m.fd);
    // Cross-check the carried measures only when the checkpoint holds no
    // unchecked inserts: with inserts_since_check == 0 the stored measures
    // were computed at exactly the current watermark, so a recomputation
    // must match bit for bit and a mismatch means a corrupt or mismatched
    // checkpoint. With pending inserts the stored measures are legitimately
    // stale (they date from the last check) and refresh at the next one.
    if (inserts_since_check_ == 0) {
      FdMeasures recomputed = ComputeMeasures(eval_, m.fd);
      if (!SameMeasures(recomputed, m.measures)) {
        throw std::invalid_argument(
            "SchemaMonitor: checkpointed measures for " +
            m.fd.ToString(rel_->schema()) +
            " disagree with the relation (corrupt or mismatched checkpoint)");
      }
    }
  }
}

MonitorCheckpoint SchemaMonitor::Checkpoint() const {
  return MonitorCheckpoint{*rel_,
                           monitored_,
                           drift_log_,
                           check_interval_,
                           inserts_since_check_,
                           checks_run_};
}

MonitorState SchemaMonitor::State() const {
  return MonitorState{monitored_,
                      drift_log_,
                      check_interval_,
                      inserts_since_check_,
                      checks_run_,
                      rel_->version()};
}

void SchemaMonitor::Track(const Fd& fd) {
  // Materializing |π_X| and |π_XY| gives Advance() a chain to maintain;
  // from then on each check costs one table lookup per appended tuple per
  // chain level. |π_Y| needs no grouping: a single consequent is answered
  // from the column dictionary in O(1), and a multi-attribute consequent
  // is worth maintaining too.
  eval_.GroupFor(fd.lhs());
  eval_.GroupFor(fd.AllAttrs());
  if (fd.rhs().Count() > 1) eval_.GroupFor(fd.rhs());
}

void SchemaMonitor::Insert(const std::vector<relation::Value>& row) {
  rel_->AppendRow(row);
  observed_version_ = rel_->version();
  ++observed_mutations_;
  if (++inserts_since_check_ >= check_interval_) {
    inserts_since_check_ = 0;
    CheckNow();
  }
}

void SchemaMonitor::InsertBatch(
    const std::vector<std::vector<relation::Value>>& rows) {
  if (rows.empty()) return;
  rel_->AppendRows(rows);
  observed_version_ = rel_->version();
  observed_mutations_ += rows.size();
  inserts_since_check_ += rows.size();
  if (inserts_since_check_ >= check_interval_) {
    inserts_since_check_ %= check_interval_;
    CheckNow();
  }
}

void SchemaMonitor::Poll() {
  ResyncAfterCompaction();
  // Cadence counts through the lifetime counters, not version(): a delete
  // leaves version() unchanged and a compaction shrinks it, but both must
  // advance the monitor toward its next check without underflow.
  const size_t mutations = rel_->appends_ever() + rel_->deletes_ever();
  if (mutations == observed_mutations_) return;
  const size_t delta = mutations - observed_mutations_;
  observed_mutations_ = mutations;
  observed_version_ = rel_->version();
  inserts_since_check_ += delta;
  if (inserts_since_check_ >= check_interval_) {
    inserts_since_check_ %= check_interval_;
    CheckNow();
  }
}

void SchemaMonitor::ResyncAfterCompaction() {
  if (rel_->compactions() == observed_compactions_) return;
  observed_compactions_ = rel_->compactions();
  observed_version_ = rel_->version();
  // The evaluator drops every cached grouping when it observes the
  // compaction; re-materialize the monitored chains immediately so the
  // next checks go back to O(Δ) instead of degrading to count-only
  // recomputation.
  for (const auto& m : monitored_) Track(m.fd);
}

void SchemaMonitor::PushEvent(size_t fd_index, DriftKind kind,
                              const FdMeasures& measures) {
  DriftEvent ev;
  ev.fd_index = fd_index;
  ev.tuple_count = rel_->live_count();
  ev.measures = measures;
  ev.kind = kind;
  drift_log_.push_back(ev);
  if (on_drift_) on_drift_(ev);
}

std::vector<size_t> SchemaMonitor::CheckNow() {
  ResyncAfterCompaction();
  ++checks_run_;
  std::vector<size_t> violated;
  // The evaluator auto-advances over the appended suffix (and folds any
  // pending deletions) on the first query; every monitored FD's counts
  // are then O(1) reads off the maintained groupings.
  for (size_t i = 0; i < monitored_.size(); ++i) {
    MonitoredFd& m = monitored_[i];
    bool was_violated = m.violated;
    m.measures = ComputeMeasures(eval_, m.fd);
    m.violated = !m.measures.exact;
    if (m.violated) {
      violated.push_back(i);
      if (!was_violated) {
        m.first_violation_at = rel_->tuple_count();
        PushEvent(i, DriftKind::kViolated, m.measures);
      }
    } else if (was_violated) {
      // Deletes removed the last violating witness pair: the FD is exact
      // again. Unreachable under an append-only workload.
      m.first_violation_at = 0;
      PushEvent(i, DriftKind::kRecovered, m.measures);
    }
  }
  return violated;
}

std::vector<RepairResult> SchemaMonitor::SuggestRepairs(
    const RepairOptions& opts) {
  std::vector<RepairResult> out;
  if (rel_->has_tombstones()) {
    // The repair search scans physical rows (tombstone-unaware by
    // design); hand it the live instance.
    const relation::Relation compacted = rel_->CompactedCopy();
    for (const auto& m : monitored_) {
      if (m.violated) out.push_back(Extend(compacted, m.fd, opts));
    }
    return out;
  }
  for (const auto& m : monitored_) {
    if (m.violated) {
      out.push_back(Extend(*rel_, m.fd, opts));
    }
  }
  return out;
}

void SchemaMonitor::AcceptRepair(size_t fd_index, const Repair& repair) {
  MonitoredFd& m = monitored_.at(fd_index);
  m.fd = repair.repaired;
  Track(m.fd);
  m.measures = ComputeMeasures(eval_, m.fd);
  m.violated = !m.measures.exact;
  m.was_exact_at_registration = m.measures.exact;
  m.first_violation_at = m.violated ? rel_->tuple_count() : 0;
}

}  // namespace fdevolve::fd
