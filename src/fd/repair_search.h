// Extend (§4.3–4.4, Algorithm 3) and FindFDRepairs (Algorithm 1).
//
// Best-first search over antecedent extensions. The frontier is ordered by
// (number of added attributes ascending, candidate rank descending), so the
// first exact FD popped is a *minimal* repair; exhausting the frontier
// enumerates all minimal repairs. Supersets of already-found repairs are
// pruned — they are exact too, but never minimal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fd/candidate_ranking.h"
#include "fd/fd.h"
#include "fd/measures.h"
#include "fd/ordering.h"
#include "relation/relation.h"

namespace fdevolve::fd {

/// \brief How much of the repair space to explore.
enum class SearchMode {
  kFirstRepair,  ///< stop at the first (minimal) repair found
  kAllRepairs,   ///< enumerate all minimal repairs (exponential worst case)
  kTopK,         ///< stop after `top_k` repairs
};

/// \brief Why a search returned (SearchStats::stop_reason).
enum class StopReason {
  kExhausted,       ///< frontier drained: every reachable candidate considered
  kMaxEvaluations,  ///< RepairOptions::max_evaluations cap hit
  kBudget,          ///< latency/cost budget (budget_ms / budget_cost) spent
  kTopK,            ///< requested repair count reached (kFirstRepair / kTopK)
};

/// Short token for logs and EXPLAIN: "exhausted", "max-evaluations",
/// "budget", "top-k".
const char* ToString(StopReason reason);

/// \brief Tuning knobs for one Extend run.
struct RepairOptions {
  SearchMode mode = SearchMode::kAllRepairs;
  size_t top_k = 3;  ///< used by SearchMode::kTopK; 0 means unlimited
                     ///< (equivalent to kAllRepairs)

  /// Maximum number of attributes to add to the antecedent (search depth).
  /// 0 means "up to the whole pool". The paper's algorithm is unbounded;
  /// benches bound it to keep the exponential frontier tractable.
  int max_added_attrs = 0;

  /// Safety valve on total candidate evaluations; 0 = unlimited.
  size_t max_evaluations = 0;

  /// §4.4 extension: when set (>= 0), repairs with |goodness| <= threshold
  /// are preferred. In kFirstRepair mode the search keeps going past a
  /// repair that violates the threshold (recording it as a fallback) until
  /// a within-threshold repair or exhaustion; in other modes the threshold
  /// only affects result ordering.
  int64_t goodness_threshold = -1;

  /// AFD extension (§2's approximate FDs): a candidate is accepted when
  /// its confidence reaches this target. 1.0 (default) demands exactness
  /// (Definition 4); e.g. 0.95 evolves the FD into an approximate FD that
  /// tolerates 5% residual inconsistency — typically a shorter repair.
  double target_confidence = 1.0;

  /// Execution width for candidate evaluation: 0 (default) resolves to
  /// `hardware_concurrency`, 1 forces the exact pre-parallel sequential
  /// code path, k > 1 evaluates each frontier batch (the seed candidates,
  /// then every node expansion's children) across the shared thread pool.
  ///
  /// Every candidate in a batch counts against its own per-worker scratch
  /// while sharing the batch's two materialized base groupings (C_XU and
  /// C_XUY) read-only; results are merged back in pool order with the same
  /// `seq` tie-break numbers the sequential loop would assign. Ranked
  /// output — repairs, measures, and all stats except `elapsed_ms` — is
  /// therefore bit-identical for every thread count.
  int threads = 0;

  /// Statistics-driven planning (fd::CostModel): candidates whose sound
  /// cardinality bound proves that no extension of the branch can reach
  /// `target_confidence` are skipped without evaluation (counted in
  /// SearchStats::pruned_by_bound). Planning changes order and work, never
  /// answers: with no budget configured, the repair set and its measures
  /// are bit-identical to the fixed-rank search (use_planner = false) at
  /// every thread count.
  bool use_planner = true;

  /// Wall-clock latency budget in milliseconds; 0 = unlimited. Checked
  /// between candidate evaluations, so it is best-effort and
  /// timing-dependent: two runs may truncate at different candidates.
  /// When a budget is set the planner spends it cheap/high-signal-first.
  double budget_ms = 0.0;

  /// Modeled-cost budget in milliseconds (CostModel::CandidateCostMs
  /// units); 0 = unlimited. Unlike budget_ms this is deterministic: the
  /// same (rel, fd, opts) always truncates at the same candidate.
  double budget_cost = 0.0;

  PoolOptions pool;
};

/// \brief One exact repair: the attribute set added to the original
/// antecedent.
struct Repair {
  relation::AttrSet added;  ///< U such that XU -> Y is exact
  Fd repaired;              ///< XU -> Y
  FdMeasures measures;      ///< confidence (==1) and goodness of XU -> Y
  /// True if the |g| <= goodness_threshold preference was met (always true
  /// when no threshold is configured).
  bool within_goodness_threshold = true;
};

/// \brief Search instrumentation.
///
/// Deterministic across thread counts except `elapsed_ms` (wall time).
struct SearchStats {
  size_t nodes_expanded = 0;        ///< frontier pops that were not exact
  size_t candidates_evaluated = 0;  ///< measure computations performed
  size_t frontier_peak = 0;         ///< max queue size
  size_t pruned_supersets = 0;      ///< skipped supersets of found repairs
  size_t pruned_by_bound = 0;       ///< skipped by the planner's cardinality bound
  /// Why the search returned. kExhausted means the full reachable space
  /// was considered; anything else means a limit truncated it.
  StopReason stop_reason = StopReason::kExhausted;
  /// Modeled cost (CostModel::CandidateCostMs) of the evaluations actually
  /// performed; 0 when no cost model was in play (planner off, no
  /// budget_cost).
  double planned_cost_ms = 0.0;
  double elapsed_ms = 0.0;
};

/// \brief Result of Extend on one FD.
struct RepairResult {
  Fd original;
  FdMeasures original_measures;
  bool already_exact = false;
  std::vector<Repair> repairs;  ///< minimal repairs in discovery rank order
  SearchStats stats;

  bool found() const { return !repairs.empty(); }
  /// The designer-facing suggestion: best repair or nullopt.
  std::optional<Repair> best() const {
    if (repairs.empty()) return std::nullopt;
    return repairs.front();
  }
};

/// \brief Runs Algorithm 3 on a single FD.
///
/// \param rel the (drifted) instance; must outlive the call only.
/// \param fd the violated dependency X -> Y to repair.
/// \param opts search mode, depth/budget limits, AFD target, and the
///        `threads` execution width (see RepairOptions::threads).
/// \return all discovered minimal repairs in discovery rank order, plus
///         instrumentation. Deterministic for a given (rel, fd, opts)
///         modulo `stats.elapsed_ms`, for every thread count.
RepairResult Extend(const relation::Relation& rel, const Fd& fd,
                    const RepairOptions& opts = {});

/// \brief Outcome of Algorithm 1 over a whole declared FD set.
struct FindRepairsOutcome {
  std::vector<OrderedFd> order;        ///< repair order actually used
  std::vector<RepairResult> results;   ///< one per FD, in `order` sequence
};

/// \brief Runs Algorithm 1: orders the FDs by O_F, then repairs each
/// violated one. `opts.threads` applies to each per-FD Extend run.
FindRepairsOutcome FindFdRepairs(const relation::Relation& rel,
                                 const std::vector<Fd>& fds,
                                 const RepairOptions& opts = {},
                                 const OrderingOptions& ordering = {});

}  // namespace fdevolve::fd
