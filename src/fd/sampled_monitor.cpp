#include "fd/sampled_monitor.h"

#include <stdexcept>
#include <utility>

namespace fdevolve::fd {
namespace {

/// Field-exact equality (doubles bitwise-as-values) — the restore
/// cross-check recomputes through the identical estimation arithmetic,
/// so an honest checkpoint matches exactly.
bool SameMeasures(const FdMeasures& a, const FdMeasures& b) {
  return a.distinct_x == b.distinct_x && a.distinct_xy == b.distinct_xy &&
         a.distinct_y == b.distinct_y && a.confidence == b.confidence &&
         a.goodness == b.goodness && a.exact == b.exact;
}

}  // namespace

SampledSchemaMonitor::SampledSchemaMonitor(relation::Relation initial,
                                           std::vector<Fd> fds,
                                           size_t check_interval,
                                           size_t capacity, uint64_t seed)
    : owned_(std::make_unique<relation::Relation>(std::move(initial))),
      rel_(owned_.get()),
      sampler_(std::make_unique<query::ReservoirSampler>(rel_, capacity, seed)),
      check_interval_(check_interval == 0 ? 1 : check_interval),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()) {
  RegisterFds(std::move(fds));
}

SampledSchemaMonitor::SampledSchemaMonitor(relation::Relation* shared,
                                           std::vector<Fd> fds,
                                           size_t check_interval,
                                           size_t capacity, uint64_t seed)
    : rel_(shared),
      sampler_(std::make_unique<query::ReservoirSampler>(rel_, capacity, seed)),
      check_interval_(check_interval == 0 ? 1 : check_interval),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()) {
  RegisterFds(std::move(fds));
}

SampledSchemaMonitor::SampledSchemaMonitor(relation::Relation* shared,
                                           SampledMonitorState state)
    : rel_(shared),
      check_interval_(state.base.check_interval == 0
                          ? 1
                          : state.base.check_interval),
      inserts_since_check_(state.base.inserts_since_check),
      checks_run_(state.base.checks_run),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()) {
  if (state.base.watermark != rel_->version()) {
    throw std::invalid_argument(
        "SampledSchemaMonitor: monitor state was captured at watermark " +
        std::to_string(state.base.watermark) + " but the relation is at " +
        std::to_string(rel_->version()) +
        " (state paired with the wrong relation snapshot)");
  }
  // The sampler's restore constructor validates the reservoir state
  // against the relation (watermark, compaction count, slot bounds).
  sampler_ =
      std::make_unique<query::ReservoirSampler>(rel_, state.reservoir);
  RestoreMonitored(std::move(state.base.fds), std::move(state.base.drift_log));
}

SampledSchemaMonitor::SampledSchemaMonitor(SampledMonitorCheckpoint checkpoint)
    : owned_(std::make_unique<relation::Relation>(
          std::move(checkpoint.base.rel))),
      rel_(owned_.get()),
      check_interval_(checkpoint.base.check_interval == 0
                          ? 1
                          : checkpoint.base.check_interval),
      inserts_since_check_(checkpoint.base.inserts_since_check),
      checks_run_(checkpoint.base.checks_run),
      observed_mutations_(rel_->appends_ever() + rel_->deletes_ever()) {
  sampler_ =
      std::make_unique<query::ReservoirSampler>(rel_, checkpoint.reservoir);
  RestoreMonitored(std::move(checkpoint.base.fds),
                   std::move(checkpoint.base.drift_log));
}

void SampledSchemaMonitor::RegisterFds(std::vector<Fd> fds) {
  monitored_.reserve(fds.size());
  estimates_.reserve(fds.size());
  for (auto& f : fds) {
    AddFd(std::move(f));
  }
}

size_t SampledSchemaMonitor::AddFd(Fd fd) {
  const relation::AttrSet all = rel_->schema().AllAttrs();
  if (!fd.AllAttrs().SubsetOf(all)) {
    throw std::invalid_argument(
        "SampledSchemaMonitor: FD references attributes outside the relation "
        "schema");
  }
  sampler_->Sync();
  MonitoredFd m;
  m.fd = std::move(fd);
  SampledMeasures est = Estimate(m.fd, sampler_->LiveMembers());
  m.measures = est.measures;
  m.was_exact_at_registration = !est.witnessed_violation;
  m.violated = est.witnessed_violation;
  if (m.violated) m.first_violation_at = rel_->tuple_count();
  monitored_.push_back(std::move(m));
  estimates_.push_back(std::move(est));
  return monitored_.size() - 1;
}

void SampledSchemaMonitor::RestoreMonitored(std::vector<MonitoredFd> fds,
                                            std::vector<DriftEvent> drift_log) {
  monitored_ = std::move(fds);
  drift_log_ = std::move(drift_log);
  estimates_.reserve(monitored_.size());
  const relation::AttrSet all = rel_->schema().AllAttrs();
  const std::vector<uint32_t> live = sampler_->LiveMembers();
  for (auto& m : monitored_) {
    if (!m.fd.AllAttrs().SubsetOf(all)) {
      throw std::invalid_argument(
          "SampledSchemaMonitor: checkpointed FD references attributes "
          "outside the relation schema");
    }
    // Re-estimating from the restored reservoir is a pure function of
    // (relation, reservoir slots), so with no unchecked mutations the
    // carried measures must match bit for bit — the same tamper check
    // the exact monitor's restore path runs.
    SampledMeasures est = Estimate(m.fd, live);
    if (inserts_since_check_ == 0 && !SameMeasures(est.measures, m.measures)) {
      throw std::invalid_argument(
          "SampledSchemaMonitor: checkpointed measures for " +
          m.fd.ToString(rel_->schema()) +
          " disagree with re-estimation (corrupt or mismatched checkpoint)");
    }
    estimates_.push_back(std::move(est));
  }
}

SampledMonitorCheckpoint SampledSchemaMonitor::Checkpoint() const {
  return SampledMonitorCheckpoint{
      MonitorCheckpoint{*rel_, monitored_, drift_log_, check_interval_,
                        inserts_since_check_, checks_run_},
      sampler_->State()};
}

SampledMonitorState SampledSchemaMonitor::State() const {
  SampledMonitorState s;
  s.base = MonitorState{monitored_,
                        drift_log_,
                        check_interval_,
                        inserts_since_check_,
                        checks_run_,
                        rel_->version()};
  s.reservoir = sampler_->State();
  return s;
}

SampledMeasures SampledSchemaMonitor::Estimate(
    const Fd& fd, const std::vector<uint32_t>& live_members) const {
  return EstimateMeasures(*rel_, live_members, rel_->live_count(), fd);
}

void SampledSchemaMonitor::Insert(const std::vector<relation::Value>& row) {
  rel_->AppendRow(row);
  sampler_->Sync();
  ++observed_mutations_;
  if (++inserts_since_check_ >= check_interval_) {
    inserts_since_check_ = 0;
    CheckNow();
  }
}

void SampledSchemaMonitor::InsertBatch(
    const std::vector<std::vector<relation::Value>>& rows) {
  if (rows.empty()) return;
  rel_->AppendRows(rows);
  sampler_->Sync();
  observed_mutations_ += rows.size();
  inserts_since_check_ += rows.size();
  if (inserts_since_check_ >= check_interval_) {
    inserts_since_check_ %= check_interval_;
    CheckNow();
  }
}

void SampledSchemaMonitor::Poll() {
  // Sync unconditionally, not just when a check is due: the sampler's
  // draw sequence depends on when it observes each append/compaction, so
  // folding at every statement boundary is what keeps serial replay (and
  // checkpoint/resume) bit-identical.
  sampler_->Sync();
  const size_t mutations = rel_->appends_ever() + rel_->deletes_ever();
  if (mutations == observed_mutations_) return;
  const size_t delta = mutations - observed_mutations_;
  observed_mutations_ = mutations;
  inserts_since_check_ += delta;
  if (inserts_since_check_ >= check_interval_) {
    inserts_since_check_ %= check_interval_;
    CheckNow();
  }
}

void SampledSchemaMonitor::PushEvent(size_t fd_index, DriftKind kind,
                                     const SampledMeasures& est) {
  DriftEvent ev;
  ev.fd_index = fd_index;
  ev.tuple_count = rel_->live_count();
  ev.measures = est.measures;
  ev.kind = kind;
  ev.approx = est.approx;
  ev.confidence_lo = est.confidence_lo;
  ev.confidence_hi = est.confidence_hi;
  ev.goodness_lo = est.goodness_lo;
  ev.goodness_hi = est.goodness_hi;
  drift_log_.push_back(ev);
  if (on_drift_) on_drift_(ev);
}

std::vector<size_t> SampledSchemaMonitor::CheckNow() {
  sampler_->Sync();
  ++checks_run_;
  const std::vector<uint32_t> live = sampler_->LiveMembers();
  std::vector<size_t> violated;
  for (size_t i = 0; i < monitored_.size(); ++i) {
    MonitoredFd& m = monitored_[i];
    const bool was_violated = m.violated;
    SampledMeasures est = Estimate(m.fd, live);
    m.measures = est.measures;
    m.violated = est.witnessed_violation;
    if (m.violated) {
      violated.push_back(i);
      if (!was_violated) {
        m.first_violation_at = rel_->tuple_count();
        PushEvent(i, DriftKind::kViolated, est);
      }
    } else if (was_violated) {
      // No sampled witness remains (deletes removed them, or the last
      // witness was evicted from the reservoir).
      m.first_violation_at = 0;
      PushEvent(i, DriftKind::kRecovered, est);
    }
    estimates_[i] = est;
    if (on_estimate_) on_estimate_(i, estimates_[i]);
  }
  return violated;
}

}  // namespace fdevolve::fd
