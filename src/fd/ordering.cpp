#include "fd/ordering.h"

#include <algorithm>

namespace fdevolve::fd {

double ConflictScore(const Fd& fd, const std::vector<Fd>& all) {
  if (all.empty()) return 0.0;
  double sum = 0.0;
  for (const Fd& other : all) {
    if (other == fd) continue;
    int common = fd.AllAttrs().Intersect(other.AllAttrs()).Count();
    int denom = std::max(fd.Size(), other.Size());
    if (denom > 0) sum += static_cast<double>(common) / denom;
  }
  return sum / static_cast<double>(all.size());
}

std::vector<OrderedFd> OrderFds(const relation::Relation& rel,
                                const std::vector<Fd>& fds,
                                const OrderingOptions& opts) {
  query::DistinctEvaluator eval(rel);
  std::vector<OrderedFd> out;
  out.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    OrderedFd o;
    o.fd = fds[i];
    o.measures = ComputeMeasures(eval, fds[i]);
    o.conflict = opts.include_conflict ? ConflictScore(fds[i], fds) : 0.0;
    o.rank = (o.measures.inconsistency() + o.conflict) / 2.0;
    o.original_index = i;
    out.push_back(std::move(o));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OrderedFd& a, const OrderedFd& b) {
                     if (a.rank != b.rank) return a.rank > b.rank;
                     return a.original_index < b.original_index;
                   });
  return out;
}

}  // namespace fdevolve::fd
