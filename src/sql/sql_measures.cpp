#include "sql/sql_measures.h"

#include "sql/engine.h"

namespace fdevolve::sql {
namespace {

std::string CountDistinct(const relation::Schema& schema,
                          const relation::AttrSet& attrs,
                          const std::string& table) {
  if (attrs.Empty()) {
    // |π_{}| has no COUNT DISTINCT rendering; the paper's FDs always have
    // non-empty antecedents in the SQL path.
    throw std::invalid_argument(
        "BuildMeasureQueries: empty attribute set has no SQL form");
  }
  std::string cols;
  for (int a : attrs.ToVector()) {
    if (!cols.empty()) cols += ", ";
    cols += schema.attr(a).name;
  }
  return "SELECT COUNT(DISTINCT " + cols + ") FROM " + table;
}

}  // namespace

MeasureQueries BuildMeasureQueries(const relation::Schema& schema,
                                   const fd::Fd& fd,
                                   const std::string& table) {
  MeasureQueries q;
  q.count_x = CountDistinct(schema, fd.lhs(), table);
  q.count_xy = CountDistinct(schema, fd.AllAttrs(), table);
  q.count_y = CountDistinct(schema, fd.rhs(), table);
  return q;
}

fd::FdMeasures ComputeMeasuresViaSql(const Database& db,
                                     const std::string& table,
                                     const fd::Fd& fd) {
  const auto& schema = db.Get(table).schema();
  MeasureQueries q = BuildMeasureQueries(schema, fd, table);
  fd::FdMeasures m;
  m.distinct_x = ExecuteSql(q.count_x, db);
  m.distinct_xy = ExecuteSql(q.count_xy, db);
  m.distinct_y = ExecuteSql(q.count_y, db);
  if (m.distinct_xy == 0) {
    m.confidence = 1.0;
    m.goodness = 0;
    m.exact = true;
    return m;
  }
  m.confidence =
      static_cast<double>(m.distinct_x) / static_cast<double>(m.distinct_xy);
  m.goodness = static_cast<int64_t>(m.distinct_x) -
               static_cast<int64_t>(m.distinct_y);
  m.exact = m.distinct_x == m.distinct_xy;
  return m;
}

}  // namespace fdevolve::sql
