// Named-relation catalog with declared FDs — the "connect to a database,
// visualise its relations and FDs" surface of the paper's prototype (§6).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace fdevolve::sql {

/// One declared FD within a catalog.
struct DeclaredFd {
  std::string table;
  fd::Fd fd;
};

/// In-memory database: relations by name plus declared FDs.
///
/// Relations are stored behind stable pointers so FD declarations and the
/// query engine can hold references across catalog growth.
class Database {
 public:
  Database() = default;

  /// Adds a relation; throws std::invalid_argument on duplicate name.
  const relation::Relation& AddRelation(relation::Relation rel);

  /// Lookup; throws std::invalid_argument if absent.
  const relation::Relation& Get(const std::string& name) const;
  relation::Relation& GetMutable(const std::string& name);

  bool Has(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Declares an FD parsed against the table's schema ("A, B -> C").
  const DeclaredFd& DeclareFd(const std::string& table,
                              const std::string& fd_text,
                              std::string label = "");

  /// Declares an already-constructed FD (the snapshot-load path, where
  /// attribute indices arrive directly). Throws std::invalid_argument if
  /// the table is absent or the FD references attributes outside its
  /// schema.
  const DeclaredFd& DeclareFd(const std::string& table, fd::Fd fd);

  /// All declared FDs, optionally restricted to one table.
  std::vector<DeclaredFd> Fds(const std::string& table = "") const;

  /// Replaces a declared FD (designer accepting an evolution).
  void ReplaceFd(const std::string& table, const fd::Fd& old_fd,
                 const fd::Fd& new_fd);

 private:
  std::vector<std::unique_ptr<relation::Relation>> relations_;
  std::vector<DeclaredFd> fds_;
};

/// Saves catalog as a directory: one `<table>.csv` per relation plus
/// `fds.txt` ("table: X -> Y" lines). Returns false + error on I/O issues.
bool SaveCatalog(const Database& db, const std::string& dir,
                 std::string* error);

/// Loads a catalog previously written by SaveCatalog.
bool LoadCatalog(const std::string& dir, Database* db, std::string* error);

}  // namespace fdevolve::sql
