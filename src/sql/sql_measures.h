// Confidence and goodness computed literally through SQL — the path the
// paper's Java+MySQL prototype takes (§4.4's Q1/Q2). Exists so the bench
// suite can compare it against the in-core evaluator and so the generated
// query text can be handed to a real DBMS.
#pragma once

#include <string>
#include <vector>

#include "fd/measures.h"
#include "sql/database.h"

namespace fdevolve::sql {

/// The generated statements for one FD, in the paper's Q1/Q2 form.
struct MeasureQueries {
  std::string count_x;    ///< SELECT COUNT(DISTINCT X...) FROM t
  std::string count_xy;   ///< SELECT COUNT(DISTINCT X...,Y...) FROM t
  std::string count_y;    ///< SELECT COUNT(DISTINCT Y...) FROM t
};

/// Renders the three COUNT DISTINCT statements for `fd` on `table`.
MeasureQueries BuildMeasureQueries(const relation::Schema& schema,
                                   const fd::Fd& fd, const std::string& table);

/// Computes FdMeasures by parsing and executing the generated SQL against
/// the database — numerically identical to fd::ComputeMeasures, via a
/// completely independent code path (asserted in tests).
fd::FdMeasures ComputeMeasuresViaSql(const Database& db,
                                     const std::string& table,
                                     const fd::Fd& fd);

}  // namespace fdevolve::sql
