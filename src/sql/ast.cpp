#include "sql/ast.h"

#include <sstream>

#include "util/strings.h"

namespace fdevolve::sql {
namespace {

std::string RenderLiteral(const relation::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_string()) {
    // Re-escape single quotes.
    std::string out = "'";
    for (char c : v.as_string()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  if (v.is_double()) {
    // Shortest round-trip form (not Value::ToString's 6-digit ostream
    // default, which loses precision). Keep a '.' or exponent in the text
    // so re-parsing yields a double again, not an int.
    std::string out = util::DoubleShortestRoundTrip(v.as_double());
    if (out.find('.') == std::string::npos &&
        out.find('e') == std::string::npos &&
        out.find('E') == std::string::npos) {
      out += ".0";
    }
    return out;
  }
  return v.ToString();
}

}  // namespace

std::string Condition::ToString() const {
  switch (op) {
    case Op::kEq:
      return column + " = " + RenderLiteral(literal);
    case Op::kNeq:
      return column + " <> " + RenderLiteral(literal);
    case Op::kIsNull:
      return column + " IS NULL";
    case Op::kIsNotNull:
      return column + " IS NOT NULL";
  }
  return column;
}

std::string InsertStatement::ToString() const {
  std::ostringstream os;
  os << "INSERT INTO " << table << " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) os << ", ";
    os << "(";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << ", ";
      os << RenderLiteral(rows[r][c]);
    }
    os << ")";
  }
  return os.str();
}

std::string CountQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT COUNT(";
  if (distinct) {
    os << "DISTINCT ";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << columns[i];
    }
  } else {
    os << "*";
  }
  os << ") FROM " << table;
  for (size_t i = 0; i < where.size(); ++i) {
    os << (i == 0 ? " WHERE " : " AND ") << where[i].ToString();
  }
  return os.str();
}

}  // namespace fdevolve::sql
