#include "sql/ast.h"

#include <sstream>

namespace fdevolve::sql {
namespace {

std::string RenderLiteral(const relation::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_string()) {
    // Re-escape single quotes.
    std::string out = "'";
    for (char c : v.as_string()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  return v.ToString();
}

}  // namespace

std::string Condition::ToString() const {
  switch (op) {
    case Op::kEq:
      return column + " = " + RenderLiteral(literal);
    case Op::kNeq:
      return column + " <> " + RenderLiteral(literal);
    case Op::kIsNull:
      return column + " IS NULL";
    case Op::kIsNotNull:
      return column + " IS NOT NULL";
  }
  return column;
}

std::string CountQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT COUNT(";
  if (distinct) {
    os << "DISTINCT ";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << columns[i];
    }
  } else {
    os << "*";
  }
  os << ") FROM " << table;
  for (size_t i = 0; i < where.size(); ++i) {
    os << (i == 0 ? " WHERE " : " AND ") << where[i].ToString();
  }
  return os.str();
}

}  // namespace fdevolve::sql
