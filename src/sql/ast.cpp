#include "sql/ast.h"

#include <cctype>
#include <sstream>

#include "sql/token.h"
#include "util/strings.h"

namespace fdevolve::sql {
namespace {

/// SQL-facing spelling of a column type (the parser matches these
/// case-insensitively, see ParseStatement).
const char* SqlTypeName(relation::DataType t) {
  switch (t) {
    case relation::DataType::kInt64:
      return "INT64";
    case relation::DataType::kDouble:
      return "DOUBLE";
    case relation::DataType::kString:
      return "STRING";
  }
  return "STRING";
}

std::string RenderLiteral(const relation::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_string()) {
    // Re-escape single quotes.
    std::string out = "'";
    for (char c : v.as_string()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  if (v.is_double()) {
    // Shortest round-trip form (not Value::ToString's 6-digit ostream
    // default, which loses precision). Keep a '.' or exponent in the text
    // so re-parsing yields a double again, not an int.
    std::string out = util::DoubleShortestRoundTrip(v.as_double());
    if (out.find('.') == std::string::npos &&
        out.find('e') == std::string::npos &&
        out.find('E') == std::string::npos) {
      out += ".0";
    }
    return out;
  }
  return v.ToString();
}

}  // namespace

std::string QuoteIdentifier(const std::string& name) {
  bool bare = !name.empty() && !IsReservedWord(name);
  if (bare) {
    char first = name[0];
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
      bare = false;
    }
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        bare = false;
        break;
      }
    }
  }
  if (bare) return name;
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string Condition::ToString() const {
  const std::string col = QuoteIdentifier(column);
  switch (op) {
    case Op::kEq:
      return col + " = " + RenderLiteral(literal);
    case Op::kNeq:
      return col + " <> " + RenderLiteral(literal);
    case Op::kIsNull:
      return col + " IS NULL";
    case Op::kIsNotNull:
      return col + " IS NOT NULL";
  }
  return col;
}

std::string InsertStatement::ToString() const {
  std::ostringstream os;
  os << "INSERT INTO " << QuoteIdentifier(table) << " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) os << ", ";
    os << "(";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << ", ";
      os << RenderLiteral(rows[r][c]);
    }
    os << ")";
  }
  return os.str();
}

std::string DeleteStatement::ToString() const {
  std::ostringstream os;
  os << "DELETE FROM " << QuoteIdentifier(table);
  for (size_t i = 0; i < where.size(); ++i) {
    os << (i == 0 ? " WHERE " : " AND ") << where[i].ToString();
  }
  return os.str();
}

std::string UpdateStatement::ToString() const {
  std::ostringstream os;
  os << "UPDATE " << QuoteIdentifier(table) << " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(assignments[i].column) << " = "
       << RenderLiteral(assignments[i].value);
  }
  for (size_t i = 0; i < where.size(); ++i) {
    os << (i == 0 ? " WHERE " : " AND ") << where[i].ToString();
  }
  return os.str();
}

std::string CountQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT COUNT(";
  if (distinct) {
    os << "DISTINCT ";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << QuoteIdentifier(columns[i]);
    }
  } else {
    os << "*";
  }
  os << ") FROM " << QuoteIdentifier(table);
  for (size_t i = 0; i < where.size(); ++i) {
    os << (i == 0 ? " WHERE " : " AND ") << where[i].ToString();
  }
  return os.str();
}

std::string CreateTableStatement::ToString() const {
  std::ostringstream os;
  os << "CREATE TABLE " << QuoteIdentifier(table) << " (";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(attrs[i].name) << " " << SqlTypeName(attrs[i].type);
  }
  os << ")";
  return os.str();
}

std::string DeclareFdStatement::ToString() const {
  std::ostringstream os;
  os << "DECLARE FD ";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(lhs[i]);
  }
  os << " -> ";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(rhs[i]);
  }
  os << " ON " << QuoteIdentifier(table);
  if (check_interval != 0) os << " EVERY " << check_interval;
  if (sample_size != 0) {
    os << " SAMPLE " << sample_size;
    if (sample_seed != 0) os << " SEED " << sample_seed;
  }
  return os.str();
}

std::string ExplainRepairStatement::ToString() const {
  std::ostringstream os;
  os << "EXPLAIN REPAIR ";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(lhs[i]);
  }
  os << " -> ";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) os << ", ";
    os << QuoteIdentifier(rhs[i]);
  }
  os << " ON " << QuoteIdentifier(table);
  return os.str();
}

std::string CheckpointStatement::ToString() const { return "CHECKPOINT"; }

std::string ShutdownStatement::ToString() const { return "SHUTDOWN"; }

std::string SubscribeStatement::ToString() const {
  return "SUBSCRIBE DRIFT ON " + QuoteIdentifier(table);
}

}  // namespace fdevolve::sql
