// AST for the mini-SQL dialect.
//
// Grammar (enough to express everything §4.4 issues, plus simple
// selections for the conditional-FD extension):
//
//   query      := SELECT COUNT '(' (DISTINCT columns | '*') ')'
//                 FROM identifier [WHERE condition (AND condition)*]
//   columns    := identifier (',' identifier)*
//   condition  := identifier ('=' | '<>') literal
//               | identifier IS [NOT] NULL
//   literal    := number | string
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"

namespace fdevolve::sql {

/// One WHERE conjunct.
struct Condition {
  enum class Op { kEq, kNeq, kIsNull, kIsNotNull };

  std::string column;
  Op op = Op::kEq;
  relation::Value literal;  // unused for IS [NOT] NULL

  std::string ToString() const;
};

/// SELECT COUNT(DISTINCT ...) / COUNT(*) FROM table [WHERE ...].
struct CountQuery {
  bool distinct = false;                // COUNT(*) when false
  std::vector<std::string> columns;     // empty for COUNT(*)
  std::string table;
  std::vector<Condition> where;         // conjunction

  std::string ToString() const;
};

}  // namespace fdevolve::sql
