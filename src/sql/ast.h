// AST for the mini-SQL dialect.
//
// Grammar (enough to express everything §4.4 issues, plus simple
// selections for the conditional-FD extension, plus the INSERT the
// paper's monitoring scenario feeds on):
//
//   statement  := query | insert
//   query      := SELECT COUNT '(' (DISTINCT columns | '*') ')'
//                 FROM identifier [WHERE condition (AND condition)*]
//   insert     := INSERT INTO identifier VALUES row (',' row)*
//   row        := '(' literal (',' literal)* ')'
//   columns    := identifier (',' identifier)*
//   condition  := identifier ('=' | '<>') literal
//               | identifier IS [NOT] NULL
//   literal    := number | string | NULL
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "relation/value.h"

namespace fdevolve::sql {

/// One WHERE conjunct.
struct Condition {
  enum class Op { kEq, kNeq, kIsNull, kIsNotNull };

  std::string column;
  Op op = Op::kEq;
  relation::Value literal;  // unused for IS [NOT] NULL

  std::string ToString() const;
};

/// SELECT COUNT(DISTINCT ...) / COUNT(*) FROM table [WHERE ...].
struct CountQuery {
  bool distinct = false;                // COUNT(*) when false
  std::vector<std::string> columns;     // empty for COUNT(*)
  std::string table;
  std::vector<Condition> where;         // conjunction

  std::string ToString() const;
};

/// INSERT INTO table VALUES (...), (...). Rows carry parsed literals; the
/// engine validates them against the target schema at execution time.
struct InsertStatement {
  std::string table;
  std::vector<std::vector<relation::Value>> rows;

  std::string ToString() const;
};

/// Any parsable statement (see ParseStatement in parser.h).
using Statement = std::variant<CountQuery, InsertStatement>;

}  // namespace fdevolve::sql
