// AST for the mini-SQL dialect.
//
// Grammar (enough to express everything §4.4 issues, plus simple
// selections for the conditional-FD extension, plus the INSERT the
// paper's monitoring scenario feeds on, plus the DDL / monitoring
// statements the FD-monitoring server multiplexes over one catalog):
//
//   statement  := query | insert | delete | update | create | declare_fd
//               | explain | checkpoint | shutdown | subscribe
//   query      := SELECT COUNT '(' (DISTINCT columns | '*') ')'
//                 FROM identifier [WHERE condition (AND condition)*]
//   insert     := INSERT INTO identifier VALUES row (',' row)*
//   delete     := DELETE FROM identifier
//                 [WHERE condition (AND condition)*]
//   update     := UPDATE identifier SET identifier '=' literal
//                 (',' identifier '=' literal)*
//                 [WHERE condition (AND condition)*]
//   create     := CREATE TABLE identifier
//                 '(' identifier type (',' identifier type)* ')'
//   declare_fd := DECLARE FD columns '->' columns ON identifier
//                 [EVERY number] [SAMPLE number [SEED number]]
//   explain    := EXPLAIN REPAIR columns '->' columns ON identifier
//   checkpoint := CHECKPOINT
//   shutdown   := SHUTDOWN
//   subscribe  := SUBSCRIBE DRIFT ON identifier
//   row        := '(' literal (',' literal)* ')'
//   columns    := identifier (',' identifier)*
//   condition  := identifier ('=' | '<>') literal
//               | identifier IS [NOT] NULL
//   literal    := number | string | NULL
//   type       := INT64 | INT | DOUBLE | FLOAT | STRING | STR (identifier,
//                 matched case-insensitively — not reserved words)
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace fdevolve::sql {

/// Renders a name as a dialect identifier: bare when it lexes back as the
/// same unquoted identifier, otherwise "quoted" with embedded quotes
/// doubled. Every ToString in this file routes names through here, so
/// parse(ToString(ast)) == ast holds for any identifier the lexer accepts.
std::string QuoteIdentifier(const std::string& name);

/// One WHERE conjunct.
struct Condition {
  enum class Op { kEq, kNeq, kIsNull, kIsNotNull };

  std::string column;
  Op op = Op::kEq;
  relation::Value literal;  // unused for IS [NOT] NULL

  std::string ToString() const;
};

/// SELECT COUNT(DISTINCT ...) / COUNT(*) FROM table [WHERE ...].
struct CountQuery {
  bool distinct = false;                // COUNT(*) when false
  std::vector<std::string> columns;     // empty for COUNT(*)
  std::string table;
  std::vector<Condition> where;         // conjunction

  std::string ToString() const;
};

/// INSERT INTO table VALUES (...), (...). Rows carry parsed literals; the
/// engine validates them against the target schema at execution time.
struct InsertStatement {
  std::string table;
  std::vector<std::vector<relation::Value>> rows;

  std::string ToString() const;
};

/// DELETE FROM table [WHERE ...] — tombstones every live row matching the
/// conjunction (all live rows when the WHERE is absent). The engine never
/// rewrites surviving rows; see relation::Relation::DeleteRow.
struct DeleteStatement {
  std::string table;
  std::vector<Condition> where;  // conjunction; empty = all rows

  std::string ToString() const;
};

/// One SET column = literal assignment of an UPDATE.
struct Assignment {
  std::string column;
  relation::Value value;
};

/// UPDATE table SET a = 1, b = 'x' [WHERE ...] — executed as
/// delete-old + append-derived-row per matched live row, in physical row
/// order against the pre-statement row set (appended rows are not
/// re-matched).
struct UpdateStatement {
  std::string table;
  std::vector<Assignment> assignments;
  std::vector<Condition> where;  // conjunction; empty = all rows

  std::string ToString() const;
};

/// CREATE TABLE t (a INT64, b STRING, ...) — registers an empty relation
/// in the catalog.
struct CreateTableStatement {
  std::string table;
  std::vector<relation::Attribute> attrs;

  std::string ToString() const;
};

/// DECLARE FD a, b -> c ON t [EVERY n] [SAMPLE k [SEED s]] — declares the
/// FD in the catalog and (in a server session) registers it with the
/// table's monitor. Columns are stored by name; the engine resolves them
/// against the table's schema at execution time. With SAMPLE, validation
/// runs on a seeded reservoir sample of k rows instead of the full
/// relation (fd::SampledSchemaMonitor) and drift events carry estimates
/// with error intervals.
struct DeclareFdStatement {
  std::string table;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
  /// Monitor check interval (EVERY n); 0 = unspecified, the executor's
  /// default applies (the server checks after every INSERT statement).
  size_t check_interval = 0;
  /// Reservoir capacity (SAMPLE k); 0 = exact monitoring, no sampling.
  size_t sample_size = 0;
  /// Sampler seed (SEED s); only meaningful with SAMPLE. ToString omits
  /// a zero seed, which reparses to the same statement.
  uint64_t sample_seed = 0;

  std::string ToString() const;
};

/// EXPLAIN REPAIR a, b -> c ON t — renders the repair-search plan for the
/// FD on the table's current live instance: original measures, column
/// statistics, the planner's candidate order with cost estimates and
/// cardinality bounds, and which branches the bound prunes. Estimates
/// only — no candidate is evaluated and the relation is not modified.
struct ExplainRepairStatement {
  std::string table;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;

  std::string ToString() const;
};

/// CHECKPOINT — persist the server's state to its configured snapshot
/// path. Only meaningful in a server session.
struct CheckpointStatement {
  std::string ToString() const;
};

/// SHUTDOWN — checkpoint (if configured) and stop the server. Only
/// meaningful in a server session.
struct ShutdownStatement {
  std::string ToString() const;
};

/// SUBSCRIBE DRIFT ON t — push this table's drift events to the issuing
/// session as they fire. Only meaningful in a server session.
struct SubscribeStatement {
  std::string table;

  std::string ToString() const;
};

/// Any parsable statement (see ParseStatement in parser.h).
using Statement =
    std::variant<CountQuery, InsertStatement, DeleteStatement, UpdateStatement,
                 CreateTableStatement, DeclareFdStatement,
                 ExplainRepairStatement, CheckpointStatement,
                 ShutdownStatement, SubscribeStatement>;

}  // namespace fdevolve::sql
