#include "sql/parser.h"

#include <cctype>
#include <charconv>

#include "util/parse.h"

namespace fdevolve::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Statement ParseStatement() {
    if (Peek().IsKeyword("INSERT")) {
      InsertStatement ins = ParseInsert();
      ExpectEnd();
      return ins;
    }
    if (Peek().IsKeyword("DELETE")) {
      DeleteStatement del = ParseDelete();
      ExpectEnd();
      return del;
    }
    if (Peek().IsKeyword("UPDATE")) {
      UpdateStatement upd = ParseUpdate();
      ExpectEnd();
      return upd;
    }
    if (Peek().IsKeyword("CREATE")) {
      CreateTableStatement create = ParseCreateTable();
      ExpectEnd();
      return create;
    }
    if (Peek().IsKeyword("DECLARE")) {
      DeclareFdStatement declare = ParseDeclareFd();
      ExpectEnd();
      return declare;
    }
    if (Peek().IsKeyword("EXPLAIN")) {
      ExplainRepairStatement explain = ParseExplainRepair();
      ExpectEnd();
      return explain;
    }
    if (Peek().IsKeyword("CHECKPOINT")) {
      Advance();
      ExpectEnd();
      return CheckpointStatement{};
    }
    if (Peek().IsKeyword("SHUTDOWN")) {
      Advance();
      ExpectEnd();
      return ShutdownStatement{};
    }
    if (Peek().IsKeyword("SUBSCRIBE")) {
      SubscribeStatement sub = ParseSubscribe();
      ExpectEnd();
      return sub;
    }
    CountQuery q = ParseQueryBody();
    ExpectEnd();
    return q;
  }

  CountQuery ParseQuery() {
    CountQuery q = ParseQueryBody();
    ExpectEnd();
    return q;
  }

 private:
  InsertStatement ParseInsert() {
    InsertStatement ins;
    ExpectKeyword("INSERT");
    ExpectKeyword("INTO");
    ins.table = ExpectIdentifier();
    ExpectKeyword("VALUES");
    ins.rows.push_back(ParseRow());
    while (Peek().IsSymbol(",")) {
      Advance();
      ins.rows.push_back(ParseRow());
    }
    return ins;
  }

  std::vector<relation::Value> ParseRow() {
    ExpectSymbol("(");
    std::vector<relation::Value> row;
    row.push_back(ParseLiteral());
    while (Peek().IsSymbol(",")) {
      Advance();
      row.push_back(ParseLiteral());
    }
    ExpectSymbol(")");
    return row;
  }

  DeleteStatement ParseDelete() {
    DeleteStatement del;
    ExpectKeyword("DELETE");
    ExpectKeyword("FROM");
    del.table = ExpectIdentifier();
    del.where = ParseOptionalWhere();
    return del;
  }

  UpdateStatement ParseUpdate() {
    UpdateStatement upd;
    ExpectKeyword("UPDATE");
    upd.table = ExpectIdentifier();
    ExpectKeyword("SET");
    upd.assignments.push_back(ParseAssignment());
    while (Peek().IsSymbol(",")) {
      Advance();
      upd.assignments.push_back(ParseAssignment());
    }
    upd.where = ParseOptionalWhere();
    return upd;
  }

  Assignment ParseAssignment() {
    Assignment a;
    a.column = ExpectIdentifier();
    ExpectSymbol("=");
    a.value = ParseLiteral();
    return a;
  }

  std::vector<Condition> ParseOptionalWhere() {
    std::vector<Condition> where;
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      where.push_back(ParseCondition());
      while (Peek().IsKeyword("AND")) {
        Advance();
        where.push_back(ParseCondition());
      }
    }
    return where;
  }

  CreateTableStatement ParseCreateTable() {
    CreateTableStatement create;
    ExpectKeyword("CREATE");
    ExpectKeyword("TABLE");
    create.table = ExpectIdentifier();
    ExpectSymbol("(");
    create.attrs.push_back(ParseColumnDef());
    while (Peek().IsSymbol(",")) {
      Advance();
      create.attrs.push_back(ParseColumnDef());
    }
    ExpectSymbol(")");
    return create;
  }

  relation::Attribute ParseColumnDef() {
    relation::Attribute attr;
    attr.name = ExpectIdentifier();
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      throw SqlError("expected column type", t.position);
    }
    // Type names are ordinary identifiers (not reserved), matched
    // case-insensitively — the same spellings the CSV header accepts.
    std::string lower;
    for (char c : t.text) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "int64" || lower == "int") {
      attr.type = relation::DataType::kInt64;
    } else if (lower == "double" || lower == "float") {
      attr.type = relation::DataType::kDouble;
    } else if (lower == "string" || lower == "str") {
      attr.type = relation::DataType::kString;
    } else {
      throw SqlError("unknown column type '" + t.text + "'", t.position);
    }
    Advance();
    return attr;
  }

  DeclareFdStatement ParseDeclareFd() {
    DeclareFdStatement declare;
    ExpectKeyword("DECLARE");
    ExpectKeyword("FD");
    declare.lhs.push_back(ExpectIdentifier());
    while (Peek().IsSymbol(",")) {
      Advance();
      declare.lhs.push_back(ExpectIdentifier());
    }
    ExpectSymbol("->");
    declare.rhs.push_back(ExpectIdentifier());
    while (Peek().IsSymbol(",")) {
      Advance();
      declare.rhs.push_back(ExpectIdentifier());
    }
    ExpectKeyword("ON");
    declare.table = ExpectIdentifier();
    if (Peek().IsKeyword("EVERY")) {
      Advance();
      const Token& t = Peek();
      if (t.type != TokenType::kNumber) {
        throw SqlError("EVERY expects a positive integer", t.position);
      }
      auto v = util::ParseUint64(t.text);
      if (!v || *v == 0) {
        throw SqlError("EVERY expects a positive integer, got '" + t.text +
                           "'",
                       t.position);
      }
      declare.check_interval = static_cast<size_t>(*v);
      Advance();
    }
    if (Peek().IsKeyword("SAMPLE")) {
      Advance();
      const Token& t = Peek();
      if (t.type != TokenType::kNumber) {
        throw SqlError("SAMPLE expects a positive integer", t.position);
      }
      auto v = util::ParseUint64(t.text);
      if (!v || *v == 0) {
        throw SqlError("SAMPLE expects a positive integer, got '" + t.text +
                           "'",
                       t.position);
      }
      declare.sample_size = static_cast<size_t>(*v);
      Advance();
      if (Peek().IsKeyword("SEED")) {
        Advance();
        const Token& s = Peek();
        if (s.type != TokenType::kNumber) {
          throw SqlError("SEED expects an unsigned integer", s.position);
        }
        auto sv = util::ParseUint64(s.text);
        if (!sv) {
          throw SqlError("SEED expects an unsigned integer, got '" + s.text +
                             "'",
                         s.position);
        }
        declare.sample_seed = *sv;
        Advance();
      }
    }
    return declare;
  }

  ExplainRepairStatement ParseExplainRepair() {
    ExplainRepairStatement explain;
    ExpectKeyword("EXPLAIN");
    ExpectKeyword("REPAIR");
    explain.lhs.push_back(ExpectIdentifier());
    while (Peek().IsSymbol(",")) {
      Advance();
      explain.lhs.push_back(ExpectIdentifier());
    }
    ExpectSymbol("->");
    explain.rhs.push_back(ExpectIdentifier());
    while (Peek().IsSymbol(",")) {
      Advance();
      explain.rhs.push_back(ExpectIdentifier());
    }
    ExpectKeyword("ON");
    explain.table = ExpectIdentifier();
    return explain;
  }

  SubscribeStatement ParseSubscribe() {
    SubscribeStatement sub;
    ExpectKeyword("SUBSCRIBE");
    ExpectKeyword("DRIFT");
    ExpectKeyword("ON");
    sub.table = ExpectIdentifier();
    return sub;
  }

  CountQuery ParseQueryBody() {
    CountQuery q;
    ExpectKeyword("SELECT");
    ExpectKeyword("COUNT");
    ExpectSymbol("(");
    if (Peek().IsKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
      q.columns.push_back(ExpectIdentifier());
      while (Peek().IsSymbol(",")) {
        Advance();
        q.columns.push_back(ExpectIdentifier());
      }
    } else {
      ExpectSymbol("*");
    }
    ExpectSymbol(")");
    ExpectKeyword("FROM");
    q.table = ExpectIdentifier();
    q.where = ParseOptionalWhere();
    return q;
  }

  void ExpectEnd() {
    if (Peek().type != TokenType::kEnd) {
      throw SqlError("trailing input after statement", Peek().position);
    }
  }

  Condition ParseCondition() {
    Condition c;
    c.column = ExpectIdentifier();
    const Token& t = Peek();
    if (t.IsSymbol("=") || t.IsSymbol("<>")) {
      c.op = t.IsSymbol("=") ? Condition::Op::kEq : Condition::Op::kNeq;
      Advance();
      c.literal = ParseLiteral();
      return c;
    }
    if (t.IsKeyword("IS")) {
      Advance();
      if (Peek().IsKeyword("NOT")) {
        Advance();
        c.op = Condition::Op::kIsNotNull;
      } else {
        c.op = Condition::Op::kIsNull;
      }
      ExpectKeyword("NULL");
      return c;
    }
    throw SqlError("expected comparison operator or IS", t.position);
  }

  relation::Value ParseLiteral() {
    const Token& t = Peek();
    if (t.type == TokenType::kString) {
      Advance();
      return relation::Value(t.text);
    }
    if (t.type == TokenType::kNumber) {
      Advance();
      if (t.text.find_first_of(".eE") != std::string::npos) {
        // from_chars-based and therefore locale-independent: under a
        // comma-decimal process locale (e.g. de_DE) std::stod would stop
        // at the '.' and silently parse 3.14 as 3.
        auto v = util::ParseDouble(t.text);
        if (!v) {
          // The lexer only emits well-formed numbers, so the one failure mode
          // is overflow (e.g. 1e999) — keep the documented SqlError
          // contract, like the integer branch below.
          throw SqlError("numeric literal out of range '" + t.text + "'",
                         t.position);
        }
        return relation::Value(*v);
      }
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
      if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
        throw SqlError("bad integer literal '" + t.text + "'", t.position);
      }
      return relation::Value(v);
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return relation::Value::Null();
    }
    throw SqlError("expected literal", t.position);
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  void ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) {
      throw SqlError("expected " + kw, Peek().position);
    }
    Advance();
  }
  void ExpectSymbol(const std::string& sym) {
    if (!Peek().IsSymbol(sym)) {
      throw SqlError("expected '" + sym + "'", Peek().position);
    }
    Advance();
  }
  std::string ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      throw SqlError("expected identifier", Peek().position);
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

CountQuery Parse(const std::string& input) {
  return Parser(Lex(input)).ParseQuery();
}

Statement ParseStatement(const std::string& input) {
  return Parser(Lex(input)).ParseStatement();
}

}  // namespace fdevolve::sql
