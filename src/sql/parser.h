// Recursive-descent parser for the mini-SQL dialect (see ast.h).
#pragma once

#include <string>

#include "sql/ast.h"
#include "sql/token.h"

namespace fdevolve::sql {

/// Parses one COUNT query; throws SqlError on syntax errors.
CountQuery Parse(const std::string& input);

}  // namespace fdevolve::sql
