// Recursive-descent parser for the mini-SQL dialect (see ast.h).
#pragma once

#include <string>

#include "sql/ast.h"
#include "sql/token.h"

namespace fdevolve::sql {

/// Parses one COUNT query; throws SqlError on syntax errors (including
/// non-SELECT statements — use ParseStatement for the full dialect).
CountQuery Parse(const std::string& input);

/// Parses one statement of the full dialect (SELECT COUNT, INSERT, CREATE
/// TABLE, DECLARE FD, CHECKPOINT, SHUTDOWN, SUBSCRIBE DRIFT); throws
/// SqlError on syntax errors.
Statement ParseStatement(const std::string& input);

}  // namespace fdevolve::sql
