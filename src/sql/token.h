// Token model for the mini-SQL dialect (the COUNT(DISTINCT ...) surface
// the paper's prototype issues against MySQL, §4.4).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace fdevolve::sql {

enum class TokenType {
  kKeyword,     // SELECT, COUNT, DISTINCT, FROM, WHERE, AND, IS, NOT, NULL,
                // AS, INSERT, INTO, VALUES, CREATE, TABLE, DECLARE, FD, ON,
                // EVERY, CHECKPOINT, SHUTDOWN, SUBSCRIBE, DRIFT, DELETE,
                // UPDATE, SET, SAMPLE, SEED, EXPLAIN, REPAIR
  kIdentifier,  // table / column names (optionally "quoted"; "" escapes a
                // literal quote inside a quoted identifier)
  kNumber,      // integer or decimal literal
  kString,      // 'single-quoted'
  kSymbol,      // ( ) , * = <> ->
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalised: keywords uppercased
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const std::string& sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Thrown by the lexer and parser on malformed input; carries position.
class SqlError : public std::runtime_error {
 public:
  SqlError(const std::string& message, size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}

  size_t position() const { return position_; }

 private:
  size_t position_;
};

/// Tokenises an SQL string; throws SqlError on bad characters or
/// unterminated strings.
std::vector<Token> Lex(const std::string& input);

/// True if `word` (any case) is a reserved keyword — such a name must be
/// "quoted" to be used as an identifier (see QuoteIdentifier in ast.h).
bool IsReservedWord(const std::string& word);

}  // namespace fdevolve::sql
