#include "sql/engine.h"

#include "fd/planner.h"
#include "sql/parser.h"
#include "util/flat_table.h"

namespace fdevolve::sql {
namespace {

/// Row predicate for one condition, evaluated on dictionary codes where
/// possible (equality against a literal resolves to a single code).
class CompiledCondition {
 public:
  CompiledCondition(const relation::Relation& rel, const Condition& cond)
      : op_(cond.op) {
    col_ = rel.schema().IndexOf(cond.column);
    if (col_ < 0) {
      throw std::invalid_argument("unknown column '" + cond.column + "' in " +
                                  rel.name());
    }
    if (op_ == Condition::Op::kEq || op_ == Condition::Op::kNeq) {
      if (cond.literal.is_null()) {
        // SQL three-valued logic: = NULL / <> NULL match nothing.
        matches_nothing_ = true;
        return;
      }
      // Resolve the literal to a dictionary code. An absent literal means
      // "= lit" matches nothing and "<> lit" matches every non-NULL row.
      const auto& col = rel.column(col_);
      for (uint32_t c = 0; c < col.dict_size(); ++c) {
        if (col.DictValue(c) == cond.literal) {
          literal_code_ = c;
          literal_present_ = true;
          break;
        }
      }
    }
  }

  bool Pass(const relation::Relation& rel, size_t row) const {
    if (matches_nothing_) return false;
    uint32_t code = rel.column(col_).code(row);
    switch (op_) {
      case Condition::Op::kEq:
        return literal_present_ && code == literal_code_;
      case Condition::Op::kNeq:
        return code != relation::kNullCode &&
               (!literal_present_ || code != literal_code_);
      case Condition::Op::kIsNull:
        return code == relation::kNullCode;
      case Condition::Op::kIsNotNull:
        return code != relation::kNullCode;
    }
    return false;
  }

 private:
  int col_ = -1;
  Condition::Op op_;
  uint32_t literal_code_ = relation::kNullCode;
  bool literal_present_ = false;
  bool matches_nothing_ = false;
};

/// Live rows of `rel` passing every condition, in physical row order,
/// bounded to the pre-statement row set [0, rel.tuple_count()).
std::vector<size_t> MatchingLiveRows(const relation::Relation& rel,
                                     const std::vector<Condition>& where) {
  std::vector<CompiledCondition> conds;
  conds.reserve(where.size());
  for (const auto& c : where) conds.emplace_back(rel, c);
  std::vector<size_t> rows;
  for (size_t row = 0; row < rel.tuple_count(); ++row) {
    if (!rel.is_live(row)) continue;
    bool pass = true;
    for (const auto& c : conds) {
      if (!c.Pass(rel, row)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(row);
  }
  return rows;
}

}  // namespace

uint64_t Execute(const CountQuery& query, const Database& db) {
  const relation::Relation& rel = db.Get(query.table);

  std::vector<CompiledCondition> conds;
  conds.reserve(query.where.size());
  for (const auto& c : query.where) conds.emplace_back(rel, c);

  std::vector<int> cols;
  for (const auto& name : query.columns) {
    int idx = rel.schema().IndexOf(name);
    if (idx < 0) {
      throw std::invalid_argument("unknown column '" + name + "' in " +
                                  rel.name());
    }
    cols.push_back(idx);
  }

  // Filter pass: surviving row indices (and, for DISTINCT, drop rows with
  // NULL in any counted column — SQL semantics). Tombstoned rows are
  // invisible to queries.
  std::vector<size_t> rows;
  rows.reserve(rel.live_count());
  for (size_t row = 0; row < rel.tuple_count(); ++row) {
    if (!rel.is_live(row)) continue;
    bool pass = true;
    for (const auto& c : conds) {
      if (!c.Pass(rel, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (query.distinct) {
      bool has_null = false;
      for (int c : cols) {
        if (rel.column(c).code(row) == relation::kNullCode) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;
    }
    rows.push_back(row);
  }
  if (!query.distinct) return rows.size();

  // Exact distinct count via per-column partition refinement (same plan
  // shape as query::GroupBy, restricted to surviving rows; the open-
  // addressing table replaces the per-pass unordered_map here too).
  std::vector<uint32_t> ids(rows.size(), 0);
  size_t groups = rows.empty() ? 0 : 1;
  util::FlatIdTable next;
  for (int c : cols) {
    next.Reset(rows.size());
    uint32_t fresh = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      uint64_t key = (static_cast<uint64_t>(ids[i]) << 32) |
                     rel.column(c).code(rows[i]);
      bool inserted = false;
      ids[i] = next.FindOrInsert(key, fresh, &inserted);
      if (inserted) ++fresh;
    }
    groups = fresh;
  }
  return groups;
}

uint64_t Execute(const InsertStatement& insert, Database& db) {
  relation::Relation& rel = db.GetMutable(insert.table);
  const relation::Schema& schema = rel.schema();

  // Coerce typeless numeric literals: an integer literal targeting a
  // double column becomes a double (the reverse is rejected — silently
  // truncating 1.5 into an int column would corrupt data). All other
  // validation is delegated to AppendRows, whose all-or-nothing contract
  // keeps the relation unchanged when any row is bad. The statement is
  // only copied when the schema can actually trigger a coercion.
  bool has_double_column = false;
  for (int i = 0; i < schema.size(); ++i) {
    has_double_column |= schema.attr(i).type == relation::DataType::kDouble;
  }
  if (!has_double_column) {
    rel.AppendRows(insert.rows);
    return insert.rows.size();
  }
  std::vector<std::vector<relation::Value>> rows = insert.rows;
  for (auto& row : rows) {
    for (size_t i = 0; i < row.size() && i < static_cast<size_t>(schema.size());
         ++i) {
      if (row[i].is_int() &&
          schema.attr(static_cast<int>(i)).type == relation::DataType::kDouble) {
        row[i] = relation::Value(static_cast<double>(row[i].as_int()));
      }
    }
  }
  rel.AppendRows(rows);
  return rows.size();
}

uint64_t Execute(const DeleteStatement& del, Database& db) {
  relation::Relation& rel = db.GetMutable(del.table);
  // Condition compilation throws on unknown columns before any mutation.
  const std::vector<size_t> rows = MatchingLiveRows(rel, del.where);
  for (size_t row : rows) rel.DeleteRow(row);
  return rows.size();
}

uint64_t Execute(const UpdateStatement& update, Database& db) {
  relation::Relation& rel = db.GetMutable(update.table);
  const relation::Schema& schema = rel.schema();

  // Validate every assignment BEFORE any mutation: a failed UPDATE must
  // leave the relation untouched. Integer literals coerce to double
  // columns (SQL numeric literals are typeless, matching INSERT); a
  // double into an int column is rejected — silent truncation would
  // corrupt data.
  std::vector<std::pair<int, relation::Value>> sets;
  sets.reserve(update.assignments.size());
  for (const auto& a : update.assignments) {
    const int idx = schema.IndexOf(a.column);
    if (idx < 0) {
      throw std::invalid_argument("unknown column '" + a.column + "' in " +
                                  rel.name());
    }
    relation::Value v = a.value;
    const relation::DataType type = schema.attr(idx).type;
    if (v.is_int() && type == relation::DataType::kDouble) {
      v = relation::Value(static_cast<double>(v.as_int()));
    }
    if (!v.is_null() && !v.MatchesType(type)) {
      throw std::invalid_argument(
          "UPDATE: value " + v.ToString() + " does not match column '" +
          a.column + "' of type " + relation::DataTypeName(type));
    }
    sets.emplace_back(idx, std::move(v));
  }

  // Match against the pre-statement row set, then mutate in physical row
  // order: delete the old row, append the derived one. Appended rows land
  // past the snapshot bound, so they are never re-matched — UPDATE is
  // deterministic and terminates even when the assignment re-satisfies
  // the WHERE clause.
  const std::vector<size_t> rows = MatchingLiveRows(rel, update.where);
  std::vector<relation::Value> derived;
  for (size_t row : rows) {
    derived.clear();
    derived.reserve(static_cast<size_t>(rel.attr_count()));
    for (int a = 0; a < rel.attr_count(); ++a) derived.push_back(rel.Get(row, a));
    for (const auto& [idx, v] : sets) derived[static_cast<size_t>(idx)] = v;
    rel.DeleteRow(row);
    rel.AppendRow(derived);
  }
  return rows.size();
}

uint64_t Execute(const CreateTableStatement& create, Database& db) {
  // Schema's constructor rejects duplicate column names; AddRelation
  // rejects duplicate table names.
  db.AddRelation(
      relation::Relation(create.table, relation::Schema(create.attrs)));
  return 0;
}

uint64_t Execute(const DeclareFdStatement& declare, Database& db) {
  const relation::Relation& rel = db.Get(declare.table);
  // Resolve throws on unknown columns; the Fd constructor rejects
  // overlapping sides and an empty consequent.
  fd::Fd fd(rel.schema().Resolve(declare.lhs), rel.schema().Resolve(declare.rhs));
  db.DeclareFd(declare.table, std::move(fd));
  return 0;
}

std::string Execute(const ExplainRepairStatement& explain,
                    const Database& db) {
  const relation::Relation& rel = db.Get(explain.table);
  fd::Fd fd(rel.schema().Resolve(explain.lhs),
            rel.schema().Resolve(explain.rhs));
  return fd::DescribePlan(fd::PlanRepair(rel, fd), rel.schema());
}

uint64_t Execute(const Statement& stmt, Database& db) {
  if (const auto* q = std::get_if<CountQuery>(&stmt)) {
    return Execute(*q, static_cast<const Database&>(db));
  }
  if (const auto* ins = std::get_if<InsertStatement>(&stmt)) {
    return Execute(*ins, db);
  }
  if (const auto* del = std::get_if<DeleteStatement>(&stmt)) {
    return Execute(*del, db);
  }
  if (const auto* upd = std::get_if<UpdateStatement>(&stmt)) {
    return Execute(*upd, db);
  }
  if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
    return Execute(*create, db);
  }
  if (const auto* declare = std::get_if<DeclareFdStatement>(&stmt)) {
    return Execute(*declare, db);
  }
  if (const auto* explain = std::get_if<ExplainRepairStatement>(&stmt)) {
    // The plan text is discarded in this overload (callers wanting it use
    // the ExplainRepairStatement overload directly); executing it here
    // still validates the FD against the catalog.
    Execute(*explain, static_cast<const Database&>(db));
    return 0;
  }
  // CHECKPOINT / SHUTDOWN / SUBSCRIBE DRIFT need a server session: they
  // act on the serving process (durability, lifecycle, push channels),
  // not on catalog contents.
  throw std::invalid_argument(
      "this statement requires a server session (see server::Service)");
}

uint64_t ExecuteSql(const std::string& text, const Database& db) {
  return Execute(Parse(text), db);
}

uint64_t ExecuteSql(const std::string& text, Database& db) {
  return Execute(ParseStatement(text), db);
}

}  // namespace fdevolve::sql
