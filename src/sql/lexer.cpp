#include <cctype>
#include <stdexcept>
#include <unordered_set>

#include "sql/token.h"

namespace fdevolve::sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT",  "COUNT",   "DISTINCT",   "FROM",     "WHERE",     "AND",
      "IS",      "NOT",     "NULL",       "AS",       "INSERT",    "INTO",
      "VALUES",  "CREATE",  "TABLE",      "DECLARE",  "FD",        "ON",
      "EVERY",   "CHECKPOINT", "SHUTDOWN", "SUBSCRIBE", "DRIFT",
      "DELETE",  "UPDATE",  "SET",        "SAMPLE",    "SEED",
      "EXPLAIN", "REPAIR"};
  return kw;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

bool IsReservedWord(const std::string& word) {
  return Keywords().count(Upper(word)) != 0;
}

std::vector<Token> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = Upper(word);
      if (Keywords().count(upper)) {
        out.push_back({TokenType::kKeyword, upper, start});
      } else {
        out.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (c == '"') {  // quoted identifier, preserves case/spaces
      ++i;
      std::string name;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          if (i + 1 < n && input[i + 1] == '"') {  // "" escapes a quote
            name.push_back('"');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        name.push_back(input[i++]);
      }
      if (!closed) throw SqlError("unterminated quoted identifier", start);
      if (name.empty()) {
        // "" would name a column nothing else can reference (ToString
        // would render it as the empty escape again).
        throw SqlError("empty quoted identifier", start);
      }
      out.push_back({TokenType::kIdentifier, std::move(name), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(input[i++]);
      }
      if (!closed) throw SqlError("unterminated string literal", start);
      out.push_back({TokenType::kString, value, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !seen_dot))) {
        seen_dot |= input[i] == '.';
        ++i;
      }
      // Optional exponent ([eE][+-]?digits) — needed so ToString of a
      // shortest-round-trip double (e.g. 1e-07) re-lexes.
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      out.push_back({TokenType::kNumber, input.substr(start, i - start), start});
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '>') {
      out.push_back({TokenType::kSymbol, "->", start});
      i += 2;
      continue;
    }
    if (c == '<' && i + 1 < n && input[i + 1] == '>') {
      out.push_back({TokenType::kSymbol, "<>", start});
      i += 2;
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      out.push_back({TokenType::kSymbol, "<>", start});  // normalise != to <>
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=') {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    throw SqlError(std::string("unexpected character '") + c + "'", start);
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace fdevolve::sql
