// Execution of CountQuery against a Database — the paper's Q1/Q2 path.
//
// COUNT(DISTINCT ...) over the surviving rows of the WHERE conjunction,
// with SQL semantics: rows where any DISTINCT column is NULL are excluded
// from the distinct count, and `col = NULL` never matches (use IS NULL).
#pragma once

#include <cstdint>

#include "sql/ast.h"
#include "sql/database.h"

namespace fdevolve::sql {

/// Executes a parsed query. Throws std::invalid_argument for unknown
/// tables/columns (schema errors are not SqlErrors: the text was valid).
uint64_t Execute(const CountQuery& query, const Database& db);

/// Convenience: parse + execute.
uint64_t ExecuteSql(const std::string& text, const Database& db);

}  // namespace fdevolve::sql
