// Execution of CountQuery against a Database — the paper's Q1/Q2 path.
//
// COUNT(DISTINCT ...) over the surviving rows of the WHERE conjunction,
// with SQL semantics: rows where any DISTINCT column is NULL are excluded
// from the distinct count, and `col = NULL` never matches (use IS NULL).
#pragma once

#include <cstdint>

#include "sql/ast.h"
#include "sql/database.h"

namespace fdevolve::sql {

/// Executes a parsed query. Throws std::invalid_argument for unknown
/// tables/columns (schema errors are not SqlErrors: the text was valid).
uint64_t Execute(const CountQuery& query, const Database& db);

/// Executes a parsed INSERT against the catalog; returns the number of
/// rows inserted. Integer literals are coerced to double for double
/// columns (SQL numeric literals are typeless); any other type mismatch,
/// arity mismatch, or unknown table throws std::invalid_argument and — by
/// relation::Relation::AppendRows' all-or-nothing contract — leaves the
/// relation unchanged.
uint64_t Execute(const InsertStatement& insert, Database& db);

/// Executes a parsed DELETE: tombstones every live row matching the WHERE
/// conjunction (every live row when it is absent), in physical row order.
/// Returns the number of rows deleted. Throws std::invalid_argument on
/// unknown table/columns, before any row is touched.
uint64_t Execute(const DeleteStatement& del, Database& db);

/// Executes a parsed UPDATE: for each live row matching the WHERE
/// conjunction (matched against the pre-statement row set, so appended
/// result rows are never re-matched), tombstones the old row and appends
/// the updated one, in physical row order. Returns the number of rows
/// updated. Assignments are validated up front — unknown column, NULL-able
/// assignment aside, a type mismatch (integer literals coerce to double
/// columns; nothing else coerces) throws std::invalid_argument BEFORE any
/// mutation, so a failed UPDATE leaves the relation unchanged.
uint64_t Execute(const UpdateStatement& update, Database& db);

/// Executes a parsed CREATE TABLE: registers an empty relation. Returns 0.
/// Throws std::invalid_argument on duplicate table or column names.
uint64_t Execute(const CreateTableStatement& create, Database& db);

/// Executes a parsed DECLARE FD: resolves the column names against the
/// table's schema and declares the FD in the catalog. Returns 0. Throws
/// std::invalid_argument on unknown table/columns or an invalid FD
/// (overlapping sides). The EVERY interval is *not* catalog state — it
/// configures the monitor in a server session (see server::Service);
/// executing against a bare Database ignores it.
uint64_t Execute(const DeclareFdStatement& declare, Database& db);

/// Executes a parsed EXPLAIN REPAIR: resolves the FD against the table's
/// schema, builds the repair-search plan (fd::PlanRepair) over the current
/// live instance, and returns fd::DescribePlan's multi-line rendering.
/// Read-only — no candidate is evaluated and the relation is unchanged.
/// Throws std::invalid_argument on unknown table/columns or an invalid FD.
std::string Execute(const ExplainRepairStatement& explain, const Database& db);

/// Executes any parsed statement (reads need only const access; this
/// overload exists for writes). CHECKPOINT / SHUTDOWN / SUBSCRIBE DRIFT
/// only make sense against a server session and throw
/// std::invalid_argument here.
uint64_t Execute(const Statement& stmt, Database& db);

/// Convenience: parse + execute a COUNT query (read-only catalogs).
uint64_t ExecuteSql(const std::string& text, const Database& db);

/// Convenience: parse + execute any statement, INSERT included.
uint64_t ExecuteSql(const std::string& text, Database& db);

}  // namespace fdevolve::sql
