// Execution of CountQuery against a Database — the paper's Q1/Q2 path.
//
// COUNT(DISTINCT ...) over the surviving rows of the WHERE conjunction,
// with SQL semantics: rows where any DISTINCT column is NULL are excluded
// from the distinct count, and `col = NULL` never matches (use IS NULL).
#pragma once

#include <cstdint>

#include "sql/ast.h"
#include "sql/database.h"

namespace fdevolve::sql {

/// Executes a parsed query. Throws std::invalid_argument for unknown
/// tables/columns (schema errors are not SqlErrors: the text was valid).
uint64_t Execute(const CountQuery& query, const Database& db);

/// Executes a parsed INSERT against the catalog; returns the number of
/// rows inserted. Integer literals are coerced to double for double
/// columns (SQL numeric literals are typeless); any other type mismatch,
/// arity mismatch, or unknown table throws std::invalid_argument and — by
/// relation::Relation::AppendRows' all-or-nothing contract — leaves the
/// relation unchanged.
uint64_t Execute(const InsertStatement& insert, Database& db);

/// Executes any parsed statement (reads need only const access; this
/// overload exists for writes).
uint64_t Execute(const Statement& stmt, Database& db);

/// Convenience: parse + execute a COUNT query (read-only catalogs).
uint64_t ExecuteSql(const std::string& text, const Database& db);

/// Convenience: parse + execute any statement, INSERT included.
uint64_t ExecuteSql(const std::string& text, Database& db);

}  // namespace fdevolve::sql
