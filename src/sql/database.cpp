#include "sql/database.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "relation/csv.h"
#include "util/strings.h"

namespace fdevolve::sql {

const relation::Relation& Database::AddRelation(relation::Relation rel) {
  if (Has(rel.name())) {
    throw std::invalid_argument("Database: duplicate relation '" + rel.name() +
                                "'");
  }
  relations_.push_back(
      std::make_unique<relation::Relation>(std::move(rel)));
  return *relations_.back();
}

const relation::Relation& Database::Get(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r->name() == name) return *r;
  }
  throw std::invalid_argument("Database: no relation '" + name + "'");
}

relation::Relation& Database::GetMutable(const std::string& name) {
  for (auto& r : relations_) {
    if (r->name() == name) return *r;
  }
  throw std::invalid_argument("Database: no relation '" + name + "'");
}

bool Database::Has(const std::string& name) const {
  for (const auto& r : relations_) {
    if (r->name() == name) return true;
  }
  return false;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& r : relations_) out.push_back(r->name());
  return out;
}

const DeclaredFd& Database::DeclareFd(const std::string& table,
                                      const std::string& fd_text,
                                      std::string label) {
  const relation::Relation& rel = Get(table);
  fds_.push_back({table, fd::Fd::Parse(fd_text, rel.schema(), std::move(label))});
  return fds_.back();
}

const DeclaredFd& Database::DeclareFd(const std::string& table, fd::Fd fd) {
  const relation::Relation& rel = Get(table);
  if (!fd.AllAttrs().SubsetOf(rel.schema().AllAttrs())) {
    throw std::invalid_argument(
        "Database::DeclareFd: FD references attributes outside the schema "
        "of '" + table + "'");
  }
  fds_.push_back({table, std::move(fd)});
  return fds_.back();
}

std::vector<DeclaredFd> Database::Fds(const std::string& table) const {
  std::vector<DeclaredFd> out;
  for (const auto& d : fds_) {
    if (table.empty() || d.table == table) out.push_back(d);
  }
  return out;
}

void Database::ReplaceFd(const std::string& table, const fd::Fd& old_fd,
                         const fd::Fd& new_fd) {
  for (auto& d : fds_) {
    if (d.table == table && d.fd == old_fd) {
      d.fd = new_fd;
      return;
    }
  }
  throw std::invalid_argument("Database::ReplaceFd: FD not declared on '" +
                              table + "'");
}

bool SaveCatalog(const Database& db, const std::string& dir,
                 std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error) *error = "cannot create '" + dir + "': " + ec.message();
    return false;
  }
  for (const auto& name : db.TableNames()) {
    std::string csv_error;
    if (!relation::WriteCsvFile(db.Get(name), dir + "/" + name + ".csv",
                                &csv_error)) {
      // WriteCsvFile's error locates the cell; prefix the table so a
      // multi-table save names the culprit.
      if (error) *error = "table '" + name + "': " + csv_error;
      return false;
    }
  }
  std::ofstream fds(dir + "/fds.txt");
  if (!fds) {
    if (error) *error = "cannot write fds.txt";
    return false;
  }
  for (const auto& d : db.Fds()) {
    const auto& schema = db.Get(d.table).schema();
    // "table: A, B -> C" — re-parsable by LoadCatalog.
    std::string lhs;
    for (int a : d.fd.lhs().ToVector()) {
      if (!lhs.empty()) lhs += ", ";
      lhs += schema.attr(a).name;
    }
    std::string rhs;
    for (int a : d.fd.rhs().ToVector()) {
      if (!rhs.empty()) rhs += ", ";
      rhs += schema.attr(a).name;
    }
    fds << d.table << ": " << lhs << " -> " << rhs << "\n";
  }
  // Flush before checking: an IO error surfacing only when buffered data
  // hits the disk must not be reported as success.
  fds.flush();
  if (!fds.good()) {
    if (error) *error = "I/O error writing fds.txt";
    return false;
  }
  return true;
}

bool LoadCatalog(const std::string& dir, Database* db, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error) *error = "'" + dir + "' is not a directory";
    return false;
  }
  std::vector<fs::path> csvs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv") csvs.push_back(entry.path());
  }
  std::sort(csvs.begin(), csvs.end());
  for (const auto& path : csvs) {
    auto result = relation::ReadCsvFile(path.string(), path.stem().string());
    if (!result.ok()) {
      if (error) *error = path.string() + ": " + result.error;
      return false;
    }
    db->AddRelation(std::move(*result.relation));
  }
  std::ifstream fds(dir + "/fds.txt");
  if (fds) {
    std::string line;
    size_t line_no = 0;
    while (std::getline(fds, line)) {
      ++line_no;
      auto trimmed = util::Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      auto colon = trimmed.find(':');
      if (colon == std::string_view::npos) {
        if (error) {
          *error = "fds.txt line " + std::to_string(line_no) + ": missing ':'";
        }
        return false;
      }
      std::string table(util::Trim(trimmed.substr(0, colon)));
      std::string fd_text(util::Trim(trimmed.substr(colon + 1)));
      try {
        db->DeclareFd(table, fd_text);
      } catch (const std::invalid_argument& e) {
        if (error) {
          *error = "fds.txt line " + std::to_string(line_no) + ": " + e.what();
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace fdevolve::sql
