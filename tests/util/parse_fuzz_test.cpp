// Property tests for the checked numeric parsers and the shortest
// round-trip double formatter: for randomized values, format -> parse
// must reproduce the input bitwise, and near-miss tokens (trailing
// garbage, leading space, sign abuse, overflow) must be rejected rather
// than truncated. Reproducible via --seed=N / FDEVOLVE_SEED.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "support/fuzz_seed.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fdevolve::util {
namespace {

using testsupport::DeriveSeed;

class ParseFuzz : public ::testing::TestWithParam<int> {
 protected:
  uint64_t seed() const { return DeriveSeed(GetParam()); }
};

TEST_P(ParseFuzz, Int64RoundTripsThroughToString) {
  util::Rng rng(seed() + 7);
  for (int i = 0; i < 2000; ++i) {
    // Bias toward small magnitudes and boundary-adjacent values: shift
    // a raw draw right by a random amount so every width is exercised.
    // Shift >= 1 keeps the draw non-negative, so negating it is safe.
    const int shift = 1 + static_cast<int>(rng.Below(63));
    const int64_t v = static_cast<int64_t>(rng.Next() >> shift);
    const int64_t signed_v = rng.Chance(0.5) ? v : -v;
    const auto parsed = ParseInt64(std::to_string(signed_v));
    ASSERT_TRUE(parsed.has_value()) << signed_v;
    EXPECT_EQ(*parsed, signed_v);
  }
  // Exact boundaries, every run.
  const int64_t lo = std::numeric_limits<int64_t>::min();
  const int64_t hi = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(ParseInt64(std::to_string(lo)), lo);
  EXPECT_EQ(ParseInt64(std::to_string(hi)), hi);
  EXPECT_FALSE(ParseInt64("9223372036854775808").has_value());   // hi + 1
  EXPECT_FALSE(ParseInt64("-9223372036854775809").has_value());  // lo - 1
}

TEST_P(ParseFuzz, Uint64RoundTripsThroughToString) {
  util::Rng rng(seed() + 11);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Next() >> rng.Below(64);
    const auto parsed = ParseUint64(std::to_string(v));
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_EQ(*parsed, v);
  }
  const uint64_t hi = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(ParseUint64(std::to_string(hi)), hi);
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());  // hi + 1
  EXPECT_FALSE(ParseUint64("-1").has_value());  // no modular wrap
  EXPECT_FALSE(ParseUint64("-0").has_value());
}

TEST_P(ParseFuzz, DoubleShortestRoundTripIsBitwiseLossless) {
  // The formatter's contract: the shortest decimal string that parses
  // back to the identical bit pattern. Draw raw 64-bit patterns so
  // subnormals, huge exponents, and negative zero all show up.
  util::Rng rng(seed() + 13);
  int checked = 0;
  while (checked < 2000) {
    const uint64_t bits = rng.Next();
    double v;
    static_assert(sizeof(v) == sizeof(bits), "double is 64-bit");
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isnan(v) || std::isinf(v)) continue;  // ParseDouble rejects
    ++checked;
    const std::string text = DoubleShortestRoundTrip(v);
    const auto parsed = ParseDouble(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    double back = *parsed;
    uint64_t back_bits;
    std::memcpy(&back_bits, &back, sizeof(back));
    EXPECT_EQ(back_bits, bits) << text;
  }
  // And the values FD measures actually produce: ratios of small counts.
  for (int i = 0; i < 500; ++i) {
    const double num = static_cast<double>(1 + rng.Below(100000));
    const double den = static_cast<double>(1 + rng.Below(100000));
    const double v = num / den;
    const auto parsed = ParseDouble(DoubleShortestRoundTrip(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

TEST_P(ParseFuzz, TrailingGarbageIsNeverTruncated) {
  // atoi-style prefix acceptance is the bug class these parsers exist to
  // kill: any valid number with a junk suffix must fail as a whole.
  util::Rng rng(seed() + 17);
  const char junk[] = {'x', ' ', '.', '-', '+', 'e', '_', ','};
  for (int i = 0; i < 500; ++i) {
    const std::string num = std::to_string(static_cast<int64_t>(
        rng.Next() >> rng.Below(64)));
    const std::string bad = num + junk[rng.Below(sizeof(junk))];
    EXPECT_FALSE(ParseInt64(bad).has_value()) << bad;
    EXPECT_FALSE(ParseDouble(bad + "z").has_value()) << bad;
    EXPECT_FALSE(ParseInt64(" " + num).has_value()) << num;
  }
}

TEST(ParseRejectionTest, FixedRejectionCases) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64(" 1").has_value());
  EXPECT_FALSE(ParseInt64("1 ").has_value());
  EXPECT_FALSE(ParseInt64("+-1").has_value());
  EXPECT_FALSE(ParseUint64("").has_value());
  EXPECT_FALSE(ParseUint64("0x10").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("-inf").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());  // overflows to inf
  EXPECT_FALSE(ParseInt("99999999999999999999").has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace fdevolve::util
