#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace fdevolve::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ZeroSeedDoesNotLockUp) {
  Rng r(0);
  EXPECT_NE(r.Next(), 0u);
  EXPECT_NE(r.Next(), r.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(10), 10u);
  }
}

TEST(RngTest, BelowCoversTheRange) {
  Rng r(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(8);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) over 5000 draws should be near 0.5.
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, IdentHasRequestedLengthAndAlphabet) {
  Rng r(4);
  std::string s = r.Ident(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace fdevolve::util
