#include "util/cpu_features.h"

#include <gtest/gtest.h>

#include <string>

namespace fdevolve::util {
namespace {

TEST(CpuFeaturesTest, DetectionIsCachedAndStable) {
  const CpuFeatures& a = DetectCpuFeatures();
  const CpuFeatures& b = DetectCpuFeatures();
  EXPECT_EQ(&a, &b);  // probed once, same cached instance
  EXPECT_EQ(a.sse42, b.sse42);
  EXPECT_EQ(a.avx2, b.avx2);
  EXPECT_EQ(a.avx512, b.avx512);
}

TEST(CpuFeaturesTest, TiersImplyLowerOnes) {
  // A host reporting a wide tier without the narrower ones would mean the
  // probe is wrong (the ISA levels are strictly nested).
  const CpuFeatures& f = DetectCpuFeatures();
  if (f.avx512) {
    EXPECT_TRUE(f.avx2);
  }
  if (f.avx2) {
    EXPECT_TRUE(f.sse42);
  }
}

TEST(CpuFeaturesTest, MaxTierMatchesFlags) {
  CpuFeatures f;
  EXPECT_EQ(f.max_tier(), CpuTier::kBaseline);
  f.sse42 = true;
  EXPECT_EQ(f.max_tier(), CpuTier::kSse42);
  f.avx2 = true;
  EXPECT_EQ(f.max_tier(), CpuTier::kAvx2);
  f.avx512 = true;
  EXPECT_EQ(f.max_tier(), CpuTier::kAvx512);
}

TEST(CpuFeaturesTest, TierNamesRoundTripThroughParse) {
  for (CpuTier tier : {CpuTier::kBaseline, CpuTier::kSse42, CpuTier::kAvx2,
                       CpuTier::kAvx512}) {
    CpuTier parsed = CpuTier::kAvx512;  // poison with a different value
    ASSERT_TRUE(ParseCpuTier(CpuTierName(tier), &parsed)) << CpuTierName(tier);
    EXPECT_EQ(parsed, tier);
  }
}

TEST(CpuFeaturesTest, ParseRejectsUnknownNamesAndLeavesOutputAlone) {
  for (const char* bad : {"", "AVX2", "avx", "sse4.2", "avx512f", "scalar"}) {
    CpuTier tier = CpuTier::kSse42;
    EXPECT_FALSE(ParseCpuTier(bad, &tier)) << "'" << bad << "'";
    EXPECT_EQ(tier, CpuTier::kSse42) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace fdevolve::util
