#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace fdevolve::util {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  double a = t.ElapsedMs();
  double b = t.ElapsedMs();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, MeasuresSleep) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedMs(), 15.0);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Restart();
  EXPECT_LT(t.ElapsedMs(), 15.0);
}

TEST(TimerTest, SecondsMatchesMs) {
  Timer t;
  double ms = t.ElapsedMs();
  double s = t.ElapsedSeconds();
  EXPECT_NEAR(s, ms / 1000.0, 0.01);
}

TEST(FormatDurationTest, MillisecondsOnly) {
  EXPECT_EQ(FormatDurationMs(5), "5ms");
  EXPECT_EQ(FormatDurationMs(0), "0ms");
  EXPECT_EQ(FormatDurationMs(999), "999ms");
}

TEST(FormatDurationTest, SecondsAndMs) {
  EXPECT_EQ(FormatDurationMs(1276), "1s 276ms");
  EXPECT_EQ(FormatDurationMs(20657), "20s 657ms");
}

TEST(FormatDurationTest, MinutesLikeThePaper) {
  // Table 5: "9m 42s 708ms".
  EXPECT_EQ(FormatDurationMs(582708), "9m 42s 708ms");
  EXPECT_EQ(FormatDurationMs(60000), "1m 0s 0ms");
}

TEST(FormatDurationTest, HoursLikeThePaper) {
  // Table 5: "1h 59m 19s 884ms".
  EXPECT_EQ(FormatDurationMs(7159884), "1h 59m 19s 884ms");
}

TEST(FormatDurationTest, RoundsFractionalMs) {
  EXPECT_EQ(FormatDurationMs(4.6), "5ms");
  EXPECT_EQ(FormatDurationMs(4.4), "4ms");
}

}  // namespace
}  // namespace fdevolve::util
