#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace fdevolve::util {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  t.AddRow({"longvalue", "x"});
  t.AddRow({"s", "y"});
  std::string s = t.ToString();
  // Every data line must have the same length (fixed-width columns).
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t nl = s.find('\n', pos);
    std::string line = s.substr(pos, nl - pos);
    if (!line.empty() && line[0] == '|') {
      if (first_len == std::string::npos) {
        first_len = line.size();
      } else {
        EXPECT_EQ(line.size(), first_len);
      }
    }
    pos = nl == std::string::npos ? s.size() : nl + 1;
  }
}

TEST(TablePrinterTest, ArityMismatchThrows) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TablePrinterTest, HeaderAfterRowsThrows) {
  TablePrinter t;
  t.AddRow({"x"});
  EXPECT_THROW(t.SetHeader({"a"}), std::logic_error);
}

TEST(TablePrinterTest, NoTitleOmitsBanner) {
  TablePrinter t;
  t.SetHeader({"a"});
  t.AddRow({"1"});
  EXPECT_EQ(t.ToString().find("=="), std::string::npos);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t;
  t.SetHeader({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace fdevolve::util
