#include "util/binary_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace fdevolve::util {
namespace {

TEST(BinaryIoTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(3.141592653589793);
  w.Str("hello");
  w.Str("");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.141592653589793);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, LittleEndianOnTheWire) {
  BinaryWriter w;
  w.U32(0x04030201u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(w.buffer()[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(w.buffer()[3]), 0x04);
}

TEST(BinaryIoTest, DoubleBitPatternsSurvive) {
  // Exact bits, not value equality: -0.0, NaN payloads, infinities.
  const double cases[] = {-0.0, std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min()};
  BinaryWriter w;
  for (double d : cases) w.F64(d);
  BinaryReader r(w.buffer());
  for (double d : cases) {
    double got = r.F64();
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &d, 8);
    std::memcpy(&got_bits, &got, 8);
    EXPECT_EQ(got_bits, want_bits);
  }
}

TEST(BinaryIoTest, U32ArrayRoundTripIncludingEmpty) {
  BinaryWriter w;
  w.U32Array({1u, 0xffffffffu, 7u});
  w.U32Array({});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.U32Array(), (std::vector<uint32_t>{1u, 0xffffffffu, 7u}));
  EXPECT_EQ(r.U32Array(), std::vector<uint32_t>{});
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, ReadPastEndThrows) {
  BinaryWriter w;
  w.U32(5);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_THROW(r.U8(), BinaryIoError);
  EXPECT_THROW(r.U32(), BinaryIoError);
  EXPECT_THROW(r.U64(), BinaryIoError);
  EXPECT_THROW(r.Str(), BinaryIoError);
}

TEST(BinaryIoTest, TruncatedAtEveryPrefixThrowsNotCrashes) {
  BinaryWriter w;
  w.Str("payload");
  w.U32Array({1, 2, 3});
  w.U64(99);
  const std::string& full = w.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader r(std::string_view(full.data(), cut));
    EXPECT_THROW(
        {
          r.Str();
          r.U32Array();
          r.U64();
        },
        BinaryIoError)
        << "prefix length " << cut;
  }
}

TEST(BinaryIoTest, HugeLengthPrefixFailsBeforeAllocating) {
  // A corrupt length prefix claiming ~2^64 bytes must be rejected by the
  // bounds check, not handed to the allocator.
  BinaryWriter w;
  w.U64(std::numeric_limits<uint64_t>::max());
  w.Bytes("abc", 3);
  {
    BinaryReader r(w.buffer());
    EXPECT_THROW(r.Str(), BinaryIoError);
  }
  {
    BinaryReader r(w.buffer());
    EXPECT_THROW(r.U32Array(), BinaryIoError);
  }
}

TEST(BinaryIoTest, ChecksumDetectsEverySingleBitFlip) {
  BinaryWriter w;
  w.Str("checksummed payload");
  w.U64(1234567890123ULL);
  const uint64_t clean = w.Checksum();
  std::string bytes = w.buffer();
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      EXPECT_NE(Checksum64(bytes.data(), bytes.size()), clean)
          << "flip at byte " << i << " bit " << bit;
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
    }
  }
  EXPECT_EQ(Checksum64(bytes.data(), bytes.size()), clean);
}

TEST(BinaryIoTest, PosAndRemainingTrackReads) {
  BinaryWriter w;
  w.U32(1);
  w.U32(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.pos(), 0u);
  EXPECT_EQ(r.remaining(), 8u);
  r.U32();
  EXPECT_EQ(r.pos(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.AtEnd());
  r.U32();
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace fdevolve::util
