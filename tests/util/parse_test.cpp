#include "util/parse.h"

#include <gtest/gtest.h>

namespace fdevolve::util {
namespace {

TEST(ParseTest, Int64Accepts) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseTest, Int64Rejects) {
  EXPECT_FALSE(ParseInt64(""));
  EXPECT_FALSE(ParseInt64("abc"));
  EXPECT_FALSE(ParseInt64("12x"));       // the atoi bug: partial match
  EXPECT_FALSE(ParseInt64("x12"));
  EXPECT_FALSE(ParseInt64(" 12"));       // no silent whitespace skip
  EXPECT_FALSE(ParseInt64("12 "));
  EXPECT_FALSE(ParseInt64("1.5"));
  EXPECT_FALSE(ParseInt64("9223372036854775808"));  // overflow
  EXPECT_FALSE(ParseInt64("--5"));
}

TEST(ParseTest, Uint64Accepts) {
  EXPECT_EQ(ParseUint64("0"), 0u);
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseTest, Uint64RejectsNegativeInsteadOfWrapping) {
  // strtoul("-1") wraps to 2^64-1; the checked parse must not.
  EXPECT_FALSE(ParseUint64("-1"));
  EXPECT_FALSE(ParseUint64("-0"));
  EXPECT_FALSE(ParseUint64("18446744073709551616"));  // overflow
  EXPECT_FALSE(ParseUint64("12x"));
  EXPECT_FALSE(ParseUint64(""));
}

TEST(ParseTest, IntRangeChecked) {
  EXPECT_EQ(ParseInt("2147483647"), 2147483647);
  EXPECT_EQ(ParseInt("-2147483648"), -2147483648);
  EXPECT_FALSE(ParseInt("2147483648"));
  EXPECT_FALSE(ParseInt("-2147483649"));
  EXPECT_FALSE(ParseInt("abc"));
}

TEST(ParseTest, DoubleAccepts) {
  EXPECT_EQ(ParseDouble("0.95"), 0.95);
  EXPECT_EQ(ParseDouble("1"), 1.0);
  EXPECT_EQ(ParseDouble("-2.5e-3"), -2.5e-3);
  EXPECT_EQ(ParseDouble("1e2"), 100.0);
}

TEST(ParseTest, DoubleRejects) {
  EXPECT_FALSE(ParseDouble(""));
  EXPECT_FALSE(ParseDouble("0.95x"));
  EXPECT_FALSE(ParseDouble("x"));
  EXPECT_FALSE(ParseDouble(" 1.0"));
  EXPECT_FALSE(ParseDouble("nan"));
  EXPECT_FALSE(ParseDouble("inf"));
  EXPECT_FALSE(ParseDouble("1e999"));  // overflows to inf
}

}  // namespace
}  // namespace fdevolve::util
