#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace fdevolve {
namespace {

TEST(ResolveThreadsTest, ZeroAndNegativeMeanAuto) {
  EXPECT_GE(util::ResolveThreads(0), 1);
  EXPECT_GE(util::ResolveThreads(-3), 1);
  EXPECT_EQ(util::ResolveThreads(1), 1);
  EXPECT_EQ(util::ResolveThreads(7), 7);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  util::ThreadPool pool;
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, 1, 8, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // Chunk layout must be a pure function of (n, grain, width) — two runs
  // see identical (chunk, begin, end) triples regardless of scheduling.
  util::ThreadPool pool;
  auto collect = [&] {
    std::mutex mu;
    std::vector<std::tuple<int, size_t, size_t>> chunks;
    pool.ParallelFor(103, 10, 4, [&](int c, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(c, b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  auto a = collect();
  auto b = collect();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);  // ceil(103/10)=11 chunks possible, capped at 4
  // Contiguous, in chunk-index order, covering [0, 103).
  size_t expect_begin = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::get<0>(a[i]), static_cast<int>(i));
    EXPECT_EQ(std::get<1>(a[i]), expect_begin);
    expect_begin = std::get<2>(a[i]);
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ThreadPoolTest, GrainCapsWidth) {
  util::ThreadPool pool;
  std::atomic<int> chunks{0};
  std::atomic<int> max_index{-1};
  pool.ParallelFor(100, 40, 8, [&](int c, size_t, size_t) {
    chunks.fetch_add(1);
    int cur = max_index.load();
    while (c > cur && !max_index.compare_exchange_weak(cur, c)) {
    }
  });
  // ceil(100/40) = 3 chunks even though 8 threads were requested.
  EXPECT_EQ(chunks.load(), 3);
  EXPECT_LT(max_index.load(), 3);
}

TEST(ThreadPoolTest, WidthOneRunsInline) {
  util::ThreadPool pool;
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(50, 1, 1, [&](int c, size_t b, size_t e) {
    EXPECT_EQ(c, 0);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 50u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(pool.worker_count(), 0);  // no workers spawned for inline runs
}

TEST(ThreadPoolTest, NoEmptyChunksWhenWidthDoesNotDivideRange) {
  // n=5 at width 4 gives chunk_size 2 and only 3 non-empty chunks; the
  // pool must shrink the width instead of invoking fn(3, 6, 5) with a
  // begin past the range (regression: wrapped end - begin).
  util::ThreadPool pool;
  std::mutex mu;
  std::vector<std::tuple<int, size_t, size_t>> chunks;
  pool.ParallelFor(5, 1, 4, [&](int c, size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_LT(b, e);  // every chunk non-empty, never inverted
    chunks.emplace_back(c, b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 3u);
  size_t expect_begin = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(std::get<0>(chunks[i]), static_cast<int>(i));
    EXPECT_EQ(std::get<1>(chunks[i]), expect_begin);
    expect_begin = std::get<2>(chunks[i]);
  }
  EXPECT_EQ(expect_begin, 5u);
}

TEST(ThreadPoolTest, EmptyRangeDoesNothing) {
  util::ThreadPool pool;
  bool called = false;
  pool.ParallelFor(0, 1, 8, [&](int, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SumReductionMatchesSequential) {
  util::ThreadPool pool;
  const size_t n = 100000;
  std::vector<uint64_t> partial(8, 0);
  pool.ParallelFor(n, 1, 8, [&](int chunk, size_t begin, size_t end) {
    uint64_t s = 0;
    for (size_t i = begin; i < end; ++i) s += i;
    partial[static_cast<size_t>(chunk)] = s;
  });
  const uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                         uint64_t{0});
  EXPECT_EQ(total, uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  util::ThreadPool pool;
  std::atomic<int> completed{0};
  auto run = [&] {
    pool.ParallelFor(100, 10, 4, [&](int chunk, size_t, size_t) {
      if (chunk == 2) throw std::invalid_argument("chunk 2 failed");
      completed.fetch_add(1);
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
  // All other chunks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  util::ThreadPool pool;
  std::atomic<int> inner_chunks{0};
  pool.ParallelFor(16, 1, 4, [&](int, size_t begin, size_t end) {
    // Nested call from inside a pool task: must not deadlock, must still
    // cover its whole range (inline, as one chunk).
    pool.ParallelFor(end - begin, 1, 4, [&](int c, size_t b, size_t e) {
      EXPECT_EQ(c, 0);
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, end - begin);
      inner_chunks.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_chunks.load(), 4);
}

TEST(ThreadPoolTest, PoolGrowsOnDemandAndIsReusable) {
  util::ThreadPool pool;
  EXPECT_EQ(pool.worker_count(), 0);
  pool.ParallelFor(100, 1, 3, [](int, size_t, size_t) {});
  EXPECT_EQ(pool.worker_count(), 2);  // width 3 = caller + 2 workers
  pool.ParallelFor(100, 1, 6, [](int, size_t, size_t) {});
  EXPECT_EQ(pool.worker_count(), 5);
  // Narrower follow-up jobs reuse the grown pool without shrinking.
  pool.ParallelFor(100, 1, 2, [](int, size_t, size_t) {});
  EXPECT_EQ(pool.worker_count(), 5);
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  // Exercises the job generation/wakeup protocol more than the math.
  util::ThreadPool pool;
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(64, 1, 4, [&](int, size_t begin, size_t end) {
      uint64_t s = 0;
      for (size_t i = begin; i < end; ++i) s += i + 1;
      sum.fetch_add(s);
    });
    ASSERT_EQ(sum.load(), uint64_t{64} * 65 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  EXPECT_EQ(&util::ThreadPool::Global(), &util::ThreadPool::Global());
}

}  // namespace
}  // namespace fdevolve
