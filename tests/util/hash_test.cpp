#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace fdevolve::util {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HashTest, Mix64SpreadsSequentialInputs) {
  // Consecutive integers must land far apart (avalanche).
  std::set<uint64_t> high_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(Mix64(i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 100u);
}

TEST(HashTest, HashCombineOrderMatters) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, HashPairDistinguishesComponents) {
  EXPECT_NE(HashPair(1, 2), HashPair(2, 1));
  EXPECT_NE(HashPair(0, 1), HashPair(1, 0));
  EXPECT_EQ(HashPair(7, 9), HashPair(7, 9));
}

TEST(HashTest, HashPairNoObviousCollisionsOnGrid) {
  std::set<uint64_t> seen;
  for (uint32_t a = 0; a < 64; ++a) {
    for (uint32_t b = 0; b < 64; ++b) {
      seen.insert(HashPair(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

}  // namespace
}  // namespace fdevolve::util
