#include "util/flat_table.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace fdevolve::util {
namespace {

TEST(FlatIdTableTest, InsertThenFind) {
  FlatIdTable t;
  t.Reset(4);
  bool inserted = false;
  EXPECT_EQ(t.FindOrInsert(42, 0, &inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(42, 1, &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatIdTableTest, ResetVacatesAndReusesStorage) {
  FlatIdTable t;
  t.Reset(100);
  bool inserted = false;
  for (uint64_t k = 0; k < 100; ++k) t.FindOrInsert(k, static_cast<uint32_t>(k), &inserted);
  EXPECT_EQ(t.size(), 100u);
  const size_t cap = t.capacity();
  t.Reset(10);  // smaller: capacity must not shrink, slots must be vacated
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.FindOrInsert(5, 7, &inserted), 7u);
  EXPECT_TRUE(inserted);
}

TEST(FlatIdTableTest, CapacityIsPowerOfTwoWithHalfLoad) {
  FlatIdTable t;
  t.Reset(100);
  EXPECT_GE(t.capacity(), 200u);
  EXPECT_EQ(t.capacity() & (t.capacity() - 1), 0u);
}

TEST(FlatIdTableTest, GrowsWhenUnderprovisionedAndMatchesReference) {
  // Start tiny and insert far past the reserved size: growth must rehash
  // without losing or duplicating any mapping. Adversarial-ish keys: dense
  // low bits and (id << 32 | code) shapes, like the refinement loop emits.
  FlatIdTable t;
  t.Reset(2);
  std::unordered_map<uint64_t, uint32_t> ref;
  uint32_t fresh = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    const uint64_t key = (i % 37) << 32 | (i * i % 101);
    bool inserted = false;
    const uint32_t got = t.FindOrInsert(key, fresh, &inserted);
    auto [it, ref_inserted] = ref.emplace(key, fresh);
    EXPECT_EQ(inserted, ref_inserted);
    EXPECT_EQ(got, it->second);
    if (inserted) ++fresh;
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(FlatIdTableTest, WorksWithoutReset) {
  FlatIdTable t;  // first insert must self-initialize via growth
  bool inserted = false;
  EXPECT_EQ(t.FindOrInsert(9, 3, &inserted), 3u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(9, 4, &inserted), 3u);
  EXPECT_FALSE(inserted);
}

}  // namespace
}  // namespace fdevolve::util
