#include "util/strings.h"

#include <gtest/gtest.h>

namespace fdevolve::util {
namespace {

TEST(StringsTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\tabc\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, TrimHandlesEmptyAndAllWhitespace) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(Trim("  a b  "), "a b");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitEmptyStringYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, SplitTrailingSeparator) {
  auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitTrimmedDropsEmptyPieces) {
  auto parts = SplitTrimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, JoinEmptyVector) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

}  // namespace
}  // namespace fdevolve::util
