// Differential fuzzing of AttrSet against std::set<int> as the reference
// model — randomized operation sequences must agree on every observable.
#include <gtest/gtest.h>

#include <set>

#include "relation/attr_set.h"
#include "support/fuzz_seed.h"
#include "util/rng.h"

namespace fdevolve::relation {
namespace {

std::set<int> ToStdSet(const AttrSet& s) {
  auto v = s.ToVector();
  return std::set<int>(v.begin(), v.end());
}

// Parameterized by case *index*; the actual seed derives from the binary's
// base seed (--seed / FDEVOLVE_SEED) at run time. Indices keep the gtest
// case names stable so the names CTest discovered at build time still match
// whatever seed a later run uses.
class AttrSetFuzz : public ::testing::TestWithParam<int> {
 protected:
  uint64_t seed() const { return testsupport::DeriveSeed(GetParam()); }
};

TEST_P(AttrSetFuzz, RandomOpSequenceMatchesReference) {
  util::Rng rng(seed());
  AttrSet subject;
  std::set<int> reference;

  for (int step = 0; step < 500; ++step) {
    int idx = static_cast<int>(rng.Below(AttrSet::kMaxAttrs));
    switch (rng.Below(3)) {
      case 0:
        subject.Add(idx);
        reference.insert(idx);
        break;
      case 1:
        subject.Remove(idx);
        reference.erase(idx);
        break;
      default:
        EXPECT_EQ(subject.Contains(idx), reference.count(idx) > 0);
        break;
    }
    if (step % 50 == 0) {
      EXPECT_EQ(subject.Count(), static_cast<int>(reference.size()));
      EXPECT_EQ(ToStdSet(subject), reference);
      EXPECT_EQ(subject.Empty(), reference.empty());
    }
  }
  EXPECT_EQ(ToStdSet(subject), reference);
}

TEST_P(AttrSetFuzz, SetAlgebraMatchesReference) {
  util::Rng rng(seed() + 99);
  auto random_set = [&](double density) {
    AttrSet s;
    for (int i = 0; i < AttrSet::kMaxAttrs; ++i) {
      if (rng.Chance(density)) s.Add(i);
    }
    return s;
  };

  for (int trial = 0; trial < 20; ++trial) {
    AttrSet a = random_set(0.1);
    AttrSet b = random_set(0.1);
    std::set<int> ra = ToStdSet(a);
    std::set<int> rb = ToStdSet(b);

    std::set<int> expected_union = ra;
    expected_union.insert(rb.begin(), rb.end());
    EXPECT_EQ(ToStdSet(a.Union(b)), expected_union);

    std::set<int> expected_inter;
    for (int x : ra) {
      if (rb.count(x)) expected_inter.insert(x);
    }
    EXPECT_EQ(ToStdSet(a.Intersect(b)), expected_inter);

    std::set<int> expected_minus;
    for (int x : ra) {
      if (!rb.count(x)) expected_minus.insert(x);
    }
    EXPECT_EQ(ToStdSet(a.Minus(b)), expected_minus);

    EXPECT_EQ(a.SubsetOf(b),
              std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()));
    EXPECT_EQ(a.Intersects(b), !expected_inter.empty());
  }
}

TEST_P(AttrSetFuzz, AlgebraicIdentities) {
  util::Rng rng(seed() + 7);
  AttrSet a;
  AttrSet b;
  for (int i = 0; i < AttrSet::kMaxAttrs; ++i) {
    if (rng.Chance(0.05)) a.Add(i);
    if (rng.Chance(0.05)) b.Add(i);
  }
  // De Morgan-ish identities expressible without complement:
  EXPECT_EQ(a.Minus(b).Union(a.Intersect(b)), a);
  EXPECT_EQ(a.Union(b).Minus(b), a.Minus(b));
  EXPECT_TRUE(a.Intersect(b).SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a.Union(b)));
  EXPECT_EQ(a.Union(b).Count() + a.Intersect(b).Count(),
            a.Count() + b.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrSetFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace fdevolve::relation
