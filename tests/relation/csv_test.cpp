#include "relation/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/scoped_locale.h"

namespace fdevolve::relation {
namespace {

TEST(CsvTest, ReadsTypedHeaderAndRows) {
  std::istringstream in(
      "id:int64,name:string,score:double\n"
      "1,alpha,1.5\n"
      "2,beta,2.25\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
  EXPECT_EQ(r.relation->Get(0, 1), Value("alpha"));
  EXPECT_EQ(r.relation->Get(1, 0), Value(int64_t{2}));
  EXPECT_DOUBLE_EQ(r.relation->Get(1, 2).as_double(), 2.25);
}

TEST(CsvTest, EmptyFieldIsNullForTypedColumns) {
  std::istringstream in("a:int64,b:double\n,\n1,2.0\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 0).is_null());
  EXPECT_TRUE(r.relation->Get(0, 1).is_null());
}

TEST(CsvTest, BackslashNIsNullForStrings) {
  std::istringstream in("s:string\n\\N\nplain\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 0).is_null());
  EXPECT_EQ(r.relation->Get(1, 0), Value("plain"));
}

TEST(CsvTest, EmptyStringFieldIsEmptyString) {
  std::istringstream in("s:string\n\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  // A blank line is skipped; no row is produced.
  EXPECT_EQ(r.relation->tuple_count(), 0u);
}

TEST(CsvTest, RejectsBadHeader) {
  std::istringstream in("justaname\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(CsvTest, RejectsUnknownType) {
  std::istringstream in("a:blob\n");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream in("a:int64,b:int64\n1\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("arity"), std::string::npos);
}

TEST(CsvTest, RejectsBadInt) {
  std::istringstream in("a:int64\nxyz\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RejectsTrailingGarbageInNumber) {
  std::istringstream in("a:int64\n12x\n");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, EmptyInputFails) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, RoundTrip) {
  std::istringstream in(
      "id:int64,name:string\n"
      "1,a\n"
      "2,\\N\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;

  std::ostringstream out;
  std::string err;
  ASSERT_TRUE(WriteCsv(*r.relation, out, &err)) << err;
  std::istringstream back(out.str());
  CsvResult r2 = ReadCsv(back, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->tuple_count(), 2u);
  EXPECT_EQ(r2.relation->Get(0, 1), Value("a"));
  EXPECT_TRUE(r2.relation->Get(1, 1).is_null());
}

TEST(CsvTest, CrlfLineEndingsAreStripped) {
  // CRLF input: the '\r' must not leak into the last column of any row —
  // not into string cells (it would corrupt dictionary codes), and not into
  // numeric cells (they would fail to parse).
  std::istringstream in(
      "id:int64,name:string\r\n"
      "1,alpha\r\n"
      "2,beta\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
  EXPECT_EQ(r.relation->Get(0, 1), Value("alpha"));
  EXPECT_EQ(r.relation->Get(1, 1), Value("beta"));
  // "alpha" and "alpha\r" would be two dictionary entries; assert one each.
  EXPECT_EQ(r.relation->column(1).dict_size(), 2u);
}

TEST(CsvTest, CrlfNumericLastColumnParses) {
  std::istringstream in(
      "name:string,score:double\r\n"
      "a,1.5\r\n"
      "b,2.25\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_DOUBLE_EQ(r.relation->Get(1, 1).as_double(), 2.25);

  std::istringstream in2("a:string,b:int64\r\nx,7\r\n");
  CsvResult r2 = ReadCsv(in2, "t");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->Get(0, 1), Value(int64_t{7}));
}

TEST(CsvTest, CrlfNullMarkerLastColumnIsNull) {
  std::istringstream in(
      "a:int64,s:string\r\n"
      "1,\\N\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 1).is_null());
}

TEST(CsvTest, CrlfBlankLineIsSkipped) {
  // A CRLF "blank" line is "\r" after getline; it must be skipped like a
  // plain blank line, not parsed as a one-field row.
  std::istringstream in("a:int64\r\n1\r\n\r\n2\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
}

TEST(CsvTest, CrlfRoundTrip) {
  std::istringstream in(
      "id:int64,name:string,score:double\r\n"
      "1,a,0.5\r\n"
      "2,\\N,\\N\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;

  std::ostringstream out;
  std::string err;
  ASSERT_TRUE(WriteCsv(*r.relation, out, &err)) << err;
  std::istringstream back(out.str());
  CsvResult r2 = ReadCsv(back, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  ASSERT_EQ(r2.relation->tuple_count(), 2u);
  EXPECT_EQ(r2.relation->Get(0, 1), Value("a"));
  EXPECT_TRUE(r2.relation->Get(1, 1).is_null());
  EXPECT_TRUE(r2.relation->Get(1, 2).is_null());
  EXPECT_DOUBLE_EQ(r2.relation->Get(0, 2).as_double(), 0.5);
}

TEST(CsvTest, IntAliasAccepted) {
  std::istringstream in("a:int,b:str,c:float\n1,x,2.0\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->schema().attr(0).type, DataType::kInt64);
  EXPECT_EQ(r.relation->schema().attr(1).type, DataType::kString);
  EXPECT_EQ(r.relation->schema().attr(2).type, DataType::kDouble);
}

TEST(CsvTest, FileNotFound) {
  CsvResult r = ReadCsvFile("/nonexistent/path.csv", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, WriteRejectsCommaCellWithLocation) {
  // Previously this wrote "x,y" unescaped — the re-read saw three fields
  // in a two-column file and failed (or worse, silently shifted columns).
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  Relation rel = RelationBuilder("t", schema)
                     .Row({int64_t{1}, Value("fine")})
                     .Row({int64_t{2}, Value("x,y")})
                     .Build();
  std::ostringstream out;
  std::string err;
  EXPECT_FALSE(WriteCsv(rel, out, &err));
  EXPECT_TRUE(out.str().empty()) << "must not write a corrupt prefix";
  EXPECT_NE(err.find("row 1"), std::string::npos) << err;
  EXPECT_NE(err.find("'name'"), std::string::npos) << err;
  EXPECT_NE(err.find(","), std::string::npos) << err;
}

TEST(CsvTest, WriteRejectsNewlineCell) {
  Schema schema({{"s", DataType::kString}});
  Relation rel =
      RelationBuilder("t", schema).Row({Value("two\nlines")}).Build();
  std::ostringstream out;
  std::string err;
  EXPECT_FALSE(WriteCsv(rel, out, &err));
  EXPECT_TRUE(out.str().empty());
  EXPECT_NE(err.find("row 0"), std::string::npos) << err;
}

TEST(CsvTest, WriteRejectsCarriageReturnCell) {
  // '\r' would be stripped as a CRLF artifact on re-read, changing the
  // value (and its dictionary code).
  Schema schema({{"s", DataType::kString}});
  Relation rel = RelationBuilder("t", schema).Row({Value("end\r")}).Build();
  std::ostringstream out;
  std::string err;
  EXPECT_FALSE(WriteCsv(rel, out, &err));
  EXPECT_NE(err.find("\\r"), std::string::npos) << err;
}

TEST(CsvTest, WriteRejectsLiteralBackslashNCell) {
  // The string "\N" is indistinguishable from the NULL marker on re-read:
  // the round trip would resurrect it as NULL.
  Schema schema({{"s", DataType::kString}});
  Relation rel = RelationBuilder("t", schema).Row({Value("\\N")}).Build();
  std::ostringstream out;
  std::string err;
  EXPECT_FALSE(WriteCsv(rel, out, &err));
  EXPECT_NE(err.find("NULL"), std::string::npos) << err;
}

TEST(CsvTest, WriteRejectsUnrepresentableAttributeName) {
  // Schema accepts arbitrary names; the header has no quoting either, so
  // a name with ',' or ':' would corrupt the header line.
  Schema schema({{"a,b", DataType::kString}});
  Relation rel = RelationBuilder("t", schema).Row({Value("ok")}).Build();
  std::ostringstream out;
  std::string err;
  EXPECT_FALSE(WriteCsv(rel, out, &err));
  EXPECT_TRUE(out.str().empty());
  EXPECT_NE(err.find("a,b"), std::string::npos) << err;

  Schema colon({{"a:b", DataType::kInt64}});
  Relation rel2 = RelationBuilder("t", colon).Row({int64_t{1}}).Build();
  EXPECT_FALSE(WriteCsv(rel2, out, &err));
  EXPECT_NE(err.find("a:b"), std::string::npos) << err;

  // A column literally named "\N" is fine — the NULL marker only applies
  // to data fields.
  Schema nn({{"\\N", DataType::kInt64}});
  Relation rel3 = RelationBuilder("t", nn).Row({int64_t{1}}).Build();
  std::ostringstream out3;
  ASSERT_TRUE(WriteCsv(rel3, out3, &err)) << err;
  std::istringstream back(out3.str());
  CsvResult r = ReadCsv(back, "t2");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->schema().attr(0).name, "\\N");
}

TEST(CsvTest, WriteCsvFilePropagatesCellError) {
  Schema schema({{"s", DataType::kString}});
  Relation rel = RelationBuilder("t", schema).Row({Value("a,b")}).Build();
  std::string path = testing::TempDir() + "/fdevolve_csv_reject_test.csv";
  std::string err;
  EXPECT_FALSE(WriteCsvFile(rel, path, &err));
  EXPECT_NE(err.find("row 0"), std::string::npos) << err;
}

TEST(CsvTest, DoubleRoundTripIsValueExact) {
  // 0.1 + 0.2 prints as "0.3" under the old 6-digit rendering and reads
  // back as a different double; shortest-round-trip must preserve it.
  Schema schema({{"d", DataType::kDouble}});
  Relation rel = RelationBuilder("t", schema)
                     .Row({Value(0.1 + 0.2)})
                     .Row({Value(1e-7)})
                     .Row({Value(12345678.9012345)})
                     .Build();
  std::ostringstream out;
  std::string err;
  ASSERT_TRUE(WriteCsv(rel, out, &err)) << err;
  std::istringstream back(out.str());
  CsvResult r = ReadCsv(back, "t2");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.relation->tuple_count(), 3u);
  EXPECT_EQ(r.relation->Get(0, 0).as_double(), 0.1 + 0.2);
  EXPECT_EQ(r.relation->Get(1, 0).as_double(), 1e-7);
  EXPECT_EQ(r.relation->Get(2, 0).as_double(), 12345678.9012345);
}

TEST(CsvTest, DoubleCellsAreLocaleIndependent) {
  testsupport::ScopedCommaLocale locale;
  if (!locale.active()) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Under de_DE-style locales std::stod reads "3.14" as 3 (it stops at
  // the '.'); the from_chars-based cell parser must not.
  std::istringstream in("x:double\n3.14\n1.5e2\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.relation->tuple_count(), 2u);
  EXPECT_EQ(r.relation->Get(0, 0).as_double(), 3.14)
      << "locale " << locale.name();
  EXPECT_EQ(r.relation->Get(1, 0).as_double(), 1.5e2);
}

TEST(CsvTest, WriteFileAndReadBack) {
  std::istringstream in("a:int64\n5\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok());
  std::string path = testing::TempDir() + "/fdevolve_csv_test.csv";
  std::string err;
  ASSERT_TRUE(WriteCsvFile(*r.relation, path, &err)) << err;
  CsvResult r2 = ReadCsvFile(path, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->Get(0, 0), Value(int64_t{5}));
}

}  // namespace
}  // namespace fdevolve::relation
