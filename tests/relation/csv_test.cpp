#include "relation/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fdevolve::relation {
namespace {

TEST(CsvTest, ReadsTypedHeaderAndRows) {
  std::istringstream in(
      "id:int64,name:string,score:double\n"
      "1,alpha,1.5\n"
      "2,beta,2.25\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
  EXPECT_EQ(r.relation->Get(0, 1), Value("alpha"));
  EXPECT_EQ(r.relation->Get(1, 0), Value(int64_t{2}));
  EXPECT_DOUBLE_EQ(r.relation->Get(1, 2).as_double(), 2.25);
}

TEST(CsvTest, EmptyFieldIsNullForTypedColumns) {
  std::istringstream in("a:int64,b:double\n,\n1,2.0\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 0).is_null());
  EXPECT_TRUE(r.relation->Get(0, 1).is_null());
}

TEST(CsvTest, BackslashNIsNullForStrings) {
  std::istringstream in("s:string\n\\N\nplain\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 0).is_null());
  EXPECT_EQ(r.relation->Get(1, 0), Value("plain"));
}

TEST(CsvTest, EmptyStringFieldIsEmptyString) {
  std::istringstream in("s:string\n\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  // A blank line is skipped; no row is produced.
  EXPECT_EQ(r.relation->tuple_count(), 0u);
}

TEST(CsvTest, RejectsBadHeader) {
  std::istringstream in("justaname\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(CsvTest, RejectsUnknownType) {
  std::istringstream in("a:blob\n");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream in("a:int64,b:int64\n1\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("arity"), std::string::npos);
}

TEST(CsvTest, RejectsBadInt) {
  std::istringstream in("a:int64\nxyz\n");
  CsvResult r = ReadCsv(in, "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RejectsTrailingGarbageInNumber) {
  std::istringstream in("a:int64\n12x\n");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, EmptyInputFails) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsv(in, "t").ok());
}

TEST(CsvTest, RoundTrip) {
  std::istringstream in(
      "id:int64,name:string\n"
      "1,a\n"
      "2,\\N\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;

  std::ostringstream out;
  WriteCsv(*r.relation, out);
  std::istringstream back(out.str());
  CsvResult r2 = ReadCsv(back, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->tuple_count(), 2u);
  EXPECT_EQ(r2.relation->Get(0, 1), Value("a"));
  EXPECT_TRUE(r2.relation->Get(1, 1).is_null());
}

TEST(CsvTest, CrlfLineEndingsAreStripped) {
  // CRLF input: the '\r' must not leak into the last column of any row —
  // not into string cells (it would corrupt dictionary codes), and not into
  // numeric cells (they would fail to parse).
  std::istringstream in(
      "id:int64,name:string\r\n"
      "1,alpha\r\n"
      "2,beta\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
  EXPECT_EQ(r.relation->Get(0, 1), Value("alpha"));
  EXPECT_EQ(r.relation->Get(1, 1), Value("beta"));
  // "alpha" and "alpha\r" would be two dictionary entries; assert one each.
  EXPECT_EQ(r.relation->column(1).dict_size(), 2u);
}

TEST(CsvTest, CrlfNumericLastColumnParses) {
  std::istringstream in(
      "name:string,score:double\r\n"
      "a,1.5\r\n"
      "b,2.25\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_DOUBLE_EQ(r.relation->Get(1, 1).as_double(), 2.25);

  std::istringstream in2("a:string,b:int64\r\nx,7\r\n");
  CsvResult r2 = ReadCsv(in2, "t");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->Get(0, 1), Value(int64_t{7}));
}

TEST(CsvTest, CrlfNullMarkerLastColumnIsNull) {
  std::istringstream in(
      "a:int64,s:string\r\n"
      "1,\\N\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.relation->Get(0, 1).is_null());
}

TEST(CsvTest, CrlfBlankLineIsSkipped) {
  // A CRLF "blank" line is "\r" after getline; it must be skipped like a
  // plain blank line, not parsed as a one-field row.
  std::istringstream in("a:int64\r\n1\r\n\r\n2\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->tuple_count(), 2u);
}

TEST(CsvTest, CrlfRoundTrip) {
  std::istringstream in(
      "id:int64,name:string,score:double\r\n"
      "1,a,0.5\r\n"
      "2,\\N,\\N\r\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;

  std::ostringstream out;
  WriteCsv(*r.relation, out);
  std::istringstream back(out.str());
  CsvResult r2 = ReadCsv(back, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  ASSERT_EQ(r2.relation->tuple_count(), 2u);
  EXPECT_EQ(r2.relation->Get(0, 1), Value("a"));
  EXPECT_TRUE(r2.relation->Get(1, 1).is_null());
  EXPECT_TRUE(r2.relation->Get(1, 2).is_null());
  EXPECT_DOUBLE_EQ(r2.relation->Get(0, 2).as_double(), 0.5);
}

TEST(CsvTest, IntAliasAccepted) {
  std::istringstream in("a:int,b:str,c:float\n1,x,2.0\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.relation->schema().attr(0).type, DataType::kInt64);
  EXPECT_EQ(r.relation->schema().attr(1).type, DataType::kString);
  EXPECT_EQ(r.relation->schema().attr(2).type, DataType::kDouble);
}

TEST(CsvTest, FileNotFound) {
  CsvResult r = ReadCsvFile("/nonexistent/path.csv", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, WriteFileAndReadBack) {
  std::istringstream in("a:int64\n5\n");
  CsvResult r = ReadCsv(in, "t");
  ASSERT_TRUE(r.ok());
  std::string path = testing::TempDir() + "/fdevolve_csv_test.csv";
  std::string err;
  ASSERT_TRUE(WriteCsvFile(*r.relation, path, &err)) << err;
  CsvResult r2 = ReadCsvFile(path, "t2");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.relation->Get(0, 0), Value(int64_t{5}));
}

}  // namespace
}  // namespace fdevolve::relation
