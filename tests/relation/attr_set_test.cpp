#include "relation/attr_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fdevolve::relation {
namespace {

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_TRUE(s.ToVector().empty());
}

TEST(AttrSetTest, AddRemoveContains) {
  AttrSet s;
  s.Add(3);
  s.Add(100);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(AttrSetTest, WorksAcrossWordBoundaries) {
  AttrSet s = AttrSet::Of({0, 63, 64, 127, 128, 511});
  EXPECT_EQ(s.Count(), 6);
  for (int i : {0, 63, 64, 127, 128, 511}) EXPECT_TRUE(s.Contains(i));
  EXPECT_EQ(s.ToVector(), (std::vector<int>{0, 63, 64, 127, 128, 511}));
}

TEST(AttrSetTest, OutOfRangeThrows) {
  AttrSet s;
  EXPECT_THROW(s.Add(-1), std::out_of_range);
  EXPECT_THROW(s.Add(512), std::out_of_range);
  EXPECT_THROW(s.Contains(512), std::out_of_range);
}

TEST(AttrSetTest, UnionIntersectMinus) {
  AttrSet a = AttrSet::Of({1, 2, 3});
  AttrSet b = AttrSet::Of({3, 4});
  EXPECT_EQ(a.Union(b), AttrSet::Of({1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), AttrSet::Of({3}));
  EXPECT_EQ(a.Minus(b), AttrSet::Of({1, 2}));
  EXPECT_EQ(b.Minus(a), AttrSet::Of({4}));
}

TEST(AttrSetTest, SubsetOf) {
  AttrSet a = AttrSet::Of({1, 2});
  AttrSet b = AttrSet::Of({1, 2, 3});
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a));
  EXPECT_TRUE(AttrSet().SubsetOf(a));
}

TEST(AttrSetTest, Intersects) {
  EXPECT_TRUE(AttrSet::Of({1, 2}).Intersects(AttrSet::Of({2, 3})));
  EXPECT_FALSE(AttrSet::Of({1, 2}).Intersects(AttrSet::Of({3, 4})));
  EXPECT_FALSE(AttrSet().Intersects(AttrSet::Of({1})));
}

TEST(AttrSetTest, WithDoesNotMutate) {
  AttrSet a = AttrSet::Of({1});
  AttrSet b = a.With(2);
  EXPECT_FALSE(a.Contains(2));
  EXPECT_TRUE(b.Contains(2));
}

TEST(AttrSetTest, EqualityAndHash) {
  AttrSet a = AttrSet::Of({5, 200});
  AttrSet b = AttrSet::Of({200, 5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, AttrSet::Of({5}));
}

TEST(AttrSetTest, UsableInUnorderedSet) {
  std::unordered_set<AttrSet, AttrSetHash> seen;
  seen.insert(AttrSet::Of({1, 2}));
  seen.insert(AttrSet::Of({2, 1}));  // duplicate
  seen.insert(AttrSet::Of({3}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(AttrSetTest, FromVectorMatchesOf) {
  EXPECT_EQ(AttrSet::FromVector({7, 9}), AttrSet::Of({7, 9}));
}

TEST(AttrSetTest, HashSpreadsSingletons) {
  std::unordered_set<uint64_t> hashes;
  for (int i = 0; i < 512; ++i) {
    hashes.insert(AttrSet::Of({i}).Hash());
  }
  EXPECT_EQ(hashes.size(), 512u);
}

}  // namespace
}  // namespace fdevolve::relation
