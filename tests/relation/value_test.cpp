#include "relation/value.h"

#include <gtest/gtest.h>

namespace fdevolve::relation {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntValue) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleValue) {
  Value v(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 3.5);
}

TEST(ValueTest, StringValueFromLiteral) {
  Value v("abc");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "abc");
  EXPECT_EQ(v.ToString(), "abc");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, NoCrossTypeEquality) {
  // int 1 and double 1.0 are distinct values (no coercion).
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, OrderingNullFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value(int64_t{6}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value("s").Hash(), Value("s").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, HashSeparatesTypes) {
  // Not a strict requirement, but int 1 / double 1.0 / "1" should not all
  // collide — that would funnel dictionary probes into one bucket.
  uint64_t hi = Value(int64_t{1}).Hash();
  uint64_t hd = Value(1.0).Hash();
  uint64_t hs = Value("1").Hash();
  EXPECT_FALSE(hi == hd && hd == hs);
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value(int64_t{1}).MatchesType(DataType::kInt64));
  EXPECT_FALSE(Value(int64_t{1}).MatchesType(DataType::kString));
  EXPECT_TRUE(Value("x").MatchesType(DataType::kString));
  // NULL matches every column type.
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kInt64));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kDouble));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kString));
}

TEST(ValueTest, AccessorThrowsOnWrongType) {
  EXPECT_THROW(Value("x").as_int(), std::bad_variant_access);
  EXPECT_THROW(Value(int64_t{1}).as_string(), std::bad_variant_access);
}

}  // namespace
}  // namespace fdevolve::relation
