#include "relation/relation.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fdevolve::relation {
namespace {

Relation MakeSmall() {
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
  return RelationBuilder("t", schema)
      .Row({int64_t{1}, "a", 1.5})
      .Row({int64_t{2}, "b", 2.5})
      .Row({int64_t{3}, "a", Value::Null()})
      .Build();
}

TEST(RelationTest, BasicShape) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.name(), "t");
  EXPECT_EQ(r.tuple_count(), 3u);
  EXPECT_EQ(r.attr_count(), 3);
}

TEST(RelationTest, CellAccess) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.Get(0, 0), Value(int64_t{1}));
  EXPECT_EQ(r.Get(1, 1), Value("b"));
  EXPECT_TRUE(r.Get(2, 2).is_null());
}

TEST(RelationTest, DictionaryEncodingSharesCodes) {
  Relation r = MakeSmall();
  const Column& name = r.column(1);
  // "a" appears twice -> same code; dictionary has 2 entries.
  EXPECT_EQ(name.code(0), name.code(2));
  EXPECT_NE(name.code(0), name.code(1));
  EXPECT_EQ(name.dict_size(), 2u);
}

TEST(RelationTest, NullsTracked) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.column(2).null_count(), 1u);
  EXPECT_TRUE(r.column(2).has_nulls());
  EXPECT_FALSE(r.column(0).has_nulls());
  EXPECT_EQ(r.column(2).code(2), kNullCode);
}

TEST(RelationTest, NonNullAttrs) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.NonNullAttrs(), AttrSet::Of({0, 1}));
}

TEST(RelationTest, AnyNulls) {
  Relation r = MakeSmall();
  EXPECT_TRUE(r.AnyNulls(AttrSet::Of({1, 2})));
  EXPECT_FALSE(r.AnyNulls(AttrSet::Of({0, 1})));
}

TEST(RelationTest, ArityMismatchThrows) {
  Relation r = MakeSmall();
  EXPECT_THROW(r.AppendRow({int64_t{1}}), std::invalid_argument);
}

TEST(RelationTest, TypeMismatchThrows) {
  Relation r = MakeSmall();
  EXPECT_THROW(r.AppendRow({"not-an-int", "x", 1.0}), std::invalid_argument);
}

TEST(RelationTest, NullAcceptedInAnyColumn) {
  Relation r = MakeSmall();
  r.AppendRow({Value::Null(), Value::Null(), Value::Null()});
  EXPECT_EQ(r.tuple_count(), 4u);
  EXPECT_TRUE(r.Get(3, 0).is_null());
}

TEST(RelationTest, DictValueRoundTrip) {
  Relation r = MakeSmall();
  const Column& name = r.column(1);
  EXPECT_EQ(name.DictValue(name.code(0)), Value("a"));
  EXPECT_TRUE(name.DictValue(kNullCode).is_null());
}

TEST(RelationTest, EmptyRelation) {
  Schema schema({{"x", DataType::kInt64}});
  Relation r("empty", schema);
  EXPECT_EQ(r.tuple_count(), 0u);
  EXPECT_FALSE(r.column(0).has_nulls());
  EXPECT_EQ(r.NonNullAttrs(), AttrSet::Of({0}));
}

TEST(RelationTest, MidRowTypeMismatchLeavesRelationIntact) {
  // Regression: the mismatch is in the *last* column, after valid cells for
  // the earlier ones. A naive per-cell append would have grown columns 0-1
  // before throwing, leaving unequal column lengths (a corrupt relation).
  Relation r = MakeSmall();
  EXPECT_THROW(r.AppendRow({int64_t{9}, "z", "not-a-double"}),
               std::invalid_argument);
  EXPECT_EQ(r.tuple_count(), 3u);
  for (int a = 0; a < r.attr_count(); ++a) {
    EXPECT_EQ(r.column(a).size(), 3u) << "column " << a;
  }
  // The failed row must not have leaked values into the dictionaries.
  EXPECT_EQ(r.column(1).dict_size(), 2u);
  // The relation remains fully usable.
  r.AppendRow({int64_t{4}, "c", 4.5});
  EXPECT_EQ(r.tuple_count(), 4u);
  EXPECT_EQ(r.Get(3, 1), Value("c"));
}

TEST(RelationTest, AppendRowsBatch) {
  Relation r = MakeSmall();
  r.AppendRows({{int64_t{4}, "d", 4.0}, {int64_t{5}, "e", Value::Null()}});
  EXPECT_EQ(r.tuple_count(), 5u);
  EXPECT_EQ(r.Get(4, 1), Value("e"));
  r.AppendRows({});  // empty batch is a no-op
  EXPECT_EQ(r.tuple_count(), 5u);
}

TEST(RelationTest, AppendRowsIsAllOrNothing) {
  Relation r = MakeSmall();
  // Second row is bad: nothing from the batch may land, including the
  // valid first row.
  EXPECT_THROW(r.AppendRows({{int64_t{4}, "d", 4.0},
                             {int64_t{5}, int64_t{6}, 5.0}}),
               std::invalid_argument);
  EXPECT_EQ(r.tuple_count(), 3u);
  for (int a = 0; a < r.attr_count(); ++a) {
    EXPECT_EQ(r.column(a).size(), 3u) << "column " << a;
  }
  EXPECT_EQ(r.column(1).dict_size(), 2u);  // "d" was not interned
}

TEST(RelationTest, VersionIsAMonotoneRowWatermark) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.version(), 3u);
  r.AppendRow({int64_t{4}, "d", 4.0});
  EXPECT_EQ(r.version(), 4u);
  r.AppendRows({{int64_t{5}, "e", 5.0}, {int64_t{6}, "f", 6.0}});
  EXPECT_EQ(r.version(), 6u);
  EXPECT_EQ(r.version(), r.tuple_count());
}

TEST(RelationTest, FromEncodedReproducesColumnState) {
  Relation src = MakeSmall();
  std::vector<Column> cols;
  for (int i = 0; i < src.attr_count(); ++i) {
    const Column& c = src.column(i);
    cols.push_back(Column::FromEncoded(
        c.type(), c.dict_values(), c.codes(), c.null_count()));
  }
  Relation copy = Relation::FromEncoded("t2", src.schema(), std::move(cols));
  ASSERT_EQ(copy.tuple_count(), src.tuple_count());
  EXPECT_EQ(copy.version(), src.version());
  for (size_t t = 0; t < src.tuple_count(); ++t) {
    for (int i = 0; i < src.attr_count(); ++i) {
      EXPECT_EQ(copy.column(i).code(t), src.column(i).code(t));
    }
  }
  // The rebuilt dictionary index keeps appends consistent: re-appending an
  // existing value must reuse its code, not mint a new one.
  copy.AppendRow({int64_t{9}, "a", 1.5});
  EXPECT_EQ(copy.column(1).code(3), src.column(1).code(0));
}

TEST(RelationTest, FromEncodedValidates) {
  // Code out of dictionary range.
  EXPECT_THROW(Column::FromEncoded(DataType::kInt64, {Value(int64_t{1})},
                                   {0u, 1u}, 0),
               std::invalid_argument);
  // Declared null count disagrees with kNullCode occurrences.
  EXPECT_THROW(Column::FromEncoded(DataType::kInt64, {Value(int64_t{1})},
                                   {0u, kNullCode}, 0),
               std::invalid_argument);
  // Dictionary value of the wrong type.
  EXPECT_THROW(
      Column::FromEncoded(DataType::kInt64, {Value("str")}, {0u}, 0),
      std::invalid_argument);
  // NULL may not live in a dictionary (it is the kNullCode sentinel).
  EXPECT_THROW(
      Column::FromEncoded(DataType::kInt64, {Value::Null()}, {0u}, 0),
      std::invalid_argument);
  // Duplicate dictionary values would make codes ambiguous.
  EXPECT_THROW(Column::FromEncoded(DataType::kInt64,
                                   {Value(int64_t{1}), Value(int64_t{1})},
                                   {0u, 1u}, 0),
               std::invalid_argument);
  // Unequal column lengths across the relation.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  std::vector<Column> cols;
  cols.push_back(
      Column::FromEncoded(DataType::kInt64, {Value(int64_t{1})}, {0u}, 0));
  cols.push_back(Column::FromEncoded(DataType::kInt64, {Value(int64_t{2})},
                                     {0u, 0u}, 0));
  EXPECT_THROW(Relation::FromEncoded("t", schema, std::move(cols)),
               std::invalid_argument);
}

TEST(RelationTest, DeleteRowTombstonesWithoutMovingBytes) {
  Relation r = MakeSmall();
  EXPECT_FALSE(r.has_tombstones());
  EXPECT_EQ(r.live_count(), 3u);
  r.DeleteRow(1);
  // Physical layout untouched: watermark, codes, and cell bytes stay.
  EXPECT_EQ(r.tuple_count(), 3u);
  EXPECT_EQ(r.version(), 3u);
  EXPECT_EQ(r.Get(1, 1), Value("b"));
  // Logical view updated.
  EXPECT_TRUE(r.has_tombstones());
  EXPECT_EQ(r.live_count(), 2u);
  EXPECT_EQ(r.dead_count(), 1u);
  EXPECT_TRUE(r.is_live(0));
  EXPECT_FALSE(r.is_live(1));
  EXPECT_TRUE(r.is_live(2));
  ASSERT_EQ(r.deletion_log().size(), 1u);
  EXPECT_EQ(r.deletion_log()[0], 1u);
}

TEST(RelationTest, DeleteRowRejectsBadRows) {
  Relation r = MakeSmall();
  EXPECT_THROW(r.DeleteRow(3), std::out_of_range);
  r.DeleteRow(0);
  EXPECT_THROW(r.DeleteRow(0), std::invalid_argument);  // already dead
}

TEST(RelationTest, MutationCountersSplitAppendFromDelete) {
  Relation r = MakeSmall();
  EXPECT_EQ(r.mutation_epoch(), 0u);
  EXPECT_EQ(r.appends_ever(), 3u);
  EXPECT_EQ(r.deletes_ever(), 0u);
  r.AppendRow({int64_t{4}, "d", 4.5});
  // Appends move the watermark but not the epoch.
  EXPECT_EQ(r.version(), 4u);
  EXPECT_EQ(r.mutation_epoch(), 0u);
  EXPECT_EQ(r.appends_ever(), 4u);
  r.DeleteRow(2);
  // Deletes move the epoch but not the watermark.
  EXPECT_EQ(r.version(), 4u);
  EXPECT_EQ(r.mutation_epoch(), 1u);
  EXPECT_EQ(r.deletes_ever(), 1u);
  const size_t epoch = r.mutation_epoch();
  r.Compact();
  EXPECT_EQ(r.version(), 3u);
  EXPECT_GT(r.mutation_epoch(), epoch);
  EXPECT_EQ(r.compactions(), 1u);
  // Lifetime counters survive the compaction.
  EXPECT_EQ(r.appends_ever(), 4u);
  EXPECT_EQ(r.deletes_ever(), 1u);
}

TEST(RelationTest, CompactMatchesFreshBuildBitForBit) {
  Schema schema({{"k", DataType::kInt64}, {"s", DataType::kString}});
  Relation r("t", schema);
  // Values chosen so deleting rows 0 and 2 drops dictionary entries and
  // forces a code remap ("x" and 7 appear only in dead rows).
  r.AppendRow({int64_t{7}, "x"});
  r.AppendRow({int64_t{1}, "y"});
  r.AppendRow({int64_t{7}, "x"});
  r.AppendRow({int64_t{2}, "y"});
  r.AppendRow({int64_t{1}, Value::Null()});
  r.DeleteRow(0);
  r.DeleteRow(2);
  Relation fresh("t", schema);
  for (size_t t : {1u, 3u, 4u}) {
    fresh.AppendRow({r.Get(t, 0), r.Get(t, 1)});
  }
  EXPECT_EQ(r.Compact(), 2u);
  ASSERT_EQ(r.tuple_count(), fresh.tuple_count());
  EXPECT_FALSE(r.has_tombstones());
  EXPECT_TRUE(r.deletion_log().empty());
  for (int i = 0; i < r.attr_count(); ++i) {
    EXPECT_EQ(r.column(i).codes(), fresh.column(i).codes()) << "col " << i;
    EXPECT_EQ(r.column(i).dict_values(), fresh.column(i).dict_values());
    EXPECT_EQ(r.column(i).null_count(), fresh.column(i).null_count());
  }
}

TEST(RelationTest, CompactedCopyLeavesOriginalUntouched) {
  Relation r = MakeSmall();
  r.DeleteRow(0);
  Relation copy = r.CompactedCopy();
  EXPECT_EQ(copy.tuple_count(), 2u);
  EXPECT_FALSE(copy.has_tombstones());
  EXPECT_EQ(copy.Get(0, 1), Value("b"));
  // The copy is a fresh lifetime: counters restart from its own contents.
  EXPECT_EQ(copy.appends_ever(), 2u);
  EXPECT_EQ(copy.deletes_ever(), 0u);
  EXPECT_EQ(copy.compactions(), 0u);
  // Original still tombstoned.
  EXPECT_EQ(r.tuple_count(), 3u);
  EXPECT_EQ(r.dead_count(), 1u);
}

TEST(RelationTest, RequireNoTombstonesGuards) {
  Relation r = MakeSmall();
  EXPECT_NO_THROW(RequireNoTombstones(r, "test"));
  r.DeleteRow(1);
  EXPECT_THROW(RequireNoTombstones(r, "test"), std::logic_error);
  r.Compact();
  EXPECT_NO_THROW(RequireNoTombstones(r, "test"));
}

TEST(RelationTest, EstimatedBytesGrowsWithData) {
  Schema schema({{"x", DataType::kInt64}});
  Relation small("s", schema);
  small.AppendRow({int64_t{1}});
  Relation big("b", schema);
  for (int64_t i = 0; i < 100; ++i) big.AppendRow({i});
  EXPECT_GT(big.EstimatedBytes(), small.EstimatedBytes());
}

}  // namespace
}  // namespace fdevolve::relation
