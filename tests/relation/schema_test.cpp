#include "relation/schema.h"

#include <gtest/gtest.h>

namespace fdevolve::relation {
namespace {

Schema MakeAbc() {
  return Schema({{"A", DataType::kInt64},
                 {"B", DataType::kString},
                 {"C", DataType::kDouble}});
}

TEST(SchemaTest, SizeAndAttrAccess) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.attr(0).name, "A");
  EXPECT_EQ(s.attr(1).type, DataType::kString);
}

TEST(SchemaTest, IndexOf) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.IndexOf("A"), 0);
  EXPECT_EQ(s.IndexOf("C"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, RequireThrowsOnUnknown) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.Require("B"), 1);
  EXPECT_THROW(s.Require("nope"), std::invalid_argument);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  EXPECT_THROW(Schema({{"A", DataType::kInt64}, {"A", DataType::kString}}),
               std::invalid_argument);
}

TEST(SchemaTest, EmptyNameRejected) {
  EXPECT_THROW(Schema({{"", DataType::kInt64}}), std::invalid_argument);
}

TEST(SchemaTest, AllAttrs) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.AllAttrs(), AttrSet::Of({0, 1, 2}));
}

TEST(SchemaTest, Resolve) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.Resolve({"C", "A"}), AttrSet::Of({0, 2}));
  EXPECT_THROW(s.Resolve({"A", "bad"}), std::invalid_argument);
}

TEST(SchemaTest, DescribeUsesNames) {
  Schema s = MakeAbc();
  EXPECT_EQ(s.Describe(AttrSet::Of({0, 2})), "[A, C]");
  EXPECT_EQ(s.Describe(AttrSet()), "[]");
}

TEST(SchemaTest, TooManyAttributesRejected) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < AttrSet::kMaxAttrs + 1; ++i) {
    attrs.push_back({"a" + std::to_string(i), DataType::kInt64});
  }
  EXPECT_THROW(Schema{attrs}, std::invalid_argument);
}

TEST(SchemaTest, MaxWidthSchemaAccepted) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < AttrSet::kMaxAttrs; ++i) {
    attrs.push_back({"a" + std::to_string(i), DataType::kInt64});
  }
  Schema s{attrs};
  EXPECT_EQ(s.size(), AttrSet::kMaxAttrs);
  EXPECT_EQ(s.AllAttrs().Count(), AttrSet::kMaxAttrs);
}

}  // namespace
}  // namespace fdevolve::relation
