#include "clustering/clustering.h"

#include <gtest/gtest.h>

#include "datagen/places.h"

namespace fdevolve::clustering {
namespace {

using relation::AttrSet;
using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

Relation MakeRel() {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  return RelationBuilder("t", schema)
      .Row({int64_t{1}, int64_t{10}})
      .Row({int64_t{1}, int64_t{10}})
      .Row({int64_t{2}, int64_t{10}})
      .Row({int64_t{3}, int64_t{20}})
      .Build();
}

TEST(ClusteringTest, BuildsFromRelation) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet::Of({0}));
  EXPECT_EQ(c.cluster_count(), 3u);
  EXPECT_EQ(c.tuple_count(), 4u);
  EXPECT_EQ(c.cluster_of(0), c.cluster_of(1));
  EXPECT_NE(c.cluster_of(0), c.cluster_of(2));
}

TEST(ClusteringTest, SizesSumToTupleCount) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet::Of({0}));
  size_t total = 0;
  for (size_t s : c.sizes()) total += s;
  EXPECT_EQ(total, r.tuple_count());
}

TEST(ClusteringTest, MembersPartitionTheTuples) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet::Of({1}));
  auto members = c.Members();
  ASSERT_EQ(members.size(), c.cluster_count());
  std::vector<bool> seen(r.tuple_count(), false);
  for (const auto& cluster : members) {
    for (uint32_t t : cluster) {
      EXPECT_FALSE(seen[t]);
      seen[t] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ClusteringTest, PaperFigure2aClusterCounts) {
  // C_{District,Region} has 2 classes; C_AreaCode has 4 (Figure 2a).
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  Clustering c_dr(rel, s.Resolve({"District", "Region"}));
  Clustering c_a(rel, s.Resolve({"AreaCode"}));
  EXPECT_EQ(c_dr.cluster_count(), 2u);
  EXPECT_EQ(c_a.cluster_count(), 4u);
  // No function exists: D/R clusters split across AreaCode clusters.
  EXPECT_FALSE(IsHomogeneous(c_dr, c_a));
}

TEST(ClusteringTest, PaperFigure2bWellDefinedFunction) {
  // C_{District,Region,Municipal} aligns 1:1 with C_AreaCode (Figure 2b).
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  Clustering c_drm(rel, s.Resolve({"District", "Region", "Municipal"}));
  Clustering c_a(rel, s.Resolve({"AreaCode"}));
  EXPECT_EQ(c_drm.cluster_count(), 4u);
  EXPECT_TRUE(IsHomogeneous(c_drm, c_a));
  EXPECT_TRUE(IsComplete(c_drm, c_a));
  EXPECT_TRUE(SamePartition(c_drm, c_a));
}

TEST(ClusteringTest, PaperFigure2cFunctionButNotBijective) {
  // C_{District,Region,PhNo} maps into C_AreaCode (homogeneous) but has 7
  // classes vs 4: a function, not well-defined/bijective (Figure 2c).
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  Clustering c_drp(rel, s.Resolve({"District", "Region", "PhNo"}));
  Clustering c_a(rel, s.Resolve({"AreaCode"}));
  EXPECT_EQ(c_drp.cluster_count(), 7u);
  EXPECT_TRUE(IsHomogeneous(c_drp, c_a));
  EXPECT_FALSE(IsComplete(c_drp, c_a));
  EXPECT_FALSE(SamePartition(c_drp, c_a));
}

TEST(ClusteringTest, HomogeneityIsRefinement) {
  Relation r = MakeRel();
  Clustering fine(r, AttrSet::Of({0, 1}));
  Clustering coarse(r, AttrSet::Of({1}));
  EXPECT_TRUE(IsHomogeneous(fine, coarse));
  EXPECT_FALSE(IsHomogeneous(coarse, fine));
}

TEST(ClusteringTest, SamePartitionReflexive) {
  Relation r = MakeRel();
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({0}));
  EXPECT_TRUE(SamePartition(a, b));
}

TEST(ClusteringTest, SingleClusterWhenNoAttrs) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet());
  EXPECT_EQ(c.cluster_count(), 1u);
  EXPECT_EQ(c.sizes()[0], r.tuple_count());
}

}  // namespace
}  // namespace fdevolve::clustering
