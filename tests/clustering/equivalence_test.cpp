// Empirical study of Theorem 1 (§5): ε_CB and ε_VI as measures on
// candidate extensions.
#include "clustering/equivalence.h"

#include <gtest/gtest.h>

#include "datagen/places.h"
#include "datagen/synthetic.h"

namespace fdevolve::clustering {
namespace {

using relation::AttrSet;
using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

TEST(EquivalenceTest, CbNullImpliesViNullOnPlaces) {
  // Forward direction of Theorem 1 on every 1- and 2-attribute extension
  // of every running-example FD.
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  for (const auto& base :
       {datagen::PlacesF1(s), datagen::PlacesF2(s), datagen::PlacesF3(s),
        datagen::PlacesF4(s)}) {
    auto pool = rel.schema().AllAttrs().Minus(base.AllAttrs()).ToVector();
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t j = i; j < pool.size(); ++j) {
        AttrSet added = AttrSet::Of({pool[i]}).With(pool[j]);
        EquivalencePoint p = CompareMeasures(rel, base, added);
        if (p.cb_null) {
          EXPECT_TRUE(p.vi_null)
              << base.ToString(s) << " + " << s.Describe(added);
        }
      }
    }
  }
}

TEST(EquivalenceTest, CbNullImpliesViNullOnSynthetic) {
  datagen::SyntheticSpec spec;
  spec.n_attrs = 7;
  spec.n_tuples = 400;
  spec.repair_length = 1;
  spec.seed = 31;
  auto rel = datagen::MakeSynthetic(spec);
  fd::Fd base = datagen::SyntheticFd(rel.schema());
  for (int a = 2; a < rel.attr_count(); ++a) {
    EquivalencePoint p = CompareMeasures(rel, base, AttrSet::Of({a}));
    if (p.cb_null) {
      EXPECT_TRUE(p.vi_null) << "attr " << a;
    }
  }
}

TEST(EquivalenceTest, MunicipalIsTheNullPointOfBothMeasures) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  fd::Fd f1 = datagen::PlacesF1(s);
  EquivalencePoint mun =
      CompareMeasures(rel, f1, AttrSet::Of({s.Require("Municipal")}));
  EXPECT_TRUE(mun.cb_null);
  EXPECT_TRUE(mun.vi_null);
  // PhNo is exact but not bijective: strictly positive under both measures.
  EquivalencePoint ph =
      CompareMeasures(rel, f1, AttrSet::Of({s.Require("PhNo")}));
  EXPECT_FALSE(ph.cb_null);
  EXPECT_FALSE(ph.vi_null);
  EXPECT_GT(ph.epsilon_cb, 0.0);
  EXPECT_GT(ph.epsilon_vi, 0.0);
}

TEST(EquivalenceTest, ConverseFailsAsLiterallyStated) {
  // Counterexample to the literal converse (ε_VI = 0 ⇒ ε_CB = 0):
  // Y constant, Z constant, X non-constant. Then C_XZ = C_XY (both equal
  // C_X), so VI(C_XY, C_XZ) = 0 — but |C_XZ| = 2 > 1 = |C_Y|, so the
  // goodness of XZ -> Y is 1 and ε_CB = 1 > 0. This documents why the
  // theorem's completeness step b) needs Y -> X-style degeneracy excluded;
  // see DESIGN.md §5 notes.
  Schema schema({{"X", DataType::kInt64},
                 {"Y", DataType::kInt64},
                 {"Z", DataType::kInt64}});
  Relation rel = RelationBuilder("cx", schema)
                     .Row({int64_t{1}, int64_t{9}, int64_t{0}})
                     .Row({int64_t{2}, int64_t{9}, int64_t{0}})
                     .Build();
  fd::Fd base(AttrSet::Of({0}), AttrSet::Of({1}));
  EquivalencePoint p = CompareMeasures(rel, base, AttrSet::Of({2}));
  EXPECT_TRUE(p.vi_null);    // C_XZ and C_XY are the same partition
  EXPECT_FALSE(p.cb_null);   // goodness = |C_XZ| − |C_Y| = 2 − 1 = 1
  EXPECT_DOUBLE_EQ(p.epsilon_cb, 1.0);
}

TEST(EquivalenceTest, EpsilonCbMatchesMeasuresFormula) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  fd::Fd f1 = datagen::PlacesF1(s);
  AttrSet street = AttrSet::Of({s.Require("Street")});
  double eps = EpsilonCb(rel, f1, street);
  fd::FdMeasures m = fd::ComputeMeasures(rel, f1.WithAntecedent(street));
  EXPECT_DOUBLE_EQ(eps, m.inconsistency() + m.abs_goodness());
}

TEST(EquivalenceTest, MeasuresOrderCandidatesSimilarly) {
  // Spearman-style sanity: on Places/F1, the candidate with minimal ε_CB
  // also minimises ε_VI (both say Municipal).
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  fd::Fd f1 = datagen::PlacesF1(s);
  double best_cb = 1e18;
  double best_vi = 1e18;
  int best_cb_attr = -1;
  int best_vi_attr = -1;
  for (int a : rel.schema().AllAttrs().Minus(f1.AllAttrs()).ToVector()) {
    double cb = EpsilonCb(rel, f1, AttrSet::Of({a}));
    double vi = EpsilonVi(rel, f1, AttrSet::Of({a}));
    if (cb < best_cb) {
      best_cb = cb;
      best_cb_attr = a;
    }
    if (vi < best_vi) {
      best_vi = vi;
      best_vi_attr = a;
    }
  }
  EXPECT_EQ(best_cb_attr, s.Require("Municipal"));
  EXPECT_EQ(best_vi_attr, s.Require("Municipal"));
}

}  // namespace
}  // namespace fdevolve::clustering
