#include "clustering/eb_repair.h"

#include <gtest/gtest.h>

#include "datagen/places.h"
#include "datagen/synthetic.h"
#include "fd/repair_search.h"

namespace fdevolve::clustering {
namespace {

using relation::AttrSet;

TEST(EbRepairTest, HomogeneousCandidatesAreTheExactOnes) {
  // On Places/F1 the EB primary entropy must be zero exactly for the two
  // attributes (Municipal, PhNo) that the CB method finds exact.
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  auto cands = RankEb(rel, datagen::PlacesF1(s));
  ASSERT_EQ(cands.size(), 6u);
  for (const auto& c : cands) {
    bool is_exact_attr = c.attr == s.Require("Municipal") ||
                         c.attr == s.Require("PhNo");
    EXPECT_EQ(c.homogeneous(), is_exact_attr)
        << "attr " << s.attr(c.attr).name;
  }
}

TEST(EbRepairTest, MunicipalRanksAbovePhNo) {
  // The EB tie-break H(C_A|C_XY) prefers Municipal over the over-specific
  // PhNo, matching the CB goodness tie-break (§5's headline agreement).
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  auto cands = RankEb(rel, datagen::PlacesF1(s), fd::PoolOptions{});
  EXPECT_EQ(cands[0].attr, s.Require("Municipal"));
  EXPECT_EQ(cands[1].attr, s.Require("PhNo"));
  // Municipal is homogeneous AND complete: perfect (VI = 0).
  EXPECT_TRUE(cands[0].perfect());
  EXPECT_FALSE(cands[1].perfect());
}

TEST(EbRepairTest, ViVariantAlsoPutsMunicipalFirst) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  auto cands = RankEb(rel, datagen::PlacesF1(s), fd::PoolOptions{},
                      EbVariant::kVi);
  EXPECT_EQ(cands[0].attr, s.Require("Municipal"));
}

TEST(EbRepairTest, ViIsSumOfPrimaryAndReverseEntropy) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  fd::Fd f1 = datagen::PlacesF1(s);
  Clustering ground_truth(rel, f1.AllAttrs());
  for (const auto& c : RankEb(rel, f1)) {
    Clustering c_xa(rel, f1.lhs().With(c.attr));
    double expect_vi = ConditionalEntropy(ground_truth, c_xa) +
                       ConditionalEntropy(c_xa, ground_truth);
    EXPECT_NEAR(c.vi, expect_vi, 1e-12);
  }
}

TEST(EbRepairTest, AgreesWithCbOnExactCandidates) {
  // Property (§5): attribute A yields an exact CB repair (confidence 1)
  // iff EB finds C_XA homogeneous w.r.t. C_XY.
  datagen::SyntheticSpec spec;
  spec.n_attrs = 8;
  spec.n_tuples = 600;
  spec.repair_length = 1;
  spec.seed = 21;
  auto rel = datagen::MakeSynthetic(spec);
  fd::Fd f = datagen::SyntheticFd(rel.schema());

  query::DistinctEvaluator eval(rel);
  auto cb = fd::ExtendByOne(eval, f);
  auto eb = RankEb(rel, f);
  ASSERT_EQ(cb.size(), eb.size());
  for (const auto& e : eb) {
    for (const auto& c : cb) {
      if (c.attr == e.attr) {
        EXPECT_EQ(c.measures.exact, e.homogeneous())
            << "attr index " << c.attr;
      }
    }
  }
}

TEST(EbRepairTest, PoolFilteringMatchesCb) {
  auto rel = datagen::MakePlaces();
  fd::Fd f1 = datagen::PlacesF1(rel.schema());
  fd::PoolOptions opts;
  opts.restrict_to = AttrSet::Of({rel.schema().Require("Municipal")});
  auto cands = RankEb(rel, f1, opts);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].attr, rel.schema().Require("Municipal"));
}

TEST(EbRepairTest, EntropiesNonNegative) {
  auto rel = datagen::MakePlaces();
  for (const auto& c : RankEb(rel, datagen::PlacesF4(rel.schema()))) {
    EXPECT_GE(c.h_xy_given_xa, 0.0);
    EXPECT_GE(c.h_a_given_xy, 0.0);
    EXPECT_GE(c.vi, 0.0);
  }
}

}  // namespace
}  // namespace fdevolve::clustering
