#include "clustering/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/synthetic.h"

namespace fdevolve::clustering {
namespace {

using relation::AttrSet;
using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

Relation MakeRel() {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"c", DataType::kInt64}});
  return RelationBuilder("t", schema)
      .Row({int64_t{1}, int64_t{10}, int64_t{0}})
      .Row({int64_t{1}, int64_t{10}, int64_t{1}})
      .Row({int64_t{2}, int64_t{10}, int64_t{0}})
      .Row({int64_t{2}, int64_t{20}, int64_t{1}})
      .Row({int64_t{3}, int64_t{20}, int64_t{0}})
      .Row({int64_t{3}, int64_t{20}, int64_t{1}})
      .Build();
}

TEST(EntropyTest, UniformTwoWaySplit) {
  // Clustering on c: {0,2,4} vs {1,3,5} — uniform binary: H = ln 2.
  Relation r = MakeRel();
  Clustering c(r, AttrSet::Of({2}));
  EXPECT_NEAR(Entropy(c), std::log(2.0), 1e-12);
}

TEST(EntropyTest, SingleClusterHasZeroEntropy) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet());
  EXPECT_DOUBLE_EQ(Entropy(c), 0.0);
}

TEST(ConditionalEntropyTest, ZeroWhenGivenRefines) {
  // H(C_b | C_ab) = 0: knowing the (a,b) block determines the b block.
  Relation r = MakeRel();
  Clustering c_b(r, AttrSet::Of({1}));
  Clustering c_ab(r, AttrSet::Of({0, 1}));
  EXPECT_NEAR(ConditionalEntropy(c_b, c_ab), 0.0, 1e-12);
  // The converse is nonzero here (b does not determine a).
  EXPECT_GT(ConditionalEntropy(c_ab, c_b), 0.01);
}

TEST(ConditionalEntropyTest, SelfConditioningIsZero) {
  Relation r = MakeRel();
  Clustering c(r, AttrSet::Of({0}));
  EXPECT_NEAR(ConditionalEntropy(c, c), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, ChainRule) {
  // H(A,B) = H(B) + H(A|B) where H(A,B) is the joint clustering entropy.
  Relation r = MakeRel();
  Clustering c_a(r, AttrSet::Of({0}));
  Clustering c_b(r, AttrSet::Of({1}));
  Clustering c_ab(r, AttrSet::Of({0, 1}));
  EXPECT_NEAR(Entropy(c_ab), Entropy(c_b) + ConditionalEntropy(c_a, c_b),
              1e-12);
}

TEST(ViTest, ZeroIffSamePartition) {
  Relation r = MakeRel();
  Clustering c1(r, AttrSet::Of({0}));
  Clustering c2(r, AttrSet::Of({0}));
  EXPECT_NEAR(VariationOfInformation(c1, c2), 0.0, 1e-12);
  Clustering c3(r, AttrSet::Of({1}));
  EXPECT_GT(VariationOfInformation(c1, c3), 0.01);
}

TEST(ViTest, Symmetric) {
  Relation r = MakeRel();
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({2}));
  EXPECT_NEAR(VariationOfInformation(a, b), VariationOfInformation(b, a),
              1e-12);
}

TEST(ViTest, TriangleInequalityOnRandomClusterings) {
  // VI is a metric (Meilă 2007): check the triangle inequality on
  // clusterings from synthetic data.
  datagen::SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 400;
  spec.repair_length = 1;
  Relation r = datagen::MakeSynthetic(spec);
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({1}));
  Clustering c(r, AttrSet::Of({3}));
  EXPECT_LE(VariationOfInformation(a, c),
            VariationOfInformation(a, b) + VariationOfInformation(b, c) +
                1e-9);
}

TEST(ViTest, MatchesEntropyIdentity) {
  // VI(A,B) = H(A) + H(B) − 2·I(A;B).
  Relation r = MakeRel();
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({1}));
  double vi = VariationOfInformation(a, b);
  double id = Entropy(a) + Entropy(b) - 2.0 * MutualInformation(a, b);
  EXPECT_NEAR(vi, id, 1e-12);
}

TEST(MutualInformationTest, NonNegativeAndBounded) {
  Relation r = MakeRel();
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({1}));
  double mi = MutualInformation(a, b);
  EXPECT_GE(mi, 0.0);
  EXPECT_LE(mi, std::min(Entropy(a), Entropy(b)) + 1e-12);
}

TEST(MutualInformationTest, IndependentClusteringsHaveNearZeroMi) {
  // a and c are constructed independent in MakeRel? Not exactly; build an
  // explicitly independent pair instead.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Relation r("t", schema);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      r.AppendRow({i, j});  // perfectly balanced product distribution
    }
  }
  Clustering a(r, AttrSet::Of({0}));
  Clustering b(r, AttrSet::Of({1}));
  EXPECT_NEAR(MutualInformation(a, b), 0.0, 1e-12);
}

TEST(EntropyTest, MismatchedInstancesThrow) {
  Relation r1 = MakeRel();
  Schema schema({{"a", DataType::kInt64}});
  Relation r2("other", schema);
  r2.AppendRow({int64_t{1}});
  Clustering c1(r1, AttrSet::Of({0}));
  Clustering c2(r2, AttrSet::Of({0}));
  EXPECT_THROW(ConditionalEntropy(c1, c2), std::invalid_argument);
}

}  // namespace
}  // namespace fdevolve::clustering
