#include <gtest/gtest.h>

#include "datagen/places.h"
#include "datagen/synthetic.h"
#include "sql/sql_measures.h"

namespace fdevolve::sql {
namespace {

TEST(SqlMeasuresTest, GeneratedQueriesMatchPaperForm) {
  auto places = datagen::MakePlaces();
  fd::Fd f1 = datagen::PlacesF1(places.schema());
  MeasureQueries q = BuildMeasureQueries(places.schema(), f1, "Places");
  EXPECT_EQ(q.count_x, "SELECT COUNT(DISTINCT District, Region) FROM Places");
  EXPECT_EQ(q.count_xy,
            "SELECT COUNT(DISTINCT District, Region, AreaCode) FROM Places");
  EXPECT_EQ(q.count_y, "SELECT COUNT(DISTINCT AreaCode) FROM Places");
}

TEST(SqlMeasuresTest, SqlPathMatchesCoreOnPlaces) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  const auto& rel = db.Get("Places");
  for (const auto& f :
       {datagen::PlacesF1(rel.schema()), datagen::PlacesF2(rel.schema()),
        datagen::PlacesF3(rel.schema()), datagen::PlacesF4(rel.schema())}) {
    fd::FdMeasures core = fd::ComputeMeasures(rel, f);
    fd::FdMeasures via_sql = ComputeMeasuresViaSql(db, "Places", f);
    EXPECT_EQ(core.distinct_x, via_sql.distinct_x);
    EXPECT_EQ(core.distinct_xy, via_sql.distinct_xy);
    EXPECT_EQ(core.distinct_y, via_sql.distinct_y);
    EXPECT_DOUBLE_EQ(core.confidence, via_sql.confidence);
    EXPECT_EQ(core.goodness, via_sql.goodness);
    EXPECT_EQ(core.exact, via_sql.exact);
  }
}

TEST(SqlMeasuresTest, SqlPathMatchesCoreOnSyntheticSweep) {
  datagen::SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 500;
  spec.repair_length = 1;
  spec.noise_null_rate = 0.2;  // exercise NULL-skipping agreement
  Database db;
  db.AddRelation(datagen::MakeSynthetic(spec));
  const auto& rel = db.Get("synthetic");
  // Only NULL-free attrs: SQL COUNT(DISTINCT) skips NULL rows while the
  // core layer counts NULL as a value, so agreement is asserted where the
  // paper's algorithm actually operates (NULL-free FD attributes, §6.2.1).
  auto pool = rel.NonNullAttrs().ToVector();
  for (int x : pool) {
    for (int y : pool) {
      if (x == y) continue;
      fd::Fd f(relation::AttrSet::Of({x}), relation::AttrSet::Of({y}));
      fd::FdMeasures core = fd::ComputeMeasures(rel, f);
      fd::FdMeasures via_sql = ComputeMeasuresViaSql(db, "synthetic", f);
      EXPECT_EQ(core.distinct_x, via_sql.distinct_x) << x << "," << y;
      EXPECT_EQ(core.distinct_xy, via_sql.distinct_xy) << x << "," << y;
    }
  }
}

TEST(SqlMeasuresTest, EmptyAntecedentHasNoSqlForm) {
  auto places = datagen::MakePlaces();
  fd::Fd degenerate(relation::AttrSet(),
                    relation::AttrSet::Of({0}));
  EXPECT_THROW(BuildMeasureQueries(places.schema(), degenerate, "Places"),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdevolve::sql
