#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/places.h"
#include "sql/database.h"

namespace fdevolve::sql {
namespace {

using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

TEST(DatabaseTest, AddAndGet) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  EXPECT_TRUE(db.Has("Places"));
  EXPECT_FALSE(db.Has("Nope"));
  EXPECT_EQ(db.Get("Places").tuple_count(), 11u);
  EXPECT_THROW(db.Get("Nope"), std::invalid_argument);
}

TEST(DatabaseTest, DuplicateNameRejected) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  EXPECT_THROW(db.AddRelation(datagen::MakePlaces()), std::invalid_argument);
}

TEST(DatabaseTest, StablePointersAcrossGrowth) {
  Database db;
  const relation::Relation& first = db.AddRelation(datagen::MakePlaces());
  for (int i = 0; i < 20; ++i) {
    Schema schema({{"x", DataType::kInt64}});
    Relation r("t" + std::to_string(i), schema);
    db.AddRelation(std::move(r));
  }
  // The reference from before the growth is still valid.
  EXPECT_EQ(first.name(), "Places");
  EXPECT_EQ(&first, &db.Get("Places"));
}

TEST(DatabaseTest, DeclareAndListFds) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  db.DeclareFd("Places", "District, Region -> AreaCode", "F1");
  db.DeclareFd("Places", "Zip -> City, State", "F2");
  EXPECT_EQ(db.Fds().size(), 2u);
  EXPECT_EQ(db.Fds("Places").size(), 2u);
  EXPECT_TRUE(db.Fds("Other").empty());
  EXPECT_THROW(db.DeclareFd("Nope", "a -> b"), std::invalid_argument);
  EXPECT_THROW(db.DeclareFd("Places", "Bogus -> AreaCode"),
               std::invalid_argument);
}

TEST(DatabaseTest, DeclareConstructedFd) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  const auto& schema = db.Get("Places").schema();
  fd::Fd f(relation::AttrSet::Of({schema.Require("Zip")}),
           relation::AttrSet::Of({schema.Require("City")}), "byindex");
  const DeclaredFd& d = db.DeclareFd("Places", f);
  EXPECT_EQ(d.fd, f);
  EXPECT_EQ(d.fd.label(), "byindex");
  // Unknown table and out-of-schema attributes are rejected.
  EXPECT_THROW(db.DeclareFd("Nope", f), std::invalid_argument);
  fd::Fd wide(relation::AttrSet::Of({100}), relation::AttrSet::Of({101}));
  EXPECT_THROW(db.DeclareFd("Places", wide), std::invalid_argument);
}

TEST(DatabaseTest, SaveCatalogReportsUnrepresentableCell) {
  Database db;
  Schema schema({{"s", DataType::kString}});
  db.AddRelation(
      RelationBuilder("bad", schema).Row({relation::Value("a,b")}).Build());
  const std::string dir =
      testing::TempDir() + "/fdevolve_catalog_reject_test";
  std::string err;
  EXPECT_FALSE(SaveCatalog(db, dir, &err));
  EXPECT_NE(err.find("table 'bad'"), std::string::npos) << err;
  EXPECT_NE(err.find("row 0"), std::string::npos) << err;
}

TEST(DatabaseTest, ReplaceFd) {
  Database db;
  const auto& places = db.AddRelation(datagen::MakePlaces());
  db.DeclareFd("Places", "District, Region -> AreaCode");
  fd::Fd old_fd =
      fd::Fd::Parse("District, Region -> AreaCode", places.schema());
  fd::Fd new_fd =
      fd::Fd::Parse("District, Region, Municipal -> AreaCode", places.schema());
  db.ReplaceFd("Places", old_fd, new_fd);
  ASSERT_EQ(db.Fds().size(), 1u);
  EXPECT_EQ(db.Fds()[0].fd, new_fd);
  EXPECT_THROW(db.ReplaceFd("Places", old_fd, new_fd), std::invalid_argument);
}

TEST(DatabaseTest, CatalogRoundTrip) {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  db.DeclareFd("Places", "District, Region -> AreaCode");
  db.DeclareFd("Places", "Zip -> City, State");

  std::string dir = testing::TempDir() + "/fdevolve_catalog_test";
  std::filesystem::remove_all(dir);
  std::string error;
  ASSERT_TRUE(SaveCatalog(db, dir, &error)) << error;

  Database loaded;
  ASSERT_TRUE(LoadCatalog(dir, &loaded, &error)) << error;
  EXPECT_TRUE(loaded.Has("Places"));
  EXPECT_EQ(loaded.Get("Places").tuple_count(), 11u);
  ASSERT_EQ(loaded.Fds().size(), 2u);
  // The FDs resolve to the same attribute sets.
  EXPECT_EQ(loaded.Fds()[0].fd,
            fd::Fd::Parse("District, Region -> AreaCode",
                          loaded.Get("Places").schema()));
}

TEST(DatabaseTest, LoadCatalogMissingDirFails) {
  Database db;
  std::string error;
  EXPECT_FALSE(LoadCatalog("/nonexistent/dir", &db, &error));
  EXPECT_FALSE(error.empty());
}

TEST(DatabaseTest, LoadCatalogBadFdLineFails) {
  std::string dir = testing::TempDir() + "/fdevolve_catalog_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    Database db;
    db.AddRelation(datagen::MakePlaces());
    std::string error;
    ASSERT_TRUE(SaveCatalog(db, dir, &error)) << error;
  }
  // Corrupt fds.txt: unknown attribute.
  std::ofstream fds(dir + "/fds.txt");
  fds << "Places: Bogus -> AreaCode\n";
  fds.close();
  Database loaded;
  std::string error;
  EXPECT_FALSE(LoadCatalog(dir, &loaded, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(DatabaseTest, CatalogSkipsCommentsAndBlankLines) {
  std::string dir = testing::TempDir() + "/fdevolve_catalog_comments";
  std::filesystem::remove_all(dir);
  {
    Database db;
    db.AddRelation(datagen::MakePlaces());
    std::string error;
    ASSERT_TRUE(SaveCatalog(db, dir, &error)) << error;
  }
  std::ofstream fds(dir + "/fds.txt");
  fds << "# comment\n\nPlaces: Zip -> State\n";
  fds.close();
  Database loaded;
  std::string error;
  ASSERT_TRUE(LoadCatalog(dir, &loaded, &error)) << error;
  EXPECT_EQ(loaded.Fds().size(), 1u);
}

}  // namespace
}  // namespace fdevolve::sql
