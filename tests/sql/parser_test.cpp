#include <gtest/gtest.h>

#include "sql/parser.h"
#include "support/scoped_locale.h"

namespace fdevolve::sql {
namespace {

TEST(ParserTest, CountDistinctSingleColumn) {
  CountQuery q = Parse("SELECT COUNT(DISTINCT name) FROM places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 1u);
  EXPECT_EQ(q.columns[0], "name");
  EXPECT_EQ(q.table, "places");
  EXPECT_TRUE(q.where.empty());
}

TEST(ParserTest, CountDistinctMultiColumn) {
  // The paper's Q2 form.
  CountQuery q =
      Parse("select count(distinct District, Region, AreaCode) from Places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 3u);
  EXPECT_EQ(q.columns[2], "AreaCode");
}

TEST(ParserTest, CountStar) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(q.distinct);
  EXPECT_TRUE(q.columns.empty());
}

TEST(ParserTest, WhereEqualsString) {
  CountQuery q =
      Parse("SELECT COUNT(*) FROM t WHERE city = 'NY'");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].column, "city");
  EXPECT_EQ(q.where[0].op, Condition::Op::kEq);
  EXPECT_EQ(q.where[0].literal, relation::Value("NY"));
}

TEST(ParserTest, WhereConjunction) {
  CountQuery q = Parse(
      "SELECT COUNT(DISTINCT a) FROM t WHERE b = 1 AND c <> 2.5 AND d IS "
      "NOT NULL AND e IS NULL");
  ASSERT_EQ(q.where.size(), 4u);
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{1}));
  EXPECT_EQ(q.where[1].op, Condition::Op::kNeq);
  EXPECT_EQ(q.where[1].literal, relation::Value(2.5));
  EXPECT_EQ(q.where[2].op, Condition::Op::kIsNotNull);
  EXPECT_EQ(q.where[3].op, Condition::Op::kIsNull);
}

TEST(ParserTest, NegativeNumberLiteral) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t WHERE x = -5");
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{-5}));
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(Parse("SELECT * FROM t"), SqlError);            // not COUNT
  EXPECT_THROW(Parse("SELECT COUNT(DISTINCT) FROM t"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM"), SqlError);       // no table
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE a >< 1"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t extra"), SqlError);
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "SELECT COUNT(DISTINCT District, Region) FROM Places",
      "SELECT COUNT(*) FROM t WHERE a = 1 AND b IS NOT NULL",
      "SELECT COUNT(DISTINCT x) FROM t WHERE s = 'it''s'",
  };
  for (const char* q : queries) {
    CountQuery parsed = Parse(q);
    CountQuery reparsed = Parse(parsed.ToString());
    EXPECT_EQ(parsed.ToString(), reparsed.ToString()) << q;
  }
}

TEST(ParserTest, InsertSingleRow) {
  Statement s = ParseStatement("INSERT INTO places VALUES (1, 'NY', 2.5)");
  const auto& ins = std::get<InsertStatement>(s);
  EXPECT_EQ(ins.table, "places");
  ASSERT_EQ(ins.rows.size(), 1u);
  ASSERT_EQ(ins.rows[0].size(), 3u);
  EXPECT_EQ(ins.rows[0][0], relation::Value(int64_t{1}));
  EXPECT_EQ(ins.rows[0][1], relation::Value("NY"));
  EXPECT_EQ(ins.rows[0][2], relation::Value(2.5));
}

TEST(ParserTest, InsertMultiRowWithNullsAndEscapes) {
  Statement s = ParseStatement(
      "insert into t values ('it''s', NULL), (-3, 'x')");
  const auto& ins = std::get<InsertStatement>(s);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0][0], relation::Value("it's"));
  EXPECT_TRUE(ins.rows[0][1].is_null());
  EXPECT_EQ(ins.rows[1][0], relation::Value(int64_t{-3}));
}

TEST(ParserTest, ParseStatementStillAcceptsCountQueries) {
  Statement s = ParseStatement("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(std::holds_alternative<CountQuery>(s));
}

TEST(ParserTest, InsertToStringRoundTrips) {
  Statement s = ParseStatement(
      "INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'it''s')");
  const auto& ins = std::get<InsertStatement>(s);
  const auto reparsed =
      std::get<InsertStatement>(ParseStatement(ins.ToString()));
  EXPECT_EQ(ins.ToString(), reparsed.ToString());
  EXPECT_EQ(reparsed.rows.size(), 3u);
}

TEST(ParserTest, InsertDoubleLiteralsRoundTripExactly) {
  // Doubles must survive ToString → reparse with their exact value and
  // their doubleness: 30.0 must not come back as int64 30, and tiny
  // values must not be lost to exponent notation the lexer rejects.
  const double doubles[] = {30.0, 2.5, 0.0000001, 1.0 / 3.0, -1e12};
  for (double d : doubles) {
    InsertStatement ins;
    ins.table = "t";
    ins.rows = {{relation::Value(d)}};
    const auto reparsed =
        std::get<InsertStatement>(ParseStatement(ins.ToString()));
    ASSERT_TRUE(reparsed.rows[0][0].is_double()) << ins.ToString();
    EXPECT_EQ(reparsed.rows[0][0].as_double(), d) << ins.ToString();
  }
  // Exponent forms parse directly too.
  const auto direct = std::get<InsertStatement>(
      ParseStatement("INSERT INTO t VALUES (1e-07, 2E+2, 1.5e2)"));
  ASSERT_TRUE(direct.rows[0][0].is_double());
  EXPECT_EQ(direct.rows[0][0].as_double(), 1e-07);
  EXPECT_EQ(direct.rows[0][1].as_double(), 2e2);
  EXPECT_EQ(direct.rows[0][2].as_double(), 1.5e2);
  // An out-of-range literal stays inside the SqlError contract instead of
  // leaking std::out_of_range from stod.
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1e999)"), SqlError);
}

TEST(ParserTest, InsertSyntaxErrors) {
  EXPECT_THROW(ParseStatement("INSERT t VALUES (1)"), SqlError);  // no INTO
  EXPECT_THROW(ParseStatement("INSERT INTO t (1)"), SqlError);    // no VALUES
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES 1, 2"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES ()"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1,)"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1) junk"), SqlError);
  // Parse() remains query-only: INSERT is a syntax error there.
  EXPECT_THROW(Parse("INSERT INTO t VALUES (1)"), SqlError);
}

TEST(ParserTest, CreateTable) {
  const auto create = std::get<CreateTableStatement>(ParseStatement(
      "CREATE TABLE places (name STRING, area int64, lat Double)"));
  EXPECT_EQ(create.table, "places");
  ASSERT_EQ(create.attrs.size(), 3u);
  EXPECT_EQ(create.attrs[0].name, "name");
  EXPECT_EQ(create.attrs[0].type, relation::DataType::kString);
  EXPECT_EQ(create.attrs[1].type, relation::DataType::kInt64);
  EXPECT_EQ(create.attrs[2].type, relation::DataType::kDouble);
  // Type aliases.
  const auto alias = std::get<CreateTableStatement>(
      ParseStatement("CREATE TABLE t (a INT, b FLOAT, c STR)"));
  EXPECT_EQ(alias.attrs[0].type, relation::DataType::kInt64);
  EXPECT_EQ(alias.attrs[1].type, relation::DataType::kDouble);
  EXPECT_EQ(alias.attrs[2].type, relation::DataType::kString);

  EXPECT_THROW(ParseStatement("CREATE TABLE t ()"), SqlError);
  EXPECT_THROW(ParseStatement("CREATE TABLE t (a BLOB)"), SqlError);
  EXPECT_THROW(ParseStatement("CREATE t (a INT64)"), SqlError);
}

TEST(ParserTest, DeclareFd) {
  const auto declare = std::get<DeclareFdStatement>(
      ParseStatement("DECLARE FD city, state -> zip ON addresses"));
  EXPECT_EQ(declare.table, "addresses");
  ASSERT_EQ(declare.lhs.size(), 2u);
  EXPECT_EQ(declare.lhs[0], "city");
  EXPECT_EQ(declare.lhs[1], "state");
  ASSERT_EQ(declare.rhs.size(), 1u);
  EXPECT_EQ(declare.rhs[0], "zip");
  EXPECT_EQ(declare.check_interval, 0u);  // unspecified

  const auto every = std::get<DeclareFdStatement>(
      ParseStatement("DECLARE FD a -> b ON t EVERY 100"));
  EXPECT_EQ(every.check_interval, 100u);

  EXPECT_THROW(ParseStatement("DECLARE FD a -> b ON t EVERY 0"), SqlError);
  EXPECT_THROW(ParseStatement("DECLARE FD a -> b ON t EVERY x"), SqlError);
  EXPECT_THROW(ParseStatement("DECLARE FD a -> ON t"), SqlError);
  EXPECT_THROW(ParseStatement("DECLARE FD -> b ON t"), SqlError);
  EXPECT_THROW(ParseStatement("DECLARE FD a -> b"), SqlError);
}

TEST(ParserTest, ExplainRepair) {
  const auto explain = std::get<ExplainRepairStatement>(
      ParseStatement("EXPLAIN REPAIR city, state -> zip ON addresses"));
  EXPECT_EQ(explain.table, "addresses");
  ASSERT_EQ(explain.lhs.size(), 2u);
  EXPECT_EQ(explain.lhs[0], "city");
  EXPECT_EQ(explain.lhs[1], "state");
  ASSERT_EQ(explain.rhs.size(), 1u);
  EXPECT_EQ(explain.rhs[0], "zip");

  EXPECT_THROW(ParseStatement("EXPLAIN REPAIR a -> ON t"), SqlError);
  EXPECT_THROW(ParseStatement("EXPLAIN REPAIR -> b ON t"), SqlError);
  EXPECT_THROW(ParseStatement("EXPLAIN REPAIR a -> b"), SqlError);
  EXPECT_THROW(ParseStatement("EXPLAIN FD a -> b ON t"), SqlError);
  EXPECT_THROW(ParseStatement("EXPLAIN REPAIR a -> b ON t EXTRA"), SqlError);
}

TEST(ParserTest, ExplainRepairToStringRoundTrips) {
  const auto explain = std::get<ExplainRepairStatement>(
      ParseStatement("explain repair \"odd name\", b -> c ON \"my table\""));
  const auto reparsed =
      std::get<ExplainRepairStatement>(ParseStatement(explain.ToString()));
  EXPECT_EQ(explain.ToString(), reparsed.ToString());
  EXPECT_EQ(reparsed.table, "my table");
  EXPECT_EQ(reparsed.lhs[0], "odd name");
}

TEST(ParserTest, DeleteStatement) {
  const auto del = std::get<DeleteStatement>(
      ParseStatement("DELETE FROM t WHERE a = 1 AND b IS NULL"));
  EXPECT_EQ(del.table, "t");
  ASSERT_EQ(del.where.size(), 2u);
  EXPECT_EQ(del.where[0].column, "a");
  EXPECT_EQ(del.where[0].literal, relation::Value(int64_t{1}));
  EXPECT_EQ(del.where[1].op, Condition::Op::kIsNull);

  // No WHERE = delete everything.
  const auto all = std::get<DeleteStatement>(ParseStatement("delete from t"));
  EXPECT_TRUE(all.where.empty());

  EXPECT_THROW(ParseStatement("DELETE t"), SqlError);           // no FROM
  EXPECT_THROW(ParseStatement("DELETE FROM"), SqlError);        // no table
  EXPECT_THROW(ParseStatement("DELETE FROM t WHERE"), SqlError);
  EXPECT_THROW(ParseStatement("DELETE FROM t junk"), SqlError);
}

TEST(ParserTest, UpdateStatement) {
  const auto upd = std::get<UpdateStatement>(ParseStatement(
      "UPDATE t SET a = 5, b = 'x', c = NULL WHERE d <> 2.5"));
  EXPECT_EQ(upd.table, "t");
  ASSERT_EQ(upd.assignments.size(), 3u);
  EXPECT_EQ(upd.assignments[0].column, "a");
  EXPECT_EQ(upd.assignments[0].value, relation::Value(int64_t{5}));
  EXPECT_EQ(upd.assignments[1].value, relation::Value("x"));
  EXPECT_TRUE(upd.assignments[2].value.is_null());
  ASSERT_EQ(upd.where.size(), 1u);
  EXPECT_EQ(upd.where[0].op, Condition::Op::kNeq);

  const auto all =
      std::get<UpdateStatement>(ParseStatement("update t set a = 1"));
  EXPECT_TRUE(all.where.empty());

  EXPECT_THROW(ParseStatement("UPDATE t"), SqlError);            // no SET
  EXPECT_THROW(ParseStatement("UPDATE SET a = 1"), SqlError);    // no table
  EXPECT_THROW(ParseStatement("UPDATE t SET"), SqlError);
  EXPECT_THROW(ParseStatement("UPDATE t SET a"), SqlError);      // no =
  EXPECT_THROW(ParseStatement("UPDATE t SET a = 1,"), SqlError);
  EXPECT_THROW(ParseStatement("UPDATE t SET a = b"), SqlError);  // not literal
  EXPECT_THROW(ParseStatement("UPDATE t SET a = 1 junk"), SqlError);
}

TEST(ParserTest, MutationToStringRoundTrips) {
  for (const char* text : {
           "DELETE FROM t",
           "DELETE FROM t WHERE a = 1 AND b IS NOT NULL",
           "DELETE FROM \"my table\" WHERE \"select\" = 'it''s'",
           "UPDATE t SET a = 1",
           "UPDATE t SET a = 1, b = 'x', c = NULL WHERE d = 2",
           "UPDATE \"my table\" SET \"select\" = 2.5 WHERE a IS NULL",
       }) {
    Statement stmt = ParseStatement(text);
    std::string rendered =
        std::visit([](const auto& s) { return s.ToString(); }, stmt);
    EXPECT_EQ(rendered, text);
    Statement again = ParseStatement(rendered);
    EXPECT_EQ(std::visit([](const auto& s) { return s.ToString(); }, again),
              rendered);
  }
}

TEST(ParserTest, ServerControlStatements) {
  EXPECT_TRUE(std::holds_alternative<CheckpointStatement>(
      ParseStatement("CHECKPOINT")));
  EXPECT_TRUE(
      std::holds_alternative<ShutdownStatement>(ParseStatement("shutdown")));
  const auto sub = std::get<SubscribeStatement>(
      ParseStatement("SUBSCRIBE DRIFT ON places"));
  EXPECT_EQ(sub.table, "places");
  EXPECT_THROW(ParseStatement("CHECKPOINT now"), SqlError);
  EXPECT_THROW(ParseStatement("SUBSCRIBE DRIFT places"), SqlError);
  EXPECT_THROW(ParseStatement("SUBSCRIBE ON places"), SqlError);
}

TEST(ParserTest, NewStatementsToStringRoundTrip) {
  for (const char* text : {
           "CREATE TABLE t (a INT64, b DOUBLE, c STRING)",
           "DECLARE FD a, b -> c ON t",
           "DECLARE FD a -> b ON t EVERY 50",
           "SUBSCRIBE DRIFT ON t",
           "CHECKPOINT",
           "SHUTDOWN",
       }) {
    Statement stmt = ParseStatement(text);
    std::string rendered = std::visit(
        [](const auto& s) { return s.ToString(); }, stmt);
    EXPECT_EQ(rendered, text);
    // Idempotent: re-parsing the rendering renders identically.
    Statement again = ParseStatement(rendered);
    EXPECT_EQ(std::visit([](const auto& s) { return s.ToString(); }, again),
              rendered);
  }
}

TEST(ParserTest, QuotedIdentifiersRoundTripThroughToString) {
  // Names needing quoting: spaces, reserved words, embedded quotes.
  const auto create = std::get<CreateTableStatement>(ParseStatement(
      "CREATE TABLE \"my table\" (\"select\" INT64, \"a\"\"b\" STRING)"));
  EXPECT_EQ(create.table, "my table");
  EXPECT_EQ(create.attrs[0].name, "select");
  EXPECT_EQ(create.attrs[1].name, "a\"b");
  const std::string rendered = create.ToString();
  EXPECT_EQ(rendered,
            "CREATE TABLE \"my table\" (\"select\" INT64, \"a\"\"b\" "
            "STRING)");
  const auto reparsed =
      std::get<CreateTableStatement>(ParseStatement(rendered));
  EXPECT_EQ(reparsed.table, create.table);
  EXPECT_EQ(reparsed.attrs[1].name, create.attrs[1].name);
}

TEST(ParserTest, DoubleLiteralsAreLocaleIndependent) {
  testsupport::ScopedCommaLocale locale;
  if (!locale.active()) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Under de_DE-style locales std::stod parses "3.14" as 3 (stopping at
  // the '.'); the from_chars-based path must not.
  const auto ins = std::get<InsertStatement>(
      ParseStatement("INSERT INTO t VALUES (3.14, 1.5e2)"));
  ASSERT_TRUE(ins.rows[0][0].is_double());
  EXPECT_EQ(ins.rows[0][0].as_double(), 3.14) << "locale " << locale.name();
  EXPECT_EQ(ins.rows[0][1].as_double(), 1.5e2);
}

}  // namespace
}  // namespace fdevolve::sql
