#include <gtest/gtest.h>

#include "sql/parser.h"

namespace fdevolve::sql {
namespace {

TEST(ParserTest, CountDistinctSingleColumn) {
  CountQuery q = Parse("SELECT COUNT(DISTINCT name) FROM places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 1u);
  EXPECT_EQ(q.columns[0], "name");
  EXPECT_EQ(q.table, "places");
  EXPECT_TRUE(q.where.empty());
}

TEST(ParserTest, CountDistinctMultiColumn) {
  // The paper's Q2 form.
  CountQuery q =
      Parse("select count(distinct District, Region, AreaCode) from Places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 3u);
  EXPECT_EQ(q.columns[2], "AreaCode");
}

TEST(ParserTest, CountStar) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(q.distinct);
  EXPECT_TRUE(q.columns.empty());
}

TEST(ParserTest, WhereEqualsString) {
  CountQuery q =
      Parse("SELECT COUNT(*) FROM t WHERE city = 'NY'");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].column, "city");
  EXPECT_EQ(q.where[0].op, Condition::Op::kEq);
  EXPECT_EQ(q.where[0].literal, relation::Value("NY"));
}

TEST(ParserTest, WhereConjunction) {
  CountQuery q = Parse(
      "SELECT COUNT(DISTINCT a) FROM t WHERE b = 1 AND c <> 2.5 AND d IS "
      "NOT NULL AND e IS NULL");
  ASSERT_EQ(q.where.size(), 4u);
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{1}));
  EXPECT_EQ(q.where[1].op, Condition::Op::kNeq);
  EXPECT_EQ(q.where[1].literal, relation::Value(2.5));
  EXPECT_EQ(q.where[2].op, Condition::Op::kIsNotNull);
  EXPECT_EQ(q.where[3].op, Condition::Op::kIsNull);
}

TEST(ParserTest, NegativeNumberLiteral) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t WHERE x = -5");
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{-5}));
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(Parse("SELECT * FROM t"), SqlError);            // not COUNT
  EXPECT_THROW(Parse("SELECT COUNT(DISTINCT) FROM t"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM"), SqlError);       // no table
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE a >< 1"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t extra"), SqlError);
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "SELECT COUNT(DISTINCT District, Region) FROM Places",
      "SELECT COUNT(*) FROM t WHERE a = 1 AND b IS NOT NULL",
      "SELECT COUNT(DISTINCT x) FROM t WHERE s = 'it''s'",
  };
  for (const char* q : queries) {
    CountQuery parsed = Parse(q);
    CountQuery reparsed = Parse(parsed.ToString());
    EXPECT_EQ(parsed.ToString(), reparsed.ToString()) << q;
  }
}

TEST(ParserTest, InsertSingleRow) {
  Statement s = ParseStatement("INSERT INTO places VALUES (1, 'NY', 2.5)");
  const auto& ins = std::get<InsertStatement>(s);
  EXPECT_EQ(ins.table, "places");
  ASSERT_EQ(ins.rows.size(), 1u);
  ASSERT_EQ(ins.rows[0].size(), 3u);
  EXPECT_EQ(ins.rows[0][0], relation::Value(int64_t{1}));
  EXPECT_EQ(ins.rows[0][1], relation::Value("NY"));
  EXPECT_EQ(ins.rows[0][2], relation::Value(2.5));
}

TEST(ParserTest, InsertMultiRowWithNullsAndEscapes) {
  Statement s = ParseStatement(
      "insert into t values ('it''s', NULL), (-3, 'x')");
  const auto& ins = std::get<InsertStatement>(s);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0][0], relation::Value("it's"));
  EXPECT_TRUE(ins.rows[0][1].is_null());
  EXPECT_EQ(ins.rows[1][0], relation::Value(int64_t{-3}));
}

TEST(ParserTest, ParseStatementStillAcceptsCountQueries) {
  Statement s = ParseStatement("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(std::holds_alternative<CountQuery>(s));
}

TEST(ParserTest, InsertToStringRoundTrips) {
  Statement s = ParseStatement(
      "INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'it''s')");
  const auto& ins = std::get<InsertStatement>(s);
  const auto reparsed =
      std::get<InsertStatement>(ParseStatement(ins.ToString()));
  EXPECT_EQ(ins.ToString(), reparsed.ToString());
  EXPECT_EQ(reparsed.rows.size(), 3u);
}

TEST(ParserTest, InsertDoubleLiteralsRoundTripExactly) {
  // Doubles must survive ToString → reparse with their exact value and
  // their doubleness: 30.0 must not come back as int64 30, and tiny
  // values must not be lost to exponent notation the lexer rejects.
  const double doubles[] = {30.0, 2.5, 0.0000001, 1.0 / 3.0, -1e12};
  for (double d : doubles) {
    InsertStatement ins;
    ins.table = "t";
    ins.rows = {{relation::Value(d)}};
    const auto reparsed =
        std::get<InsertStatement>(ParseStatement(ins.ToString()));
    ASSERT_TRUE(reparsed.rows[0][0].is_double()) << ins.ToString();
    EXPECT_EQ(reparsed.rows[0][0].as_double(), d) << ins.ToString();
  }
  // Exponent forms parse directly too.
  const auto direct = std::get<InsertStatement>(
      ParseStatement("INSERT INTO t VALUES (1e-07, 2E+2, 1.5e2)"));
  ASSERT_TRUE(direct.rows[0][0].is_double());
  EXPECT_EQ(direct.rows[0][0].as_double(), 1e-07);
  EXPECT_EQ(direct.rows[0][1].as_double(), 2e2);
  EXPECT_EQ(direct.rows[0][2].as_double(), 1.5e2);
  // An out-of-range literal stays inside the SqlError contract instead of
  // leaking std::out_of_range from stod.
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1e999)"), SqlError);
}

TEST(ParserTest, InsertSyntaxErrors) {
  EXPECT_THROW(ParseStatement("INSERT t VALUES (1)"), SqlError);  // no INTO
  EXPECT_THROW(ParseStatement("INSERT INTO t (1)"), SqlError);    // no VALUES
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES 1, 2"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES ()"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1,)"), SqlError);
  EXPECT_THROW(ParseStatement("INSERT INTO t VALUES (1) junk"), SqlError);
  // Parse() remains query-only: INSERT is a syntax error there.
  EXPECT_THROW(Parse("INSERT INTO t VALUES (1)"), SqlError);
}

}  // namespace
}  // namespace fdevolve::sql
