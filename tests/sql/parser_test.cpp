#include <gtest/gtest.h>

#include "sql/parser.h"

namespace fdevolve::sql {
namespace {

TEST(ParserTest, CountDistinctSingleColumn) {
  CountQuery q = Parse("SELECT COUNT(DISTINCT name) FROM places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 1u);
  EXPECT_EQ(q.columns[0], "name");
  EXPECT_EQ(q.table, "places");
  EXPECT_TRUE(q.where.empty());
}

TEST(ParserTest, CountDistinctMultiColumn) {
  // The paper's Q2 form.
  CountQuery q =
      Parse("select count(distinct District, Region, AreaCode) from Places");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.columns.size(), 3u);
  EXPECT_EQ(q.columns[2], "AreaCode");
}

TEST(ParserTest, CountStar) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(q.distinct);
  EXPECT_TRUE(q.columns.empty());
}

TEST(ParserTest, WhereEqualsString) {
  CountQuery q =
      Parse("SELECT COUNT(*) FROM t WHERE city = 'NY'");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].column, "city");
  EXPECT_EQ(q.where[0].op, Condition::Op::kEq);
  EXPECT_EQ(q.where[0].literal, relation::Value("NY"));
}

TEST(ParserTest, WhereConjunction) {
  CountQuery q = Parse(
      "SELECT COUNT(DISTINCT a) FROM t WHERE b = 1 AND c <> 2.5 AND d IS "
      "NOT NULL AND e IS NULL");
  ASSERT_EQ(q.where.size(), 4u);
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{1}));
  EXPECT_EQ(q.where[1].op, Condition::Op::kNeq);
  EXPECT_EQ(q.where[1].literal, relation::Value(2.5));
  EXPECT_EQ(q.where[2].op, Condition::Op::kIsNotNull);
  EXPECT_EQ(q.where[3].op, Condition::Op::kIsNull);
}

TEST(ParserTest, NegativeNumberLiteral) {
  CountQuery q = Parse("SELECT COUNT(*) FROM t WHERE x = -5");
  EXPECT_EQ(q.where[0].literal, relation::Value(int64_t{-5}));
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(Parse("SELECT * FROM t"), SqlError);            // not COUNT
  EXPECT_THROW(Parse("SELECT COUNT(DISTINCT) FROM t"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM"), SqlError);       // no table
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t WHERE a >< 1"), SqlError);
  EXPECT_THROW(Parse("SELECT COUNT(*) FROM t extra"), SqlError);
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "SELECT COUNT(DISTINCT District, Region) FROM Places",
      "SELECT COUNT(*) FROM t WHERE a = 1 AND b IS NOT NULL",
      "SELECT COUNT(DISTINCT x) FROM t WHERE s = 'it''s'",
  };
  for (const char* q : queries) {
    CountQuery parsed = Parse(q);
    CountQuery reparsed = Parse(parsed.ToString());
    EXPECT_EQ(parsed.ToString(), reparsed.ToString()) << q;
  }
}

}  // namespace
}  // namespace fdevolve::sql
