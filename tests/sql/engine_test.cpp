#include <gtest/gtest.h>

#include "datagen/places.h"
#include "query/distinct.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace fdevolve::sql {
namespace {

using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;
using relation::Value;

Database MakeDb() {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kString},
                 {"c", DataType::kInt64}});
  db.AddRelation(RelationBuilder("t", schema)
                     .Row({int64_t{1}, "x", int64_t{10}})
                     .Row({int64_t{1}, "y", Value::Null()})
                     .Row({int64_t{2}, "x", int64_t{10}})
                     .Row({int64_t{2}, "x", int64_t{20}})
                     .Build());
  return db;
}

TEST(EngineTest, PaperQ1AndQ2) {
  Database db = MakeDb();
  // §4.4: confidence of F1 = Q1 / Q2 = 2 / 4.
  EXPECT_EQ(ExecuteSql("select count(distinct District, Region) from Places",
                       db),
            2u);
  EXPECT_EQ(ExecuteSql(
                "select count(distinct District, Region, AreaCode) from Places",
                db),
            4u);
}

TEST(EngineTest, CountStar) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM Places", db), 11u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
}

TEST(EngineTest, WhereEquality) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 1", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'x'", db), 3u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 99", db), 0u);
}

TEST(EngineTest, WhereNeq) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b <> 'x'", db), 1u);
  // <> against a value not in the column: all non-NULL rows pass.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b <> 'zzz'", db), 4u);
}

TEST(EngineTest, NullSemantics) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c IS NULL", db), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c IS NOT NULL", db), 3u);
  // = NULL matches nothing (three-valued logic).
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c = NULL", db), 0u);
  // COUNT(DISTINCT c) skips the NULL row: values {10, 20}.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT c) FROM t", db), 2u);
}

TEST(EngineTest, DistinctWithWhere) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT a) FROM t WHERE b = 'x'", db),
            2u);
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(DISTINCT a, c) FROM t WHERE b = 'x'", db), 3u);
}

TEST(EngineTest, DeleteTombstonesMatchingRows) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("DELETE FROM t WHERE b = 'x'", db), 3u);
  const relation::Relation& rel = db.Get("t");
  // Physical rows stay; the logical instance shrinks.
  EXPECT_EQ(rel.tuple_count(), 4u);
  EXPECT_EQ(rel.live_count(), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'x'", db), 0u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT a) FROM t", db), 1u);
  // Deleting already-deleted rows matches nothing.
  EXPECT_EQ(ExecuteSql("DELETE FROM t WHERE b = 'x'", db), 0u);
  // No WHERE = empty the table.
  EXPECT_EQ(ExecuteSql("DELETE FROM t", db), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 0u);
}

TEST(EngineTest, UpdateRewritesMatchingRows) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("UPDATE t SET b = 'z' WHERE a = 1", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'z'", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'y'", db), 0u);
  // Untouched columns keep their values (row {1,"y",NULL} → {1,"z",NULL}).
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'z' AND c IS NULL", db),
      1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
}

TEST(EngineTest, UpdateMatchesPreStatementRowsOnly) {
  Database db = MakeDb();
  // The appended rewrites satisfy the predicate too; they must not be
  // re-matched (a = 1 stays a = 1 exactly once per original row).
  EXPECT_EQ(ExecuteSql("UPDATE t SET a = 1 WHERE a = 1", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 1", db), 2u);
}

TEST(EngineTest, UpdateValidatesBeforeMutating) {
  Database db = MakeDb();
  // Unknown column / type mismatch fail with the table untouched.
  EXPECT_THROW(ExecuteSql("UPDATE t SET zz = 1", db), std::exception);
  EXPECT_THROW(ExecuteSql("UPDATE t SET a = 'nope'", db), std::exception);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
  EXPECT_EQ(db.Get("t").mutation_epoch(), 0u);
  // Int literals coerce into double columns (SET c was declared INT64 in
  // MakeDb's schema for t — use Places' Lat-style column instead: c is
  // int64, so coerce the other way is rejected).
  EXPECT_THROW(ExecuteSql("UPDATE t SET c = 2.5", db), std::exception);
}

TEST(EngineTest, UpdateCoercesIntLiteralIntoDoubleColumn) {
  Database db;
  relation::Schema schema({{"a", relation::DataType::kInt64},
                           {"d", relation::DataType::kDouble}});
  db.AddRelation(RelationBuilder("m", schema)
                     .Row({int64_t{1}, 1.5})
                     .Row({int64_t{2}, 2.5})
                     .Build());
  EXPECT_EQ(ExecuteSql("UPDATE m SET d = 3 WHERE a = 1", db), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM m WHERE d = 3.0", db), 1u);
}

TEST(EngineTest, ConjunctionAndsConditions) {
  Database db = MakeDb();
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 2 AND c = 20", db), 1u);
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 1 AND c = 20", db), 0u);
}

TEST(EngineTest, UnknownTableOrColumnThrows) {
  Database db = MakeDb();
  EXPECT_THROW(ExecuteSql("SELECT COUNT(*) FROM nope", db),
               std::invalid_argument);
  EXPECT_THROW(ExecuteSql("SELECT COUNT(DISTINCT nope) FROM t", db),
               std::invalid_argument);
  EXPECT_THROW(ExecuteSql("SELECT COUNT(*) FROM t WHERE nope = 1", db),
               std::invalid_argument);
}

TEST(EngineTest, TypedLiteralMismatchSelectsNothing) {
  Database db = MakeDb();
  // String literal against int column: no dictionary value matches.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = '1'", db), 0u);
}

TEST(EngineTest, AgreesWithCoreDistinctOnPlaces) {
  Database db = MakeDb();
  const auto& places = db.Get("Places");
  query::DistinctEvaluator eval(places);
  const auto& s = places.schema();
  // Every column and every adjacent pair.
  for (int i = 0; i < s.size(); ++i) {
    std::string q1 = "SELECT COUNT(DISTINCT " + s.attr(i).name + ") FROM Places";
    EXPECT_EQ(ExecuteSql(q1, db), eval.Count(relation::AttrSet::Of({i})));
    for (int j = i + 1; j < s.size(); ++j) {
      std::string q2 = "SELECT COUNT(DISTINCT " + s.attr(i).name + ", " +
                       s.attr(j).name + ") FROM Places";
      EXPECT_EQ(ExecuteSql(q2, db),
                eval.Count(relation::AttrSet::Of({i, j})));
    }
  }
}

TEST(EngineTest, InsertAppendsRows) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
  EXPECT_EQ(ExecuteSql("INSERT INTO t VALUES (3, 'z', 30), (3, 'z', NULL)",
                       db),
            2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 6u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'z'", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT a) FROM t", db), 3u);
}

TEST(EngineTest, InsertCoercesIntLiteralIntoDoubleColumn) {
  Database db;
  relation::Schema schema(
      {{"name", DataType::kString}, {"score", DataType::kDouble}});
  db.AddRelation(Relation("d", schema));
  EXPECT_EQ(ExecuteSql("INSERT INTO d VALUES ('a', 1), ('b', 2.5)", db), 2u);
  EXPECT_EQ(db.Get("d").Get(0, 1), Value(1.0));
  EXPECT_EQ(db.Get("d").Get(1, 1), Value(2.5));
}

TEST(EngineTest, InsertRejectsBadRowsAllOrNothing) {
  Database db = MakeDb();
  // Second row's arity is wrong: nothing from the statement may land.
  EXPECT_THROW(ExecuteSql("INSERT INTO t VALUES (9, 'ok', 1), (8, 'short')",
                          db),
               std::invalid_argument);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
  // Double literal into an int column is not silently truncated.
  EXPECT_THROW(ExecuteSql("INSERT INTO t VALUES (1.5, 'x', 1)", db),
               std::invalid_argument);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
}

TEST(EngineTest, InsertUnknownTableThrows) {
  Database db = MakeDb();
  EXPECT_THROW(ExecuteSql("INSERT INTO nope VALUES (1)", db),
               std::invalid_argument);
}

TEST(EngineTest, ExplainRepairRendersPlan) {
  Database db = MakeDb();
  // b -> c drifts on t ('x' maps to 10 and 20); the only pool candidate
  // is a.
  const Database& cdb = db;
  const auto stmt = std::get<ExplainRepairStatement>(
      ParseStatement("EXPLAIN REPAIR b -> c ON t"));
  const std::string plan = Execute(stmt, cdb);
  EXPECT_NE(plan.find("repair plan for [b] -> [c]"), std::string::npos);
  EXPECT_NE(plan.find("+a"), std::string::npos);
  EXPECT_NE(plan.find("4 live rows"), std::string::npos);
  // The generic statement path validates and returns 0 (no count to
  // report).
  EXPECT_EQ(ExecuteSql("EXPLAIN REPAIR b -> c ON t", db), 0u);
  // An exact FD explains to the short-circuit form.
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  db.AddRelation(RelationBuilder("exact", schema)
                     .Row({int64_t{1}, int64_t{10}})
                     .Row({int64_t{2}, int64_t{20}})
                     .Build());
  const auto exact = std::get<ExplainRepairStatement>(
      ParseStatement("EXPLAIN REPAIR k -> v ON exact"));
  EXPECT_NE(Execute(exact, cdb).find("already meets target"),
            std::string::npos);
}

TEST(EngineTest, ExplainRepairUnknownNamesThrow) {
  Database db = MakeDb();
  EXPECT_THROW(ExecuteSql("EXPLAIN REPAIR b -> c ON nope", db),
               std::invalid_argument);
  EXPECT_THROW(ExecuteSql("EXPLAIN REPAIR nope -> c ON t", db),
               std::invalid_argument);
}

TEST(EngineTest, SqlDrivenMonitoringScenario) {
  // The paper's prototype workflow end to end in SQL: declare, watch the
  // confidence queries, insert the drift, watch them diverge.
  Database db = MakeDb();
  Schema schema({{"zip", DataType::kString}, {"state", DataType::kString}});
  db.AddRelation(RelationBuilder("addr", schema)
                     .Row({"10001", "NY"})
                     .Row({"02101", "MA"})
                     .Build());
  // Exact: |π_zip| == |π_zip,state| (Q1 == Q2).
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT zip) FROM addr", db),
            ExecuteSql("SELECT COUNT(DISTINCT zip, state) FROM addr", db));
  ExecuteSql("INSERT INTO addr VALUES ('10001', 'NJ')", db);
  // Drifted: the split zip now maps to two states.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT zip) FROM addr", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT zip, state) FROM addr", db), 3u);
}

}  // namespace
}  // namespace fdevolve::sql
