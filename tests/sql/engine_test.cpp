#include <gtest/gtest.h>

#include "datagen/places.h"
#include "query/distinct.h"
#include "sql/engine.h"

namespace fdevolve::sql {
namespace {

using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;
using relation::Value;

Database MakeDb() {
  Database db;
  db.AddRelation(datagen::MakePlaces());
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kString},
                 {"c", DataType::kInt64}});
  db.AddRelation(RelationBuilder("t", schema)
                     .Row({int64_t{1}, "x", int64_t{10}})
                     .Row({int64_t{1}, "y", Value::Null()})
                     .Row({int64_t{2}, "x", int64_t{10}})
                     .Row({int64_t{2}, "x", int64_t{20}})
                     .Build());
  return db;
}

TEST(EngineTest, PaperQ1AndQ2) {
  Database db = MakeDb();
  // §4.4: confidence of F1 = Q1 / Q2 = 2 / 4.
  EXPECT_EQ(ExecuteSql("select count(distinct District, Region) from Places",
                       db),
            2u);
  EXPECT_EQ(ExecuteSql(
                "select count(distinct District, Region, AreaCode) from Places",
                db),
            4u);
}

TEST(EngineTest, CountStar) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM Places", db), 11u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t", db), 4u);
}

TEST(EngineTest, WhereEquality) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 1", db), 2u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b = 'x'", db), 3u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 99", db), 0u);
}

TEST(EngineTest, WhereNeq) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b <> 'x'", db), 1u);
  // <> against a value not in the column: all non-NULL rows pass.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE b <> 'zzz'", db), 4u);
}

TEST(EngineTest, NullSemantics) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c IS NULL", db), 1u);
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c IS NOT NULL", db), 3u);
  // = NULL matches nothing (three-valued logic).
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE c = NULL", db), 0u);
  // COUNT(DISTINCT c) skips the NULL row: values {10, 20}.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT c) FROM t", db), 2u);
}

TEST(EngineTest, DistinctWithWhere) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSql("SELECT COUNT(DISTINCT a) FROM t WHERE b = 'x'", db),
            2u);
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(DISTINCT a, c) FROM t WHERE b = 'x'", db), 3u);
}

TEST(EngineTest, ConjunctionAndsConditions) {
  Database db = MakeDb();
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 2 AND c = 20", db), 1u);
  EXPECT_EQ(
      ExecuteSql("SELECT COUNT(*) FROM t WHERE a = 1 AND c = 20", db), 0u);
}

TEST(EngineTest, UnknownTableOrColumnThrows) {
  Database db = MakeDb();
  EXPECT_THROW(ExecuteSql("SELECT COUNT(*) FROM nope", db),
               std::invalid_argument);
  EXPECT_THROW(ExecuteSql("SELECT COUNT(DISTINCT nope) FROM t", db),
               std::invalid_argument);
  EXPECT_THROW(ExecuteSql("SELECT COUNT(*) FROM t WHERE nope = 1", db),
               std::invalid_argument);
}

TEST(EngineTest, TypedLiteralMismatchSelectsNothing) {
  Database db = MakeDb();
  // String literal against int column: no dictionary value matches.
  EXPECT_EQ(ExecuteSql("SELECT COUNT(*) FROM t WHERE a = '1'", db), 0u);
}

TEST(EngineTest, AgreesWithCoreDistinctOnPlaces) {
  Database db = MakeDb();
  const auto& places = db.Get("Places");
  query::DistinctEvaluator eval(places);
  const auto& s = places.schema();
  // Every column and every adjacent pair.
  for (int i = 0; i < s.size(); ++i) {
    std::string q1 = "SELECT COUNT(DISTINCT " + s.attr(i).name + ") FROM Places";
    EXPECT_EQ(ExecuteSql(q1, db), eval.Count(relation::AttrSet::Of({i})));
    for (int j = i + 1; j < s.size(); ++j) {
      std::string q2 = "SELECT COUNT(DISTINCT " + s.attr(i).name + ", " +
                       s.attr(j).name + ") FROM Places";
      EXPECT_EQ(ExecuteSql(q2, db),
                eval.Count(relation::AttrSet::Of({i, j})));
    }
  }
}

}  // namespace
}  // namespace fdevolve::sql
