#include <gtest/gtest.h>

#include "sql/token.h"

namespace fdevolve::sql {
namespace {

TEST(LexerTest, KeywordsUppercasedAndRecognised) {
  auto tokens = Lex("select Count ( distinct a ) FROM t");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("COUNT"));
  EXPECT_TRUE(tokens[3].IsKeyword("DISTINCT"));
  EXPECT_EQ(tokens[4].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[4].text, "a");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("AreaCode ph_no _x9");
  EXPECT_EQ(tokens[0].text, "AreaCode");
  EXPECT_EQ(tokens[1].text, "ph_no");
  EXPECT_EQ(tokens[2].text, "_x9");
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = Lex("\"Area Code\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Area Code");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'abc' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 -7 3.5");
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "-7");
  EXPECT_EQ(tokens[2].text, "3.5");
}

TEST(LexerTest, SymbolsAndOperatorNormalisation) {
  auto tokens = Lex("( ) , * = <> !=");
  EXPECT_TRUE(tokens[0].IsSymbol("("));
  EXPECT_TRUE(tokens[4].IsSymbol("="));
  EXPECT_TRUE(tokens[5].IsSymbol("<>"));
  EXPECT_TRUE(tokens[6].IsSymbol("<>"));  // != normalised
}

TEST(LexerTest, ErrorsCarryPosition) {
  try {
    Lex("a $ b");
    FAIL() << "expected SqlError";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.position(), 2u);
  }
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("'abc"), SqlError);
  EXPECT_THROW(Lex("\"abc"), SqlError);
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace fdevolve::sql
