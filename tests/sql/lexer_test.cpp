#include <gtest/gtest.h>

#include "sql/token.h"

namespace fdevolve::sql {
namespace {

TEST(LexerTest, KeywordsUppercasedAndRecognised) {
  auto tokens = Lex("select Count ( distinct a ) FROM t");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("COUNT"));
  EXPECT_TRUE(tokens[3].IsKeyword("DISTINCT"));
  EXPECT_EQ(tokens[4].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[4].text, "a");
}

TEST(LexerTest, ExplainRepairAreKeywords) {
  auto tokens = Lex("explain repair a -> b on t");
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_TRUE(tokens[0].IsKeyword("EXPLAIN"));
  EXPECT_TRUE(tokens[1].IsKeyword("REPAIR"));
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
  EXPECT_TRUE(tokens[5].IsKeyword("ON"));
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("AreaCode ph_no _x9");
  EXPECT_EQ(tokens[0].text, "AreaCode");
  EXPECT_EQ(tokens[1].text, "ph_no");
  EXPECT_EQ(tokens[2].text, "_x9");
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = Lex("\"Area Code\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Area Code");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'abc' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 -7 3.5");
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "-7");
  EXPECT_EQ(tokens[2].text, "3.5");
}

TEST(LexerTest, SymbolsAndOperatorNormalisation) {
  auto tokens = Lex("( ) , * = <> !=");
  EXPECT_TRUE(tokens[0].IsSymbol("("));
  EXPECT_TRUE(tokens[4].IsSymbol("="));
  EXPECT_TRUE(tokens[5].IsSymbol("<>"));
  EXPECT_TRUE(tokens[6].IsSymbol("<>"));  // != normalised
}

TEST(LexerTest, ErrorsCarryPosition) {
  try {
    Lex("a $ b");
    FAIL() << "expected SqlError";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.position(), 2u);
  }
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("'abc"), SqlError);
  EXPECT_THROW(Lex("\"abc"), SqlError);
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, QuotedIdentifierEscapesDoubledQuote) {
  // "" inside a quoted identifier is one literal quote — previously this
  // lexed as two adjacent identifiers `a` and `b`.
  auto tokens = Lex("\"a\"\"b\"");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "a\"b");
  EXPECT_EQ(tokens[1].type, TokenType::kEnd);
}

TEST(LexerTest, QuotedIdentifierAllQuotes) {
  auto tokens = Lex("\"\"\"\"");  // "" "" → a single-quote-char identifier
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "\"");
}

TEST(LexerTest, EmptyQuotedIdentifierRejected) {
  try {
    Lex("\"\"");
    FAIL() << "expected SqlError";
  } catch (const SqlError& e) {
    EXPECT_EQ(e.position(), 0u);
  }
}

TEST(LexerTest, UnterminatedQuotedIdentifierWithEscapeThrows) {
  // The closing quote here is consumed by the "" escape, so the
  // identifier is unterminated.
  EXPECT_THROW(Lex("\"a\"\""), SqlError);
}

TEST(LexerTest, ArrowSymbol) {
  auto tokens = Lex("a, b -> c");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_TRUE(tokens[3].IsSymbol("->"));
  // `-> ` vs a negative number: `-7` still lexes as one number token.
  auto neg = Lex("-7");
  EXPECT_EQ(neg[0].type, TokenType::kNumber);
  EXPECT_EQ(neg[0].text, "-7");
}

TEST(LexerTest, ServerStatementKeywords) {
  auto tokens =
      Lex("create table declare fd on every checkpoint shutdown subscribe "
          "drift");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword) << i;
  }
  EXPECT_TRUE(tokens[0].IsKeyword("CREATE"));
  EXPECT_TRUE(tokens[8].IsKeyword("SUBSCRIBE"));
}

TEST(LexerTest, MutationKeywords) {
  auto tokens = Lex("delete update set");
  EXPECT_TRUE(tokens[0].IsKeyword("DELETE"));
  EXPECT_TRUE(tokens[1].IsKeyword("UPDATE"));
  EXPECT_TRUE(tokens[2].IsKeyword("SET"));
  EXPECT_TRUE(IsReservedWord("Update"));
  EXPECT_TRUE(IsReservedWord("SET"));
}

TEST(LexerTest, IsReservedWord) {
  EXPECT_TRUE(IsReservedWord("select"));
  EXPECT_TRUE(IsReservedWord("TABLE"));
  EXPECT_TRUE(IsReservedWord("Drift"));
  EXPECT_FALSE(IsReservedWord("AreaCode"));
  EXPECT_FALSE(IsReservedWord("int64"));
}

}  // namespace
}  // namespace fdevolve::sql
