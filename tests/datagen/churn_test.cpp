#include "datagen/churn.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "fd/measures.h"
#include "relation/relation.h"

namespace fdevolve::datagen {
namespace {

using relation::Relation;
using relation::Value;

ChurnSpec BaseSpec(ChurnScenario scenario, uint64_t seed = 42) {
  ChurnSpec spec;
  spec.scenario = scenario;
  spec.seed_rows = 50;
  spec.n_ops = 400;
  spec.seed = seed;
  return spec;
}

/// Applies the whole stream to a fresh copy of the seed relation.
Relation ApplyAll(const ChurnStream& stream) {
  Relation rel = stream.initial;
  for (const ChurnOp& op : stream.ops) ApplyChurnOp(&rel, op);
  return rel;
}

TEST(ChurnTest, DeterministicInSpec) {
  const ChurnStream a = MakeChurn(BaseSpec(ChurnScenario::kDeleteHeavy));
  const ChurnStream b = MakeChurn(BaseSpec(ChurnScenario::kDeleteHeavy));
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.initial.tuple_count(), b.initial.tuple_count());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind) << i;
    EXPECT_EQ(a.ops[i].live_ordinal, b.ops[i].live_ordinal) << i;
    EXPECT_EQ(a.ops[i].row, b.ops[i].row) << i;
  }
  const ChurnStream c = MakeChurn(BaseSpec(ChurnScenario::kDeleteHeavy, 43));
  bool differs = c.ops.size() != a.ops.size();
  for (size_t i = 0; !differs && i < a.ops.size(); ++i) {
    differs = a.ops[i].kind != c.ops[i].kind || a.ops[i].row != c.ops[i].row;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(ChurnTest, StreamAppliesCleanly) {
  for (ChurnScenario s : {ChurnScenario::kDeleteHeavy,
                          ChurnScenario::kReinsertHeavy,
                          ChurnScenario::kDomainGrowth}) {
    const ChurnStream stream = MakeChurn(BaseSpec(s));
    Relation rel = ApplyAll(stream);  // no ordinal ever out of range
    EXPECT_GT(rel.live_count(), 0u) << ChurnScenarioName(s);
  }
}

TEST(ChurnTest, DeleteHeavyActuallyDeletes) {
  const ChurnStream stream = MakeChurn(BaseSpec(ChurnScenario::kDeleteHeavy));
  size_t deletes = 0;
  for (const ChurnOp& op : stream.ops) {
    if (op.kind == ChurnOp::Kind::kDelete) ++deletes;
  }
  // ~Half the ops are deletes (minus the ones skipped on an empty live
  // set); anything above a third proves the hazard is exercised.
  EXPECT_GT(deletes, stream.ops.size() / 3);
}

TEST(ChurnTest, ReinsertHeavyReplaysDeletedTuples) {
  const ChurnStream stream =
      MakeChurn(BaseSpec(ChurnScenario::kReinsertHeavy));
  // Every X value carries one canonical Y (violation_rate aside), so a
  // reinserted row is recognizable as an insert whose exact row appeared
  // in a previous delete's position. Track the multiset of deleted rows
  // and count verbatim replays.
  Relation rel = stream.initial;
  std::multiset<std::pair<int64_t, int64_t>> deleted;
  size_t replays = 0;
  for (const ChurnOp& op : stream.ops) {
    if (op.kind == ChurnOp::Kind::kDelete) {
      size_t seen = 0;
      for (size_t t = 0; t < rel.tuple_count(); ++t) {
        if (!rel.is_live(t)) continue;
        if (seen++ == op.live_ordinal) {
          deleted.insert({rel.Get(t, 0).as_int(), rel.Get(t, 1).as_int()});
          break;
        }
      }
    } else {
      auto key = std::make_pair(op.row[0].as_int(), op.row[1].as_int());
      auto it = deleted.find(key);
      if (it != deleted.end()) {
        deleted.erase(it);
        ++replays;
      }
    }
    ApplyChurnOp(&rel, op);
  }
  EXPECT_GT(replays, stream.ops.size() / 10)
      << "reinsert-heavy stream barely reinserts";
}

TEST(ChurnTest, DomainGrowthWidensTheAntecedent) {
  ChurnSpec spec = BaseSpec(ChurnScenario::kDomainGrowth);
  spec.n_ops = 1000;
  const ChurnStream stream = MakeChurn(spec);
  int64_t max_early = 0, max_late = 0;
  for (size_t i = 0; i < stream.ops.size(); ++i) {
    const ChurnOp& op = stream.ops[i];
    if (op.kind != ChurnOp::Kind::kInsert) continue;
    int64_t x = op.row[0].as_int();
    if (i < stream.ops.size() / 4) {
      max_early = std::max(max_early, x);
    } else if (i >= 3 * stream.ops.size() / 4) {
      max_late = std::max(max_late, x);
    }
  }
  EXPECT_GT(max_late, max_early) << "antecedent domain did not grow";
  EXPECT_GT(max_late, static_cast<int64_t>(spec.x_domain))
      << "late inserts never left the starting domain";
}

TEST(ChurnTest, ZeroViolationRateKeepsFdExact) {
  ChurnSpec spec = BaseSpec(ChurnScenario::kDeleteHeavy);
  spec.violation_rate = 0.0;
  const ChurnStream stream = MakeChurn(spec);
  Relation rel = ApplyAll(stream);
  rel.Compact();
  const fd::FdMeasures m =
      fd::ComputeMeasures(rel, ChurnFd(rel.schema()));
  EXPECT_TRUE(m.exact);
}

TEST(ChurnTest, ViolationRatePlantsWitnesses) {
  ChurnSpec spec = BaseSpec(ChurnScenario::kDomainGrowth);
  spec.violation_rate = 0.3;
  spec.n_ops = 600;
  const ChurnStream stream = MakeChurn(spec);
  Relation rel = ApplyAll(stream);
  rel.Compact();
  const fd::FdMeasures m =
      fd::ComputeMeasures(rel, ChurnFd(rel.schema()));
  EXPECT_FALSE(m.exact);
}

TEST(ChurnTest, OutOfRangeOrdinalThrows) {
  Relation rel = MakeChurn(BaseSpec(ChurnScenario::kDeleteHeavy)).initial;
  ChurnOp op;
  op.kind = ChurnOp::Kind::kDelete;
  op.live_ordinal = rel.live_count();  // one past the end
  EXPECT_THROW(ApplyChurnOp(&rel, op), std::invalid_argument);
}

TEST(ChurnTest, RejectsDegenerateSpecs) {
  ChurnSpec spec = BaseSpec(ChurnScenario::kDeleteHeavy);
  spec.x_domain = 0;
  EXPECT_THROW(MakeChurn(spec), std::invalid_argument);
  spec = BaseSpec(ChurnScenario::kDeleteHeavy);
  spec.y_domain = 1;
  spec.violation_rate = 0.1;
  EXPECT_THROW(MakeChurn(spec), std::invalid_argument);
}

}  // namespace
}  // namespace fdevolve::datagen
