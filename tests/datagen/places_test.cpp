#include "datagen/places.h"

#include <gtest/gtest.h>

#include "query/distinct.h"

namespace fdevolve::datagen {
namespace {

TEST(PlacesTest, SchemaMatchesFigure1) {
  auto rel = MakePlaces();
  EXPECT_EQ(rel.name(), "Places");
  EXPECT_EQ(rel.attr_count(), 9);
  EXPECT_EQ(rel.tuple_count(), 11u);
  const char* expected[] = {"District", "Region", "Municipal",
                            "AreaCode", "PhNo",   "Street",
                            "Zip",      "City",   "State"};
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(rel.schema().attr(i).name, expected[i]);
  }
}

TEST(PlacesTest, NoNulls) {
  auto rel = MakePlaces();
  EXPECT_EQ(rel.NonNullAttrs(), rel.schema().AllAttrs());
}

TEST(PlacesTest, ColumnCardinalities) {
  auto rel = MakePlaces();
  query::DistinctEvaluator eval(rel);
  const auto& s = rel.schema();
  // Reverse-engineered from the paper's projection counts.
  EXPECT_EQ(eval.Count(s.Resolve({"District"})), 2u);
  EXPECT_EQ(eval.Count(s.Resolve({"Region"})), 2u);
  EXPECT_EQ(eval.Count(s.Resolve({"Municipal"})), 4u);
  EXPECT_EQ(eval.Count(s.Resolve({"AreaCode"})), 4u);
  EXPECT_EQ(eval.Count(s.Resolve({"PhNo"})), 6u);
  EXPECT_EQ(eval.Count(s.Resolve({"Street"})), 7u);
  EXPECT_EQ(eval.Count(s.Resolve({"Zip"})), 4u);
  EXPECT_EQ(eval.Count(s.Resolve({"City"})), 4u);
  EXPECT_EQ(eval.Count(s.Resolve({"State"})), 3u);
}

TEST(PlacesTest, FdFactoriesParse) {
  auto rel = MakePlaces();
  const auto& s = rel.schema();
  EXPECT_EQ(PlacesF1(s).ToString(s), "[District, Region] -> [AreaCode]");
  EXPECT_EQ(PlacesF2(s).ToString(s), "[Zip] -> [City, State]");
  EXPECT_EQ(PlacesF3(s).ToString(s), "[PhNo, Zip] -> [Street]");
  EXPECT_EQ(PlacesF4(s).ToString(s), "[District] -> [PhNo]");
}

TEST(PlacesTest, MunicipalAreaCodeBijection) {
  // The reconstruction property that drives the whole §3 discussion.
  auto rel = MakePlaces();
  query::DistinctEvaluator eval(rel);
  const auto& s = rel.schema();
  EXPECT_EQ(eval.Count(s.Resolve({"Municipal", "AreaCode"})), 4u);
}

}  // namespace
}  // namespace fdevolve::datagen
