#include "datagen/realistic.h"

#include <gtest/gtest.h>

#include "fd/measures.h"
#include "fd/repair_search.h"

namespace fdevolve::datagen {
namespace {

RealOptions FastOpts() {
  RealOptions o;
  o.large_divisor = 100;  // keep unit tests quick
  return o;
}

TEST(RealisticTest, AllSixWorkloadsBuild) {
  auto all = MakeAllRealWorkloads(FastOpts());
  ASSERT_EQ(all.size(), 6u);
  const char* names[] = {"Places", "Country", "Rental",
                         "Image",  "PageLinks", "Veterans"};
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].rel.name(), names[i]);
    EXPECT_GT(all[i].rel.tuple_count(), 0u);
  }
}

TEST(RealisticTest, AritiesMatchTable6) {
  auto all = MakeAllRealWorkloads(FastOpts());
  const int arities[] = {9, 15, 7, 14, 3, 481};
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].rel.attr_count(), arities[i]) << all[i].rel.name();
  }
}

TEST(RealisticTest, SmallTablesAtFullPaperCardinality) {
  auto country = MakeCountryWorkload(FastOpts());
  EXPECT_EQ(country.rel.tuple_count(), 239u);
  auto rental = MakeRentalWorkload(FastOpts());
  EXPECT_EQ(rental.rel.tuple_count(), 16044u);
}

TEST(RealisticTest, EveryFdIsViolated) {
  for (const auto& w : MakeAllRealWorkloads(FastOpts())) {
    EXPECT_FALSE(fd::Satisfies(w.rel, w.fd)) << w.rel.name();
  }
}

TEST(RealisticTest, CountryRepairsWithOneAttribute) {
  auto w = MakeCountryWorkload(FastOpts());
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  auto res = fd::Extend(w.rel, w.fd, opts);
  ASSERT_TRUE(res.found());
  EXPECT_EQ(res.repairs[0].added.Count(), w.expected_repair_length);
}

TEST(RealisticTest, RentalRepairsWithOneAttribute) {
  auto w = MakeRentalWorkload(FastOpts());
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  auto res = fd::Extend(w.rel, w.fd, opts);
  ASSERT_TRUE(res.found());
  EXPECT_EQ(res.repairs[0].added.Count(), 1);
  EXPECT_TRUE(res.repairs[0].added.Contains(w.rel.schema().Require("store_id")));
}

TEST(RealisticTest, ImageNeedsTwoAttributes) {
  auto w = MakeImageWorkload(FastOpts());
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  auto res = fd::Extend(w.rel, w.fd, opts);
  ASSERT_TRUE(res.found());
  EXPECT_EQ(res.repairs[0].added.Count(), 2);
}

TEST(RealisticTest, PageLinksHasSingleCandidate) {
  auto w = MakePageLinksWorkload(FastOpts());
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  auto res = fd::Extend(w.rel, w.fd, opts);
  ASSERT_TRUE(res.found());
  // Arity 3, FD uses 2 → exactly one candidate, and it works.
  EXPECT_EQ(res.stats.candidates_evaluated, 1u);
  EXPECT_EQ(res.repairs[0].added.Count(), 1);
}

TEST(RealisticTest, VeteransHas323NullFreeAttrs) {
  auto w = MakeVeteransWorkload(FastOpts());
  EXPECT_EQ(w.rel.attr_count(), 481);
  EXPECT_EQ(w.rel.NonNullAttrs().Count(), 323);
}

TEST(RealisticTest, VeteransSliceShape) {
  auto rel = MakeVeteransSlice(20, 500, /*repairable=*/true);
  EXPECT_EQ(rel.attr_count(), 20);
  EXPECT_EQ(rel.tuple_count(), 500u);
}

TEST(RealisticTest, VeteransSliceRepairableVsNot) {
  auto good = MakeVeteransSlice(10, 2000, /*repairable=*/true);
  fd::RepairOptions opts;
  opts.mode = fd::SearchMode::kFirstRepair;
  opts.max_added_attrs = 2;
  auto res = fd::Extend(good, fd::Fd::Parse("X -> Y", good.schema()), opts);
  EXPECT_TRUE(res.found());

  auto bad = MakeVeteransSlice(10, 2000, /*repairable=*/false);
  auto res_bad = fd::Extend(bad, fd::Fd::Parse("X -> Y", bad.schema()), opts);
  EXPECT_FALSE(res_bad.found());
}

TEST(RealisticTest, PaperCardinalitiesRecorded) {
  auto all = MakeAllRealWorkloads(FastOpts());
  const size_t cards[] = {10, 239, 16044, 124768, 842159, 95412};
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].paper_cardinality, cards[i]);
  }
}

}  // namespace
}  // namespace fdevolve::datagen
