#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include "fd/measures.h"
#include "fd/repair_search.h"

namespace fdevolve::datagen {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.n_attrs = 12;
  spec.n_tuples = 333;
  spec.repair_length = 2;
  auto rel = MakeSynthetic(spec);
  EXPECT_EQ(rel.attr_count(), 12);
  EXPECT_EQ(rel.tuple_count(), 333u);
  EXPECT_EQ(rel.schema().attr(0).name, "X");
  EXPECT_EQ(rel.schema().attr(1).name, "Y");
  EXPECT_EQ(rel.schema().attr(2).name, "D1");
  EXPECT_EQ(rel.schema().attr(3).name, "D2");
  EXPECT_EQ(rel.schema().attr(4).name, "N1");
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 100;
  spec.repair_length = 1;
  auto a = MakeSynthetic(spec);
  auto b = MakeSynthetic(spec);
  for (size_t t = 0; t < a.tuple_count(); ++t) {
    for (int c = 0; c < a.attr_count(); ++c) {
      EXPECT_EQ(a.Get(t, c), b.Get(t, c));
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 100;
  spec.seed = 1;
  auto a = MakeSynthetic(spec);
  spec.seed = 2;
  auto b = MakeSynthetic(spec);
  int diffs = 0;
  for (size_t t = 0; t < a.tuple_count(); ++t) {
    if (!(a.Get(t, 0) == b.Get(t, 0))) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(SyntheticTest, PlantedFdIsViolated) {
  SyntheticSpec spec;
  spec.n_attrs = 8;
  spec.n_tuples = 1000;
  spec.repair_length = 1;
  auto rel = MakeSynthetic(spec);
  EXPECT_FALSE(fd::Satisfies(rel, SyntheticFd(rel.schema())));
}

TEST(SyntheticTest, PlantedRepairIsExact) {
  SyntheticSpec spec;
  spec.n_attrs = 8;
  spec.n_tuples = 1000;
  spec.repair_length = 2;
  auto rel = MakeSynthetic(spec);
  fd::Fd repaired = SyntheticFd(rel.schema())
                        .WithAntecedent(SyntheticPlantedRepair(rel.schema(), 2));
  EXPECT_TRUE(fd::Satisfies(rel, repaired));
}

TEST(SyntheticTest, ProperDeterminantSubsetsDoNotRepair) {
  SyntheticSpec spec;
  spec.n_attrs = 8;
  spec.n_tuples = 2000;
  spec.repair_length = 2;
  auto rel = MakeSynthetic(spec);
  fd::Fd base = SyntheticFd(rel.schema());
  // D1 alone or D2 alone must not repair (w.h.p. at 2000 tuples).
  EXPECT_FALSE(
      fd::Satisfies(rel, base.WithAntecedent(rel.schema().Require("D1"))));
  EXPECT_FALSE(
      fd::Satisfies(rel, base.WithAntecedent(rel.schema().Require("D2"))));
}

TEST(SyntheticTest, RepairLengthZeroMeansExactFd) {
  SyntheticSpec spec;
  spec.n_attrs = 5;
  spec.n_tuples = 500;
  spec.repair_length = 0;
  auto rel = MakeSynthetic(spec);
  EXPECT_TRUE(fd::Satisfies(rel, SyntheticFd(rel.schema())));
}

TEST(SyntheticTest, UnrepairableRateDestroysPlantedRepair) {
  SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 4000;
  spec.repair_length = 1;
  spec.unrepairable_rate = 0.3;
  spec.determinant_domain = 5;
  spec.antecedent_domain = 10;
  auto rel = MakeSynthetic(spec);
  fd::Fd repaired = SyntheticFd(rel.schema())
                        .WithAntecedent(SyntheticPlantedRepair(rel.schema(), 1));
  EXPECT_FALSE(fd::Satisfies(rel, repaired));
}

TEST(SyntheticTest, NullRateInjectsNullsOnlyIntoNoise) {
  SyntheticSpec spec;
  spec.n_attrs = 8;
  spec.n_tuples = 500;
  spec.repair_length = 1;
  spec.noise_null_rate = 0.5;
  auto rel = MakeSynthetic(spec);
  const auto& s = rel.schema();
  EXPECT_FALSE(rel.column(s.Require("X")).has_nulls());
  EXPECT_FALSE(rel.column(s.Require("Y")).has_nulls());
  EXPECT_FALSE(rel.column(s.Require("D1")).has_nulls());
  bool some_noise_nulls = false;
  for (int i = 0; i < rel.attr_count(); ++i) {
    if (s.attr(i).name[0] == 'N' && rel.column(i).has_nulls()) {
      some_noise_nulls = true;
    }
  }
  EXPECT_TRUE(some_noise_nulls);
}

TEST(SyntheticTest, InvalidSpecsThrow) {
  SyntheticSpec spec;
  spec.n_attrs = 3;
  spec.repair_length = 2;  // needs >= 4 attrs
  EXPECT_THROW(MakeSynthetic(spec), std::invalid_argument);
  spec.n_attrs = 5;
  spec.repair_length = -1;
  EXPECT_THROW(MakeSynthetic(spec), std::invalid_argument);
}

TEST(SyntheticTest, DomainSizesRespected) {
  SyntheticSpec spec;
  spec.n_attrs = 6;
  spec.n_tuples = 5000;
  spec.repair_length = 1;
  spec.antecedent_domain = 7;
  spec.noise_domain = 13;
  auto rel = MakeSynthetic(spec);
  EXPECT_LE(rel.column(rel.schema().Require("X")).dict_size(), 7u);
  EXPECT_LE(rel.column(rel.schema().Require("N1")).dict_size(), 13u);
  // At 5000 tuples the domains are saturated.
  EXPECT_EQ(rel.column(rel.schema().Require("X")).dict_size(), 7u);
}

}  // namespace
}  // namespace fdevolve::datagen
