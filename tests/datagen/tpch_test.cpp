#include "datagen/tpch.h"

#include <gtest/gtest.h>

#include "fd/measures.h"

namespace fdevolve::datagen {
namespace {

TpchDatabase SmallDb() {
  TpchOptions opts;
  opts.scale = TpchScale::kSmall;
  opts.scale_divisor = 1000;  // tiny for unit tests
  return MakeTpch(opts);
}

TEST(TpchTest, AllEightTablesGenerated) {
  auto db = SmallDb();
  ASSERT_EQ(db.tables.size(), 8u);
  for (const auto& name : TpchTableNames()) {
    EXPECT_NO_THROW(db.Get(name));
  }
  EXPECT_THROW(db.Get("bogus"), std::invalid_argument);
}

TEST(TpchTest, AritiesMatchTable4) {
  auto db = SmallDb();
  EXPECT_EQ(db.Get("customer").attr_count(), 8);
  EXPECT_EQ(db.Get("lineitem").attr_count(), 16);
  EXPECT_EQ(db.Get("nation").attr_count(), 4);
  EXPECT_EQ(db.Get("orders").attr_count(), 9);
  EXPECT_EQ(db.Get("part").attr_count(), 9);
  EXPECT_EQ(db.Get("partsupp").attr_count(), 5);
  EXPECT_EQ(db.Get("region").attr_count(), 3);
  EXPECT_EQ(db.Get("supplier").attr_count(), 7);
}

TEST(TpchTest, PaperCardinalitiesMatchTable4) {
  EXPECT_EQ(TpchPaperCardinality("customer", TpchScale::kSmall), 15000u);
  EXPECT_EQ(TpchPaperCardinality("lineitem", TpchScale::kLarge), 6005428u);
  EXPECT_EQ(TpchPaperCardinality("nation", TpchScale::kMedium), 25u);
  EXPECT_EQ(TpchPaperCardinality("region", TpchScale::kLarge), 5u);
  EXPECT_THROW(TpchPaperCardinality("bogus", TpchScale::kSmall),
               std::invalid_argument);
}

TEST(TpchTest, ScaledCardinalitiesFollowDivisor) {
  TpchOptions opts;
  opts.scale = TpchScale::kSmall;
  opts.scale_divisor = 100;
  auto db = MakeTpch(opts);
  EXPECT_EQ(db.Get("customer").tuple_count(), 150u);
  EXPECT_EQ(db.Get("lineitem").tuple_count(), 6010u);
  // Tiny tables are floored, not zeroed.
  EXPECT_GE(db.Get("region").tuple_count(), 5u);
  EXPECT_GE(db.Get("nation").tuple_count(), 5u);
}

TEST(TpchTest, ScaleGrowsCardinality) {
  TpchOptions s;
  s.scale = TpchScale::kSmall;
  s.scale_divisor = 500;
  TpchOptions l;
  l.scale = TpchScale::kLarge;
  l.scale_divisor = 500;
  EXPECT_LT(MakeTpch(s).Get("orders").tuple_count(),
            MakeTpch(l).Get("orders").tuple_count());
}

TEST(TpchTest, NationAndRegionFdsAreExact) {
  // Matches real TPC-H and the paper's millisecond rows in Table 5.
  auto db = SmallDb();
  for (const char* t : {"nation", "region"}) {
    const auto& rel = db.Get(t);
    EXPECT_TRUE(fd::Satisfies(rel, TpchTable5Fd(rel))) << t;
  }
}

TEST(TpchTest, OtherTable5FdsAreViolated) {
  auto db = SmallDb();
  for (const char* t :
       {"customer", "lineitem", "orders", "part", "partsupp", "supplier"}) {
    const auto& rel = db.Get(t);
    EXPECT_FALSE(fd::Satisfies(rel, TpchTable5Fd(rel))) << t;
  }
}

TEST(TpchTest, NoNullsAnywhere) {
  // TPC-H data is NULL-free; candidate pools span whole tables.
  auto db = SmallDb();
  for (const auto& rel : db.tables) {
    EXPECT_EQ(rel.NonNullAttrs().Count(), rel.attr_count()) << rel.name();
  }
}

TEST(TpchTest, DeterministicForSeed) {
  TpchOptions opts;
  opts.scale_divisor = 2000;
  auto a = MakeTpch(opts);
  auto b = MakeTpch(opts);
  const auto& ra = a.Get("orders");
  const auto& rb = b.Get("orders");
  ASSERT_EQ(ra.tuple_count(), rb.tuple_count());
  for (size_t t = 0; t < ra.tuple_count(); ++t) {
    EXPECT_EQ(ra.Get(t, 2), rb.Get(t, 2));
  }
}

TEST(TpchTest, ScaleNames) {
  EXPECT_EQ(TpchScaleName(TpchScale::kSmall), "100MB");
  EXPECT_EQ(TpchScaleName(TpchScale::kMedium), "250MB");
  EXPECT_EQ(TpchScaleName(TpchScale::kLarge), "1GB");
}

}  // namespace
}  // namespace fdevolve::datagen
