// Concurrent-session differential suite: N client threads interleave
// INSERTs, DELETEs, UPDATEs, SELECTs, and drift subscriptions against one
// Service; the committed state must be indistinguishable from a serial
// replay.
//
// The contract under test is the server's MVCC-lite design (see
// server/service.h): per-table commit order — which the journal records —
// fully determines the relation bytes, the dictionary codes, the monitor
// counters, and the drift log, because group ids are append-stable
// first-appearance ids. So after any concurrent run, replaying each
// table's journal serially into a fresh Service must reproduce the
// server-state snapshot bit for bit. Run under TSan in CI (suite name is
// matched by the ServerConcurrency regex there); reproducible via
// --seed=N / FDEVOLVE_SEED.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/service.h"
#include "support/fuzz_seed.h"
#include "util/rng.h"

namespace fdevolve::server {
namespace {

constexpr int kThreads = 8;
constexpr int kStatementsPerThread = 60;
constexpr int kTables = 3;

std::string TableName(int i) { return "t" + std::to_string(i); }

/// One random INSERT: 1-3 rows over a small domain so FDs drift quickly
/// and dictionary codes keep colliding across threads.
std::string RandomInsert(util::Rng& rng, int table) {
  int rows = 1 + static_cast<int>(rng.Below(3));
  std::string stmt = "INSERT INTO " + TableName(table) + " VALUES ";
  for (int r = 0; r < rows; ++r) {
    if (r > 0) stmt += ", ";
    stmt += "(" + std::to_string(rng.Below(5)) + ", " +
            std::to_string(rng.Below(5)) + ", '" +
            std::string(1, static_cast<char>('a' + rng.Below(4))) + "')";
  }
  return stmt;
}

class ServerConcurrency : public ::testing::TestWithParam<int> {
 protected:
  uint64_t seed() const { return testsupport::DeriveSeed(GetParam()); }

  /// Deterministic DDL: every table gets the same schema and a monitored
  /// FD with a per-table check interval.
  void SetUpTables(Service& svc) {
    auto s = svc.OpenSession(nullptr);
    for (int t = 0; t < kTables; ++t) {
      auto create = svc.ExecuteLine(
          s, "CREATE TABLE " + TableName(t) +
                 " (a INT64, b INT64, c STRING)");
      ASSERT_EQ(create.reply.rfind("OK", 0), 0u) << create.reply;
      auto declare = svc.ExecuteLine(
          s, "DECLARE FD a -> b ON " + TableName(t) + " EVERY " +
                 std::to_string(1 + t));
      ASSERT_EQ(declare.reply.rfind("OK", 0), 0u) << declare.reply;
    }
    svc.CloseSession(s);
  }
};

TEST_P(ServerConcurrency, ConcurrentSessionsMatchSerialReplayBitIdentically) {
  Service svc;
  SetUpTables(svc);

  // Listeners subscribed before the storm: each must observe every drift
  // event its table logs (pushes happen under the table's write lock, so
  // a pre-subscribed session cannot miss one).
  struct Listener {
    std::mutex mutex;
    std::vector<std::string> lines;
    Service::SessionId id = 0;
  };
  std::vector<Listener> listeners(kTables);
  for (int t = 0; t < kTables; ++t) {
    Listener* l = &listeners[t];
    l->id = svc.OpenSession([l](const std::string& line) {
      std::lock_guard<std::mutex> lock(l->mutex);
      l->lines.push_back(line);
      return true;
    });
    auto sub = svc.ExecuteLine(l->id, "SUBSCRIBE DRIFT ON " + TableName(t));
    ASSERT_EQ(sub.reply.rfind("OK", 0), 0u) << sub.reply;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    uint64_t thread_seed = seed() ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    threads.emplace_back([&svc, &failures, thread_seed] {
      util::Rng rng(thread_seed);
      auto session = svc.OpenSession(nullptr);
      for (int n = 0; n < kStatementsPerThread; ++n) {
        int table = static_cast<int>(rng.Below(kTables));
        std::string stmt;
        if (rng.Chance(0.2)) {
          stmt = rng.Chance(0.5)
                     ? "SELECT COUNT(*) FROM " + TableName(table)
                     : "SELECT COUNT(DISTINCT a, b) FROM " + TableName(table);
        } else {
          stmt = RandomInsert(rng, table);
        }
        auto reply = ParseReply(svc.ExecuteLine(session, stmt).reply);
        if (!reply || reply->kind != ParsedReply::Kind::kOk) ++failures;
      }
      svc.CloseSession(session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Serial replay of the per-table commit-order journals.
  Service replay;
  auto r = replay.OpenSession(nullptr);
  for (int t = 0; t < kTables; ++t) {
    for (const auto& line : svc.Journal(TableName(t))) {
      auto reply = ParseReply(replay.ExecuteLine(r, line).reply);
      ASSERT_TRUE(reply && reply->kind == ParsedReply::Kind::kOk) << line;
    }
  }
  EXPECT_EQ(svc.SerializeState(), replay.SerializeState())
      << "concurrent state differs from serial replay";

  // Every listener saw exactly its table's logged drift events, in log
  // order (the log and the push happen in the same critical section).
  for (int t = 0; t < kTables; ++t) {
    auto log = svc.DriftLog(TableName(t));
    std::lock_guard<std::mutex> lock(listeners[t].mutex);
    ASSERT_EQ(listeners[t].lines.size(), log.size()) << TableName(t);
    for (size_t e = 0; e < log.size(); ++e) {
      EXPECT_NE(
          listeners[t].lines[e].find("tuples=" +
                                     std::to_string(log[e].tuple_count)),
          std::string::npos)
          << listeners[t].lines[e];
    }
  }
}

/// One random mutation: DELETE or UPDATE over the same small domain the
/// inserts draw from, so statements actually hit live rows and the
/// deterministic compaction policy keeps firing mid-storm.
std::string RandomMutation(util::Rng& rng, int table) {
  const std::string a = std::to_string(rng.Below(5));
  const std::string b = std::to_string(rng.Below(5));
  if (rng.Chance(0.5)) {
    return "DELETE FROM " + TableName(table) + " WHERE a = " + a;
  }
  return "UPDATE " + TableName(table) + " SET b = " + b + " WHERE a = " + a;
}

TEST_P(ServerConcurrency, ConcurrentMutationsMatchSerialReplayBitIdentically) {
  Service svc;
  SetUpTables(svc);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    uint64_t thread_seed = seed() ^ (0xbf58476d1ce4e5b9ULL * (i + 1));
    threads.emplace_back([&svc, &failures, thread_seed] {
      util::Rng rng(thread_seed);
      auto session = svc.OpenSession(nullptr);
      for (int n = 0; n < kStatementsPerThread; ++n) {
        int table = static_cast<int>(rng.Below(kTables));
        std::string stmt;
        if (rng.Chance(0.35)) {
          stmt = RandomMutation(rng, table);
        } else if (rng.Chance(0.15)) {
          stmt = "SELECT COUNT(DISTINCT a, b) FROM " + TableName(table);
        } else {
          stmt = RandomInsert(rng, table);
        }
        auto reply = ParseReply(svc.ExecuteLine(session, stmt).reply);
        if (!reply || reply->kind != ParsedReply::Kind::kOk) ++failures;
      }
      svc.CloseSession(session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Serial replay: per-table commit order (now containing DELETE/UPDATE
  // and the compactions MaybeCompact fired at those boundaries) still
  // fully determines the snapshot bytes.
  Service replay;
  auto r = replay.OpenSession(nullptr);
  for (int t = 0; t < kTables; ++t) {
    for (const auto& line : svc.Journal(TableName(t))) {
      auto reply = ParseReply(replay.ExecuteLine(r, line).reply);
      ASSERT_TRUE(reply && reply->kind == ParsedReply::Kind::kOk) << line;
    }
  }
  EXPECT_EQ(svc.SerializeState(), replay.SerializeState())
      << "concurrent mutated state differs from serial replay";

  // Recovered events carry their kind through the replayed drift log too.
  for (int t = 0; t < kTables; ++t) {
    auto a = svc.DriftLog(TableName(t));
    auto b = replay.DriftLog(TableName(t));
    ASSERT_EQ(a.size(), b.size()) << TableName(t);
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].kind, b[e].kind) << TableName(t) << " event " << e;
      EXPECT_EQ(a[e].tuple_count, b[e].tuple_count);
    }
  }
}

TEST_P(ServerConcurrency, CheckpointDuringConcurrentWritesIsAConsistentCut) {
  const std::string path = testing::TempDir() +
                           "/fdevolve_concurrent_ckpt_" +
                           std::to_string(GetParam()) + ".fdev";
  Service::Options opts;
  opts.checkpoint_path = path;
  Service svc(opts);
  SetUpTables(svc);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    uint64_t thread_seed = seed() ^ (0xa0761d6478bd642fULL * (i + 1));
    threads.emplace_back([&svc, &failures, thread_seed, i] {
      util::Rng rng(thread_seed);
      auto session = svc.OpenSession(nullptr);
      for (int n = 0; n < kStatementsPerThread / 2; ++n) {
        // One thread interleaves checkpoints with everyone else's writes.
        std::string stmt = (i == 0 && n % 10 == 5)
                               ? "CHECKPOINT"
                               : RandomInsert(rng,
                                              static_cast<int>(
                                                  rng.Below(kTables)));
        auto reply = ParseReply(svc.ExecuteLine(session, stmt).reply);
        if (!reply || reply->kind != ParsedReply::Kind::kOk) ++failures;
      }
      svc.CloseSession(session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The mid-storm checkpoint file is a loadable, consistent snapshot:
  // Resume must accept it (watermark pairing validated) even though more
  // writes landed after it was taken.
  Service resumed(opts);
  std::string error;
  ASSERT_TRUE(resumed.Resume(&error)) << error;
  EXPECT_EQ(resumed.TableNames(), svc.TableNames());
}

/// Bitwise comparison of two sampled-estimate vectors — the resume and
/// replay gates promise the full estimate, intervals included.
void ExpectSameEstimates(const std::vector<fd::SampledMeasures>& a,
                         const std::vector<fd::SampledMeasures>& b,
                         const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].measures.confidence, b[i].measures.confidence) << where;
    EXPECT_EQ(a[i].measures.goodness, b[i].measures.goodness) << where;
    EXPECT_EQ(a[i].approx, b[i].approx) << where;
    EXPECT_EQ(a[i].confidence_lo, b[i].confidence_lo) << where;
    EXPECT_EQ(a[i].confidence_hi, b[i].confidence_hi) << where;
    EXPECT_EQ(a[i].goodness_lo, b[i].goodness_lo) << where;
    EXPECT_EQ(a[i].goodness_hi, b[i].goodness_hi) << where;
    EXPECT_EQ(a[i].sample_rows, b[i].sample_rows) << where;
    EXPECT_EQ(a[i].live_rows, b[i].live_rows) << where;
    EXPECT_EQ(a[i].witnessed_violation, b[i].witnessed_violation) << where;
  }
}

TEST_P(ServerConcurrency, SampledMonitorsMatchSerialReplayAndResume) {
  // The sampled extension of the MVCC-lite contract: reservoir draws
  // happen under the same per-table write lock as the commit, so commit
  // order (the journal) fully determines the reservoir contents, every
  // estimate, and the kind-5 checkpoint section — concurrently, serially
  // replayed, or resumed from a checkpoint taken mid-storm.
  const std::string path = testing::TempDir() +
                           "/fdevolve_sampled_concurrent_" +
                           std::to_string(GetParam()) + ".fdev";
  Service::Options opts;
  opts.checkpoint_path = path;
  Service svc(opts);
  {
    // Like SetUpTables, plus a sampled FD per table right after the exact
    // one (tiny reservoirs so eviction — the RNG-consuming path —
    // definitely happens mid-storm). Declared per table in journal order:
    // the database's FD registry preserves global declaration order, and
    // a per-table serial replay can only reproduce it when declarations
    // do not interleave across tables.
    auto s = svc.OpenSession(nullptr);
    for (int t = 0; t < kTables; ++t) {
      auto create = svc.ExecuteLine(
          s, "CREATE TABLE " + TableName(t) +
                 " (a INT64, b INT64, c STRING)");
      ASSERT_EQ(create.reply.rfind("OK", 0), 0u) << create.reply;
      auto exact = svc.ExecuteLine(
          s, "DECLARE FD a -> b ON " + TableName(t) + " EVERY " +
                 std::to_string(1 + t));
      ASSERT_EQ(exact.reply.rfind("OK", 0), 0u) << exact.reply;
      auto declare = svc.ExecuteLine(
          s, "DECLARE FD b -> c ON " + TableName(t) + " EVERY " +
                 std::to_string(1 + t) + " SAMPLE 16 SEED " +
                 std::to_string(7 + t));
      ASSERT_EQ(declare.reply.rfind("OK", 0), 0u) << declare.reply;
    }
    svc.CloseSession(s);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    uint64_t thread_seed = seed() ^ (0xd6e8feb86659fd93ULL * (i + 1));
    threads.emplace_back([&svc, &failures, thread_seed, i] {
      util::Rng rng(thread_seed);
      auto session = svc.OpenSession(nullptr);
      for (int n = 0; n < kStatementsPerThread / 2; ++n) {
        std::string stmt;
        if (i == 0 && n % 10 == 5) {
          stmt = "CHECKPOINT";  // mid-storm cut with reservoirs in flight
        } else if (rng.Chance(0.3)) {
          stmt = RandomMutation(rng, static_cast<int>(rng.Below(kTables)));
        } else {
          stmt = RandomInsert(rng, static_cast<int>(rng.Below(kTables)));
        }
        auto reply = ParseReply(svc.ExecuteLine(session, stmt).reply);
        if (!reply || reply->kind != ParsedReply::Kind::kOk) ++failures;
      }
      svc.CloseSession(session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The mid-storm checkpoint is loadable with its sampled section intact.
  {
    Service midway(opts);
    std::string error;
    ASSERT_TRUE(midway.Resume(&error)) << error;
    EXPECT_EQ(midway.TableNames(), svc.TableNames());
  }

  // Serial journal replay reproduces the concurrent snapshot — including
  // the sampled monitors, since their DECLARE lines (SAMPLE/SEED and all)
  // are journaled and draws follow commit order.
  Service replay;
  auto r = replay.OpenSession(nullptr);
  for (int t = 0; t < kTables; ++t) {
    for (const auto& line : svc.Journal(TableName(t))) {
      auto reply = ParseReply(replay.ExecuteLine(r, line).reply);
      ASSERT_TRUE(reply && reply->kind == ParsedReply::Kind::kOk) << line;
    }
  }
  EXPECT_EQ(svc.SerializeState(), replay.SerializeState())
      << "sampled concurrent state differs from serial replay";
  for (int t = 0; t < kTables; ++t) {
    ExpectSameEstimates(svc.SampledEstimates(TableName(t)),
                        replay.SampledEstimates(TableName(t)),
                        TableName(t) + " replay estimates");
    auto a = svc.SampledDriftLog(TableName(t));
    auto b = replay.SampledDriftLog(TableName(t));
    ASSERT_EQ(a.size(), b.size()) << TableName(t);
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].kind, b[e].kind);
      EXPECT_EQ(a[e].approx, b[e].approx);
      EXPECT_EQ(a[e].confidence_lo, b[e].confidence_lo);
      EXPECT_EQ(a[e].confidence_hi, b[e].confidence_hi);
    }
  }

  // Checkpoint/resume replays the identical remaining estimate sequence:
  // a service resumed from the post-storm checkpoint, fed the same
  // suffix as the live one, produces bitwise-equal estimates and state.
  {
    std::string error;
    ASSERT_TRUE(svc.SaveCheckpoint(&error)) << error;
    Service resumed(opts);
    ASSERT_TRUE(resumed.Resume(&error)) << error;
    EXPECT_EQ(resumed.SerializeState(), svc.SerializeState());

    util::Rng suffix_rng(seed() + 999);
    auto live_s = svc.OpenSession(nullptr);
    auto res_s = resumed.OpenSession(nullptr);
    for (int n = 0; n < 40; ++n) {
      const int table = static_cast<int>(suffix_rng.Below(kTables));
      const std::string stmt = suffix_rng.Chance(0.25)
                                   ? RandomMutation(suffix_rng, table)
                                   : RandomInsert(suffix_rng, table);
      auto la = ParseReply(svc.ExecuteLine(live_s, stmt).reply);
      auto lb = ParseReply(resumed.ExecuteLine(res_s, stmt).reply);
      ASSERT_TRUE(la && la->kind == ParsedReply::Kind::kOk) << stmt;
      ASSERT_TRUE(lb && lb->kind == ParsedReply::Kind::kOk) << stmt;
    }
    svc.CloseSession(live_s);
    resumed.CloseSession(res_s);
    for (int t = 0; t < kTables; ++t) {
      ExpectSameEstimates(svc.SampledEstimates(TableName(t)),
                          resumed.SampledEstimates(TableName(t)),
                          TableName(t) + " resumed estimates");
    }
    EXPECT_EQ(resumed.SerializeState(), svc.SerializeState())
        << "resumed service diverged on the identical suffix";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerConcurrency, ::testing::Range(0, 4));

}  // namespace
}  // namespace fdevolve::server
