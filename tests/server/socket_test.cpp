// End-to-end TCP tests: real sockets, real threads, the same Client the
// bench driver and smoke script use.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"

namespace fdevolve::server {
namespace {

TEST(ServerSocketTest, ScriptedSessionOverTcp) {
  Server server(Server::Options{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  EXPECT_TRUE(client.Request("CREATE TABLE t (a INT64, b INT64)").ok);
  auto ins = client.Request("INSERT INTO t VALUES (1, 1), (2, 2)");
  EXPECT_TRUE(ins.ok);
  EXPECT_EQ(ins.value, 2u);
  auto count = client.Request("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(count.ok);
  EXPECT_EQ(count.value, 2u);
  auto bad = client.Request("SELECT COUNT(*) FROM ghost");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("ghost"), std::string::npos);

  auto bye = client.Request("SHUTDOWN");
  EXPECT_TRUE(bye.ok);
  EXPECT_TRUE(server.Wait(&error)) << error;
}

TEST(ServerSocketTest, DriftPushReachesSubscribedClient) {
  Server server(Server::Options{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client writer, listener;
  ASSERT_TRUE(writer.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(listener.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(writer.Request("CREATE TABLE t (a INT64, b INT64)").ok);
  ASSERT_TRUE(writer.Request("DECLARE FD a -> b ON t").ok);
  ASSERT_TRUE(listener.Request("SUBSCRIBE DRIFT ON t").ok);

  // The violating insert: the listener gets an async DRIFT line.
  auto ins = writer.Request("INSERT INTO t VALUES (1, 1), (1, 2)");
  EXPECT_TRUE(ins.ok);
  auto drift = listener.PollDrift(5000);
  ASSERT_TRUE(drift.has_value()) << "no DRIFT push within 5s";
  EXPECT_NE(drift->find("table=t"), std::string::npos) << *drift;
  EXPECT_NE(drift->find("fd=[a] -> [b]"), std::string::npos) << *drift;

  // A subscriber that also writes sees its own drift before the OK —
  // Request() drains it into Reply::drift.
  ASSERT_TRUE(writer.Request("SUBSCRIBE DRIFT ON t").ok);
  // b -> a is exact over the current rows (1,1),(1,2); the next insert
  // gives b=1 a second consequent and drifts it.
  ASSERT_TRUE(writer.Request("DECLARE FD b -> a ON t").ok);
  auto ins2 = writer.Request("INSERT INTO t VALUES (2, 1)");
  EXPECT_TRUE(ins2.ok);
  ASSERT_EQ(ins2.drift.size(), 1u) << "expected b -> a drift with the OK";
  EXPECT_NE(ins2.drift[0].find("fd=[b] -> [a]"), std::string::npos);

  writer.Request("SHUTDOWN");
  EXPECT_TRUE(server.Wait(&error)) << error;
}

TEST(ServerSocketTest, ShutdownCheckpointAndResume) {
  const std::string path =
      testing::TempDir() + "/fdevolve_socket_ckpt.fdev";
  std::remove(path.c_str());
  Server::Options opts;
  opts.service.checkpoint_path = path;
  std::string error;
  uint64_t count_before = 0;
  {
    Server server(opts);
    ASSERT_TRUE(server.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
    ASSERT_TRUE(client.Request("CREATE TABLE t (a INT64, b INT64)").ok);
    ASSERT_TRUE(client.Request("DECLARE FD a -> b ON t EVERY 2").ok);
    ASSERT_TRUE(client.Request("INSERT INTO t VALUES (1, 1), (1, 2)").ok);
    count_before = client.Request("SELECT COUNT(*) FROM t").value;
    ASSERT_TRUE(client.Request("SHUTDOWN").ok);
    // Checkpoint-on-shutdown invariant: Wait() persists before returning.
    ASSERT_TRUE(server.Wait(&error)) << error;
  }
  {
    Server::Options resume_opts = opts;
    resume_opts.resume = true;
    Server server(resume_opts);
    ASSERT_TRUE(server.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
    auto count = client.Request("SELECT COUNT(*) FROM t");
    EXPECT_TRUE(count.ok);
    EXPECT_EQ(count.value, count_before);
    // The monitor resumed too: the FD was already checked (EVERY 2) and
    // violated, so no further drift fires, but the drift log survives in
    // the next checkpoint cycle.
    EXPECT_EQ(server.service().DriftLog("t").size(), 1u);
    ASSERT_TRUE(client.Request("SHUTDOWN").ok);
    ASSERT_TRUE(server.Wait(&error)) << error;
  }
}

TEST(ServerSocketTest, RequestShutdownFromAnotherThreadUnblocksWait) {
  Server server(Server::Options{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(client.Request("CREATE TABLE t (a INT64)").ok);

  std::thread killer([&server] {
    // Same entry point a SIGTERM handler uses.
    server.RequestShutdown();
  });
  EXPECT_TRUE(server.Wait(&error)) << error;
  killer.join();
  // The half-close reached the client: its next read sees EOF.
  auto reply = client.Request("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(reply.ok);
}

TEST(ServerSocketTest, ManyConcurrentClientsOverTcp) {
  Server server(Server::Options{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  {
    Client admin;
    ASSERT_TRUE(admin.Connect(server.port(), &error)) << error;
    ASSERT_TRUE(admin.Request("CREATE TABLE t (a INT64, b INT64)").ok);
    ASSERT_TRUE(admin.Request("DECLARE FD a -> b ON t EVERY 5").ok);
  }
  constexpr int kClients = 8;
  constexpr int kInsertsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  uint16_t port = server.port();
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([port, i, &failures] {
      Client c;
      std::string err;
      if (!c.Connect(port, &err)) {
        ++failures;
        return;
      }
      for (int n = 0; n < kInsertsEach; ++n) {
        auto reply = c.Request("INSERT INTO t VALUES (" + std::to_string(i) +
                               ", " + std::to_string(n % 3) + ")");
        if (!reply.ok) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  Client check;
  ASSERT_TRUE(check.Connect(server.port(), &error)) << error;
  auto count = check.Request("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(count.ok);
  EXPECT_EQ(count.value,
            static_cast<uint64_t>(kClients * kInsertsEach));
  check.Request("SHUTDOWN");
  EXPECT_TRUE(server.Wait(&error)) << error;
}

}  // namespace
}  // namespace fdevolve::server
