#include "server/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/protocol.h"

namespace fdevolve::server {
namespace {

uint64_t OkValue(const Service::Result& res) {
  auto parsed = ParseReply(res.reply);
  EXPECT_TRUE(parsed.has_value()) << res.reply;
  EXPECT_EQ(parsed->kind, ParsedReply::Kind::kOk) << res.reply;
  return parsed->value;
}

bool IsErr(const Service::Result& res) {
  auto parsed = ParseReply(res.reply);
  return parsed && parsed->kind == ParsedReply::Kind::kError;
}

TEST(ServiceTest, CreateInsertSelect) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  EXPECT_EQ(OkValue(svc.ExecuteLine(
                s, "CREATE TABLE t (city STRING, zip INT64)")),
            0u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(
                s, "INSERT INTO t VALUES ('NY', 10001), ('LA', 90001)")),
            2u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "SELECT COUNT(*) FROM t")), 2u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(
                s, "SELECT COUNT(DISTINCT city) FROM t")),
            2u);
}

TEST(ServiceTest, ErrorsComeBackAsErrReplies) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "SELEC COUNT(*) FROM t")));  // parse
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "SELECT COUNT(*) FROM ghost")));
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "INSERT INTO ghost VALUES (1)")));
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64)");
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "CREATE TABLE t (a INT64)")));  // dup
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "INSERT INTO t VALUES ('x')")));
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "DECLARE FD a -> ghost ON t")));
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "SUBSCRIBE DRIFT ON ghost")));
  // CHECKPOINT without a configured path.
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "CHECKPOINT")));
}

TEST(ServiceTest, ExplainRepairRepliesWithPlan) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b INT64, c INT64)");
  // a=1 maps to two b values: a -> b is violated, c is the pool.
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 1, 1), (1, 2, 2), (2, 1, 3)");
  Service::Result res = svc.ExecuteLine(s, "EXPLAIN REPAIR a -> b ON t");
  auto parsed = ParseReply(res.reply);
  ASSERT_TRUE(parsed.has_value()) << res.reply;
  EXPECT_EQ(parsed->kind, ParsedReply::Kind::kPlan) << res.reply;
  EXPECT_EQ(res.reply.rfind("PLAN ", 0), 0u) << res.reply;
  // Newlines are flattened into the single reply line.
  EXPECT_EQ(res.reply.find('\n'), std::string::npos);
  EXPECT_NE(parsed->text.find("repair plan for [a] -> [b]"),
            std::string::npos)
      << parsed->text;
  EXPECT_NE(parsed->text.find(" | "), std::string::npos) << parsed->text;
  EXPECT_NE(parsed->text.find("+c"), std::string::npos) << parsed->text;
  // EXPLAIN is a read: it is not journaled.
  EXPECT_EQ(svc.Journal("t").size(), 2u);
  // Unknown table or column comes back as ERR, not a dropped session.
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "EXPLAIN REPAIR a -> b ON ghost")));
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "EXPLAIN REPAIR a -> ghost ON t")));
}

TEST(ServiceTest, ShutdownSetsFlag) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  Service::Result res = svc.ExecuteLine(s, "SHUTDOWN");
  EXPECT_EQ(OkValue(res), 0u);
  EXPECT_TRUE(res.shutdown);
}

TEST(ServiceTest, DriftPushedToSubscribers) {
  Service svc;
  std::vector<std::string> pushed;
  auto listener = svc.OpenSession([&pushed](const std::string& line) {
    pushed.push_back(line);
    return true;
  });
  auto writer = svc.OpenSession(nullptr);
  svc.ExecuteLine(writer, "CREATE TABLE t (a INT64, b INT64)");
  EXPECT_EQ(OkValue(svc.ExecuteLine(writer, "DECLARE FD a -> b ON t")), 0u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(listener, "SUBSCRIBE DRIFT ON t")), 0u);
  // a=1 maps to two b values: the FD drifts exact→violated.
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 1)");
  EXPECT_TRUE(pushed.empty());
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 2)");
  ASSERT_EQ(pushed.size(), 1u);
  EXPECT_EQ(pushed[0].rfind("DRIFT ", 0), 0u) << pushed[0];
  auto parsed = ParseReply(pushed[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ParsedReply::Kind::kDrift);
  // Drift is edge-triggered: further violations don't re-fire.
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 3)");
  EXPECT_EQ(pushed.size(), 1u);
  ASSERT_EQ(svc.DriftLog("t").size(), 1u);
  EXPECT_EQ(svc.DriftLog("t")[0].tuple_count, 2u);
}

TEST(ServiceTest, ClosedSessionStopsReceivingPushes) {
  Service svc;
  int pushes = 0;
  auto listener = svc.OpenSession([&pushes](const std::string&) {
    ++pushes;
    return true;
  });
  auto writer = svc.OpenSession(nullptr);
  svc.ExecuteLine(writer, "CREATE TABLE t (a INT64, b INT64)");
  svc.ExecuteLine(writer, "DECLARE FD a -> b ON t");
  svc.ExecuteLine(listener, "SUBSCRIBE DRIFT ON t");
  svc.CloseSession(listener);
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 1), (1, 2)");
  EXPECT_EQ(pushes, 0);
  EXPECT_EQ(svc.DriftLog("t").size(), 1u);
}

TEST(ServiceTest, EveryConfiguresCheckCadence) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b INT64)");
  svc.ExecuteLine(s, "DECLARE FD a -> b ON t EVERY 4");
  // Violating pair lands at rows 1-2, but the check only runs at row 4.
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 1)");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 2)");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (2, 1)");
  EXPECT_TRUE(svc.DriftLog("t").empty());
  svc.ExecuteLine(s, "INSERT INTO t VALUES (3, 1)");
  ASSERT_EQ(svc.DriftLog("t").size(), 1u);
  EXPECT_EQ(svc.DriftLog("t")[0].tuple_count, 4u);
  // A second DECLARE with a conflicting EVERY is rejected; without EVERY
  // it joins the existing monitor.
  EXPECT_TRUE(IsErr(svc.ExecuteLine(s, "DECLARE FD b -> a ON t EVERY 2")));
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "DECLARE FD b -> a ON t")), 0u);
}

TEST(ServiceTest, JournalRecordsCommitOrder) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64)");
  svc.ExecuteLine(s, "DECLARE FD a -> a ON t");  // invalid (overlap): ERR
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1)");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (2), (3)");
  svc.ExecuteLine(s, "SELECT COUNT(*) FROM t");  // reads are not journaled
  auto journal = svc.Journal("t");
  ASSERT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal[0], "CREATE TABLE t (a INT64)");
  EXPECT_EQ(journal[1], "INSERT INTO t VALUES (1)");
  EXPECT_EQ(journal[2], "INSERT INTO t VALUES (2), (3)");
}

TEST(ServiceTest, ReplayingJournalReproducesStateBitIdentically) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b STRING)");
  svc.ExecuteLine(s, "DECLARE FD a -> b ON t EVERY 2");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 'z')");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (3, 'w')");

  Service replay;
  auto r = replay.OpenSession(nullptr);
  for (const auto& line : svc.Journal("t")) {
    auto parsed = ParseReply(replay.ExecuteLine(r, line).reply);
    ASSERT_TRUE(parsed && parsed->kind == ParsedReply::Kind::kOk) << line;
  }
  EXPECT_EQ(svc.SerializeState(), replay.SerializeState());
}

TEST(ServiceTest, CheckpointAndResumeRoundTrip) {
  const std::string path =
      testing::TempDir() + "/fdevolve_service_ckpt.fdev";
  Service::Options opts;
  opts.checkpoint_path = path;
  {
    Service svc(opts);
    auto s = svc.OpenSession(nullptr);
    svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b INT64)");
    svc.ExecuteLine(s, "DECLARE FD a -> b ON t EVERY 3");
    svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 1), (1, 2)");  // unchecked
    EXPECT_EQ(OkValue(svc.ExecuteLine(s, "CHECKPOINT")), 0u);

    Service resumed(opts);
    std::string error;
    ASSERT_TRUE(resumed.Resume(&error)) << error;
    EXPECT_EQ(resumed.SerializeState(), svc.SerializeState());

    // Both continue identically: the pending-insert counter survived, so
    // the next insert triggers the EVERY-3 check and the drift fires at
    // the same watermark.
    auto r = resumed.OpenSession(nullptr);
    svc.ExecuteLine(s, "INSERT INTO t VALUES (2, 2)");
    resumed.ExecuteLine(r, "INSERT INTO t VALUES (2, 2)");
    ASSERT_EQ(svc.DriftLog("t").size(), 1u);
    ASSERT_EQ(resumed.DriftLog("t").size(), 1u);
    EXPECT_EQ(svc.DriftLog("t")[0].tuple_count, 3u);
    EXPECT_EQ(svc.SerializeState(), resumed.SerializeState());
  }
}

TEST(ServiceTest, DeleteAndUpdateThroughService) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b STRING)");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')");
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "DELETE FROM t WHERE b = 'x'")), 2u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "SELECT COUNT(*) FROM t")), 1u);
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "UPDATE t SET b = 'z' WHERE a = 2")),
            1u);
  EXPECT_EQ(
      OkValue(svc.ExecuteLine(s, "SELECT COUNT(*) FROM t WHERE b = 'z'")),
      1u);
  // Mutations are journaled in commit order alongside inserts.
  auto journal = svc.Journal("t");
  ASSERT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal[2], "DELETE FROM t WHERE b = 'x'");
  EXPECT_EQ(journal[3], "UPDATE t SET b = 'z' WHERE a = 2");
}

TEST(ServiceTest, RecoveredDriftPushedToSubscribers) {
  Service svc;
  std::vector<std::string> pushed;
  auto listener = svc.OpenSession([&pushed](const std::string& line) {
    pushed.push_back(line);
    return true;
  });
  auto writer = svc.OpenSession(nullptr);
  svc.ExecuteLine(writer, "CREATE TABLE t (a INT64, b INT64)");
  svc.ExecuteLine(writer, "DECLARE FD a -> b ON t");
  svc.ExecuteLine(listener, "SUBSCRIBE DRIFT ON t");
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 1)");
  svc.ExecuteLine(writer, "INSERT INTO t VALUES (1, 2)");  // violated
  ASSERT_EQ(pushed.size(), 1u);
  EXPECT_NE(pushed[0].find(" kind=violated "), std::string::npos)
      << pushed[0];
  // Deleting the violating witness recovers the FD — pushed as such.
  svc.ExecuteLine(writer, "DELETE FROM t WHERE b = 2");
  ASSERT_EQ(pushed.size(), 2u);
  EXPECT_NE(pushed[1].find(" kind=recovered "), std::string::npos)
      << pushed[1];
  auto log = svc.DriftLog("t");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].kind, fd::DriftKind::kRecovered);
}

TEST(ServiceTest, ReplayWithMutationsAndCompactionIsBitIdentical) {
  Service svc;
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b STRING)");
  svc.ExecuteLine(s, "DECLARE FD a -> b ON t EVERY 2");
  // Enough churn to cross the compaction threshold (>= 64 physical rows,
  // half dead): 80 inserts, then delete most of them.
  for (int i = 0; i < 80; ++i) {
    svc.ExecuteLine(s, "INSERT INTO t VALUES (" + std::to_string(i % 7) +
                           ", 'v" + std::to_string(i % 3) + "')");
  }
  svc.ExecuteLine(s, "DELETE FROM t WHERE a = 1");
  svc.ExecuteLine(s, "UPDATE t SET b = 'w' WHERE a = 2");
  svc.ExecuteLine(s, "DELETE FROM t WHERE b = 'v0'");
  svc.ExecuteLine(s, "DELETE FROM t WHERE a = 3");  // crosses half-dead

  Service replay;
  auto r = replay.OpenSession(nullptr);
  for (const auto& line : svc.Journal("t")) {
    auto parsed = ParseReply(replay.ExecuteLine(r, line).reply);
    ASSERT_TRUE(parsed && parsed->kind == ParsedReply::Kind::kOk) << line;
  }
  EXPECT_EQ(svc.SerializeState(), replay.SerializeState());
  // Drift logs agree event-for-event (kind and live counts included).
  auto a = svc.DriftLog("t");
  auto b = replay.DriftLog("t");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].tuple_count, b[i].tuple_count) << i;
  }
}

TEST(ServiceTest, CheckpointAfterMutationRoundTrips) {
  const std::string path =
      testing::TempDir() + "/fdevolve_service_mut_ckpt.fdev";
  Service::Options opts;
  opts.checkpoint_path = path;
  Service svc(opts);
  auto s = svc.OpenSession(nullptr);
  svc.ExecuteLine(s, "CREATE TABLE t (a INT64, b INT64)");
  svc.ExecuteLine(s, "DECLARE FD a -> b ON t");
  svc.ExecuteLine(s, "INSERT INTO t VALUES (1, 1), (1, 2), (2, 5)");
  svc.ExecuteLine(s, "DELETE FROM t WHERE b = 2");  // tombstone persists
  EXPECT_EQ(OkValue(svc.ExecuteLine(s, "CHECKPOINT")), 0u);

  Service resumed(opts);
  std::string error;
  ASSERT_TRUE(resumed.Resume(&error)) << error;
  EXPECT_EQ(resumed.SerializeState(), svc.SerializeState());
  auto r = resumed.OpenSession(nullptr);
  EXPECT_EQ(OkValue(resumed.ExecuteLine(r, "SELECT COUNT(*) FROM t")), 2u);
  // Both sides keep evolving identically post-resume.
  svc.ExecuteLine(s, "UPDATE t SET b = 9 WHERE a = 2");
  resumed.ExecuteLine(r, "UPDATE t SET b = 9 WHERE a = 2");
  EXPECT_EQ(resumed.SerializeState(), svc.SerializeState());
}

TEST(ServiceTest, ResumeFailsCleanlyOnMissingFile) {
  Service::Options opts;
  opts.checkpoint_path = testing::TempDir() + "/fdevolve_absent.fdev";
  Service svc(opts);
  std::string error;
  EXPECT_FALSE(svc.Resume(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace fdevolve::server
