// Byte-level verification of every number the paper derives from the
// Places running example (Figure 1, §3, §4.1-4.3, Tables 1-3).
//
// Erratum note (documented in EXPERIMENTS.md): Table 3's goodness column
// prints |π_XB| − 4 — i.e. it reuses |π_AreaCode| = 4 from the F1 example —
// instead of |π_XB| − |π_PhNo| = |π_XB| − 6 per Definition 3. We assert the
// Definition-3 values; the *confidences* of Table 3 match exactly, and the
// candidate ranking (which is what the algorithm consumes) is unchanged.
#include <gtest/gtest.h>

#include "datagen/places.h"
#include "fd/candidate_ranking.h"
#include "fd/measures.h"
#include "fd/ordering.h"
#include "fd/repair_search.h"

namespace fdevolve::fd {
namespace {

using datagen::MakePlaces;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : rel_(MakePlaces()), schema_(rel_.schema()) {}

  const Candidate& FindCandidate(const std::vector<Candidate>& cands,
                                 const std::string& attr) {
    int idx = schema_.Require(attr);
    for (const auto& c : cands) {
      if (c.attr == idx) return c;
    }
    ADD_FAILURE() << "candidate " << attr << " not found";
    static Candidate dummy;
    return dummy;
  }

  relation::Relation rel_;
  const relation::Schema& schema_;
};

TEST_F(PaperExampleTest, InstanceShapeMatchesTable6) {
  EXPECT_EQ(rel_.attr_count(), 9);   // Table 6: arity 9
  EXPECT_EQ(rel_.tuple_count(), 11u);
  // Table 6 lists cardinality 10 (one duplicate). The paper's own
  // projection counts, however, force TWO duplicate pairs — t1=t2 and
  // t4=t5 — as 9-attribute tuples (see EXPERIMENTS.md erratum E3), so a
  // faithful instance has 9 distinct tuples.
  query::DistinctEvaluator eval(rel_);
  EXPECT_EQ(eval.Count(rel_.schema().AllAttrs()), 9u);
}

TEST_F(PaperExampleTest, Section3MeasuresF1) {
  FdMeasures m = ComputeMeasures(rel_, datagen::PlacesF1(schema_));
  EXPECT_EQ(m.distinct_x, 2u);    // §4.2: |π_{District,Region}| = 2
  EXPECT_EQ(m.distinct_xy, 4u);   // §4.2: |π_{District,Region,AreaCode}| = 4
  EXPECT_DOUBLE_EQ(m.confidence, 0.5);
  EXPECT_EQ(m.goodness, -2);
  EXPECT_FALSE(m.exact);
}

TEST_F(PaperExampleTest, Section3MeasuresF2) {
  FdMeasures m = ComputeMeasures(rel_, datagen::PlacesF2(schema_));
  EXPECT_NEAR(m.confidence, 0.667, 5e-4);
  EXPECT_EQ(m.goodness, -1);
}

TEST_F(PaperExampleTest, Section3MeasuresF3) {
  FdMeasures m = ComputeMeasures(rel_, datagen::PlacesF3(schema_));
  EXPECT_NEAR(m.confidence, 0.889, 5e-4);
  EXPECT_EQ(m.goodness, 1);
}

TEST_F(PaperExampleTest, Section43MeasuresF4) {
  FdMeasures m = ComputeMeasures(rel_, datagen::PlacesF4(schema_));
  EXPECT_EQ(m.distinct_x, 2u);   // |π_District| = 2
  EXPECT_EQ(m.distinct_xy, 7u);  // |π_{District,PhNo}| = 7
  EXPECT_NEAR(m.confidence, 0.29, 5e-3);
  EXPECT_EQ(m.goodness, -4);     // 2 − 6
}

TEST_F(PaperExampleTest, Table1CandidateValues) {
  query::DistinctEvaluator eval(rel_);
  auto cands = ExtendByOne(eval, datagen::PlacesF1(schema_), PoolOptions{});
  ASSERT_EQ(cands.size(), 6u);

  struct Expected {
    const char* attr;
    double confidence;
    int64_t goodness;
  };
  const Expected table1[] = {
      {"Municipal", 1.0, 0}, {"PhNo", 1.0, 3},  {"Street", 0.875, 3},
      {"Zip", 0.8, 0},       {"City", 0.8, 0},  {"State", 0.6, -1},
  };
  for (const auto& e : table1) {
    const Candidate& c = FindCandidate(cands, e.attr);
    EXPECT_NEAR(c.measures.confidence, e.confidence, 1e-9) << e.attr;
    EXPECT_EQ(c.measures.goodness, e.goodness) << e.attr;
  }
}

TEST_F(PaperExampleTest, Table1RankingOrder) {
  query::DistinctEvaluator eval(rel_);
  auto cands = ExtendByOne(eval, datagen::PlacesF1(schema_), PoolOptions{});
  // Municipal ranks above PhNo (same confidence 1, |g| 0 < 3) — the
  // paper's headline point about penalising over-specific attributes.
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].attr, schema_.Require("Municipal"));
  EXPECT_EQ(cands[1].attr, schema_.Require("PhNo"));
  EXPECT_EQ(cands[2].attr, schema_.Require("Street"));
  EXPECT_EQ(cands[5].attr, schema_.Require("State"));
}

TEST_F(PaperExampleTest, Table2CandidateValues) {
  query::DistinctEvaluator eval(rel_);
  auto cands = ExtendByOne(eval, datagen::PlacesF4(schema_), PoolOptions{});
  ASSERT_EQ(cands.size(), 7u);

  struct Expected {
    const char* attr;
    double confidence;
    int64_t goodness;
  };
  const Expected table2[] = {
      {"Street", 0.875, 1},    {"Municipal", 4.0 / 7.0, -2},
      {"AreaCode", 4.0 / 7.0, -2}, {"City", 4.0 / 7.0, -2},
      {"Zip", 0.5, -2},        {"State", 3.0 / 7.0, -3},
      {"Region", 2.0 / 7.0, -4},
  };
  for (const auto& e : table2) {
    const Candidate& c = FindCandidate(cands, e.attr);
    EXPECT_NEAR(c.measures.confidence, e.confidence, 1e-9) << e.attr;
    EXPECT_EQ(c.measures.goodness, e.goodness) << e.attr;
  }
  // Street ranks first (highest confidence).
  EXPECT_EQ(cands[0].attr, schema_.Require("Street"));
}

TEST_F(PaperExampleTest, Table3SecondStepConfidences) {
  // After adding Street to F4's antecedent (§4.3).
  query::DistinctEvaluator eval(rel_);
  Fd f4_street =
      datagen::PlacesF4(schema_).WithAntecedent(schema_.Require("Street"));
  auto cands = ExtendByOne(eval, f4_street, PoolOptions{});
  // Six eligible candidates; the paper's Table 3 prints only five,
  // omitting Region (adding it changes nothing: Region is 1:1 with
  // District, so its confidence stays at the 0.875 baseline).
  ASSERT_EQ(cands.size(), 6u);
  const Candidate& region = FindCandidate(cands, "Region");
  EXPECT_NEAR(region.measures.confidence, 0.875, 1e-9);

  struct Expected {
    const char* attr;
    double confidence;
  };
  const Expected table3[] = {
      {"Municipal", 1.0}, {"AreaCode", 1.0}, {"Zip", 0.889},
      {"City", 0.875},    {"State", 0.875},
  };
  for (const auto& e : table3) {
    const Candidate& c = FindCandidate(cands, e.attr);
    EXPECT_NEAR(c.measures.confidence, e.confidence, 5e-4) << e.attr;
  }
  // Municipal and AreaCode both reach confidence 1 and tie on goodness
  // (§4.3: "they score the same value also for the goodness").
  const Candidate& mun = FindCandidate(cands, "Municipal");
  const Candidate& ac = FindCandidate(cands, "AreaCode");
  EXPECT_EQ(mun.measures.goodness, ac.measures.goodness);
  // Definition-3 goodness is |π_XB| − |π_PhNo| = 8 − 6 = 2 (the paper's
  // Table 3 prints 4 — an erratum; see file header).
  EXPECT_EQ(mun.measures.goodness, 2);
}

TEST_F(PaperExampleTest, Section43TwoAttributeRepairsOfF4) {
  // The paper concludes {Street, Municipal} and {Street, AreaCode} both
  // repair F4 : District -> PhNo.
  RepairOptions opts;
  opts.mode = SearchMode::kAllRepairs;
  RepairResult res = Extend(rel_, datagen::PlacesF4(schema_), opts);
  ASSERT_TRUE(res.found());

  relation::AttrSet street_mun = relation::AttrSet::Of(
      {schema_.Require("Street"), schema_.Require("Municipal")});
  relation::AttrSet street_ac = relation::AttrSet::Of(
      {schema_.Require("Street"), schema_.Require("AreaCode")});

  bool saw_mun = false;
  bool saw_ac = false;
  for (const auto& r : res.repairs) {
    if (r.added == street_mun) saw_mun = true;
    if (r.added == street_ac) saw_ac = true;
    // Every repair is exact and minimal (no single-attribute repair of F4
    // exists per Table 2, so all repairs have >= 2 attributes).
    EXPECT_TRUE(r.measures.exact);
    EXPECT_GE(r.added.Count(), 2);
  }
  EXPECT_TRUE(saw_mun);
  EXPECT_TRUE(saw_ac);
}

TEST_F(PaperExampleTest, F1OneAttributeRepairs) {
  // Municipal and PhNo are the only single-attribute repairs of F1, with
  // Municipal ranked first.
  RepairOptions opts;
  opts.mode = SearchMode::kAllRepairs;
  opts.max_added_attrs = 1;
  RepairResult res = Extend(rel_, datagen::PlacesF1(schema_), opts);
  ASSERT_EQ(res.repairs.size(), 2u);
  EXPECT_EQ(res.repairs[0].added,
            relation::AttrSet::Of({schema_.Require("Municipal")}));
  EXPECT_EQ(res.repairs[1].added,
            relation::AttrSet::Of({schema_.Require("PhNo")}));
}

TEST_F(PaperExampleTest, FirstRepairOfF1IsMunicipal) {
  RepairOptions opts;
  opts.mode = SearchMode::kFirstRepair;
  RepairResult res = Extend(rel_, datagen::PlacesF1(schema_), opts);
  ASSERT_TRUE(res.found());
  EXPECT_EQ(res.repairs[0].added,
            relation::AttrSet::Of({schema_.Require("Municipal")}));
  EXPECT_EQ(res.repairs[0].measures.goodness, 0);
}

TEST_F(PaperExampleTest, ViolatingTuplesMatchSection1) {
  // §1: all tuples violate F1; t1,t2,t3 violate F2; t10,t11 violate F3.
  // We verify at the measure level: F2's violation is concentrated in
  // Zip=10211 (two City/State combos) and F3's in PhNo/Zip of t10-t11.
  query::DistinctEvaluator eval(rel_);
  // Zip 10211 maps to (NY,NY) and (NY,MA): remove-and-check.
  FdMeasures f2 = ComputeMeasures(eval, datagen::PlacesF2(schema_));
  EXPECT_EQ(f2.distinct_x, 4u);   // 4 zips
  EXPECT_EQ(f2.distinct_xy, 6u);  // 2 extra combos: one from 10211, one 60415
  FdMeasures f3 = ComputeMeasures(eval, datagen::PlacesF3(schema_));
  EXPECT_EQ(f3.distinct_x, 8u);
  EXPECT_EQ(f3.distinct_xy, 9u);  // exactly one conflicting pair (t10, t11)
}

}  // namespace
}  // namespace fdevolve::fd
