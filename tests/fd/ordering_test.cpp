#include "fd/ordering.h"

#include <gtest/gtest.h>

#include "datagen/places.h"

namespace fdevolve::fd {
namespace {

using relation::AttrSet;
using relation::DataType;
using relation::Relation;
using relation::Schema;

TEST(ConflictScoreTest, NoOtherFdsMeansZero) {
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  EXPECT_DOUBLE_EQ(ConflictScore(f, {f}), 0.0);
  EXPECT_DOUBLE_EQ(ConflictScore(f, {}), 0.0);
}

TEST(ConflictScoreTest, DisjointFdsScoreZero) {
  Fd f1(AttrSet::Of({0}), AttrSet::Of({1}));
  Fd f2(AttrSet::Of({2}), AttrSet::Of({3}));
  EXPECT_DOUBLE_EQ(ConflictScore(f1, {f1, f2}), 0.0);
}

TEST(ConflictScoreTest, SharedAttributeCounted) {
  // F1 = {0,1}->{2} (|F1|=3), F2 = {1}->{3} (|F2|=2); share attr 1.
  Fd f1(AttrSet::Of({0, 1}), AttrSet::Of({2}));
  Fd f2(AttrSet::Of({1}), AttrSet::Of({3}));
  // cf(F1) = (1/max(3,2)) / 2 = (1/3)/2.
  EXPECT_DOUBLE_EQ(ConflictScore(f1, {f1, f2}), (1.0 / 3.0) / 2.0);
  // cf(F2) symmetric numerator, same |F| denominator.
  EXPECT_DOUBLE_EQ(ConflictScore(f2, {f1, f2}), (1.0 / 3.0) / 2.0);
}

TEST(ConflictScoreTest, PlacesExample) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  std::vector<Fd> fds = {datagen::PlacesF1(s), datagen::PlacesF2(s),
                         datagen::PlacesF3(s)};
  // F1 shares nothing; F2 and F3 share Zip (|F2|=|F3|=3).
  EXPECT_DOUBLE_EQ(ConflictScore(fds[0], fds), 0.0);
  EXPECT_DOUBLE_EQ(ConflictScore(fds[1], fds), (1.0 / 3.0) / 3.0);
  EXPECT_DOUBLE_EQ(ConflictScore(fds[2], fds), (1.0 / 3.0) / 3.0);
}

TEST(OrderFdsTest, PlacesOrderMatchesPaper) {
  // §4.1: examine F1, then F2, then F3 — under either conflict convention.
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  std::vector<Fd> fds = {datagen::PlacesF2(s), datagen::PlacesF3(s),
                         datagen::PlacesF1(s)};  // shuffled input

  for (bool include_conflict : {true, false}) {
    OrderingOptions opts;
    opts.include_conflict = include_conflict;
    auto ordered = OrderFds(rel, fds, opts);
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(ordered[0].fd, datagen::PlacesF1(s));
    EXPECT_EQ(ordered[1].fd, datagen::PlacesF2(s));
    EXPECT_EQ(ordered[2].fd, datagen::PlacesF3(s));
  }
}

TEST(OrderFdsTest, PaperPrintedRanksUseZeroConflict) {
  // The paper prints O(F1)=0.25, O(F2)=0.167, O(F3)=0.056 — exactly ic/2.
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  std::vector<Fd> fds = {datagen::PlacesF1(s), datagen::PlacesF2(s),
                         datagen::PlacesF3(s)};
  OrderingOptions opts;
  opts.include_conflict = false;
  auto ordered = OrderFds(rel, fds, opts);
  EXPECT_NEAR(ordered[0].rank, 0.25, 1e-9);
  EXPECT_NEAR(ordered[1].rank, 0.1667, 5e-4);
  EXPECT_NEAR(ordered[2].rank, 0.0556, 5e-4);
}

TEST(OrderFdsTest, TiesKeepDeclarationOrder) {
  relation::Schema schema({{"a", DataType::kInt64},
                           {"b", DataType::kInt64},
                           {"c", DataType::kInt64},
                           {"d", DataType::kInt64}});
  Relation rel("t", schema);
  rel.AppendRow({int64_t{1}, int64_t{1}, int64_t{1}, int64_t{1}});
  rel.AppendRow({int64_t{2}, int64_t{2}, int64_t{2}, int64_t{2}});
  // Both FDs exact and disjoint: identical rank 0.
  Fd f1(AttrSet::Of({0}), AttrSet::Of({1}), "first");
  Fd f2(AttrSet::Of({2}), AttrSet::Of({3}), "second");
  auto ordered = OrderFds(rel, {f1, f2});
  EXPECT_EQ(ordered[0].fd.label(), "first");
  EXPECT_EQ(ordered[1].fd.label(), "second");
}

TEST(OrderFdsTest, RanksAreAverageOfIcAndCf) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  std::vector<Fd> fds = {datagen::PlacesF1(s), datagen::PlacesF2(s),
                         datagen::PlacesF3(s)};
  auto ordered = OrderFds(rel, fds);
  for (const auto& o : ordered) {
    EXPECT_DOUBLE_EQ(o.rank, (o.measures.inconsistency() + o.conflict) / 2.0);
  }
}

}  // namespace
}  // namespace fdevolve::fd
