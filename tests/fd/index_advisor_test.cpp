#include "fd/index_advisor.h"

#include <gtest/gtest.h>

#include "datagen/places.h"

namespace fdevolve::fd {
namespace {

TEST(IndexAdvisorTest, InvertibleWhenGoodnessZero) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  // [D, R, Municipal] -> [AreaCode]: the goodness-0 repair of F1.
  Fd repaired =
      datagen::PlacesF1(s).WithAntecedent(s.Require("Municipal"));
  auto rec = AdviseIndex(rel, repaired);
  EXPECT_TRUE(rec.invertible);
  EXPECT_EQ(rec.key, repaired.lhs());
  EXPECT_EQ(rec.covers, repaired.rhs());
  EXPECT_NE(rec.ToString(s).find("invertible"), std::string::npos);
}

TEST(IndexAdvisorTest, NotInvertibleWhenGoodnessNonZero) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  // [D, R, PhNo] -> [AreaCode]: exact but goodness 3.
  Fd repaired = datagen::PlacesF1(s).WithAntecedent(s.Require("PhNo"));
  auto rec = AdviseIndex(rel, repaired);
  EXPECT_FALSE(rec.invertible);
  EXPECT_EQ(rec.ToString(s).find("invertible"), std::string::npos);
}

TEST(IndexAdvisorTest, RejectsViolatedFd) {
  auto rel = datagen::MakePlaces();
  EXPECT_THROW(AdviseIndex(rel, datagen::PlacesF1(rel.schema())),
               std::invalid_argument);
}

TEST(IndexAdvisorTest, SelectivityComputed) {
  auto rel = datagen::MakePlaces();
  const auto& s = rel.schema();
  Fd exact = Fd::Parse("Municipal -> AreaCode", s);
  auto rec = AdviseIndex(rel, exact);
  // 4 distinct municipalities over 11 stored tuples.
  EXPECT_NEAR(rec.selectivity, 4.0 / 11.0, 1e-12);
  EXPECT_NE(rec.rationale.find("4 distinct keys"), std::string::npos);
}

TEST(IndexAdvisorTest, FromRepairsInvertibleFirst) {
  auto rel = datagen::MakePlaces();
  RepairOptions opts;
  opts.mode = SearchMode::kAllRepairs;
  opts.max_added_attrs = 1;
  auto res = Extend(rel, datagen::PlacesF1(rel.schema()), opts);
  ASSERT_EQ(res.repairs.size(), 2u);
  auto recs = AdviseFromRepairs(rel, res);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_TRUE(recs[0].invertible);   // Municipal repair
  EXPECT_FALSE(recs[1].invertible);  // PhNo repair
}

TEST(IndexAdvisorTest, AlreadyExactFdGetsOneRecommendation) {
  auto rel = datagen::MakePlaces();
  Fd exact = Fd::Parse("Municipal -> AreaCode", rel.schema());
  auto res = Extend(rel, exact);
  ASSERT_TRUE(res.already_exact);
  auto recs = AdviseFromRepairs(rel, res);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].invertible);  // Municipal <-> AreaCode bijection
}

}  // namespace
}  // namespace fdevolve::fd
