#include "fd/closure.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdevolve::fd {
namespace {

using relation::AttrSet;

// Attribute indices used symbolically: A=0 B=1 C=2 D=3 E=4.
constexpr int A = 0, B = 1, C = 2, D = 3, E = 4;

std::vector<Fd> TextbookFds() {
  // A->B, B->C, {A,D}->E.
  return {Fd(AttrSet::Of({A}), AttrSet::Of({B})),
          Fd(AttrSet::Of({B}), AttrSet::Of({C})),
          Fd(AttrSet::Of({A, D}), AttrSet::Of({E}))};
}

TEST(ClosureTest, TransitiveChain) {
  auto fds = TextbookFds();
  EXPECT_EQ(AttributeClosure(AttrSet::Of({A}), fds), AttrSet::Of({A, B, C}));
  EXPECT_EQ(AttributeClosure(AttrSet::Of({B}), fds), AttrSet::Of({B, C}));
  EXPECT_EQ(AttributeClosure(AttrSet::Of({A, D}), fds),
            AttrSet::Of({A, B, C, D, E}));
}

TEST(ClosureTest, ClosureContainsInput) {
  auto fds = TextbookFds();
  for (int i = 0; i < 5; ++i) {
    AttrSet s = AttrSet::Of({i});
    EXPECT_TRUE(s.SubsetOf(AttributeClosure(s, fds)));
  }
}

TEST(ClosureTest, EmptyFdsClosureIsIdentity) {
  AttrSet s = AttrSet::Of({1, 3});
  EXPECT_EQ(AttributeClosure(s, {}), s);
}

TEST(ClosureTest, ImpliesDerivedFds) {
  auto fds = TextbookFds();
  // Transitivity: A -> C.
  EXPECT_TRUE(Implies(fds, Fd(AttrSet::Of({A}), AttrSet::Of({C}))));
  // Augmentation: {A, D} -> {B, E}.
  EXPECT_TRUE(Implies(fds, Fd(AttrSet::Of({A, D}), AttrSet::Of({B, E}))));
  // Not implied: B -> A.
  EXPECT_FALSE(Implies(fds, Fd(AttrSet::Of({B}), AttrSet::Of({A}))));
}

TEST(ClosureTest, ArmstrongAxiomsHoldUnderImplies) {
  // Property test: reflexivity, augmentation, transitivity on random FDs.
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Fd> fds;
    for (int i = 0; i < 4; ++i) {
      AttrSet lhs, rhs;
      while (lhs.Empty()) {
        for (int a = 0; a < 6; ++a) {
          if (rng.Chance(0.3)) lhs.Add(a);
        }
      }
      while (rhs.Empty() || rhs.Intersects(lhs)) {
        rhs = AttrSet();
        for (int a = 0; a < 6; ++a) {
          if (rng.Chance(0.25) && !lhs.Contains(a)) rhs.Add(a);
        }
        if (lhs.Count() == 6) break;
      }
      if (rhs.Empty()) continue;
      fds.emplace_back(lhs, rhs);
    }
    if (fds.size() < 2) continue;

    // Transitivity through closures: if X+ ⊇ Y and Y+ ⊇ Z then X+ ⊇ Z.
    AttrSet x = fds[0].lhs();
    AttrSet x_closure = AttributeClosure(x, fds);
    AttrSet xx_closure = AttributeClosure(x_closure, fds);
    EXPECT_EQ(x_closure, xx_closure);  // closure is idempotent

    // Monotone: bigger input, bigger closure.
    AttrSet bigger = x.With(5);
    EXPECT_TRUE(x_closure.SubsetOf(AttributeClosure(bigger, fds)));
  }
}

TEST(ClosureTest, TrivialFdsAreUnconstructible) {
  // The Fd constructor rejects overlapping sides, so the normal-form
  // checks never see trivial dependencies.
  EXPECT_THROW(Fd(AttrSet::Of({A, B}), AttrSet::Of({B})),
               std::invalid_argument);
}

TEST(CandidateKeysTest, TextbookExample) {
  // Universe {A..E} with A->B, B->C, {A,D}->E: the only key is {A, D}.
  auto keys = CandidateKeys(AttrSet::Of({A, B, C, D, E}), TextbookFds());
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttrSet::Of({A, D}));
}

TEST(CandidateKeysTest, MultipleKeys) {
  // A->B, B->A: both {A,C} and {B,C} are keys of {A,B,C}.
  std::vector<Fd> fds = {Fd(AttrSet::Of({A}), AttrSet::Of({B})),
                         Fd(AttrSet::Of({B}), AttrSet::Of({A}))};
  auto keys = CandidateKeys(AttrSet::Of({A, B, C}), fds);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE((keys[0] == AttrSet::Of({A, C}) &&
               keys[1] == AttrSet::Of({B, C})) ||
              (keys[0] == AttrSet::Of({B, C}) &&
               keys[1] == AttrSet::Of({A, C})));
}

TEST(CandidateKeysTest, NoFdsMeansWholeUniverse) {
  auto keys = CandidateKeys(AttrSet::Of({A, B}), {});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttrSet::Of({A, B}));
}

TEST(CandidateKeysTest, KeysAreMinimalAndSuperkeys) {
  auto universe = AttrSet::Of({A, B, C, D, E});
  auto fds = TextbookFds();
  for (const auto& key : CandidateKeys(universe, fds)) {
    EXPECT_TRUE(universe.SubsetOf(AttributeClosure(key, fds)));
    for (int drop : key.ToVector()) {
      AttrSet smaller = key;
      smaller.Remove(drop);
      EXPECT_FALSE(universe.SubsetOf(AttributeClosure(smaller, fds)));
    }
  }
}

TEST(CandidateKeysTest, MaxKeySizeBounds) {
  auto keys = CandidateKeys(AttrSet::Of({A, B, C, D, E}), TextbookFds(), 1);
  EXPECT_TRUE(keys.empty());  // the only key has size 2
}

TEST(NormalFormTest, BcnfDetection) {
  auto universe = AttrSet::Of({A, B, C});
  // A is the key; A->B, A->C: BCNF.
  std::vector<Fd> good = {Fd(AttrSet::Of({A}), AttrSet::Of({B})),
                          Fd(AttrSet::Of({A}), AttrSet::Of({C}))};
  EXPECT_TRUE(IsBcnf(universe, good));
  // Add B->C: B is not a superkey -> not BCNF.
  std::vector<Fd> bad = good;
  bad.emplace_back(AttrSet::Of({B}), AttrSet::Of({C}));
  EXPECT_FALSE(IsBcnf(universe, bad));
}

TEST(NormalFormTest, ThreeNfAllowsPrimeConsequents) {
  // Classic: {A,B}->C, C->B. Keys: {A,B} and {A,C}; B is prime.
  auto universe = AttrSet::Of({A, B, C});
  std::vector<Fd> fds = {Fd(AttrSet::Of({A, B}), AttrSet::Of({C})),
                         Fd(AttrSet::Of({C}), AttrSet::Of({B}))};
  EXPECT_FALSE(IsBcnf(universe, fds));  // C->B, C not a superkey
  EXPECT_TRUE(Is3nf(universe, fds));    // but B is prime
}

TEST(NormalFormTest, NonPrimeTransitiveBreaks3nf) {
  // A->B, B->C with key A: C is non-prime and transitively dependent.
  auto universe = AttrSet::Of({A, B, C});
  std::vector<Fd> fds = {Fd(AttrSet::Of({A}), AttrSet::Of({B})),
                         Fd(AttrSet::Of({B}), AttrSet::Of({C}))};
  EXPECT_FALSE(Is3nf(universe, fds));
}

TEST(MinimalCoverTest, SplitsConsequentsAndDropsRedundancy) {
  // {A->BC, A->B} minimises to {A->B, A->C}.
  std::vector<Fd> fds = {Fd(AttrSet::Of({A}), AttrSet::Of({B, C})),
                         Fd(AttrSet::Of({A}), AttrSet::Of({B}))};
  auto cover = MinimalCover(fds);
  ASSERT_EQ(cover.size(), 2u);
  for (const auto& f : cover) {
    EXPECT_EQ(f.rhs().Count(), 1);
  }
}

TEST(MinimalCoverTest, RemovesExtraneousAntecedentAttrs) {
  // A->B plus {A,C}->B: the second FD's C is extraneous, so the cover is
  // just {A->B}.
  std::vector<Fd> fds = {Fd(AttrSet::Of({A}), AttrSet::Of({B})),
                         Fd(AttrSet::Of({A, C}), AttrSet::Of({B}))};
  auto cover = MinimalCover(fds);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], Fd(AttrSet::Of({A}), AttrSet::Of({B})));
}

TEST(MinimalCoverTest, PreservesLogicalContent) {
  auto fds = TextbookFds();
  auto cover = MinimalCover(fds);
  // Same closure for every single attribute.
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(AttributeClosure(AttrSet::Of({a}), fds),
              AttributeClosure(AttrSet::Of({a}), cover));
  }
  // Every original FD is implied by the cover and vice versa.
  for (const auto& f : fds) EXPECT_TRUE(Implies(cover, f));
  for (const auto& f : cover) EXPECT_TRUE(Implies(fds, f));
}

TEST(NormalFormTest, RepairedPlacesScenario) {
  // §3's remark in action: after accepting the Municipal repair, the FD
  // set {D,R,M}->A plus the instance-true M->A is not in BCNF (M is not a
  // superkey) — the schemas this method targets are exactly the
  // non-normalised ones.
  auto universe = AttrSet::Of({0, 1, 2, 3});  // D R M A
  std::vector<Fd> fds = {Fd(AttrSet::Of({0, 1, 2}), AttrSet::Of({3})),
                         Fd(AttrSet::Of({2}), AttrSet::Of({3}))};
  EXPECT_FALSE(IsBcnf(universe, fds));
}

}  // namespace
}  // namespace fdevolve::fd
