#include "fd/measures.h"

#include <gtest/gtest.h>

namespace fdevolve::fd {
namespace {

using relation::AttrSet;
using relation::DataType;
using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

Relation MakeRel() {
  // a -> b violated: a=1 maps to b in {x, y}.
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kString},
                 {"c", DataType::kInt64}});
  return RelationBuilder("t", schema)
      .Row({int64_t{1}, "x", int64_t{1}})
      .Row({int64_t{1}, "y", int64_t{2}})
      .Row({int64_t{2}, "x", int64_t{3}})
      .Build();
}

TEST(MeasuresTest, ViolatedFd) {
  Relation r = MakeRel();
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(r, f);
  EXPECT_EQ(m.distinct_x, 2u);
  EXPECT_EQ(m.distinct_xy, 3u);
  EXPECT_EQ(m.distinct_y, 2u);
  EXPECT_DOUBLE_EQ(m.confidence, 2.0 / 3.0);
  EXPECT_EQ(m.goodness, 0);
  EXPECT_FALSE(m.exact);
  EXPECT_FALSE(Satisfies(r, f));
}

TEST(MeasuresTest, ExactFd) {
  Relation r = MakeRel();
  // c -> b: c unique, so exact.
  Fd f(AttrSet::Of({2}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(r, f);
  EXPECT_DOUBLE_EQ(m.confidence, 1.0);
  EXPECT_TRUE(m.exact);
  EXPECT_EQ(m.goodness, 3 - 2);
  EXPECT_TRUE(Satisfies(r, f));
}

TEST(MeasuresTest, EmptyInstanceVacuouslyExact) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Relation r("e", schema);
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(r, f);
  EXPECT_TRUE(m.exact);
  EXPECT_DOUBLE_EQ(m.confidence, 1.0);
  EXPECT_EQ(m.goodness, 0);
}

TEST(MeasuresTest, EmptyAntecedentMeansConstantConsequent) {
  Relation r = MakeRel();
  Fd f(AttrSet(), AttrSet::Of({1}));  // {} -> b
  FdMeasures m = ComputeMeasures(r, f);
  // |π_{}| = 1, |π_b| = 2: violated.
  EXPECT_EQ(m.distinct_x, 1u);
  EXPECT_EQ(m.distinct_xy, 2u);
  EXPECT_FALSE(m.exact);

  // On a constant column it holds.
  Schema schema({{"a", DataType::kInt64}, {"k", DataType::kInt64}});
  Relation rc("c", schema);
  rc.AppendRow({int64_t{1}, int64_t{9}});
  rc.AppendRow({int64_t{2}, int64_t{9}});
  Fd fc(AttrSet(), AttrSet::Of({1}));
  EXPECT_TRUE(ComputeMeasures(rc, fc).exact);
}

TEST(MeasuresTest, InconsistencyDegree) {
  FdMeasures m;
  m.confidence = 0.75;
  EXPECT_DOUBLE_EQ(m.inconsistency(), 0.25);
}

TEST(MeasuresTest, AbsGoodness) {
  FdMeasures m;
  m.goodness = -4;
  EXPECT_EQ(m.abs_goodness(), 4u);
  m.goodness = 3;
  EXPECT_EQ(m.abs_goodness(), 3u);
  m.goodness = 0;
  EXPECT_EQ(m.abs_goodness(), 0u);
}

TEST(MeasuresTest, EpsilonCb) {
  FdMeasures m;
  m.confidence = 0.5;
  m.goodness = -2;
  EXPECT_DOUBLE_EQ(m.epsilon_cb(), 0.5 + 2.0);
  m.confidence = 1.0;
  m.goodness = 0;
  EXPECT_DOUBLE_EQ(m.epsilon_cb(), 0.0);
}

TEST(MeasuresTest, SharedEvaluatorGivesSameAnswers) {
  Relation r = MakeRel();
  query::DistinctEvaluator eval(r);
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures a = ComputeMeasures(eval, f);
  FdMeasures b = ComputeMeasures(r, f);
  EXPECT_EQ(a.distinct_x, b.distinct_x);
  EXPECT_EQ(a.distinct_xy, b.distinct_xy);
  EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
}

TEST(MeasuresTest, EpsilonCbOnEmptyRelationIsZero) {
  // Vacuous case: no tuples means confidence 1 and goodness 0, so the
  // combined ε_CB measure is 0 — an empty instance violates nothing.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Relation r("e", schema);
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(r, f);
  EXPECT_DOUBLE_EQ(m.confidence, 1.0);
  EXPECT_DOUBLE_EQ(m.inconsistency(), 0.0);
  EXPECT_EQ(m.abs_goodness(), 0u);
  EXPECT_DOUBLE_EQ(m.epsilon_cb(), 0.0);
}

TEST(MeasuresTest, EpsilonCbWithNegativeGoodness) {
  // a constant, b takes 3 values: |π_a| = 1, |π_ab| = 3, |π_b| = 3, so
  // g = 1 − 3 = −2 and ε_CB = (1 − 1/3) + |−2|.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Relation r("neg", schema);
  r.AppendRow({int64_t{7}, int64_t{1}});
  r.AppendRow({int64_t{7}, int64_t{2}});
  r.AppendRow({int64_t{7}, int64_t{3}});
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(r, f);
  EXPECT_EQ(m.goodness, -2);
  EXPECT_EQ(m.abs_goodness(), 2u);
  EXPECT_DOUBLE_EQ(m.confidence, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.epsilon_cb(), (1.0 - 1.0 / 3.0) + 2.0);
}

TEST(MeasuresTest, EpsilonCbZeroIffBijective) {
  // a ↔ b is a bijection: exact, |π_a| == |π_b|, so ε_CB == 0.
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  Relation bij("bij", schema);
  bij.AppendRow({int64_t{1}, "x"});
  bij.AppendRow({int64_t{2}, "y"});
  bij.AppendRow({int64_t{3}, "z"});
  Fd f(AttrSet::Of({0}), AttrSet::Of({1}));
  FdMeasures m = ComputeMeasures(bij, f);
  EXPECT_TRUE(m.exact);
  EXPECT_DOUBLE_EQ(m.epsilon_cb(), 0.0);

  // Exact but many-to-one (two a-values share b = "x"): g = 3 − 2 = 1 > 0,
  // so ε_CB > 0 even though the FD holds — exactness alone is not enough.
  Relation surj("surj", schema);
  surj.AppendRow({int64_t{1}, "x"});
  surj.AppendRow({int64_t{2}, "x"});
  surj.AppendRow({int64_t{3}, "z"});
  FdMeasures ms = ComputeMeasures(surj, f);
  EXPECT_TRUE(ms.exact);
  EXPECT_EQ(ms.goodness, 1);
  EXPECT_GT(ms.epsilon_cb(), 0.0);
}

TEST(MeasuresTest, ConfidenceNeverExceedsOne) {
  // |π_X| <= |π_XY| always, so confidence <= 1.
  Relation r = MakeRel();
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      if (x == y) continue;
      Fd f(AttrSet::Of({x}), AttrSet::Of({y}));
      FdMeasures m = ComputeMeasures(r, f);
      EXPECT_LE(m.confidence, 1.0);
      EXPECT_GT(m.confidence, 0.0);
    }
  }
}

}  // namespace
}  // namespace fdevolve::fd
